"""Shared overlay plumbing.

Every protocol node in :mod:`repro.overlay` extends :class:`OverlayNode`:
it owns a host id, registers itself on the :class:`MessageBus`, and
dispatches incoming messages to ``on_<kind>`` handler methods.  The class
also centralises per-node message counters so experiments can aggregate
protocol overhead uniformly across very different overlays.
"""

from __future__ import annotations

from collections import Counter
from typing import Any, Optional

from repro.errors import OverlayError
from repro.obs.registry import Counter as MetricCounter
from repro.obs.registry import MetricRegistry
from repro.sim.engine import Simulation
from repro.sim.messages import Message, MessageBus
from repro.sim.requests import RequestManager
from repro.underlay.hosts import Host


class OverlayNode:
    """Base class: bus registration + handler dispatch + counters."""

    #: Registry-backed counters, shared by all nodes of one instrumented
    #: network (class default ``None`` keeps the uninstrumented hot path
    #: to a single attribute check).
    _sent_metric: Optional[MetricCounter] = None
    _received_metric: Optional[MetricCounter] = None

    def __init__(self, host: Host, sim: Simulation, bus: MessageBus) -> None:
        self.host = host
        self.sim = sim
        self.bus = bus
        self.online = False
        self.sent_counts: Counter[str] = Counter()
        self.received_counts: Counter[str] = Counter()
        #: set by protocols that run RPC-style exchanges; going offline
        #: cancels whatever is outstanding so a crashed node's retry
        #: timers die with it
        self.requests: Optional[RequestManager] = None

    def instrument(self, registry: MetricRegistry, component: str) -> None:
        """Mirror this node's per-kind send/receive counts into
        ``<component>_messages_{sent,received}_total`` in ``registry``."""
        self._sent_metric = registry.counter(
            f"{component}_messages_sent_total",
            f"{component} protocol messages sent, by kind.",
            ("kind",),
        )
        self._received_metric = registry.counter(
            f"{component}_messages_received_total",
            f"{component} protocol messages received, by kind.",
            ("kind",),
        )

    @property
    def host_id(self) -> int:
        return self.host.host_id

    @property
    def asn(self) -> int:
        return self.host.asn

    # -- lifecycle -------------------------------------------------------------
    def go_online(self) -> None:
        if self.online:
            return
        self.online = True
        self.bus.register(self.host_id, self._dispatch)

    def go_offline(self) -> None:
        if not self.online:
            return
        self.online = False
        self.bus.unregister(self.host_id)
        if self.requests is not None:
            self.requests.cancel_all()

    # -- messaging ---------------------------------------------------------------
    def send(
        self, dst: int, kind: str, payload: Any = None, size_bytes: int = 64
    ) -> None:
        if not self.online:
            raise OverlayError(
                f"node {self.host_id} tried to send {kind} while offline"
            )
        self.sent_counts[kind] += 1
        if self._sent_metric is not None:
            self._sent_metric.inc(kind=kind)
        self.bus.send(self.host_id, dst, kind, payload, size_bytes)

    def send_many(
        self,
        dsts: "list[int]",
        kind: str,
        payload: Any = None,
        size_bytes: int = 64,
    ) -> None:
        """Fan the same message out to ``dsts`` in order (flooding,
        broadcast) through the bus's batch path — behaviourally identical
        to calling :meth:`send` per destination."""
        if not dsts:
            return
        if not self.online:
            raise OverlayError(
                f"node {self.host_id} tried to send {kind} while offline"
            )
        self.sent_counts[kind] += len(dsts)
        if self._sent_metric is not None:
            self._sent_metric.inc(len(dsts), kind=kind)
        self.bus.send_many(self.host_id, dsts, kind, payload, size_bytes)

    def _dispatch(self, msg: Message) -> None:
        if not self.online:
            return
        self.received_counts[msg.kind] += 1
        if self._received_metric is not None:
            self._received_metric.inc(kind=msg.kind)
        handler = getattr(self, f"on_{msg.kind.lower()}", None)
        if handler is None:
            self.on_unhandled(msg)
            return
        handler(msg)

    def on_unhandled(self, msg: Message) -> None:
        """Default for unknown kinds: protocol bug, fail loudly."""
        raise OverlayError(
            f"{type(self).__name__} {self.host_id} has no handler for {msg.kind!r}"
        )
