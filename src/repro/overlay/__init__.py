"""P2P overlays: the "usage of underlay information" half of the survey.

Subpackages:

- :mod:`~repro.overlay.gnutella` — unstructured flooding overlay with
  oracle-biased neighbor selection (Figures 5/6, the [1] experiments);
- :mod:`~repro.overlay.kademlia` — structured DHT with proximity neighbor
  selection (Kaune et al. [17]);
- :mod:`~repro.overlay.bittorrent` — content-distribution swarm with
  biased neighbor selection (Bindal et al. [3]) and CAT-style cost-aware
  choking [32];
- :mod:`~repro.overlay.geo` — Globase.KOM-style geolocation overlay [19]
  and POI search [2][10];
- :mod:`~repro.overlay.superpeer` — resource-aware hybrid overlay [11].
"""

from repro.overlay.base import OverlayNode
from repro.overlay.chord import ChordConfig, ChordRing, chord_id
from repro.overlay.hierarchical import HierarchicalDHT, HierarchicalLookup
from repro.overlay.streaming import (
    SchedulerPolicy,
    StreamConfig,
    StreamingSwarm,
    StreamReport,
)

__all__ = [
    "ChordConfig",
    "ChordRing",
    "HierarchicalDHT",
    "HierarchicalLookup",
    "OverlayNode",
    "SchedulerPolicy",
    "StreamConfig",
    "StreamReport",
    "StreamingSwarm",
    "chord_id",
]
