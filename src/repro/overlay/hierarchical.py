"""Plethora-style two-level locality DHT (Ferreira et al. [9]).

Plethora splits the overlay into a *global* DHT spanning everyone plus
*local* DHTs per locality domain (here: per region, the granularity an
AS-clustering of the kind TSO [31] / Brocade [36] would produce).
Content is always published globally; readers query their local DHT
first and fall back to the global one, caching what they fetched into
the local DHT so subsequent regional readers resolve locally.

Each DHT instance runs on its own message bus (separate "port"), all
over the same underlay, so traffic accounting can attribute local-plane
and global-plane bytes separately.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.errors import OverlayError
from repro.overlay.kademlia.id_space import key_for
from repro.overlay.kademlia.network import KademliaNetwork
from repro.overlay.kademlia.node import KademliaConfig, LookupResult
from repro.rng import SeedLike, ensure_rng, spawn
from repro.sim.engine import Simulation
from repro.sim.messages import MessageBus
from repro.underlay.network import Underlay
from repro.underlay.traffic import TrafficAccountant


@dataclass
class HierarchicalLookup:
    """Outcome of a two-level lookup."""

    key: int
    origin: int
    resolved_locally: Optional[bool] = None
    values: set[int] = field(default_factory=set)
    started_at: float = 0.0
    finished_at: float = 0.0
    done: bool = False

    @property
    def latency_ms(self) -> float:
        return self.finished_at - self.started_at


class HierarchicalDHT:
    """Global Kademlia + one local Kademlia per region, with read-through
    caching from global into local."""

    def __init__(
        self,
        underlay: Underlay,
        sim: Simulation,
        *,
        config: KademliaConfig | None = None,
        region_of: Optional[Callable[[int], int]] = None,
        rng: SeedLike = None,
    ) -> None:
        self.underlay = underlay
        self.sim = sim
        self.config = config or KademliaConfig()
        self._rng = ensure_rng(rng)
        self.region_of = region_of or (
            lambda hid: max(
                underlay.topology.asys(underlay.asn_of(hid)).region, 0
            )
        )
        regions = sorted({self.region_of(h.host_id) for h in underlay.hosts})
        if len(regions) < 2:
            raise OverlayError("hierarchy needs at least two regions")
        rngs = spawn(self._rng, len(regions) + 1)
        # one bus per plane so node endpoints do not clash
        self.global_bus, self.global_traffic = self._make_bus(sim)
        self.global_dht = KademliaNetwork(
            underlay, sim, self.global_bus, config=self.config, rng=rngs[0],
            use_coordinate_estimates=False,
        )
        self.global_dht.add_all_hosts()
        self.local_bus: dict[int, MessageBus] = {}
        self.local_traffic: dict[int, TrafficAccountant] = {}
        self.local_dht: dict[int, KademliaNetwork] = {}
        for i, region in enumerate(regions):
            bus, acct = self._make_bus(sim)
            members = [
                h for h in underlay.hosts if self.region_of(h.host_id) == region
            ]
            dht = KademliaNetwork(
                underlay, sim, bus, config=self.config, rng=rngs[i + 1],
                use_coordinate_estimates=False,
            )
            dht.add_hosts(members)
            self.local_bus[region] = bus
            self.local_traffic[region] = acct
            self.local_dht[region] = dht
        self.lookups: list[HierarchicalLookup] = []

    def _make_bus(self, sim: Simulation):
        bus = MessageBus(sim, self.underlay)
        acct = TrafficAccountant(
            self.underlay.topology, self.underlay.routing, self.underlay.asn_of,
            clock=lambda: sim.now / 1000.0,
        )
        bus.add_observer(acct)
        return bus, acct

    # -- lifecycle -----------------------------------------------------------------
    def bootstrap_all(self) -> None:
        self.global_dht.bootstrap_all()
        for dht in self.local_dht.values():
            if len(dht.nodes) >= 2:
                dht.bootstrap_all()

    # -- operations -------------------------------------------------------------------
    def publish(self, owner: int, content: object) -> int:
        """Publish globally and into the owner's local plane."""
        key = key_for(content)
        self.global_dht.nodes[owner].store_value(key, owner)
        region = self.region_of(owner)
        local = self.local_dht[region]
        if owner in local.nodes:
            local.nodes[owner].store_value(key, owner)
        return key

    def lookup(self, origin: int, content: object) -> HierarchicalLookup:
        """Local-first lookup with global fallback and local caching."""
        key = key_for(content)
        record = HierarchicalLookup(
            key=key, origin=origin, started_at=self.sim.now
        )
        self.lookups.append(record)
        region = self.region_of(origin)
        local = self.local_dht[region]

        def on_global_done(res: LookupResult) -> None:
            record.resolved_locally = False
            record.values = set(res.values)
            record.finished_at = self.sim.now
            record.done = True
            if res.found_value and origin in local.nodes:
                # read-through cache: future regional readers stay local
                local.nodes[origin].store_value(key, next(iter(res.values)))

        def on_local_done(res: LookupResult) -> None:
            if res.found_value:
                record.resolved_locally = True
                record.values = set(res.values)
                record.finished_at = self.sim.now
                record.done = True
                return
            self.global_dht.nodes[origin].iterative_find_value(
                key, on_global_done
            )

        if origin in local.nodes and len(local.nodes) >= 2:
            local.nodes[origin].iterative_find_value(key, on_local_done)
        else:
            self.global_dht.nodes[origin].iterative_find_value(
                key, on_global_done
            )
        return record

    # -- analysis -------------------------------------------------------------------------
    def local_resolution_rate(self) -> float:
        done = [l for l in self.lookups if l.done and l.values]
        if not done:
            return 0.0
        return sum(1 for l in done if l.resolved_locally) / len(done)

    def success_rate(self) -> float:
        done = [l for l in self.lookups if l.done]
        if not done:
            return 0.0
        return sum(1 for l in done if l.values) / len(done)

    def plane_traffic(self) -> dict[str, int]:
        """Bytes by plane: the Plethora claim is that repeat reads shift
        load from the global plane to cheap local planes."""
        local = sum(a.summary.total_bytes for a in self.local_traffic.values())
        return {
            "global_bytes": self.global_traffic.summary.total_bytes,
            "local_bytes": local,
            "local_transit_bytes": sum(
                a.summary.transit_bytes for a in self.local_traffic.values()
            ),
        }
