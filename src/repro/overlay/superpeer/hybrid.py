"""Hybrid super-peer overlay with resource-aware role assignment (§2.3).

"A P2P system that is aware on peer resources can benefit from an
increased performance since the overlay can be arranged in such a way
that different roles in the network are taken by appropriate nodes" —
this module is that arrangement.  Super-peers form a full mesh (small
populations) or a random regular mesh; every leaf attaches to the
super-peer with the lowest RTT that still has capacity.

Election policies:

- ``RANDOM`` — the strawman: roles assigned uniformly;
- ``CAPACITY`` — resource-aware: the top-capacity peers (by
  :meth:`~repro.underlay.hosts.PeerResources.capacity_score`, i.e. what a
  SkyEye aggregation would report) become super-peers.

Evaluation helpers compute the §5 quality metrics: search latency (leaf →
super-peer → responding super-peer → leaf), system stability (expected
super-peer session time), and super-peer bandwidth headroom.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.collection.skyeye import SkyEyeOverlay
from repro.errors import OverlayError
from repro.rng import SeedLike, ensure_rng
from repro.underlay.network import Underlay


class ElectionPolicy(enum.Enum):
    """How super-peers are chosen: uniformly at random or by capacity."""
    RANDOM = "random"
    CAPACITY = "capacity"


@dataclass
class HybridReport:
    """Evaluation summary of a super-peer overlay (latency, stability, load)."""
    n_superpeers: int
    mean_search_latency_ms: float
    mean_superpeer_session_h: float
    mean_superpeer_up_kbps: float
    max_leaf_load: int

    def as_row(self) -> dict[str, float]:
        return {
            "superpeers": self.n_superpeers,
            "search_latency_ms": self.mean_search_latency_ms,
            "sp_session_h": self.mean_superpeer_session_h,
            "sp_up_kbps": self.mean_superpeer_up_kbps,
            "max_leaf_load": self.max_leaf_load,
        }


class SuperPeerOverlay:
    """Two-tier overlay: super-peer mesh + leaves."""

    def __init__(
        self,
        underlay: Underlay,
        *,
        policy: ElectionPolicy = ElectionPolicy.CAPACITY,
        superpeer_fraction: float = 0.1,
        max_leaves_per_superpeer: int = 30,
        rng: SeedLike = None,
    ) -> None:
        if not (0 < superpeer_fraction <= 1):
            raise OverlayError("superpeer_fraction must be in (0, 1]")
        if max_leaves_per_superpeer < 1:
            raise OverlayError("max_leaves_per_superpeer must be >= 1")
        self.underlay = underlay
        self.policy = policy
        self.superpeer_fraction = superpeer_fraction
        self.max_leaves = max_leaves_per_superpeer
        self._rng = ensure_rng(rng)
        self.superpeers: list[int] = []
        self.leaf_assignment: dict[int, int] = {}  # leaf -> superpeer

    # -- election -----------------------------------------------------------------
    def elect(self, *, use_skyeye: bool = False) -> list[int]:
        """Choose super-peers.  With ``use_skyeye`` the CAPACITY policy
        consults an actual SkyEye aggregation round rather than omniscient
        host records — demonstrating the §3.4 collection path."""
        hosts = self.underlay.hosts
        n_sp = max(1, round(len(hosts) * self.superpeer_fraction))
        if self.policy is ElectionPolicy.RANDOM:
            idx = self._rng.choice(len(hosts), size=n_sp, replace=False)
            self.superpeers = sorted(hosts[int(i)].host_id for i in idx)
        elif use_skyeye:
            sky = SkyEyeOverlay(
                [h.host_id for h in hosts], branching=4, top_k=n_sp
            )
            for h in hosts:
                sky.report(h.host_id, h.resources)
            sky.run_aggregation_round()
            self.superpeers = sorted(sky.top_capacity_peers(n_sp))
        else:
            ranked = sorted(
                hosts, key=lambda h: h.resources.capacity_score(), reverse=True
            )
            self.superpeers = sorted(h.host_id for h in ranked[:n_sp])
        return self.superpeers

    # -- leaf attachment ------------------------------------------------------------
    def attach_leaves(self) -> None:
        """Each non-super-peer attaches to the nearest (RTT) super-peer
        with remaining capacity."""
        if not self.superpeers:
            raise OverlayError("call elect() before attach_leaves()")
        load: dict[int, int] = {sp: 0 for sp in self.superpeers}
        self.leaf_assignment.clear()
        for h in self.underlay.hosts:
            if h.host_id in load:
                continue
            ranked = sorted(
                self.superpeers,
                key=lambda sp: self.underlay.one_way_delay(h.host_id, sp),
            )
            for sp in ranked:
                if load[sp] < self.max_leaves:
                    self.leaf_assignment[h.host_id] = sp
                    load[sp] += 1
                    break
            else:
                raise OverlayError(
                    "super-peer capacity exhausted; raise superpeer_fraction "
                    "or max_leaves_per_superpeer"
                )

    # -- evaluation --------------------------------------------------------------------
    def search_latency_ms(self, origin_leaf: int, responder_leaf: int) -> float:
        """Latency of a search travelling leaf → SP → SP' → responder."""
        sp_a = self.leaf_assignment.get(origin_leaf, origin_leaf)
        sp_b = self.leaf_assignment.get(responder_leaf, responder_leaf)
        d = self.underlay.one_way_delay
        total = 0.0
        if sp_a != origin_leaf:
            total += d(origin_leaf, sp_a)
        if sp_b != sp_a:
            total += d(sp_a, sp_b)
        if responder_leaf != sp_b:
            total += d(sp_b, responder_leaf)
        return total

    def report(self, *, n_search_samples: int = 200) -> HybridReport:
        hosts = self.underlay.hosts
        leaves = [h.host_id for h in hosts if h.host_id not in set(self.superpeers)]
        if not leaves:
            raise OverlayError("no leaves to evaluate")
        lat = []
        for _ in range(n_search_samples):
            a = leaves[int(self._rng.integers(len(leaves)))]
            b = leaves[int(self._rng.integers(len(leaves)))]
            if a != b:
                lat.append(self.search_latency_ms(a, b))
        sp_hosts = [self.underlay.host(sp) for sp in self.superpeers]
        loads = np.zeros(len(self.superpeers), dtype=int)
        index = {sp: i for i, sp in enumerate(self.superpeers)}
        for sp in self.leaf_assignment.values():
            loads[index[sp]] += 1
        return HybridReport(
            n_superpeers=len(self.superpeers),
            mean_search_latency_ms=float(np.mean(lat)) if lat else 0.0,
            mean_superpeer_session_h=float(
                np.mean([h.resources.avg_online_hours for h in sp_hosts])
            ),
            mean_superpeer_up_kbps=float(
                np.mean([h.resources.bandwidth_up_kbps for h in sp_hosts])
            ),
            max_leaf_load=int(loads.max()) if loads.size else 0,
        )
