"""Resource-aware hybrid (super-peer) overlay (§2.3 / [11])."""

from repro.overlay.superpeer.hybrid import (
    ElectionPolicy,
    HybridReport,
    SuperPeerOverlay,
)

__all__ = ["ElectionPolicy", "HybridReport", "SuperPeerOverlay"]
