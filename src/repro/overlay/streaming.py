"""P2P live streaming with bandwidth-aware chunk scheduling
(da Silva et al. [6], the survey's peer-resources application).

A mesh-pull P2P-TV swarm: a source emits fixed-size chunks at the stream
bitrate; peers hold a sliding window of chunks, advertise what they have
and pull/push within their neighbourhood.  Each chunk interval every
peer schedules its uploads, constrained by its upstream capacity.

Two schedulers:

- ``RANDOM`` — a uniformly random (missing-chunk, neighbour) pair per
  upload slot — the underlay-oblivious baseline;
- ``BANDWIDTH_AWARE`` — the [6] strategy: push the *newest* chunks to the
  *highest-upstream* neighbours first, so capable peers become secondary
  sources quickly and the swarm's aggregate capacity is harvested; within
  equal capacity, most-deprived-first.

Measured: playback continuity (fraction of chunks present at their play
deadline), startup buffering, and source load — resource awareness should
raise continuity without extra source bandwidth.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.errors import OverlayError
from repro.rng import SeedLike, ensure_rng
from repro.underlay.network import Underlay


class SchedulerPolicy(enum.Enum):
    """Chunk-upload scheduling policy of the streaming swarm."""
    RANDOM = "random"
    BANDWIDTH_AWARE = "bandwidth-aware"


@dataclass(frozen=True)
class StreamConfig:
    """Stream and swarm parameters (bitrate, buffers, mesh degree, source budget)."""
    bitrate_kbps: float = 400.0
    chunk_ms: float = 1000.0
    buffer_chunks: int = 5        # startup buffer before playback begins
    window_chunks: int = 20       # how far behind the live edge peers fetch
    neighbors: int = 6
    #: copies of each chunk the source injects — P2P-TV works precisely
    #: because the source does NOT serve every viewer; peers redistribute
    source_copies: int = 3

    def __post_init__(self) -> None:
        if self.bitrate_kbps <= 0 or self.chunk_ms <= 0:
            raise OverlayError("bitrate and chunk duration must be positive")
        if self.buffer_chunks < 1 or self.window_chunks < self.buffer_chunks:
            raise OverlayError("window must be >= buffer >= 1")
        if self.neighbors < 1:
            raise OverlayError("need at least one neighbour")
        if self.source_copies < 1:
            raise OverlayError("source must inject at least one copy")

    @property
    def chunk_bytes(self) -> float:
        return self.bitrate_kbps * 1000.0 / 8.0 * (self.chunk_ms / 1000.0)


@dataclass
class StreamPeer:
    """Per-viewer state: chunk buffer, mesh neighbours, playback position."""
    host_id: int
    up_bps: float
    chunks: set[int] = field(default_factory=set)
    neighbors: list[int] = field(default_factory=list)
    playhead: int = -1            # last chunk consumed
    started: bool = False
    startup_interval: Optional[int] = None
    played: int = 0
    missed: int = 0

    @property
    def continuity(self) -> float:
        total = self.played + self.missed
        return self.played / total if total else 1.0


@dataclass
class StreamReport:
    """Outcome of a streaming run: continuity, startup delay, source load."""
    mean_continuity: float
    p10_continuity: float
    mean_startup_intervals: float
    source_chunks_served: int
    chunks_produced: int

    def as_row(self) -> dict[str, float]:
        return {
            "continuity": self.mean_continuity,
            "p10_continuity": self.p10_continuity,
            "startup": self.mean_startup_intervals,
            "source_load": self.source_chunks_served,
        }


class StreamingSwarm:
    """Time-stepped (one step per chunk interval) mesh-pull streaming."""

    def __init__(
        self,
        underlay: Underlay,
        source_id: int,
        viewer_ids: Sequence[int],
        *,
        config: StreamConfig | None = None,
        policy: SchedulerPolicy = SchedulerPolicy.RANDOM,
        rng: SeedLike = None,
    ) -> None:
        self.underlay = underlay
        self.config = config or StreamConfig()
        self.policy = policy
        self._rng = ensure_rng(rng)
        if source_id in set(viewer_ids):
            raise OverlayError("source cannot also be a viewer")
        self.source_id = source_id
        src_host = underlay.host(source_id)
        self.source_up_bps = src_host.resources.bandwidth_up_kbps * 1000.0 / 8.0
        self.peers: dict[int, StreamPeer] = {}
        for vid in viewer_ids:
            h = underlay.host(vid)
            self.peers[vid] = StreamPeer(
                host_id=vid, up_bps=h.resources.bandwidth_up_kbps * 1000.0 / 8.0
            )
        if not self.peers:
            raise OverlayError("need at least one viewer")
        self._build_mesh()
        self.interval = 0
        self.live_edge = -1
        self.source_chunks_served = 0

    def _build_mesh(self) -> None:
        ids = list(self.peers)
        k = min(self.config.neighbors, len(ids) - 1)
        for vid, peer in self.peers.items():
            others = [x for x in ids if x != vid]
            if k > 0:
                picks = self._rng.choice(len(others), size=k, replace=False)
                peer.neighbors = [others[int(i)] for i in picks]
        # symmetrise
        for vid, peer in self.peers.items():
            for nb in peer.neighbors:
                if vid not in self.peers[nb].neighbors:
                    self.peers[nb].neighbors.append(vid)

    # -- one chunk interval -------------------------------------------------------
    def _upload_slots(self, up_bps: float) -> int:
        per_interval = up_bps * (self.config.chunk_ms / 1000.0)
        return int(per_interval // self.config.chunk_bytes)

    def _source_push(self) -> None:
        """The source injects a few copies of the newest chunk, bounded by
        both its configured copy budget and its actual upstream.  The
        *peer* scheduler policy decides how peers redistribute; the source
        itself always seeds the strongest peers first under
        BANDWIDTH_AWARE and random peers otherwise."""
        chunk = self.live_edge
        slots = min(
            max(self._upload_slots(self.source_up_bps), 1),
            self.config.source_copies,
        )
        wanting = [p for p in self.peers.values() if chunk not in p.chunks]
        if self.policy is SchedulerPolicy.BANDWIDTH_AWARE:
            wanting.sort(key=lambda p: p.up_bps, reverse=True)
        else:
            self._rng.shuffle(wanting)
        for p in wanting[:slots]:
            p.chunks.add(chunk)
            self.source_chunks_served += 1

    def _peer_uploads(self) -> None:
        window_lo = max(self.live_edge - self.config.window_chunks, 0)
        order = list(self.peers.values())
        self._rng.shuffle(order)
        for peer in order:
            slots = self._upload_slots(peer.up_bps)
            if slots <= 0 or not peer.neighbors:
                continue
            candidates: list[tuple[int, int]] = []  # (neighbor, chunk)
            for nb in peer.neighbors:
                other = self.peers[nb]
                missing = [
                    c
                    for c in peer.chunks
                    if c >= max(window_lo, other.playhead + 1)
                    and c not in other.chunks
                ]
                candidates.extend((nb, c) for c in missing)
            if not candidates:
                continue
            if self.policy is SchedulerPolicy.BANDWIDTH_AWARE:
                candidates.sort(
                    key=lambda t: (
                        -self.peers[t[0]].up_bps,   # strongest neighbour first
                        -t[1],                      # newest chunk first
                    )
                )
            else:
                self._rng.shuffle(candidates)
            sent_to: set[tuple[int, int]] = set()
            sent = 0
            for nb, chunk in candidates:
                if sent >= slots:
                    break
                if (nb, chunk) in sent_to or chunk in self.peers[nb].chunks:
                    continue
                self.peers[nb].chunks.add(chunk)
                sent_to.add((nb, chunk))
                sent += 1

    def _playback(self) -> None:
        for peer in self.peers.values():
            if not peer.started:
                buffered = sum(
                    1 for c in range(peer.playhead + 1, self.live_edge + 1)
                    if c in peer.chunks
                )
                if buffered >= self.config.buffer_chunks:
                    peer.started = True
                    peer.startup_interval = self.interval
                continue
            target = peer.playhead + 1
            if target > self.live_edge:
                continue  # caught up with the live edge
            if target in peer.chunks:
                peer.played += 1
            else:
                peer.missed += 1
            peer.playhead = target
            # drop chunks far behind the playhead (bounded memory)
            horizon = peer.playhead - 2 * self.config.window_chunks
            if horizon > 0:
                peer.chunks = {c for c in peer.chunks if c >= horizon}

    def step(self) -> None:
        self.live_edge += 1
        self._source_push()
        self._peer_uploads()
        self._playback()
        self.interval += 1

    def run(self, intervals: int = 120) -> StreamReport:
        if intervals < 1:
            raise OverlayError("need at least one interval")
        for _ in range(intervals):
            self.step()
        conts = np.array([p.continuity for p in self.peers.values()])
        startups = [
            p.startup_interval for p in self.peers.values()
            if p.startup_interval is not None
        ]
        return StreamReport(
            mean_continuity=float(conts.mean()),
            p10_continuity=float(np.percentile(conts, 10)),
            mean_startup_intervals=float(np.mean(startups)) if startups else float("inf"),
            source_chunks_served=self.source_chunks_served,
            chunks_produced=self.live_edge + 1,
        )
