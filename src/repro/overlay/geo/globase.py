"""Globase.KOM-style geolocation overlay (Kovacevic et al. [19]).

A hierarchical tree-based P2P system for *fully retrievable* location-based
search: peers are organised into geographic zones (an adaptive quadtree),
each zone run by a supernode; queries descend the tree pruning zones that
cannot contain results.  Peers obtain their own position from one of the
geolocation sources of §3.3 (GPS or IP-to-location mapping), so overlay
placement quality inherits the collection technique's accuracy — which is
exactly the coupling the survey highlights.

The overlay tracks per-operation hop counts and converts them into delay
estimates using the underlay's latency between the supernodes actually
traversed, giving the Table 2 "Geolocation" column its measured values.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

import numpy as np

from repro.errors import OverlayError
from repro.overlay.geo.zones import Rect, ZoneNode, ZoneTree
from repro.underlay.geometry import Position
from repro.underlay.network import Underlay


@dataclass
class GeoOpStats:
    """Hop/visit accounting across overlay operations."""

    joins: int = 0
    join_hops: int = 0
    area_queries: int = 0
    area_nodes_visited: int = 0
    nn_queries: int = 0
    nn_nodes_visited: int = 0

    @property
    def mean_join_hops(self) -> float:
        return self.join_hops / self.joins if self.joins else 0.0

    @property
    def mean_area_visits(self) -> float:
        return self.area_nodes_visited / self.area_queries if self.area_queries else 0.0


class GlobaseOverlay:
    """Quadtree-of-zones overlay with location-constrained search."""

    def __init__(
        self,
        underlay: Underlay,
        *,
        zone_capacity: int = 8,
        position_source: Optional[Callable[[int], Optional[Position]]] = None,
        world: Optional[Rect] = None,
    ) -> None:
        self.underlay = underlay
        if world is None:
            # generous bounding box around the generated plane
            world = Rect(-1e4, -1e4, 2e4, 2e4)
        self.tree = ZoneTree(world, capacity=zone_capacity)
        #: where the overlay believes each peer is (possibly from a noisy
        #: geolocation source); true positions stay in the underlay.
        self.position_source = position_source or (
            lambda hid: self.underlay.host(hid).position
        )
        self.believed: dict[int, Position] = {}
        self.stats = GeoOpStats()

    # -- membership -----------------------------------------------------------
    def join(self, host_id: int) -> bool:
        """Insert a peer at its believed position.  Returns False when the
        geolocation source has no fix for the peer (it cannot join a
        geo-overlay without a position)."""
        pos = self.position_source(host_id)
        if pos is None:
            return False
        hops = self.tree.insert(host_id, pos)
        self.believed[host_id] = pos
        self.stats.joins += 1
        self.stats.join_hops += hops
        return True

    def leave(self, host_id: int) -> None:
        self.tree.remove(host_id)
        self.believed.pop(host_id, None)

    def join_all(self, host_ids: Optional[list[int]] = None) -> int:
        """Join many peers; returns how many succeeded."""
        ids = host_ids if host_ids is not None else self.underlay.host_ids()
        return sum(1 for h in ids if self.join(h))

    # -- queries ----------------------------------------------------------------
    def peers_in_area(self, area: Rect) -> list[int]:
        found, visited = self.tree.search_area(area)
        self.stats.area_queries += 1
        self.stats.area_nodes_visited += visited
        return found

    def nearest_peers(self, pos: Position, k: int = 1) -> list[int]:
        found, visited = self.tree.nearest(pos, k)
        self.stats.nn_queries += 1
        self.stats.nn_nodes_visited += visited
        return found

    # -- evaluation helpers ------------------------------------------------------
    def recall_of_area_query(self, area: Rect) -> float:
        """Fraction of peers *truly* inside the area that the overlay
        returns — degraded by geolocation error, the §3.3 accuracy story."""
        truly = {
            h.host_id
            for h in self.underlay.hosts
            if h.host_id in self.believed and area.contains(h.position)
        }
        if not truly:
            return 1.0
        got = set(self.peers_in_area(area))
        return len(got & truly) / len(truly)

    def query_delay_ms(self, origin: int, area: Rect) -> float:
        """Latency estimate of an area query issued by ``origin``: root
        supernode first, then one hop per traversed level's supernode."""
        path_nodes: list[ZoneNode] = []
        stack = [self.tree.root]
        while stack:
            node = stack.pop()
            if not node.rect.intersects(area):
                continue
            path_nodes.append(node)
            if not node.is_leaf:
                assert node.children is not None
                stack.extend(node.children)
        delay = 0.0
        prev = origin
        for node in path_nodes:
            sn = node.supernode()
            if sn is None or sn == prev:
                continue
            delay += self.underlay.one_way_delay(prev, sn)
            prev = sn
        return delay

    def zone_count(self) -> int:
        return sum(1 for _ in self.tree.leaves())

    def geographic_neighbor_coherence(self) -> float:
        """Mean geographic distance (km) between zone co-members — low
        values mean the overlay clusters geographically close peers, the
        property §2.4 asks of geolocation-aware overlays."""
        dists: list[float] = []
        for leaf in self.tree.leaves():
            ids = list(leaf.members)
            for i, a in enumerate(ids):
                pa = self.underlay.host(a).position
                for b in ids[i + 1 :]:
                    dists.append(pa.distance_to(self.underlay.host(b).position))
        return float(np.mean(dists)) if dists else 0.0
