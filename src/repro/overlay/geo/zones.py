"""Geographic zones: rectangles and an adaptive quadtree.

Globase.KOM organises peers by geographic position into zones managed by
supernodes; zones split when they become crowded.  :class:`ZoneTree` is
that structure: an adaptive quadtree over the projected plane whose leaves
hold at most ``capacity`` peers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional

from repro.errors import OverlayError
from repro.underlay.geometry import Position


@dataclass(frozen=True)
class Rect:
    """Axis-aligned rectangle [x0, x1) × [y0, y1)."""

    x0: float
    y0: float
    x1: float
    y1: float

    def __post_init__(self) -> None:
        if self.x1 <= self.x0 or self.y1 <= self.y0:
            raise OverlayError(f"degenerate rectangle {self}")

    def contains(self, pos: Position) -> bool:
        return self.x0 <= pos.x < self.x1 and self.y0 <= pos.y < self.y1

    def intersects(self, other: "Rect") -> bool:
        return not (
            other.x1 <= self.x0
            or self.x1 <= other.x0
            or other.y1 <= self.y0
            or self.y1 <= other.y0
        )

    def quadrants(self) -> tuple["Rect", "Rect", "Rect", "Rect"]:
        mx = (self.x0 + self.x1) / 2.0
        my = (self.y0 + self.y1) / 2.0
        return (
            Rect(self.x0, self.y0, mx, my),
            Rect(mx, self.y0, self.x1, my),
            Rect(self.x0, my, mx, self.y1),
            Rect(mx, my, self.x1, self.y1),
        )

    def center(self) -> Position:
        return Position((self.x0 + self.x1) / 2.0, (self.y0 + self.y1) / 2.0)

    def min_distance_to(self, pos: Position) -> float:
        """Distance from ``pos`` to the closest point of the rectangle."""
        dx = max(self.x0 - pos.x, 0.0, pos.x - self.x1)
        dy = max(self.y0 - pos.y, 0.0, pos.y - self.y1)
        return float((dx * dx + dy * dy) ** 0.5)


class ZoneNode:
    """One quadtree node: a leaf with members, or an inner node with four
    children.  The supernode of a leaf is its longest-standing member."""

    __slots__ = ("rect", "children", "members", "depth")

    def __init__(self, rect: Rect, depth: int = 0) -> None:
        self.rect = rect
        self.children: Optional[list["ZoneNode"]] = None
        self.members: dict[int, Position] = {}
        self.depth = depth

    @property
    def is_leaf(self) -> bool:
        return self.children is None

    def supernode(self) -> Optional[int]:
        return next(iter(self.members), None)


class ZoneTree:
    """Adaptive quadtree holding peer positions."""

    def __init__(self, world: Rect, *, capacity: int = 8, max_depth: int = 16) -> None:
        if capacity < 1:
            raise OverlayError("zone capacity must be >= 1")
        if max_depth < 1:
            raise OverlayError("max_depth must be >= 1")
        self.world = world
        self.capacity = capacity
        self.max_depth = max_depth
        self.root = ZoneNode(world)
        self._where: dict[int, ZoneNode] = {}

    def __len__(self) -> int:
        return len(self._where)

    def __contains__(self, peer_id: int) -> bool:
        return peer_id in self._where

    # -- modification ------------------------------------------------------------
    def insert(self, peer_id: int, pos: Position) -> int:
        """Insert a peer; returns the number of tree levels descended
        (the routing-hop count of the join)."""
        if peer_id in self._where:
            raise OverlayError(f"peer {peer_id} already in the tree")
        if not self.world.contains(pos):
            raise OverlayError(f"position {pos} outside the world {self.world}")
        node, hops = self._descend(self.root, pos)
        node.members[peer_id] = pos
        self._where[peer_id] = node
        if len(node.members) > self.capacity and node.depth < self.max_depth:
            self._split(node)
        return hops

    def remove(self, peer_id: int) -> None:
        node = self._where.pop(peer_id, None)
        if node is None:
            raise OverlayError(f"peer {peer_id} not in the tree")
        del node.members[peer_id]

    def _descend(self, node: ZoneNode, pos: Position) -> tuple[ZoneNode, int]:
        hops = 0
        while not node.is_leaf:
            assert node.children is not None
            node = next(c for c in node.children if c.rect.contains(pos))
            hops += 1
        return node, hops

    def _split(self, node: ZoneNode) -> None:
        node.children = [
            ZoneNode(r, node.depth + 1) for r in node.rect.quadrants()
        ]
        members = node.members
        node.members = {}
        for pid, pos in members.items():
            child = next(c for c in node.children if c.rect.contains(pos))
            child.members[pid] = pos
            self._where[pid] = child
        for child in node.children:
            if len(child.members) > self.capacity and child.depth < self.max_depth:
                self._split(child)

    # -- queries ---------------------------------------------------------------------
    def leaf_of(self, peer_id: int) -> ZoneNode:
        node = self._where.get(peer_id)
        if node is None:
            raise OverlayError(f"peer {peer_id} not in the tree")
        return node

    def leaves(self) -> Iterator[ZoneNode]:
        stack = [self.root]
        while stack:
            n = stack.pop()
            if n.is_leaf:
                yield n
            else:
                assert n.children is not None
                stack.extend(n.children)

    def search_area(self, area: Rect) -> tuple[list[int], int]:
        """All peers inside ``area`` plus the number of tree nodes visited
        (the message cost of the query)."""
        found: list[int] = []
        visited = 0
        stack = [self.root]
        while stack:
            node = stack.pop()
            if not node.rect.intersects(area):
                continue
            visited += 1
            if node.is_leaf:
                found.extend(
                    pid for pid, pos in node.members.items() if area.contains(pos)
                )
            else:
                assert node.children is not None
                stack.extend(node.children)
        return sorted(found), visited

    def nearest(self, pos: Position, k: int = 1) -> tuple[list[int], int]:
        """The ``k`` peers nearest to ``pos`` (best-first search) and the
        node-visit count."""
        import heapq

        if k < 1:
            raise OverlayError("k must be >= 1")
        visited = 0
        cand: list[tuple[float, int]] = []
        heap: list[tuple[float, int, ZoneNode]] = [(0.0, 0, self.root)]
        tiebreak = 1
        while heap:
            bound, _tb, node = heapq.heappop(heap)
            if len(cand) >= k and bound > cand[-1][0]:
                break
            visited += 1
            if node.is_leaf:
                for pid, p in node.members.items():
                    d = p.distance_to(pos)
                    cand.append((d, pid))
                cand.sort()
                del cand[k:]
            else:
                assert node.children is not None
                for c in node.children:
                    heapq.heappush(
                        heap, (c.rect.min_distance_to(pos), tiebreak, c)
                    )
                    tiebreak += 1
        return [pid for _d, pid in cand], visited
