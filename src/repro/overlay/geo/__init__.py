"""Geolocation-aware overlay: zones, Globase-style tree, POI search."""

from repro.overlay.geo.globase import GeoOpStats, GlobaseOverlay
from repro.overlay.geo.queries import (
    POIDirectory,
    PointOfInterest,
    emergency_dispatch,
)
from repro.overlay.geo.zones import Rect, ZoneNode, ZoneTree

__all__ = [
    "GeoOpStats",
    "GlobaseOverlay",
    "POIDirectory",
    "PointOfInterest",
    "Rect",
    "ZoneNode",
    "ZoneTree",
    "emergency_dispatch",
]
