"""Location-constrained queries and point-of-interest search (GeoPeer [2],
Globase.KOM [19], §2.4).

A :class:`POIDirectory` registers peers as points of interest with
categories ("restaurant", "pharmacy", emergency services [10], ...) and
answers the §2.4 use cases: *what is near me* and *who serves this area*,
both implemented on top of a :class:`GlobaseOverlay`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.errors import OverlayError
from repro.overlay.geo.globase import GlobaseOverlay
from repro.overlay.geo.zones import Rect
from repro.underlay.geometry import Position


@dataclass(frozen=True)
class PointOfInterest:
    """A registered point of interest: hosting peer, category, display name."""
    host_id: int
    category: str
    name: str = ""


class POIDirectory:
    """Category index layered over a geo overlay."""

    def __init__(self, overlay: GlobaseOverlay) -> None:
        self.overlay = overlay
        self._by_host: dict[int, list[PointOfInterest]] = {}
        self._categories: set[str] = set()

    def register(self, poi: PointOfInterest) -> None:
        if poi.host_id not in self.overlay.believed:
            raise OverlayError(
                f"host {poi.host_id} must join the overlay before registering a POI"
            )
        self._by_host.setdefault(poi.host_id, []).append(poi)
        self._categories.add(poi.category)

    def categories(self) -> set[str]:
        return set(self._categories)

    def find_in_area(self, area: Rect, category: Optional[str] = None) -> list[PointOfInterest]:
        """All POIs inside ``area`` (optionally of one category)."""
        hosts = self.overlay.peers_in_area(area)
        out: list[PointOfInterest] = []
        for h in hosts:
            for poi in self._by_host.get(h, ()):
                if category is None or poi.category == category:
                    out.append(poi)
        return out

    def find_nearest(
        self, pos: Position, category: str, *, k: int = 1, search_k: int = 32
    ) -> list[PointOfInterest]:
        """The ``k`` nearest POIs of a category: nearest-peer search with a
        widening candidate set (``search_k`` peers considered)."""
        if k < 1:
            raise OverlayError("k must be >= 1")
        hosts = self.overlay.nearest_peers(pos, k=search_k)
        matches: list[tuple[float, PointOfInterest]] = []
        for h in hosts:
            for poi in self._by_host.get(h, ()):
                if poi.category == category:
                    d = self.overlay.believed[h].distance_to(pos)
                    matches.append((d, poi))
        matches.sort(key=lambda t: t[0])
        return [poi for _d, poi in matches[:k]]


def emergency_dispatch(
    directory: POIDirectory, caller_pos: Position, *, k: int = 3
) -> list[PointOfInterest]:
    """The EchoP2P use case [10]: find the k nearest emergency responders
    to a caller's position."""
    return directory.find_nearest(caller_pos, "emergency", k=k)
