"""Chord ring with proximity route selection (the eCAN/TSO class [30][31]).

A second structured-overlay family beside Kademlia: peers sit on a 2^m
identifier ring, each keeping a successor list and a finger table; a
lookup walks greedily through closest-preceding fingers.  The ring is
built from a stable membership snapshot (the join/stabilise dance is
Kademlia's job in this repo; Chord here isolates *routing* behaviour),
but every lookup hop is a real RPC on the message bus, so hop counts,
latencies and AS crossings are measured rather than computed.

The underlay-aware variant is **proximity route selection** (PRS), the
technique eCAN [30] and topology-aware hierarchies [31] apply to
structured overlays: among the fingers that make sufficient progress
toward the target, prefer the lowest-RTT one.  Plain Chord takes the
numerically closest-preceding finger regardless of where it lives.
"""

from __future__ import annotations

import hashlib
import itertools
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

import numpy as np

from repro.errors import OverlayError
from repro.overlay.base import OverlayNode
from repro.rng import SeedLike, ensure_rng
from repro.sim.engine import Simulation
from repro.sim.messages import Message, MessageBus
from repro.underlay.hosts import Host
from repro.underlay.network import Underlay

M_BITS = 32
RING = 1 << M_BITS


def chord_id(value: object) -> int:
    """Hash anything onto the ring."""
    digest = hashlib.sha1(repr(value).encode()).digest()
    return int.from_bytes(digest[:4], "big") % RING


def in_interval(x: int, a: int, b: int) -> bool:
    """x ∈ (a, b] on the ring (half-open, wrapping)."""
    if a < b:
        return a < x <= b
    return x > a or x <= b


@dataclass(frozen=True)
class ChordConfig:
    """Chord parameters: successor-list length, finger count, proximity modes."""
    successors: int = 4
    fingers: int = M_BITS
    #: PRS — proximity route selection: at lookup time, among fingers
    #: with comparable remaining distance, hop to the lowest-RTT one
    proximity_routing: bool = False
    #: PNS — proximity neighbor selection: at build time, fill each
    #: finger slot [n+2^k, n+2^{k+1}) with the lowest-RTT node of that
    #: interval instead of its first node.  The literature's winner:
    #: routing stays greedy (no hop inflation) but every hop gets cheap.
    proximity_fingers: bool = False
    #: PRS window: consider fingers whose remaining ring distance is at
    #: most this multiple of the best finger's (2.0 ≈ "costs at most one
    #: extra expected hop"); tighter windows trade less hop inflation for
    #: smaller per-hop savings
    prs_window: float = 2.0

    def __post_init__(self) -> None:
        if self.successors < 1:
            raise OverlayError("need at least one successor")
        if not (1 <= self.fingers <= M_BITS):
            raise OverlayError(f"fingers must be within 1..{M_BITS}")
        if self.prs_window < 1.0:
            raise OverlayError("prs_window must be >= 1")


@dataclass
class ChordLookup:
    """One lookup's record: key, path, hop count, latency, resolved owner."""
    key: int
    origin: int
    hops: int = 0
    path: list[int] = field(default_factory=list)
    owner: Optional[int] = None
    started_at: float = 0.0
    finished_at: float = 0.0
    done: bool = False

    @property
    def latency_ms(self) -> float:
        return self.finished_at - self.started_at


class ChordNode(OverlayNode):
    """A ring participant: successor list, finger table, per-hop RPC handling."""
    def __init__(
        self,
        host: Host,
        sim: Simulation,
        bus: MessageBus,
        ring_id: int,
        network: "ChordRing",
    ) -> None:
        super().__init__(host, sim, bus)
        self.ring_id = ring_id
        self.network = network
        self.successors: list[int] = []   # host ids, clockwise
        self.fingers: list[tuple[int, int]] = []  # (ring_id, host_id)

    # -- routing table -------------------------------------------------------
    def _progress(self, from_id: int, key: int) -> int:
        """Clockwise distance covered toward key when stepping to from_id."""
        return (key - from_id) % RING

    def next_hop(self, key: int) -> Optional[int]:
        """Closest-preceding finger toward ``key`` — or, under PRS, the
        lowest-RTT finger among those making comparable progress."""
        if not self.fingers:
            return self.successors[0] if self.successors else None
        candidates = [
            (rid, hid)
            for rid, hid in self.fingers
            if in_interval(rid, self.ring_id, (key - 1) % RING)
        ]
        if not candidates:
            return None
        # remaining distance after stepping to each candidate (smaller=better)
        remaining = [(self._progress(rid, key), rid, hid) for rid, hid in candidates]
        remaining.sort()
        if not self.network.config.proximity_routing:
            return remaining[0][2]
        best_remaining = remaining[0][0]
        window = [
            (rem, hid) for rem, _rid, hid in remaining
            if rem <= self.network.config.prs_window * max(best_remaining, 1)
        ]
        # among comparable-progress fingers, take the cheapest hop
        return min(
            window,
            key=lambda t: self.network.rtt_estimate(self.host_id, t[1]),
        )[1]

    def owns(self, key: int) -> bool:
        """True when ``key`` falls in (predecessor, self] on the ring."""
        pred = self.network.predecessor_of(self.host_id)
        if pred is None:
            return True
        return in_interval(key, self.network.nodes[pred].ring_id, self.ring_id)

    # -- message handling -----------------------------------------------------
    def on_chord_lookup(self, msg: Message) -> None:
        payload = dict(msg.payload)
        key = payload["key"]
        payload["hops"] = payload["hops"] + 1
        payload["path"] = payload["path"] + [self.host_id]
        if self.owns(key):
            self.send(payload["origin"], "CHORD_RESULT", payload, 64)
            return
        nxt = self.next_hop(key)
        if nxt is None or nxt == self.host_id:
            nxt = self.successors[0] if self.successors else None
        if nxt is None:
            self.send(payload["origin"], "CHORD_RESULT", payload, 64)
            return
        self.send(nxt, "CHORD_LOOKUP", payload, 72)

    def on_chord_result(self, msg: Message) -> None:
        self.network.finish_lookup(msg.payload, owner=msg.src)


class ChordRing:
    """A Chord overlay over a stable membership snapshot."""

    def __init__(
        self,
        underlay: Underlay,
        sim: Simulation,
        bus: MessageBus,
        *,
        config: ChordConfig | None = None,
        rng: SeedLike = None,
    ) -> None:
        self.underlay = underlay
        self.sim = sim
        self.bus = bus
        self.config = config or ChordConfig()
        self._rng = ensure_rng(rng)
        self.nodes: dict[int, ChordNode] = {}
        self._ring_order: list[int] = []     # host ids sorted by ring id
        self.lookups: dict[int, ChordLookup] = {}
        self._lookup_seq = itertools.count()
        self._rtt_cache: dict[tuple[int, int], float] = {}

    # -- construction ----------------------------------------------------------
    def build(self, hosts: Optional[Sequence[Host]] = None) -> None:
        hosts = list(hosts) if hosts is not None else self.underlay.hosts
        if len(hosts) < 2:
            raise OverlayError("chord ring needs at least two nodes")
        used: set[int] = set()
        for h in hosts:
            rid = chord_id(("node", h.host_id))
            while rid in used:  # vanishing collision chance at 2^32
                rid = (rid + 1) % RING
            used.add(rid)
            node = ChordNode(h, self.sim, self.bus, rid, self)
            node.go_online()
            self.nodes[h.host_id] = node
        self._ring_order = sorted(self.nodes, key=lambda hid: self.nodes[hid].ring_id)
        n = len(self._ring_order)
        pos_of = {hid: i for i, hid in enumerate(self._ring_order)}
        for hid, node in self.nodes.items():
            i = pos_of[hid]
            node.successors = [
                self._ring_order[(i + k + 1) % n]
                for k in range(min(self.config.successors, n - 1))
            ]
            node.fingers = []
            for k in range(self.config.fingers):
                lo = (node.ring_id + (1 << k)) % RING
                hi = (node.ring_id + (1 << (k + 1)) - 1) % RING if k + 1 <= M_BITS else lo
                owner = self._owner_of(lo)
                if owner == hid:
                    continue
                if self.config.proximity_fingers:
                    # PNS: any node of the interval [lo, hi] keeps greedy
                    # routing correct; take the cheapest by RTT
                    interval_nodes = self._nodes_in_interval(lo, hi)
                    if interval_nodes:
                        owner = min(
                            interval_nodes,
                            key=lambda o: self.rtt_estimate(hid, o),
                        )
                entry = (self.nodes[owner].ring_id, owner)
                if entry not in node.fingers:
                    node.fingers.append(entry)

    def _owner_of(self, key: int) -> int:
        """Host id of the ring successor of ``key`` (global snapshot)."""
        rids = [self.nodes[hid].ring_id for hid in self._ring_order]
        idx = int(np.searchsorted(rids, key))
        return self._ring_order[idx % len(self._ring_order)]

    def _nodes_in_interval(self, lo: int, hi: int) -> list[int]:
        """Host ids whose ring ids fall in [lo, hi] (wrapping)."""
        out = []
        for hid in self._ring_order:
            rid = self.nodes[hid].ring_id
            if lo <= hi:
                if lo <= rid <= hi:
                    out.append(hid)
            elif rid >= lo or rid <= hi:
                out.append(hid)
        return out

    def predecessor_of(self, host_id: int) -> Optional[int]:
        i = self._ring_order.index(host_id)
        return self._ring_order[i - 1]

    def rtt_estimate(self, a: int, b: int) -> float:
        key = (min(a, b), max(a, b))
        if key not in self._rtt_cache:
            self._rtt_cache[key] = 2.0 * self.underlay.one_way_delay(a, b)
        return self._rtt_cache[key]

    # -- lookups ----------------------------------------------------------------
    def lookup(self, origin: int, content: object) -> ChordLookup:
        key = chord_id(content)
        lookup_id = next(self._lookup_seq)
        record = ChordLookup(key=key, origin=origin, started_at=self.sim.now)
        self.lookups[lookup_id] = record
        node = self.nodes[origin]
        payload = {
            "lookup_id": lookup_id,
            "key": key,
            "origin": origin,
            "hops": 0,
            "path": [],
        }
        if node.owns(key):
            record.owner = origin
            record.finished_at = self.sim.now
            record.done = True
            return record
        nxt = node.next_hop(key)
        if nxt is None:
            nxt = node.successors[0]
        node.send(nxt, "CHORD_LOOKUP", payload, 72)
        return record

    def finish_lookup(self, payload: dict, owner: int) -> None:
        record = self.lookups.get(payload["lookup_id"])
        if record is None or record.done:
            return
        record.hops = payload["hops"]
        record.path = payload["path"]
        record.owner = owner
        record.finished_at = self.sim.now
        record.done = True

    # -- analysis ------------------------------------------------------------------
    def correct_owner(self, content: object) -> int:
        return self._owner_of(chord_id(content))

    def lookup_stats(self) -> dict[str, float]:
        done = [l for l in self.lookups.values() if l.done]
        if not done:
            raise OverlayError("no completed lookups")
        return {
            "n": len(done),
            "mean_hops": float(np.mean([l.hops for l in done])),
            "mean_latency_ms": float(np.mean([l.latency_ms for l in done])),
            "p95_latency_ms": float(np.percentile([l.latency_ms for l in done], 95)),
        }
