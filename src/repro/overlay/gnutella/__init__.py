"""Gnutella 0.6 overlay with oracle-biased neighbor selection ([1], §4)."""

from repro.overlay.gnutella.flood import FloodKernel
from repro.overlay.gnutella.hostcache import HostCache, HostCacheReference
from repro.overlay.gnutella.messages import (
    ConnectReply,
    ConnectRequest,
    Ping,
    Pong,
    Query,
    QueryHit,
)
from repro.overlay.gnutella.network import (
    GnutellaNetwork,
    NeighborPolicy,
    SearchRecord,
)
from repro.overlay.gnutella.node import LEAF, ULTRAPEER, GnutellaConfig, GnutellaNode

__all__ = [
    "ConnectReply",
    "ConnectRequest",
    "FloodKernel",
    "GnutellaConfig",
    "GnutellaNetwork",
    "GnutellaNode",
    "HostCache",
    "HostCacheReference",
    "LEAF",
    "NeighborPolicy",
    "Ping",
    "Pong",
    "Query",
    "QueryHit",
    "SearchRecord",
    "ULTRAPEER",
]
