"""Gnutella network orchestration and neighbor-selection policies.

:class:`GnutellaNetwork` owns the node population, the bootstrap procedure
of the testlab in [1] (hostcaches filled with a random subset of the
network's addresses), the neighbor-selection policy, the query workload
driver, and the *file-exchange stage* — the HTTP download that happens
outside the Gnutella mesh, where [1] showed that consulting the oracle a
second time is what really localises traffic.

Policies (§4 / Figure 6):

- ``UNBIASED`` — connect to a random permutation of the hostcache.
- ``BIASED`` — send the hostcache (truncated to ``oracle_list_limit``,
  the "cache 100 / cache 1000" parameter) to the ISP oracle and connect
  to the top-ranked entries.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

import networkx as nx
import numpy as np

from repro.collection.oracle import ISPOracle
from repro.core.peerstate import PeerState
from repro.errors import OverlayError
from repro.obs import active_registry
from repro.obs.registry import Counter, Histogram, MetricRegistry
from repro.overlay.gnutella.node import (
    LEAF,
    ULTRAPEER,
    GnutellaConfig,
    GnutellaNode,
)
from repro.rng import SeedLike, ensure_rng
from repro.sim.engine import Simulation
from repro.sim.messages import MessageBus
from repro.sim.queryplane import QUERY_AUTO_NODE_THRESHOLD, SeenFilter
from repro.sim.shard import ShardedScheduler, sharded_scheduling_enabled
from repro.underlay.hosts import Host
from repro.underlay.network import Underlay


class NeighborPolicy(enum.Enum):
    """Neighbor-selection policy: uniform random or oracle-biased."""
    UNBIASED = "unbiased"
    BIASED = "biased"


@dataclass
class SearchRecord:
    """Bookkeeping for one search: origin, keyword, hits, chosen source.

    ``issued_at``/``first_hit_at`` are sim-clock stamps (ms); the first
    hit's latency is what the service-level SLO drivers measure.
    """
    guid: int
    origin: int
    keyword: int
    hits: list[int] = field(default_factory=list)
    downloaded_from: Optional[int] = None
    download_done: bool = False
    issued_at: float = 0.0
    first_hit_at: float = math.nan

    @property
    def first_hit_latency_ms(self) -> float:
        """Issue-to-first-hit latency, ``nan`` while unanswered."""
        return self.first_hit_at - self.issued_at


class GnutellaNetwork:
    """A population of Gnutella servents over one underlay."""

    def __init__(
        self,
        underlay: Underlay,
        sim: Simulation,
        bus: MessageBus,
        *,
        config: GnutellaConfig | None = None,
        policy: NeighborPolicy = NeighborPolicy.UNBIASED,
        oracle: Optional[ISPOracle] = None,
        oracle_list_limit: Optional[int] = None,
        biased_download: bool = False,
        external_quota: int = 1,
        rng: SeedLike = None,
        use_peerstate: bool = True,
        query_backend: str = "auto",
        search_retention: Optional[int] = None,
    ) -> None:
        if policy is NeighborPolicy.BIASED and oracle is None:
            raise OverlayError("BIASED policy requires an oracle")
        if external_quota < 0:
            raise OverlayError("external_quota must be non-negative")
        if query_backend not in ("auto", "batch", "reference"):
            raise OverlayError(
                f"query_backend must be 'auto', 'batch' or 'reference', "
                f"got {query_backend!r}"
            )
        if search_retention is not None and search_retention < 1:
            raise OverlayError("search_retention must be >= 1")
        self.underlay = underlay
        self.sim = sim
        self.bus = bus
        self.config = config or GnutellaConfig()
        self.policy = policy
        self.oracle = oracle
        self.oracle_list_limit = oracle_list_limit
        self.biased_download = biased_download
        self.external_quota = external_quota
        self._rng = ensure_rng(rng)
        self.nodes: dict[int, GnutellaNode] = {}
        #: struct-of-arrays hot state: neighbor/leaf sets, the ultrapeer
        #: bitmap, and per-host regions (for AS-sharded scheduling) live
        #: here; ``use_peerstate=False`` keeps the object-based reference
        #: path (plain Python sets on each node)
        self.peerstate: Optional[PeerState] = PeerState() if use_peerstate else None
        self._roles = (
            self.peerstate.bitmap("gnutella_roles", 1)
            if self.peerstate is not None
            else None
        )
        #: bounded network-wide (GUID, host) duplicate-suppression window
        #: shared by the per-message handlers and the batch flood kernel
        self.seen = SeenFilter(
            self.config.seen_window,
            peerstate=self.peerstate,
            bitmap_name="gnutella_seen",
        )
        #: protocol-level drops (surfaced through :meth:`message_counts`):
        #: duplicate descriptors suppressed, TTL-expired non-forwards
        self.drop_counts: dict[str, int] = {"duplicate": 0, "ttl": 0}
        self.query_backend = query_backend
        self.search_retention = search_retention
        self._flood_kernel = None
        self._guid_counter = 0
        self.searches: dict[int, SearchRecord] = {}
        #: optional hook invoked with the :class:`SearchRecord` when its
        #: *first* hit arrives — the completion signal the
        #: :mod:`repro.service` load drivers attach to
        self.search_listener: Optional[Callable[[SearchRecord], None]] = None
        #: set by :meth:`instrument`; nodes observe answered-query hop
        #: counts here (``None`` keeps the hot path uninstrumented)
        self.query_hops_hist: Optional[Histogram] = None
        self.queries_expanded_ctr: Optional[Counter] = None
        self.query_frontier_hist: Optional[Histogram] = None
        self._registry: Optional[MetricRegistry] = None
        registry = active_registry()
        if registry is not None:
            self.instrument(registry)

    def instrument(self, registry: MetricRegistry) -> None:
        """Count messages by kind and record query-hop histograms into
        ``registry`` (applies to current and future nodes)."""
        self._registry = registry
        self.query_hops_hist = registry.histogram(
            "gnutella_query_hops",
            "Overlay hops a QUERY travelled before being answered.",
            buckets=tuple(range(0, 12)),
        )
        self.queries_expanded_ctr = registry.counter(
            "queries_expanded_total",
            "Descriptor floods expanded by the frontier-batched query "
            "plane, by descriptor kind.",
            ("kind",),
        )
        self.query_frontier_hist = registry.histogram(
            "query_frontier_size",
            "Per-hop frontier width (accepted hosts per TTL level) of "
            "batch-expanded floods.",
            buckets=(1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 4096),
        )
        for node in self.nodes.values():
            node.instrument(registry, "gnutella")

    # -- population ------------------------------------------------------------
    def add_node(self, host: Host, role: str) -> GnutellaNode:
        if host.host_id in self.nodes:
            raise OverlayError(f"host {host.host_id} already in network")
        if self.peerstate is not None:
            slot = self.peerstate.admit(host.host_id, region=host.asn)
            if role == ULTRAPEER:
                self._roles.set(slot, 0)
        node = GnutellaNode(host, self.sim, self.bus, self, role, self.config)
        if self._registry is not None:
            node.instrument(self._registry, "gnutella")
        self.nodes[host.host_id] = node
        node.go_online()
        return node

    def add_population(
        self,
        hosts: Sequence[Host],
        *,
        ultrapeer_fraction: float = 1 / 3,
        by_capacity: bool = False,
    ) -> None:
        """Add hosts, assigning the ultrapeer role to a fraction of them —
        randomly, or to the highest-capacity hosts when ``by_capacity``."""
        hosts = list(hosts)
        n_up = max(1, round(len(hosts) * ultrapeer_fraction))
        if by_capacity:
            ranked = sorted(
                hosts, key=lambda h: h.resources.capacity_score(), reverse=True
            )
            ups = {h.host_id for h in ranked[:n_up]}
        else:
            idx = self._rng.choice(len(hosts), size=n_up, replace=False)
            ups = {hosts[int(i)].host_id for i in idx}
        for h in hosts:
            self.add_node(h, ULTRAPEER if h.host_id in ups else LEAF)

    def role_of(self, host_id: int) -> str:
        if self.peerstate is not None and host_id in self.peerstate:
            slot = self.peerstate.slot_of(host_id)
            return ULTRAPEER if self._roles.test(slot, 0) else LEAF
        node = self.nodes.get(host_id)
        if node is None:
            raise OverlayError(f"unknown gnutella node {host_id}")
        return node.role

    def ultrapeers(self) -> list[GnutellaNode]:
        return [n for n in self.nodes.values() if n.role == ULTRAPEER]

    def leaves(self) -> list[GnutellaNode]:
        return [n for n in self.nodes.values() if n.role == LEAF]

    # -- bootstrap ----------------------------------------------------------------
    def bootstrap(self, cache_fill: int = 50) -> None:
        """Fill every node's hostcache with a random subset of all
        addresses, as in the testlab setup of [1]."""
        population = list(self.nodes)
        for node in self.nodes.values():
            others = [p for p in population if p != node.host_id]
            node.hostcache.fill_random(others, cache_fill, self._rng)

    def ranked_candidates(self, node: GnutellaNode) -> list[int]:
        """Apply the neighbor-selection policy to the node's hostcache.

        Under BIASED, the oracle ranking is post-processed so that the
        node's connection target still includes ``external_quota``
        candidates from other ASes — Figure 6's "minimal number of
        inter-AS connections necessary to keep the network connected".
        """
        snapshot = node.hostcache.snapshot(self.oracle_list_limit)
        if self.policy is NeighborPolicy.UNBIASED:
            perm = self._rng.permutation(len(snapshot))
            return [snapshot[int(i)] for i in perm]
        assert self.oracle is not None
        ranked = self.oracle.rank(node.host_id, snapshot)
        if self.external_quota == 0:
            return ranked
        want = node.desired_connections()
        my_asn = self.underlay.asn_of(node.host_id)
        head = ranked[:want]
        externals_in_head = sum(
            1 for c in head if self.underlay.asn_of(c) != my_asn
        )
        missing = self.external_quota - externals_in_head
        if missing <= 0:
            return ranked
        # Bindal-style external links are chosen at RANDOM among the
        # non-local candidates: a nearest-external choice would still sit
        # in the same region and the network would partition region-wise.
        tail_pool = [
            c for c in ranked[want:] if self.underlay.asn_of(c) != my_asn
        ]
        if not tail_pool:
            return ranked
        take = min(missing, len(tail_pool))
        idx = self._rng.choice(len(tail_pool), size=take, replace=False)
        tail_externals = [tail_pool[int(i)] for i in idx]
        # displace the worst internal head entries with nearby externals
        keep = [c for c in head if c not in tail_externals]
        keep = keep[: want - len(tail_externals)]
        rest = [c for c in ranked if c not in keep and c not in tail_externals]
        return keep + tail_externals + rest

    def join_all(
        self, stagger_ms: float = 2000.0, *, sharded: Optional[bool] = None
    ) -> None:
        """Schedule every node's join, ultrapeers first so that leaves find
        an ultrapeer mesh to attach to.

        ``sharded`` (default: the process-wide setting) batches the join
        events per AS through a :class:`ShardedScheduler` — one
        ``schedule_many`` heapify instead of one ``heappush`` per host —
        and is bit-identical to the serial path (same RNG draws, same
        sequence numbers, same trace events)."""
        if sharded is None:
            sharded = sharded_scheduling_enabled()
        ordered = self.ultrapeers() + self.leaves()
        scheduler = ShardedScheduler(self.sim) if sharded else None
        for node in ordered:
            delay = float(self._rng.uniform(0, stagger_ms)) if stagger_ms > 0 else 0.0
            if node.role == LEAF:
                delay += stagger_ms  # leaves join after the UP mesh settles
            if scheduler is not None:
                scheduler.defer(node.asn, delay, self._join_node, node)
            else:
                self.sim.schedule(delay, self._join_node, node)
        if scheduler is not None:
            scheduler.flush()

    def _join_node(self, node: GnutellaNode) -> None:
        node.join(self.ranked_candidates(node))

    # -- churn ----------------------------------------------------------------
    def part(self, host_id: int) -> None:
        """Graceful departure of one node (stays known to the network and
        can rejoin later)."""
        self.nodes[host_id].leave()

    def rejoin(self, host_id: int, delay_ms: float = 0.0) -> None:
        """Bring a departed node back online and re-run its join."""
        node = self.nodes[host_id]
        node.go_online()
        self.sim.schedule(delay_ms, self._join_node, node)

    def schedule_repair(self, node: GnutellaNode, delay_ms: float = 500.0) -> None:
        """A node lost a connection; retry the join shortly (jittered so a
        departed ultrapeer's leaves do not stampede one replacement)."""
        delay = delay_ms * (1.0 + float(self._rng.uniform(0.0, 1.0)))
        self.sim.schedule(delay, self._repair, node)

    def _repair(self, node: GnutellaNode) -> None:
        if node.online and len(node.neighbors) < node.desired_connections():
            node.join(self.ranked_candidates(node))

    # -- query plane backend ------------------------------------------------------
    def query_plane_active(self) -> bool:
        """Whether floods expand through the batch kernel: forced by
        ``query_backend="batch"``/``"reference"``, or (``"auto"``) on once
        the population reaches ``QUERY_AUTO_NODE_THRESHOLD`` hosts."""
        if self.query_backend == "batch":
            return True
        if self.query_backend == "reference":
            return False
        return len(self.nodes) >= QUERY_AUTO_NODE_THRESHOLD

    @property
    def flood_kernel(self):
        """The frontier-batched expansion kernel (built on first use)."""
        if self._flood_kernel is None:
            from repro.overlay.gnutella.flood import FloodKernel

            self._flood_kernel = FloodKernel(self)
        return self._flood_kernel

    def ping_round(self) -> None:
        """Every node emits one PING round (call after joins settle)."""
        if self.query_plane_active():
            self.flood_kernel.expand_ping_round()
            return
        for node in self.nodes.values():
            if node.online:
                node.start_ping()

    def start_auto_maintenance(self, *, ping_period_ms: float = 30_000.0) -> None:
        """Periodic per-node PINGs (jittered): keeps hostcaches and pong
        caches fresh so churn repair has candidates to work with."""
        from repro.sim.process import PeriodicProcess

        self._maintenance: list[PeriodicProcess] = []
        for node in self.nodes.values():
            self._maintenance.append(
                PeriodicProcess(
                    self.sim,
                    ping_period_ms,
                    lambda n=node: n.online and n.start_ping(),
                    jitter=0.4,
                    rng=self._rng,
                )
            )

    def stop_auto_maintenance(self) -> None:
        for p in getattr(self, "_maintenance", []):
            p.stop()

    # -- guid / search bookkeeping ---------------------------------------------------
    def next_guid(self) -> int:
        self._guid_counter += 1
        return self._guid_counter

    def register_query(self, guid: int, origin: int, keyword: int) -> None:
        self.searches[guid] = SearchRecord(
            guid=guid, origin=origin, keyword=keyword, issued_at=self.sim.now
        )
        if self.search_retention is not None:
            # bounded bookkeeping for open-ended service runs: drop the
            # oldest records (FIFO, matching the seen-window expiry model)
            while len(self.searches) > self.search_retention:
                del self.searches[next(iter(self.searches))]

    def query_origin(self, guid: int) -> Optional[int]:
        rec = self.searches.get(guid)
        return rec.origin if rec else None

    def record_hit(self, guid: int, responder: int) -> None:
        rec = self.searches.get(guid)
        if rec is not None and responder not in rec.hits:
            first = not rec.hits
            rec.hits.append(responder)
            if first:
                rec.first_hit_at = self.sim.now
                if self.search_listener is not None:
                    self.search_listener(rec)

    def record_download_complete(self, guid: int, receiver: int) -> None:
        rec = self.searches.get(guid)
        if rec is not None and rec.origin == receiver:
            rec.download_done = True

    # -- workload ------------------------------------------------------------------
    def share_content(self, host_id: int, keywords: Sequence[int]) -> None:
        """Add content to a node's share list and, for a leaf, announce it
        to its ultrapeers so they can answer queries on its behalf."""
        node = self.nodes[host_id]
        new = {int(k) for k in keywords} - node.shared
        node.shared.update(new)
        if node.role == LEAF and new and node.neighbors:
            for up in node.neighbors:
                node.send(up, "SHARE", (host_id, frozenset(new)),
                          16 + 4 * len(new))

    def search(self, origin: int, keyword: int) -> int:
        return self.nodes[origin].start_query(keyword)

    def download_stage(self, guid: int, file_size_bytes: int = 4_000_000) -> Optional[int]:
        """Pick a source among the hits and transfer the file over HTTP.

        Unbiased: a uniformly random hit.  With ``biased_download`` the
        oracle is consulted *again* with the QueryHit list — the
        modification that [1] found raises intra-AS exchanges from ~7% to
        ~40%.  Returns the chosen source, or None for a failed search.
        """
        rec = self.searches.get(guid)
        if rec is None:
            raise OverlayError(f"unknown search {guid}")
        if not rec.hits:
            return None
        candidates = [h for h in rec.hits if h != rec.origin]
        if not candidates:
            return None
        if self.biased_download and self.oracle is not None:
            # top-1 via the single-scan path: same overhead charge and
            # jitter draw as a full rank, no sort
            source = self.oracle.best(rec.origin, candidates)
        else:
            source = candidates[int(self._rng.integers(len(candidates)))]
        rec.downloaded_from = source
        # the transfer itself: responder -> requester, accounted on the bus
        self.bus.send(source, rec.origin, "HTTP_DOWNLOAD", guid, file_size_bytes)
        return source

    # -- analysis ----------------------------------------------------------------------
    def overlay_graph(self) -> nx.Graph:
        """Current overlay topology (UP-UP and UP-leaf edges)."""
        g = nx.Graph()
        for node in self.nodes.values():
            g.add_node(node.host_id, role=node.role, asn=node.asn)
        for node in self.nodes.values():
            for nb in node.neighbors:
                g.add_edge(node.host_id, nb)
            for leaf in node.leaves:
                g.add_edge(node.host_id, leaf)
        return g

    def intra_as_edge_fraction(self) -> float:
        g = self.overlay_graph()
        edges = list(g.edges())
        if not edges:
            return 0.0
        same = sum(
            1 for a, b in edges if self.underlay.asn_of(a) == self.underlay.asn_of(b)
        )
        return same / len(edges)

    def message_counts(self) -> dict[str, int]:
        """Bus-level per-kind counts (every forwarded hop counts once),
        plus protocol-level drop totals: ``dropped_duplicate`` (descriptor
        copies suppressed by the seen filter) and ``dropped_ttl``
        (descriptors an ultrapeer declined to forward at TTL expiry)."""
        counts = dict(self.bus.stats.by_kind)
        counts["dropped_duplicate"] = self.drop_counts["duplicate"]
        counts["dropped_ttl"] = self.drop_counts["ttl"]
        return counts

    def search_success_rate(self) -> float:
        if not self.searches:
            return 0.0
        ok = sum(1 for rec in self.searches.values() if rec.hits)
        return ok / len(self.searches)
