"""Gnutella hostcache: the bounded pool of known peer addresses.

A node bootstraps from its hostcache (filled, as in the testlab of [1],
with a random subset of the network's addresses) and keeps it fresh from
PONG advertisements.  The ``limit`` parameter of :meth:`snapshot` models
the "list size 100 / 1000" sent to the oracle in the biased experiments.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

import numpy as np

from repro.errors import OverlayError
from repro.rng import SeedLike, ensure_rng


class HostCache:
    """Insertion-ordered bounded set of peer addresses (host ids)."""

    def __init__(self, capacity: int = 1000) -> None:
        if capacity < 1:
            raise OverlayError("hostcache capacity must be >= 1")
        self.capacity = capacity
        self._entries: dict[int, None] = {}  # ordered set

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, peer: int) -> bool:
        return peer in self._entries

    def add(self, peer: int) -> None:
        """Insert (move-to-back on re-add); evicts the oldest when full."""
        if peer in self._entries:
            del self._entries[peer]
        self._entries[peer] = None
        while len(self._entries) > self.capacity:
            oldest = next(iter(self._entries))
            del self._entries[oldest]

    def add_all(self, peers: Iterable[int]) -> None:
        for p in peers:
            self.add(p)

    def remove(self, peer: int) -> None:
        self._entries.pop(peer, None)

    def snapshot(self, limit: Optional[int] = None) -> list[int]:
        """Most recent entries first, truncated to ``limit``."""
        entries = list(reversed(self._entries))
        return entries if limit is None else entries[:limit]

    def fill_random(
        self, population: Sequence[int], n: int, rng: SeedLike = None
    ) -> None:
        """Bootstrap fill: a random ``n``-subset of ``population``."""
        rng = ensure_rng(rng)
        pop = list(population)
        n = min(n, len(pop), self.capacity)
        if n == 0:
            return
        idx = rng.choice(len(pop), size=n, replace=False)
        for i in idx:
            self.add(pop[int(i)])
