"""Gnutella hostcache: the bounded pool of known peer addresses.

A node bootstraps from its hostcache (filled, as in the testlab of [1],
with a random subset of the network's addresses) and keeps it fresh from
PONG advertisements.  The ``limit`` parameter of :meth:`snapshot` models
the "list size 100 / 1000" sent to the oracle in the biased experiments.

:class:`HostCache` is array-backed (struct-of-arrays: a peer column and
an insertion-stamp column, grown geometrically up to ``capacity`` so
10^5 nodes do not each preallocate a 1000-entry pool), with a dict index
for O(1) membership.  LRU order lives in the stamps, not in element
positions, so ``remove`` is a swap-with-last instead of a shift.
:class:`HostCacheReference` is the retained ordered-dict implementation;
``tests/test_peerstate_equiv.py`` drives both with identical operation
sequences and asserts identical snapshots.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

import numpy as np

from repro.errors import OverlayError
from repro.rng import SeedLike, ensure_rng


class HostCache:
    """Insertion-ordered bounded set of peer addresses (host ids)."""

    def __init__(self, capacity: int = 1000) -> None:
        if capacity < 1:
            raise OverlayError("hostcache capacity must be >= 1")
        self.capacity = capacity
        self._slot_of: dict[int, int] = {}
        size = min(capacity, 16)
        self._peers = np.zeros(size, dtype=np.int64)
        self._stamps = np.zeros(size, dtype=np.int64)
        self._n = 0
        self._clock = 0

    def __len__(self) -> int:
        return self._n

    def __contains__(self, peer: int) -> bool:
        return peer in self._slot_of

    def _tick(self) -> int:
        self._clock += 1
        return self._clock

    def add(self, peer: int) -> None:
        """Insert (move-to-back on re-add); evicts the oldest when full."""
        slot = self._slot_of.get(peer)
        if slot is not None:
            self._stamps[slot] = self._tick()
            return
        if self._n == self.capacity:
            # evict the minimum-stamp (oldest) entry, reuse its slot
            victim = int(np.argmin(self._stamps[: self._n]))
            del self._slot_of[int(self._peers[victim])]
            slot = victim
        else:
            if self._n == len(self._peers):
                grow = min(self.capacity, len(self._peers) * 2)
                self._peers = np.resize(self._peers, grow)
                self._stamps = np.resize(self._stamps, grow)
            slot = self._n
            self._n += 1
        self._peers[slot] = peer
        self._stamps[slot] = self._tick()
        self._slot_of[peer] = slot

    def add_all(self, peers: Iterable[int]) -> None:
        for p in peers:
            self.add(p)

    def remove(self, peer: int) -> None:
        slot = self._slot_of.pop(peer, None)
        if slot is None:
            return
        last = self._n - 1
        if slot != last:
            moved = int(self._peers[last])
            self._peers[slot] = moved
            self._stamps[slot] = self._stamps[last]
            self._slot_of[moved] = slot
        self._n = last

    def snapshot(self, limit: Optional[int] = None) -> list[int]:
        """Most recent entries first, truncated to ``limit``."""
        n = self._n
        if n == 0:
            return []
        # stamps are unique and increasing: descending stamp == most
        # recent first, identical to the reference's reversed dict order
        order = np.argsort(self._stamps[:n])[::-1]
        if limit is not None:
            order = order[:limit]
        return [int(p) for p in self._peers[:n][order]]

    def fill_random(
        self, population: Sequence[int], n: int, rng: SeedLike = None
    ) -> None:
        """Bootstrap fill: a random ``n``-subset of ``population``."""
        rng = ensure_rng(rng)
        pop = list(population)
        n = min(n, len(pop), self.capacity)
        if n == 0:
            return
        idx = rng.choice(len(pop), size=n, replace=False)
        for i in idx:
            self.add(pop[int(i)])


class HostCacheReference:
    """The retained object-based reference: an insertion-ordered dict.

    This is the pre-refactor implementation, kept verbatim for the
    equivalence harness."""

    def __init__(self, capacity: int = 1000) -> None:
        if capacity < 1:
            raise OverlayError("hostcache capacity must be >= 1")
        self.capacity = capacity
        self._entries: dict[int, None] = {}  # ordered set

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, peer: int) -> bool:
        return peer in self._entries

    def add(self, peer: int) -> None:
        """Insert (move-to-back on re-add); evicts the oldest when full."""
        if peer in self._entries:
            del self._entries[peer]
        self._entries[peer] = None
        while len(self._entries) > self.capacity:
            oldest = next(iter(self._entries))
            del self._entries[oldest]

    def add_all(self, peers: Iterable[int]) -> None:
        for p in peers:
            self.add(p)

    def remove(self, peer: int) -> None:
        self._entries.pop(peer, None)

    def snapshot(self, limit: Optional[int] = None) -> list[int]:
        """Most recent entries first, truncated to ``limit``."""
        entries = list(reversed(self._entries))
        return entries if limit is None else entries[:limit]

    def fill_random(
        self, population: Sequence[int], n: int, rng: SeedLike = None
    ) -> None:
        """Bootstrap fill: a random ``n``-subset of ``population``."""
        rng = ensure_rng(rng)
        pop = list(population)
        n = min(n, len(pop), self.capacity)
        if n == 0:
            return
        idx = rng.choice(len(pop), size=n, replace=False)
        for i in idx:
            self.add(pop[int(i)])
