"""Frontier-batched Gnutella flood expansion.

The per-message reference path expands a TTL flood one simulator event at
a time: every QUERY hop costs a heap push, a ``Message`` allocation, a
bus delivery, and a Python handler dispatch.  :class:`FloodKernel`
expands the *entire* flood (or a whole network-wide ping round) inside
one call instead: arrivals are processed from a kernel-local
``(time, seq)`` heap in exactly the order the simulator would have
delivered them, per-edge delivery times come from the bus's latency
provider (memoised scalar reads, or an
:meth:`~repro.underlay.network.Underlay.one_way_delay_row` gather for
wide fan-outs), and duplicate suppression runs against the network's
bounded :class:`~repro.sim.queryplane.SeenFilter` plus a flood-local set.
Per-message semantics are preserved exactly — loss draws from the bus's
own RNG in per-destination send order, fault-hook interposition with
in-flight drops, TTL decrement, duplicate and TTL-expiry drops, traffic
observers and trace events per send — while stats, per-kind metric
cells, per-node counters, and seen-filter marks are committed in
aggregate at the end (:meth:`MessageBus.account_external`).

Equivalence with the reference path is message-level: the sorted
``(time, src, dst, kind, size)`` send set (see
:func:`~repro.sim.queryplane.flood_trace_digest`) is bit-identical, as
are all counters.  Known, documented divergences: loss-RNG draw order
differs when *lossy* floods overlap in simulated time (aggregate drop
counts still match in distribution, and serial floods match bit-for-bit);
fault hooks are invoked at expansion time (``sim.now`` = issue time)
with the virtual send time unavailable to them, so hooks whose behaviour
changes *mid-flood* diverge; and state mutated by other actors mid-flood
(churn) is not seen, since the expansion runs to quiescence at issue
time.

This module lives in ``overlay`` (not ``sim``) because the kernel reads
protocol state — roles, neighbor sets, shared-content indexes, pong
caches — keeping ``sim`` below ``overlay`` in the import graph.
"""

from __future__ import annotations

import heapq
import math
from collections import defaultdict
from itertools import count
from typing import TYPE_CHECKING, Hashable

from repro.errors import OverlayError, SimulationError
from repro.overlay.gnutella.messages import (
    PING_SIZE,
    PONG_SIZE,
    QUERY_SIZE,
    QUERYHIT_SIZE,
)
from repro.overlay.gnutella.node import ULTRAPEER

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.overlay.gnutella.messages import Query
    from repro.overlay.gnutella.network import GnutellaNetwork
    from repro.overlay.gnutella.node import GnutellaNode

_SIZES = {
    "QUERY": QUERY_SIZE,
    "QUERYHIT": QUERYHIT_SIZE,
    "PING": PING_SIZE,
    "PONG": PONG_SIZE,
}

# accumulator columns: [sent, delivered, dropped_loss, dropped_fault,
# dropped_no_handler] per kind
_SENT, _DELIV, _LOSS, _FAULT, _NH = range(5)

# kernel-heap event codes (first message of each expansion kind)
_FWD = 0   # QUERY or PING propagating outward
_BACK = 1  # QUERYHIT or PONG routing back

#: gather delivery times with one ``one_way_delay_row`` read instead of
#: per-destination scalar calls above this fan-out
_ROW_GATHER_MIN = 64

#: the src -> {dst -> delay} memo is cleared past this many source rows
#: (each row is bounded by node degree; delays are deterministic per
#: pair, so dropping entries is only a perf event)
_MEMO_CAP = 1 << 17


def _quiesce() -> None:
    """No-op scheduled at an expansion's last virtual delivery time, so
    ``sim.run()`` advances the clock exactly as far as the per-message
    path's final delivery event would have."""


class _Emitter:
    """The send half of the kernel loop: one :meth:`emit` per message,
    replicating ``MessageBus._send_one`` — accounting, observers, trace
    events, fault hook, delay validation, loss draw — against the
    *virtual* send time, pushing survivors onto the kernel heap."""

    __slots__ = (
        "_bus", "_heap", "_acc", "_sent_by", "_seq", "_delay",
        "_observers", "_tracer", "fast",
    )

    def __init__(self, kernel: "FloodKernel", heap: list, acc: dict,
                 sent_by: dict) -> None:
        self._bus = kernel.net.bus
        self._heap = heap
        self._acc = acc
        self._sent_by = sent_by
        self._seq = count()
        self._delay = kernel._delay
        self._observers = self._bus._observers
        self._tracer = self._bus._tracer
        #: nothing per-message beyond accounting + delay + heap push:
        #: no observers, tracer, fault hook, or loss draws to interleave
        self.fast = (
            not self._observers
            and self._tracer is None
            and self._bus._fault_hook is None
            and not self._bus._loss_rate
        )

    def emit(
        self,
        t: float,
        src: int,
        dst: int,
        kind: str,
        code: int,
        aux,
        d: float | None = None,
    ) -> None:
        size = _SIZES[kind]
        a = self._acc[kind]
        a[_SENT] += 1
        self._sent_by[kind][src] += 1
        if self.fast:
            if d is None:
                d = self._delay(src, dst)
            heapq.heappush(
                self._heap, (t + d, next(self._seq), code, src, dst, aux)
            )
            return
        for ob in self._observers:
            rec = getattr(ob, "record", None)
            if rec is not None:  # time-aware observer (e.g. SendLog)
                rec(t, src, dst, kind, size)
            else:
                ob.observe(src, dst, size, kind)
        tracer = self._tracer
        if tracer is not None:
            tracer.emit(
                "bus", "send", time=t, src=src, dst=dst, kind=kind, size=size
            )
        bus = self._bus
        if d is None:
            d = self._delay(src, dst)
        if bus._fault_hook is not None:
            penalty = bus._fault_hook(src, dst, kind)
            if penalty == math.inf:
                a[_FAULT] += 1
                if tracer is not None:
                    tracer.emit(
                        "bus", "drop", time=t,
                        src=src, dst=dst, kind=kind, reason="fault",
                    )
                return
            d += penalty
        if d < 0.0:
            raise SimulationError(
                f"negative total delay {d} for {kind} {src}->{dst} "
                f"(extra_delay/fault penalty exceeds the underlay latency)"
            )
        if bus._loss_rate and bus._loss_rng.random() < bus._loss_rate:
            a[_LOSS] += 1
            if tracer is not None:
                tracer.emit(
                    "bus", "drop", time=t,
                    src=src, dst=dst, kind=kind, reason="loss",
                )
            return
        heapq.heappush(self._heap, (t + d, next(self._seq), code, src, dst, aux))


class FloodKernel:
    """Batched expansion of Gnutella descriptor floods for one network."""

    def __init__(self, net: "GnutellaNetwork") -> None:
        self.net = net
        self._lat = net.bus.latency
        self._row = getattr(self._lat, "one_way_delay_row", None)
        self._memo: dict[Hashable, dict[Hashable, float]] = {}

    def _memo_row(self, src: int) -> dict:
        memo = self._memo
        row = memo.get(src)
        if row is None:
            if len(memo) >= _MEMO_CAP:
                memo.clear()
            row = memo[src] = {}
        return row

    def _delay(self, src: int, dst: int) -> float:
        row = self._memo_row(src)
        d = row.get(dst)
        if d is None:
            d = row[dst] = self._lat.one_way_delay(src, dst)
        return d

    def _commit(self, acc: dict, sent_by: dict, recv_by: dict) -> None:
        """Fold the expansion's aggregate accounting into the bus stats,
        bound metric cells, and per-node counters — one pass per kind and
        per (node, kind) instead of one update per message."""
        net = self.net
        bus = net.bus
        nodes = net.nodes
        for kind, a in acc.items():
            if any(a):
                bus.account_external(
                    kind,
                    sent=a[_SENT],
                    bytes_sent=a[_SENT] * _SIZES[kind],
                    delivered=a[_DELIV],
                    dropped_loss=a[_LOSS],
                    dropped_fault=a[_FAULT],
                    dropped_no_handler=a[_NH],
                )
        for kind, per_host in sent_by.items():
            for host, n in per_host.items():
                node = nodes[host]
                node.sent_counts[kind] += n
                metric = node._sent_metric
                if metric is not None:
                    metric.inc(n, kind=kind)
        for kind, per_host in recv_by.items():
            for host, n in per_host.items():
                node = nodes[host]
                node.received_counts[kind] += n
                metric = node._received_metric
                if metric is not None:
                    metric.inc(n, kind=kind)

    # ------------------------------------------------------------------ queries
    def expand_query(self, origin: "GnutellaNode", query: "Query") -> None:
        """Expand one QUERY flood (issued by ``origin``) to quiescence.

        Equivalent to the per-message path: same sends at the same
        virtual times, same drops, same counters, same hit records (hits
        arriving at the origin are committed through
        ``sim.schedule_many`` at their virtual delivery times, so
        first-hit latencies match bit-for-bit).
        """
        net = self.net
        bus = net.bus
        sim = net.sim
        nodes = net.nodes
        handlers = bus._handlers
        t0 = sim.now
        guid = query.guid
        key = ("QUERY", guid)
        keyword = query.keyword
        init_ttl = query.ttl
        origin_host = origin.host_id

        # marks surviving from an earlier flood of this GUID (None for a
        # fresh GUID — the overwhelmingly common case)
        prev = net.seen.membership(key)
        flood_seen = {origin_host}
        accepted = [origin_host]
        acc = {"QUERY": [0] * 5, "QUERYHIT": [0] * 5}
        sent_by: dict = {
            "QUERY": defaultdict(int), "QUERYHIT": defaultdict(int)
        }
        recv_by: dict = {
            "QUERY": defaultdict(int), "QUERYHIT": defaultdict(int)
        }
        heap: list = []
        em = _Emitter(self, heap, acc, sent_by)
        emit = em.emit
        dup_drops = 0
        ttl_drops = 0
        hops_depths: list[int] = []
        level_counts: dict[int, int] = defaultdict(int)
        level_counts[0] += 1
        hit_commits: list[tuple[float, int]] = []

        # -- origin expansion (the synchronous part of start_query) ----------
        if origin.role == ULTRAPEER:
            responders: list[int] = []
            if keyword in origin.shared:
                responders.append(origin_host)
            responders.extend(sorted(origin.leaf_index.get(keyword, ())))
            if responders:
                hops_depths.append(0)
            for responder in responders:
                # via=None on the reference path: recorded directly
                net.record_hit(guid, responder)
            if init_ttl > 1:
                targets = list(origin.neighbors)
                fwd_ttl = init_ttl - 1
            else:
                targets = []
                fwd_ttl = 0
                ttl_drops += 1
        else:
            # a leaf hands the query to its ultrapeers, TTL unchanged
            targets = list(origin.neighbors)
            fwd_ttl = init_ttl
        if targets and not origin.online:
            # the reference path marks the flood seen, then the first
            # outbound send raises
            net.seen.mark_many([origin_host], key)
            hh = net.query_hops_hist
            if hh is not None:
                for d in hops_depths:
                    hh.observe(d)
            raise OverlayError(
                f"node {origin_host} tried to send QUERY while offline"
            )
        for dst in targets:
            emit(t0, origin_host, dst, "QUERY", _FWD, fwd_ttl)

        # -- frontier loop: arrivals in simulator (time, seq) order -----------
        # hoisted locals: this loop touches every message of the flood
        acc_q = acc["QUERY"]
        acc_h = acc["QUERYHIT"]
        sent_q = sent_by["QUERY"]
        recv_q = recv_by["QUERY"]
        recv_h = recv_by["QUERYHIT"]
        fast = em.fast
        memo_row = self._memo_row
        one_way = self._lat.one_way_delay
        heappush = heapq.heappush
        heappop = heapq.heappop
        seq = em._seq
        nodes_get = nodes.get
        last_t = t0
        while heap:
            t, _s, code, src, dst, aux = heappop(heap)
            last_t = t
            if code == _FWD:
                if dst not in handlers:
                    acc_q[_NH] += 1
                    continue
                acc_q[_DELIV] += 1
                node = nodes_get(dst)
                if node is None or not node.online:
                    continue
                recv_q[dst] += 1
                if dst in flood_seen or (prev is not None and prev(dst)):
                    dup_drops += 1
                    continue
                flood_seen.add(dst)
                accepted.append(dst)
                node._route_back[key] = src
                ttl = aux
                depth = init_ttl - ttl
                level_counts[depth] += 1
                responders = []
                if keyword in node.shared:
                    responders.append(dst)
                responders.extend(sorted(node.leaf_index.get(keyword, ())))
                if responders:
                    hops_depths.append(depth)
                for responder in responders:
                    emit(t, dst, src, "QUERYHIT", _BACK, responder)
                if ttl > 1 and node.role == ULTRAPEER:
                    fts = [nb for nb in node.neighbors if nb != src]
                    if len(fts) >= _ROW_GATHER_MIN and self._row is not None:
                        for nb, dd in zip(fts, self._row(dst, fts)):
                            emit(t, dst, nb, "QUERY", _FWD, ttl - 1,
                                 d=float(dd))
                    elif fast:
                        # inlined emit: forwards are the bulk of a flood
                        ttl1 = ttl - 1
                        n_fts = len(fts)
                        acc_q[_SENT] += n_fts
                        sent_q[dst] += n_fts
                        row = memo_row(dst)
                        row_get = row.get
                        for nb in fts:
                            dd = row_get(nb)
                            if dd is None:
                                dd = row[nb] = one_way(dst, nb)
                            heappush(
                                heap, (t + dd, next(seq), _FWD, dst, nb, ttl1)
                            )
                    else:
                        for nb in fts:
                            emit(t, dst, nb, "QUERY", _FWD, ttl - 1)
                elif node.role == ULTRAPEER:
                    ttl_drops += 1
            else:  # QUERYHIT routing back toward the origin
                if dst not in handlers:
                    acc_h[_NH] += 1
                    continue
                acc_h[_DELIV] += 1
                node = nodes_get(dst)
                if node is None or not node.online:
                    continue
                recv_h[dst] += 1
                if net.query_origin(guid) == dst:
                    hit_commits.append((t, aux))
                    continue
                back = node._route_back.get(key)
                if back is None:
                    continue  # route evaporated; drop silently
                emit(t, dst, back, "QUERYHIT", _BACK, aux)

        # -- commit ------------------------------------------------------------
        self._commit(acc, sent_by, recv_by)
        net.drop_counts["duplicate"] += dup_drops
        net.drop_counts["ttl"] += ttl_drops
        hh = net.query_hops_hist
        if hh is not None:
            for d in hops_depths:
                hh.observe(d)
        net.seen.mark_many(accepted, key)
        ctr = net.queries_expanded_ctr
        if ctr is not None:
            ctr.inc(kind="QUERY")
        fh = net.query_frontier_hist
        if fh is not None:
            for depth in sorted(level_counts):
                fh.observe(level_counts[depth])
        if hit_commits:
            # hits reach the origin at their virtual delivery times, so
            # first-hit latency and listener firing order are preserved
            sim.schedule_many(
                (ht - t0, net.record_hit, (guid, responder))
                for ht, responder in hit_commits
            )
        if last_t > t0:
            sim.schedule(last_t - t0, _quiesce)

    # ------------------------------------------------------------------ pings
    def expand_ping_round(self) -> None:
        """Expand one network-wide PING round (every online node pings
        its connected peers at the current time) to quiescence.

        Pong-cache and hostcache learning (``_learn_address``) is applied
        eagerly in arrival order, so the cached-pong answers of later
        arrivals see exactly the state the reference path would have.
        """
        net = self.net
        bus = net.bus
        nodes = net.nodes
        handlers = bus._handlers
        cfg = net.config
        t0 = net.sim.now
        pongs_head = cfg.pongs_per_ping - 1

        acc = {"PING": [0] * 5, "PONG": [0] * 5}
        sent_by: dict = {"PING": defaultdict(int), "PONG": defaultdict(int)}
        recv_by: dict = {"PING": defaultdict(int), "PONG": defaultdict(int)}
        heap: list = []
        em = _Emitter(self, heap, acc, sent_by)
        emit = em.emit
        dup_drops = 0
        ttl_drops = 0
        flood_seen: dict[int, set[int]] = {}
        origin_of: dict[int, int] = {}
        level_counts: dict[tuple[int, int], int] = defaultdict(int)
        seen = net.seen

        # all pings are issued synchronously at t0 in node order, exactly
        # like the reference loop over start_ping(); origins are marked
        # eagerly so seen-window key admission order matches
        for node in nodes.values():
            if not node.online:
                continue
            guid = net.next_guid()
            origin_of[guid] = node.host_id
            flood_seen[guid] = {node.host_id}
            seen.mark(node.host_id, ("PING", guid))
            level_counts[(guid, 0)] += 1
            for dst in node._connected_peers():
                emit(t0, node.host_id, dst, "PING", _FWD, (guid, cfg.ping_ttl))

        last_t = t0
        while heap:
            t, _s, code, src, dst, aux = heapq.heappop(heap)
            last_t = t
            guid, arg = aux
            if code == _FWD:  # PING arrival
                if dst not in handlers:
                    acc["PING"][_NH] += 1
                    continue
                acc["PING"][_DELIV] += 1
                node = nodes.get(dst)
                if node is None or not node.online:
                    continue
                recv_by["PING"][dst] += 1
                key = ("PING", guid)
                local = flood_seen[guid]
                if dst in local or seen.test(dst, key):
                    dup_drops += 1
                    continue
                local.add(dst)
                node._route_back[key] = src
                ttl = arg
                level_counts[(guid, cfg.ping_ttl - ttl)] += 1
                # answer: own pong + cached addresses (skip the origin)
                emit(t, dst, src, "PONG", _BACK, (guid, dst))
                origin = origin_of[guid]
                for cached in node._pong_cache[:pongs_head]:
                    if cached != origin:
                        emit(t, dst, src, "PONG", _BACK, (guid, cached))
                if ttl > 1 and node.role == ULTRAPEER:
                    for nb in node._connected_peers():
                        if nb != src:
                            emit(t, dst, nb, "PING", _FWD, (guid, ttl - 1))
                elif node.role == ULTRAPEER:
                    ttl_drops += 1
            else:  # PONG arrival (arg = advertised peer address)
                if dst not in handlers:
                    acc["PONG"][_NH] += 1
                    continue
                acc["PONG"][_DELIV] += 1
                node = nodes.get(dst)
                if node is None or not node.online:
                    continue
                recv_by["PONG"][dst] += 1
                key = ("PING", guid)
                saw = dst in flood_seen[guid] or seen.test(dst, key)
                if saw and key not in node._route_back:
                    # originator: consume
                    node._learn_address(arg)
                    continue
                back = node._route_back.get(key)
                if back is not None:
                    emit(t, dst, back, "PONG", _BACK, (guid, arg))
                node._learn_address(arg)

        self._commit(acc, sent_by, recv_by)
        net.drop_counts["duplicate"] += dup_drops
        net.drop_counts["ttl"] += ttl_drops
        for guid, hosts in flood_seen.items():
            seen.mark_many(list(hosts), ("PING", guid))
        ctr = net.queries_expanded_ctr
        if ctr is not None and origin_of:
            ctr.inc(len(origin_of), kind="PING")
        fh = net.query_frontier_hist
        if fh is not None:
            for k in sorted(level_counts):
                fh.observe(level_counts[k])
        if last_t > t0:
            net.sim.schedule(last_t - t0, _quiesce)


__all__ = ["FloodKernel"]
