"""Gnutella 0.6 message payloads.

GUIDs are plain integers issued by a per-network counter; ``ttl`` and
``hops`` follow the Gnutella descriptor header semantics (ttl decremented
and hops incremented at every forward).  Sizes approximate the on-wire
descriptor sizes so traffic accounting is meaningful.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

#: Approximate descriptor sizes in bytes (header + typical body).
PING_SIZE = 23
PONG_SIZE = 37
QUERY_SIZE = 50
QUERYHIT_SIZE = 80
CONNECT_SIZE = 48


@dataclass(frozen=True)
class Ping:
    """PING descriptor: discovers peers; forwarded with decremented TTL."""
    guid: int
    ttl: int
    hops: int = 0
    origin: int = -1  # host id of the originator

    def forwarded(self) -> "Ping":
        return replace(self, ttl=self.ttl - 1, hops=self.hops + 1)


@dataclass(frozen=True)
class Pong:
    """PONG descriptor: advertises a peer address back along the ping path."""
    guid: int           # matches the Ping it answers
    peer: int           # advertised peer address (host id)
    shared_files: int = 0


@dataclass(frozen=True)
class Query:
    """QUERY descriptor: a keyword search flooded through the ultrapeer mesh."""
    guid: int
    ttl: int
    keyword: int        # content id being searched
    origin: int
    hops: int = 0

    def forwarded(self) -> "Query":
        return replace(self, ttl=self.ttl - 1, hops=self.hops + 1)


@dataclass(frozen=True)
class QueryHit:
    """QUERYHIT descriptor: a responder for a query, routed back to the origin."""
    guid: int           # matches the Query it answers
    responder: int      # host id that has the content
    keyword: int


@dataclass(frozen=True)
class ConnectRequest:
    """Handshake request carrying the joining peer's address and role."""
    peer: int
    role: str           # "ultrapeer" | "leaf"


@dataclass(frozen=True)
class ConnectReply:
    """Handshake response: whether the connection was accepted."""
    peer: int
    accepted: bool
