"""A Gnutella 0.6 servent: ultrapeer or leaf.

Protocol subset implemented (enough to reproduce the message-count and
locality experiments of Aggarwal et al. [1]):

- handshake: CONNECT_REQUEST / CONNECT_REPLY with capacity checks;
- leaf content announcement (SHARE) so ultrapeers can answer queries on
  behalf of their leaves (QRP simplified to an exact index);
- PING flooding with TTL and pong caching (a ping is answered by the
  receiver's own PONG plus cached addresses, giving the Pong≫Ping ratio
  visible in the paper's message table);
- QUERY flooding among ultrapeers with duplicate suppression, QUERYHIT
  routed back hop-by-hop along the reverse query path.

The node is transport-agnostic: everything goes through the
:class:`~repro.sim.messages.MessageBus`, so underlay traffic accounting
sees every hop of every descriptor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.core.peerstate import ArrayNeighborSet
from repro.errors import OverlayError
from repro.overlay.base import OverlayNode
from repro.overlay.gnutella.hostcache import HostCache
from repro.overlay.gnutella.messages import (
    CONNECT_SIZE,
    PING_SIZE,
    PONG_SIZE,
    QUERY_SIZE,
    QUERYHIT_SIZE,
    ConnectReply,
    ConnectRequest,
    Ping,
    Pong,
    Query,
    QueryHit,
)
from repro.sim.engine import Simulation
from repro.sim.messages import Message, MessageBus
from repro.sim.queryplane import BoundedRouteTable
from repro.sim.requests import RequestManager, RetryPolicy
from repro.underlay.hosts import Host

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.overlay.gnutella.network import GnutellaNetwork

ULTRAPEER = "ultrapeer"
LEAF = "leaf"


@dataclass(frozen=True)
class GnutellaConfig:
    """Protocol knobs (defaults sized for few-hundred-node simulations).

    The connect handshake is stop-and-wait, so a lost CONNECT_REQUEST or
    CONNECT_REPLY used to wedge the joining servent forever; it now runs
    under a retry policy (``connect_timeout_ms`` base deadline,
    ``connect_max_retries`` retransmissions with doubled timeouts) and a
    final failure simply moves on to the next candidate.
    """

    query_ttl: int = 4
    ping_ttl: int = 2
    pongs_per_ping: int = 10
    max_up_neighbors: int = 6
    max_leaves: int = 30
    leaf_connections: int = 3
    hostcache_capacity: int = 1000
    pong_cache_size: int = 20
    connect_timeout_ms: float = 4000.0
    connect_max_retries: int = 1
    #: duplicate-suppression window: at most this many distinct in-flight
    #: descriptor GUIDs are remembered network-wide (FIFO expiry; see
    #: :class:`repro.sim.queryplane.SeenFilter`) — long service runs stay
    #: memory-flat instead of accreting every GUID ever flooded
    seen_window: int = 4096
    #: per-node reverse-route window (QUERYHIT/PONG back-routing); an
    #: expired route is the existing "route evaporated" drop case
    route_cache_size: int = 4096

    def __post_init__(self) -> None:
        if self.query_ttl < 1 or self.ping_ttl < 1:
            raise OverlayError("TTLs must be >= 1")
        if self.leaf_connections < 1:
            raise OverlayError("leaves need at least one ultrapeer connection")
        if self.max_up_neighbors < 1 or self.max_leaves < 0:
            raise OverlayError("invalid capacity configuration")
        if self.pongs_per_ping < 1 or self.pong_cache_size < 1:
            raise OverlayError("pong parameters must be >= 1")
        if self.connect_timeout_ms <= 0 or self.connect_max_retries < 0:
            raise OverlayError("invalid connect retry configuration")
        if self.seen_window < 1 or self.route_cache_size < 1:
            raise OverlayError("suppression windows must be >= 1")


class GnutellaNode(OverlayNode):
    """One servent: connections, content index, and descriptor handling."""
    def __init__(
        self,
        host: Host,
        sim: Simulation,
        bus: MessageBus,
        network: "GnutellaNetwork",
        role: str,
        config: GnutellaConfig,
    ) -> None:
        super().__init__(host, sim, bus)
        if role not in (ULTRAPEER, LEAF):
            raise OverlayError(f"unknown role {role!r}")
        self.network = network
        self.role = role
        self.config = config
        self.hostcache = HostCache(config.hostcache_capacity)
        # Neighbor/leaf sets live in the network's struct-of-arrays
        # PeerState when this host is admitted there (the scale path);
        # otherwise plain Python sets (the retained reference path).
        peerstate = getattr(network, "peerstate", None)
        if peerstate is not None and host.host_id in peerstate:
            slot = peerstate.slot_of(host.host_id)
            self.neighbors = ArrayNeighborSet(
                peerstate.table("gnutella_neighbors", 2 * config.max_up_neighbors),
                slot,
            )  # UP-UP links, or leaf's ultrapeers
            self.leaves = ArrayNeighborSet(
                peerstate.table("gnutella_leaves", max(1, config.max_leaves)), slot
            )  # UP only
        else:
            self.neighbors = set()      # UP-UP links, or leaf's ultrapeers
            self.leaves = set()         # UP only
        self.leaf_index: dict[int, set[int]] = {}  # keyword -> leaf host ids
        self.shared: set[int] = set()
        # duplicate suppression lives in the network-wide bounded
        # SeenFilter (one bit per host per live GUID); reverse routes are
        # FIFO-bounded so neither grows with total queries ever issued
        self._route_back = BoundedRouteTable(config.route_cache_size)
        self._pong_cache: list[int] = []
        self._pending_candidates: list[int] = []
        self.requests = RequestManager(
            sim,
            policy=RetryPolicy(
                timeout_ms=config.connect_timeout_ms,
                max_retries=config.connect_max_retries,
                max_timeout_ms=4.0 * config.connect_timeout_ms,
            ),
            component="gnutella",
        )

    # ------------------------------------------------------------------ joining
    def desired_connections(self) -> int:
        return (
            self.config.leaf_connections
            if self.role == LEAF
            else self.config.max_up_neighbors
        )

    def join(self, ranked_candidates: list[int]) -> None:
        """Attempt connections to candidates in the given (policy-ranked)
        order until the connection target is met or candidates run out."""
        self._pending_candidates = [
            c
            for c in ranked_candidates
            if c != self.host_id and self.network.role_of(c) == ULTRAPEER
        ]
        self._try_next_candidates()

    def _try_next_candidates(self) -> None:
        while (
            len(self.neighbors) < self.desired_connections()
            and self._pending_candidates
        ):
            target = self._pending_candidates.pop(0)
            if target in self.neighbors:
                continue
            key = ("connect", target)
            if self.requests.is_outstanding(key):
                continue  # handshake with this peer already in flight
            request = ConnectRequest(peer=self.host_id, role=self.role)

            def transmit(t: int = target, r: ConnectRequest = request) -> None:
                if self.online:
                    self.send(t, "CONNECT_REQUEST", r, CONNECT_SIZE)

            self.requests.issue(
                key, transmit,
                on_fail=lambda t=target: self._connect_failed(t),
            )
            # stop-and-wait: continue from on_connect_reply (or the
            # retry manager's final failure)
            return

    def _connect_failed(self, target: int) -> None:
        """The handshake with ``target`` timed out on every attempt
        (request or reply lost, peer crashed): move on instead of
        hanging.  The peer also leaves the hostcache — it just proved
        unreachable."""
        self.hostcache.remove(target)
        if self.online:
            self._try_next_candidates()

    def on_connect_request(self, msg: Message) -> None:
        req: ConnectRequest = msg.payload
        accepted = self._accept_connection(req)
        if accepted:
            if req.role == LEAF:
                self.leaves.add(req.peer)
            else:
                self.neighbors.add(req.peer)
        self.send(
            req.peer,
            "CONNECT_REPLY",
            ConnectReply(peer=self.host_id, accepted=accepted),
            CONNECT_SIZE,
        )

    def _accept_connection(self, req: ConnectRequest) -> bool:
        if self.role != ULTRAPEER:
            return False
        if req.role == LEAF:
            return len(self.leaves) < self.config.max_leaves
        # inbound slack (2x the outbound target): real servents keep a
        # separate inbound budget, which prevents late joiners from being
        # orphaned once everyone's outbound slots are filled
        return len(self.neighbors) < 2 * self.config.max_up_neighbors

    def on_connect_reply(self, msg: Message) -> None:
        rep: ConnectReply = msg.payload
        self.requests.resolve(("connect", rep.peer))
        if rep.accepted:
            self.neighbors.add(rep.peer)
            if self.role == LEAF and self.shared:
                # announce content so the ultrapeer can answer for us
                self.send(rep.peer, "SHARE", (self.host_id, frozenset(self.shared)),
                          16 + 4 * len(self.shared))
        self._try_next_candidates()

    def on_share(self, msg: Message) -> None:
        leaf_id, keywords = msg.payload
        for kw in keywords:
            self.leaf_index.setdefault(kw, set()).add(leaf_id)

    def drop_peer(self, peer: int) -> None:
        """Remove a vanished peer from all local state."""
        self.neighbors.discard(peer)
        self.leaves.discard(peer)
        for holders in self.leaf_index.values():
            holders.discard(peer)

    # ------------------------------------------------------------------ leaving
    def leave(self) -> None:
        """Graceful departure: notify connected peers, then go offline."""
        if not self.online:
            return
        for peer in list(self._connected_peers()):
            self.send(peer, "BYE", self.host_id, 16)
        self.neighbors.clear()
        self.leaves.clear()
        self.go_offline()

    def on_bye(self, msg: Message) -> None:
        self.drop_peer(msg.src)
        self.hostcache.remove(msg.src)
        # a leaf that lost an ultrapeer looks for a replacement
        if self.role == LEAF and len(self.neighbors) < self.desired_connections():
            self.network.schedule_repair(self)

    # ---------------------------------------------------------- dup suppression
    def _saw(self, key: tuple[str, int]) -> bool:
        """Whether this host already handled the descriptor ``key``."""
        return self.network.seen.test(self.host_id, key)

    def _mark_seen(self, key: tuple[str, int]) -> None:
        self.network.seen.mark(self.host_id, key)

    # ------------------------------------------------------------------ ping/pong
    def start_ping(self) -> None:
        """Emit one PING round to all connected peers."""
        guid = self.network.next_guid()
        self._mark_seen(("PING", guid))
        ping = Ping(guid=guid, ttl=self.config.ping_ttl, origin=self.host_id)
        self.send_many(list(self._connected_peers()), "PING", ping, PING_SIZE)

    def _connected_peers(self) -> list[int]:
        """All connected peer ids, ascending (deterministic fan-out order
        regardless of which backend holds the sets)."""
        return sorted(set(self.neighbors) | set(self.leaves))

    def on_ping(self, msg: Message) -> None:
        ping: Ping = msg.payload
        key = ("PING", ping.guid)
        if self._saw(key):
            self.network.drop_counts["duplicate"] += 1
            return
        self._mark_seen(key)
        self._route_back[key] = msg.src
        # answer: own pong + cached addresses
        self.send(msg.src, "PONG", Pong(ping.guid, self.host_id, len(self.shared)),
                  PONG_SIZE)
        for cached in self._pong_cache[: self.config.pongs_per_ping - 1]:
            if cached != ping.origin:
                self.send(msg.src, "PONG", Pong(ping.guid, cached), PONG_SIZE)
        # forward with decremented TTL (ultrapeers relay; leaves are edges)
        if ping.ttl > 1 and self.role == ULTRAPEER:
            fwd = ping.forwarded()
            self.send_many(
                [nb for nb in self._connected_peers() if nb != msg.src],
                "PING", fwd, PING_SIZE,
            )
        elif self.role == ULTRAPEER:
            self.network.drop_counts["ttl"] += 1

    def on_pong(self, msg: Message) -> None:
        pong: Pong = msg.payload
        key = ("PING", pong.guid)
        if self._saw(key) and key not in self._route_back:
            # we originated the ping: consume
            self._learn_address(pong.peer)
            return
        back = self._route_back.get(key)
        if back is not None:
            self.send(back, "PONG", pong, PONG_SIZE)
        # opportunistically learn addresses that pass through
        self._learn_address(pong.peer)

    def _learn_address(self, peer: int) -> None:
        if peer == self.host_id:
            return
        self.hostcache.add(peer)
        if peer in self._pong_cache:
            self._pong_cache.remove(peer)
        self._pong_cache.insert(0, peer)
        del self._pong_cache[self.config.pong_cache_size :]

    # ------------------------------------------------------------------ search
    def start_query(self, keyword: int) -> int:
        """Issue a query; returns its GUID (results collect in the network)."""
        guid = self.network.next_guid()
        query = Query(
            guid=guid, ttl=self.config.query_ttl, keyword=keyword, origin=self.host_id
        )
        self.network.register_query(guid, self.host_id, keyword)
        if self.network.query_plane_active():
            # frontier-batched expansion: the whole flood is computed as
            # array operations at issue time (same messages, same times)
            self.network.flood_kernel.expand_query(self, query)
            return guid
        self._mark_seen(("QUERY", guid))
        if self.role == LEAF:
            # leaves hand the query to their ultrapeers
            for up in self.neighbors:
                self.send(up, "QUERY", query, QUERY_SIZE)
        else:
            self._answer_and_flood(query, from_peer=None)
        return guid

    def on_query(self, msg: Message) -> None:
        query: Query = msg.payload
        key = ("QUERY", query.guid)
        if self._saw(key):
            self.network.drop_counts["duplicate"] += 1
            return
        self._mark_seen(key)
        self._route_back[key] = msg.src
        self._answer_and_flood(query, from_peer=msg.src)

    def _answer_and_flood(self, query: Query, from_peer: Optional[int]) -> None:
        # answer from own shared content
        responders: list[int] = []
        if query.keyword in self.shared:
            responders.append(self.host_id)
        # and on behalf of leaves
        responders.extend(sorted(self.leaf_index.get(query.keyword, ())))
        hops_hist = self.network.query_hops_hist
        if hops_hist is not None and responders:
            hops_hist.observe(self.config.query_ttl - query.ttl)
        for responder in responders:
            hit = QueryHit(guid=query.guid, responder=responder, keyword=query.keyword)
            self._route_hit(hit, via=from_peer)
        if query.ttl > 1 and self.role == ULTRAPEER:
            fwd = query.forwarded()
            self.send_many(
                [nb for nb in self.neighbors if nb != from_peer],
                "QUERY", fwd, QUERY_SIZE,
            )
        elif self.role == ULTRAPEER:
            self.network.drop_counts["ttl"] += 1

    def _route_hit(self, hit: QueryHit, via: Optional[int]) -> None:
        if via is None:
            # we are the originator's node itself
            self.network.record_hit(hit.guid, hit.responder)
            return
        self.send(via, "QUERYHIT", hit, QUERYHIT_SIZE)

    def on_queryhit(self, msg: Message) -> None:
        hit: QueryHit = msg.payload
        key = ("QUERY", hit.guid)
        if self.network.query_origin(hit.guid) == self.host_id:
            self.network.record_hit(hit.guid, hit.responder)
            return
        back = self._route_back.get(key)
        if back is None:
            return  # route evaporated (origin gone); drop silently
        self.send(back, "QUERYHIT", hit, QUERYHIT_SIZE)

    # ------------------------------------------------------------------ download
    def on_http_download(self, msg: Message) -> None:
        """Bulk content arriving over HTTP (outside the Gnutella mesh)."""
        self.network.record_download_complete(msg.payload, self.host_id)
