"""BitTorrent tracker with neighbor-selection policies.

- ``RANDOM`` — the standard tracker: a uniform random subset of the swarm.
- ``BIASED`` — Bindal et al. [3]: the tracker (or an ISP traffic-shaping
  device acting as one) returns peers from the requester's own AS plus at
  most ``external_quota`` outside peers, keeping the swarm connected across
  ISP boundaries with the minimum external degree.
- ``ORACLE`` — the tracker hands the candidate set to an
  :class:`~repro.collection.oracle.ISPOracle` for AS-hop ranking and
  returns the top entries (the same idea, using the ISP's oracle service).
"""

from __future__ import annotations

import enum
from typing import Optional, Sequence

import numpy as np

from repro.collection.oracle import ISPOracle
from repro.errors import OverlayError
from repro.rng import SeedLike, ensure_rng
from repro.underlay.network import Underlay


class TrackerPolicy(enum.Enum):
    """Peer-list policy: random, Bindal-biased, or oracle-ranked."""
    RANDOM = "random"
    BIASED = "biased"
    ORACLE = "oracle"


class Tracker:
    """Swarm membership registry answering announces with a peer list."""
    def __init__(
        self,
        underlay: Underlay,
        *,
        policy: TrackerPolicy = TrackerPolicy.RANDOM,
        peer_list_size: int = 35,
        external_quota: int = 2,
        oracle: Optional[ISPOracle] = None,
        rng: SeedLike = None,
    ) -> None:
        if policy is TrackerPolicy.ORACLE and oracle is None:
            raise OverlayError("ORACLE tracker policy requires an oracle")
        if peer_list_size < 1:
            raise OverlayError("peer_list_size must be >= 1")
        if external_quota < 1:
            # at least one external link keeps AS clusters connected
            raise OverlayError("external_quota must be >= 1")
        self.underlay = underlay
        self.policy = policy
        self.peer_list_size = peer_list_size
        self.external_quota = external_quota
        self.oracle = oracle
        self._rng = ensure_rng(rng)
        self.swarm: set[int] = set()
        self.announces = 0

    def announce(self, host_id: int) -> list[int]:
        """Register ``host_id`` and return a policy-dependent peer list."""
        self.announces += 1
        others = [p for p in self.swarm if p != host_id]
        self.swarm.add(host_id)
        if not others:
            return []
        if self.policy is TrackerPolicy.RANDOM:
            return self._sample(others, self.peer_list_size)
        if self.policy is TrackerPolicy.ORACLE:
            assert self.oracle is not None
            ranked = self.oracle.rank(host_id, others)
            return ranked[: self.peer_list_size]
        return self._biased_list(host_id, others)

    def _sample(self, pool: Sequence[int], n: int) -> list[int]:
        n = min(n, len(pool))
        idx = self._rng.choice(len(pool), size=n, replace=False)
        return [pool[int(i)] for i in idx]

    def _biased_list(self, host_id: int, others: Sequence[int]) -> list[int]:
        my_asn = self.underlay.asn_of(host_id)
        internal = [p for p in others if self.underlay.asn_of(p) == my_asn]
        external = [p for p in others if self.underlay.asn_of(p) != my_asn]
        take_internal = self._sample(internal, self.peer_list_size - self.external_quota)
        take_external = self._sample(external, min(self.external_quota,
                                                   self.peer_list_size))
        return take_internal + take_external

    def depart(self, host_id: int) -> None:
        self.swarm.discard(host_id)
