"""BitTorrent tracker with neighbor-selection policies.

- ``RANDOM`` — the standard tracker: a uniform random subset of the swarm.
- ``BIASED`` — Bindal et al. [3]: the tracker (or an ISP traffic-shaping
  device acting as one) returns peers from the requester's own AS plus at
  most ``external_quota`` outside peers, keeping the swarm connected across
  ISP boundaries with the minimum external degree.
- ``ORACLE`` — the tracker hands the candidate set to an
  :class:`~repro.collection.oracle.ISPOracle` for AS-hop ranking and
  returns the top entries (the same idea, using the ISP's oracle service).
"""

from __future__ import annotations

import enum
from typing import Optional, Sequence

import numpy as np

from repro.collection.oracle import ISPOracle
from repro.errors import OverlayError
from repro.rng import SeedLike, ensure_rng
from repro.underlay.network import Underlay


class TrackerPolicy(enum.Enum):
    """Peer-list policy: random, Bindal-biased, or oracle-ranked."""
    RANDOM = "random"
    BIASED = "biased"
    ORACLE = "oracle"


class Tracker:
    """Swarm membership registry answering announces with a peer list."""
    def __init__(
        self,
        underlay: Underlay,
        *,
        policy: TrackerPolicy = TrackerPolicy.RANDOM,
        peer_list_size: int = 35,
        external_quota: int = 2,
        oracle: Optional[ISPOracle] = None,
        rng: SeedLike = None,
    ) -> None:
        if policy is TrackerPolicy.ORACLE and oracle is None:
            raise OverlayError("ORACLE tracker policy requires an oracle")
        if peer_list_size < 1:
            raise OverlayError("peer_list_size must be >= 1")
        if external_quota < 1:
            # at least one external link keeps AS clusters connected
            raise OverlayError("external_quota must be >= 1")
        self.underlay = underlay
        self.policy = policy
        self.peer_list_size = peer_list_size
        self.external_quota = external_quota
        self.oracle = oracle
        self._rng = ensure_rng(rng)
        # Insertion-ordered registry: iteration order is the announce
        # order, never the interpreter's hash order, so the seeded RNG is
        # the only source of list-order variation.
        self._swarm: dict[int, None] = {}
        self.announces = 0

    @property
    def swarm(self) -> dict[int, None]:
        """Registered peers (insertion-ordered; supports ``in``/``len``)."""
        return self._swarm

    def announce(self, host_id: int) -> list[int]:
        """Register ``host_id`` and return a policy-dependent peer list.

        Every policy threads the tracker's seeded RNG through sampling
        *and* list order: RANDOM and BIASED lists come back shuffled (for
        BIASED the AS composition, not the position of same-AS entries,
        carries the locality bias), while ORACLE keeps the oracle's rank
        order — ranking is that policy's entire point.
        """
        self.announces += 1
        others = [p for p in self._swarm if p != host_id]
        self._swarm[host_id] = None
        if not others:
            return []
        if self.policy is TrackerPolicy.RANDOM:
            return self._sample(others, self.peer_list_size)
        if self.policy is TrackerPolicy.ORACLE:
            assert self.oracle is not None
            ranked = self.oracle.rank(host_id, others)
            return ranked[: self.peer_list_size]
        return self._biased_list(host_id, others)

    def _sample(self, pool: Sequence[int], n: int) -> list[int]:
        n = min(n, len(pool))
        idx = self._rng.choice(len(pool), size=n, replace=False)
        return [pool[int(i)] for i in idx]

    def _biased_list(self, host_id: int, others: Sequence[int]) -> list[int]:
        my_asn = self.underlay.asn_of(host_id)
        internal = [p for p in others if self.underlay.asn_of(p) == my_asn]
        external = [p for p in others if self.underlay.asn_of(p) != my_asn]
        take_internal = self._sample(internal, self.peer_list_size - self.external_quota)
        take_external = self._sample(external, min(self.external_quota,
                                                   self.peer_list_size))
        combined = take_internal + take_external
        # External peers are capped by the quota; when the external pool
        # is short, top the list back up from unused same-AS peers so the
        # returned degree does not depend on AS population splits.
        short = min(self.peer_list_size, len(others)) - len(combined)
        if short > 0:
            chosen = set(combined)
            spare = [p for p in internal if p not in chosen]
            combined += self._sample(spare, short)
        self._rng.shuffle(combined)
        return combined

    def depart(self, host_id: int) -> None:
        self._swarm.pop(host_id, None)
