"""Torrent metadata and piece bookkeeping."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import OverlayError


@dataclass(frozen=True)
class Torrent:
    """A content item distributed by the swarm."""

    torrent_id: int
    n_pieces: int = 256
    piece_size_bytes: int = 262_144  # 256 KiB, the BitTorrent default

    def __post_init__(self) -> None:
        if self.n_pieces < 1:
            raise OverlayError("torrent needs at least one piece")
        if self.piece_size_bytes < 1:
            raise OverlayError("piece size must be positive")

    @property
    def total_bytes(self) -> int:
        return self.n_pieces * self.piece_size_bytes


class Bitfield:
    """Set of pieces a peer holds."""

    def __init__(self, n_pieces: int, complete: bool = False) -> None:
        self.n_pieces = n_pieces
        self._have: set[int] = set(range(n_pieces)) if complete else set()

    def __len__(self) -> int:
        return len(self._have)

    def __contains__(self, piece: int) -> bool:
        return piece in self._have

    def add(self, piece: int) -> None:
        if not (0 <= piece < self.n_pieces):
            raise OverlayError(f"piece index out of range: {piece}")
        self._have.add(piece)

    def missing(self) -> set[int]:
        return set(range(self.n_pieces)) - self._have

    def have(self) -> set[int]:
        return set(self._have)

    @property
    def complete(self) -> bool:
        return len(self._have) == self.n_pieces

    @property
    def completion(self) -> float:
        return len(self._have) / self.n_pieces
