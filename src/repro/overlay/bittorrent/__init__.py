"""BitTorrent swarm with biased neighbor selection (Bindal et al. [3]) and
cost-aware choking (CAT, Yamazaki et al. [32])."""

from repro.overlay.bittorrent.peer import SwarmConfig, SwarmPeer
from repro.overlay.bittorrent.swarm import SwarmReport, SwarmSimulation
from repro.overlay.bittorrent.torrent import Bitfield, Torrent
from repro.overlay.bittorrent.tracker import Tracker, TrackerPolicy

__all__ = [
    "Bitfield",
    "SwarmConfig",
    "SwarmPeer",
    "SwarmReport",
    "SwarmSimulation",
    "Torrent",
    "Tracker",
    "TrackerPolicy",
]
