"""BitTorrent swarm with biased neighbor selection (Bindal et al. [3]) and
cost-aware choking (CAT, Yamazaki et al. [32]).

Two data planes share the control-plane mechanics (tracker policies,
tit-for-tat rechoke): the exact time-stepped
:class:`SwarmSimulation` (alias :data:`SwarmSimulationReference`) and
the flow-level :class:`FlowSwarmSimulation`, which scales locality
sweeps to thousands of peers via max-min fair rate allocation.
"""

from repro.overlay.bittorrent.flowswarm import (
    FlowPlaneConfig,
    FlowSwarmSimulation,
)
from repro.overlay.bittorrent.peer import SwarmConfig, SwarmPeer
from repro.overlay.bittorrent.swarm import (
    SwarmReport,
    SwarmSimulation,
    SwarmSimulationReference,
)
from repro.overlay.bittorrent.torrent import Bitfield, Torrent
from repro.overlay.bittorrent.tracker import Tracker, TrackerPolicy

__all__ = [
    "Bitfield",
    "FlowPlaneConfig",
    "FlowSwarmSimulation",
    "SwarmConfig",
    "SwarmPeer",
    "SwarmReport",
    "SwarmSimulation",
    "SwarmSimulationReference",
    "Torrent",
    "Tracker",
    "TrackerPolicy",
]
