"""Time-stepped BitTorrent swarm simulation.

A fluid, per-second model of a single-torrent swarm — the standard
abstraction for studying neighbor-selection policies (Bindal et al. [3]
used a comparable discrete simulator).  Each step:

1. every peer partitions its upload capacity equally across its unchoked
   interested neighbours;
2. transfers are capped by the receiver's remaining download capacity;
3. bytes accrue toward the rarest-first piece chosen per (uploader,
   downloader) pair; completed pieces update bitfields;
4. every ``rechoke_interval`` the tit-for-tat unchoke sets are recomputed.

Every transferred byte is attributed to intra-AS / peering / transit via
the underlay routing, which yields the ISP-cost side of the Bindal result;
per-peer completion times yield the user side.

This time-stepped model is the **reference twin** of the flow-level data
plane in :mod:`repro.overlay.bittorrent.flowswarm`: it caps out at a few
hundred peers but models pieces exactly, so the flow plane's completion
times and traffic splits are equivalence-tested against it on small
swarms (``tests/test_flowswarm_equiv.py``).  The
:data:`SwarmSimulationReference` alias names it in that role.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.errors import OverlayError
from repro.obs import active_registry
from repro.obs.registry import MetricRegistry
from repro.overlay.bittorrent.peer import SwarmConfig, SwarmPeer
from repro.overlay.bittorrent.torrent import Torrent
from repro.overlay.bittorrent.tracker import Tracker
from repro.rng import SeedLike, ensure_rng, spawn
from repro.underlay.autonomous_system import LinkType
from repro.underlay.network import Underlay


@dataclass
class SwarmReport:
    """Outcome of one swarm run."""

    completed: int
    total_leechers: int
    mean_download_time_s: float
    median_download_time_s: float
    intra_as_bytes: float
    peering_bytes: float
    transit_bytes: float
    duration_s: float

    @property
    def completion_rate(self) -> float:
        return self.completed / self.total_leechers if self.total_leechers else 0.0

    @property
    def total_bytes(self) -> float:
        return self.intra_as_bytes + self.peering_bytes + self.transit_bytes

    @property
    def intra_as_fraction(self) -> float:
        t = self.total_bytes
        return self.intra_as_bytes / t if t else 0.0

    @property
    def transit_fraction(self) -> float:
        t = self.total_bytes
        return self.transit_bytes / t if t else 0.0


class SwarmSimulation:
    """Time-stepped single-torrent swarm with per-class traffic accounting."""
    def __init__(
        self,
        underlay: Underlay,
        torrent: Torrent,
        tracker: Tracker,
        *,
        config: SwarmConfig | None = None,
        rng: SeedLike = None,
    ) -> None:
        self.underlay = underlay
        self.torrent = torrent
        self.tracker = tracker
        self.config = config or SwarmConfig()
        self._rng = ensure_rng(rng)
        self.peers: dict[int, SwarmPeer] = {}
        self._avail: Optional[np.ndarray] = None
        self.time_s = 0.0
        self.intra_as_bytes = 0.0
        self.peering_bytes = 0.0
        self.transit_bytes = 0.0
        #: transit bytes charged to each paying AS
        self.paid_transit: dict[int, float] = {}
        self._bytes_ctr = None
        self._announce_ctr = None
        self._pieces_ctr = None
        self._dltime_hist = None
        registry = active_registry()
        if registry is not None:
            self.instrument(registry)

    def instrument(self, registry: MetricRegistry) -> None:
        """Count tracker announces, transferred bytes by traffic class,
        and completed pieces; histogram leecher download times."""
        self._announce_ctr = registry.counter(
            "bittorrent_messages_sent_total",
            "BitTorrent control messages sent, by kind.",
            ("kind",),
        )
        self._bytes_ctr = registry.counter(
            "bittorrent_bytes_total",
            "Payload bytes transferred, by underlay traffic class.",
            ("traffic_class",),
        )
        self._pieces_ctr = registry.counter(
            "bittorrent_pieces_completed_total", "Pieces fully downloaded."
        )
        self._dltime_hist = registry.histogram(
            "bittorrent_download_time_s",
            "Per-leecher time to complete the torrent (simulated seconds).",
        )

    # -- population -------------------------------------------------------------
    def add_peer(self, host_id: int, *, is_seed: bool = False) -> SwarmPeer:
        if host_id in self.peers:
            raise OverlayError(f"peer {host_id} already in swarm")
        host = self.underlay.host(host_id)
        (peer_rng,) = spawn(self._rng, 1)
        peer = SwarmPeer(
            host, self.torrent, self.config, is_seed=is_seed, rng=peer_rng
        )
        peer.join_time = self.time_s
        self.peers[host_id] = peer
        if self._avail is not None and is_seed:
            # keep the hoisted availability current: a joining seed adds
            # one copy of every piece, a joining leecher adds none
            self._avail += 1.0
        if self._announce_ctr is not None:
            self._announce_ctr.inc(kind="TRACKER_ANNOUNCE")
        peer_list = self.tracker.announce(host_id)
        peer.neighbors.update(peer_list)
        # connections are bidirectional
        for p in peer_list:
            if p in self.peers:
                self.peers[p].neighbors.add(host_id)
        return peer

    def populate(
        self,
        leechers: Sequence[int],
        seeds: Sequence[int],
    ) -> None:
        for s in seeds:
            self.add_peer(s, is_seed=True)
        for l in leechers:
            self.add_peer(l, is_seed=False)

    # -- accounting ----------------------------------------------------------------
    def _account(self, src_asn: int, dst_asn: int, nbytes: float) -> None:
        if src_asn == dst_asn:
            self.intra_as_bytes += nbytes
            if self._bytes_ctr is not None:
                self._bytes_ctr.inc(nbytes, traffic_class="intra_as")
            return
        crossed_transit = False
        for a, b, link_type in self.underlay.routing.path_links(src_asn, dst_asn):
            if link_type is LinkType.TRANSIT:
                crossed_transit = True
                payer = a if b in self.underlay.topology.asys(a).providers else b
                self.paid_transit[payer] = self.paid_transit.get(payer, 0.0) + nbytes
        if crossed_transit:
            self.transit_bytes += nbytes
        else:
            self.peering_bytes += nbytes
        if self._bytes_ctr is not None:
            self._bytes_ctr.inc(
                nbytes,
                traffic_class="transit" if crossed_transit else "peering",
            )

    # -- core loop ----------------------------------------------------------------------
    def _availability(self) -> np.ndarray:
        """Piece availability, hoisted: built once, then updated in place
        on the only two events that change it (a piece completing inside
        :meth:`step`, a seed joining in :meth:`add_peer`) instead of being
        rebuilt from every bitfield each step/rechoke round."""
        if self._avail is None:
            avail = np.zeros(self.torrent.n_pieces)
            for p in self.peers.values():
                for piece in p.bitfield.have():
                    avail[piece] += 1
            self._avail = avail
        return self._avail

    def _rechoke_all(self) -> None:
        for peer in self.peers.values():
            interested = {
                nid: self.peers[nid]
                for nid in peer.neighbors
                if nid in self.peers and self.peers[nid].interested_in(peer)
            }
            peer.rechoke(interested)

    def step(self, dt: float = 1.0) -> None:
        """Advance the swarm by ``dt`` seconds."""
        piece_size = self.torrent.piece_size_bytes
        availability = self._availability()
        down_budget = {
            pid: p.down_bps * dt for pid, p in self.peers.items() if not p.complete
        }
        for uploader in self.peers.values():
            targets = [
                self.peers[t]
                for t in uploader.unchoked
                if t in self.peers
                and not self.peers[t].complete
                and self.peers[t].interested_in(uploader)
            ]
            if not targets:
                continue
            share = uploader.up_bps * dt / len(targets)
            for dl in targets:
                nbytes = min(share, down_budget.get(dl.host_id, 0.0))
                if nbytes <= 0:
                    continue
                piece, progress = dl.partial.get(uploader.host_id, (None, 0.0))
                if piece is None or piece in dl.bitfield:
                    in_flight = {
                        pc for up, (pc, _b) in dl.partial.items()
                        if up != uploader.host_id
                    }
                    piece = dl.pick_piece(uploader, availability, in_flight)
                    progress = 0.0
                    if piece is None:
                        continue
                down_budget[dl.host_id] -= nbytes
                uploader.uploaded_bytes += nbytes
                dl.downloaded_bytes += nbytes
                dl.recv_from[uploader.host_id] = (
                    dl.recv_from.get(uploader.host_id, 0.0) + nbytes
                )
                uploader.sent_to[dl.host_id] = (
                    uploader.sent_to.get(dl.host_id, 0.0) + nbytes
                )
                self._account(uploader.asn, dl.asn, nbytes)
                progress += nbytes
                while progress >= piece_size and piece is not None:
                    progress -= piece_size
                    dl.bitfield.add(piece)
                    availability[piece] += 1
                    if self._pieces_ctr is not None:
                        self._pieces_ctr.inc()
                    if dl.complete:
                        dl.finish_time = self.time_s + dt
                        if self._dltime_hist is not None:
                            self._dltime_hist.observe(
                                dl.finish_time - dl.join_time
                            )
                        piece = None
                        break
                    in_flight = {
                        pc for up, (pc, _b) in dl.partial.items()
                        if up != uploader.host_id
                    }
                    piece = dl.pick_piece(uploader, availability, in_flight)
                if piece is None:
                    dl.partial.pop(uploader.host_id, None)
                else:
                    dl.partial[uploader.host_id] = (piece, progress)
        self.time_s += dt

    def run(
        self, *, max_time_s: float = 3600.0, dt: float = 1.0
    ) -> SwarmReport:
        """Run until every leecher finishes or ``max_time_s`` elapses."""
        if dt <= 0:
            raise OverlayError("dt must be positive")
        next_rechoke = 0.0
        while self.time_s < max_time_s:
            if self.time_s >= next_rechoke:
                self._rechoke_all()
                next_rechoke = self.time_s + self.config.rechoke_interval_s
            if all(p.complete for p in self.peers.values()):
                break
            self.step(dt)
        return self.report()

    def report(self) -> SwarmReport:
        leechers = [p for p in self.peers.values() if not p.is_initial_seed]
        done = [p for p in leechers if p.finish_time is not None]
        times = np.array([p.finish_time - p.join_time for p in done]) if done else np.array([])
        return SwarmReport(
            completed=len(done),
            total_leechers=len(leechers),
            mean_download_time_s=float(times.mean()) if times.size else float("nan"),
            median_download_time_s=float(np.median(times)) if times.size else float("nan"),
            intra_as_bytes=self.intra_as_bytes,
            peering_bytes=self.peering_bytes,
            transit_bytes=self.transit_bytes,
            duration_s=self.time_s,
        )


#: The time-stepped model in its role as the equivalence reference for
#: the flow-level data plane (`repro.overlay.bittorrent.flowswarm`).
SwarmSimulationReference = SwarmSimulation
