"""Flow-level BitTorrent swarm: event-driven control plane over a
max-min fair data plane.

The time-stepped :class:`~repro.overlay.bittorrent.swarm.SwarmSimulation`
models every piece of every transfer and caps out at a few hundred
peers.  This module replaces the *data plane* with the flow-level model
of :mod:`repro.sim.flows` while keeping the *control plane* — tracker
announces, tit-for-tat rechoke, biased neighbor selection — event-driven
on the simulation engine:

- each unchoked (uploader → downloader) relationship is a **flow**
  ceilinged by the uploader's per-slot share and crossing the
  downloader's access link (plus, optionally, capacitated transit trunks
  along its AS path);
- rates are the **max-min fair** allocation over those constraints,
  recomputed only on flow arrival/departure epochs (rechoke rounds, peer
  joins and completions), never on a time step — the default
  access-bottlenecked case solves in closed form via
  :func:`~repro.sim.flows.single_link_waterfill`, the capacitated-trunk
  case via :func:`~repro.sim.flows.max_min_rates`;
- between epochs rates are constant, so byte progress, per-class traffic
  accounting and per-AS transit billing are exact integrals.

Piece granularity is modeled as a *parallelism cap*: a downloader with
``m`` pieces left fetches from at most ``m`` uploaders at once (each
piece is bound to one uploader), and bindings are sticky — which is what
reproduces the reference's endgame tail, where a slow uploader holds the
last piece while faster unchokers sit idle.

Peers, flows and the incidence structure live in struct-of-arrays
columns (PR 6 style): one ``bincount`` sweep advances every flow, and a
thousand-peer swarm costs a handful of numpy kernels per epoch.  The
fluid byte-level abstraction is what makes thousands-of-peer locality
sweeps (Cuevas et al., *Deep Diving into BitTorrent Locality*)
tractable; distributional equivalence against the exact time-stepped
twin is asserted on small swarms in ``tests/test_flowswarm_equiv.py``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.errors import OverlayError
from repro.obs import active_registry
from repro.obs.registry import MetricRegistry
from repro.overlay.bittorrent.peer import SwarmConfig
from repro.overlay.bittorrent.swarm import SwarmReport
from repro.overlay.bittorrent.torrent import Torrent
from repro.overlay.bittorrent.tracker import Tracker
from repro.rng import SeedLike, ensure_rng, spawn
from repro.sim.engine import EventHandle, Simulation
from repro.sim.flows import max_min_rates, single_link_waterfill
from repro.underlay.autonomous_system import LinkType
from repro.underlay.cost import TransitBillingLedger
from repro.underlay.network import Underlay

#: traffic classes, indexed by the pair-classification code
_INTRA, _PEERING, _TRANSIT = 0, 1, 2
_CLASS_NAMES = ("intra_as", "peering", "transit")


@dataclass(frozen=True)
class FlowPlaneConfig:
    """Data-plane knobs of the flow-level swarm.

    ``transit_capacity_mbps`` caps each paying AS's transit trunk; the
    default ``None`` leaves transit uncapacitated (access links are then
    the only bottlenecks, matching the time-stepped reference).
    ``billing_bucket_s`` is the sampling width for percentile billing.

    ``work_conserving`` selects the sender model.  ``False`` (default)
    mirrors real BitTorrent — and the time-stepped reference — where an
    uploader splits its capacity *equally* across its unchoke slots and a
    share left unclaimed by a slow receiver is not redistributed: each
    flow gets a rate ceiling of ``up_bps / n_slots``.  ``True`` drops the
    ceilings and lets progressive filling redistribute freely (pure
    max-min over access links), an idealised work-conserving swarm.
    """

    transit_capacity_mbps: Optional[float] = None
    billing_bucket_s: float = 300.0
    work_conserving: bool = False

    def __post_init__(self) -> None:
        if (
            self.transit_capacity_mbps is not None
            and self.transit_capacity_mbps <= 0
        ):
            raise OverlayError("transit capacity must be positive")
        if self.billing_bucket_s <= 0:
            raise OverlayError("billing bucket must be positive")


class _FlowPeer:
    """Control-plane state of one swarm member (bytes live in columns)."""

    __slots__ = (
        "host_id", "row", "asn", "is_initial_seed", "complete",
        "neighbors", "unchoked_rows", "recv_from", "sent_to",
        "join_time", "finish_time", "_rng", "_nbr_rows", "_nbr_len",
    )

    def __init__(
        self, host_id: int, row: int, asn: int, *, is_seed: bool, rng
    ) -> None:
        self.host_id = host_id
        self.row = row
        self.asn = asn
        self.is_initial_seed = is_seed
        self.complete = is_seed
        self.neighbors: set[int] = set()
        self.unchoked_rows: list[int] = []
        self.recv_from: dict[int, float] = {}
        self.sent_to: dict[int, float] = {}
        self.join_time = 0.0
        self.finish_time: Optional[float] = None
        self._rng = rng
        self._nbr_rows = np.zeros(0, dtype=np.int64)
        self._nbr_len = 0


class FlowSwarmSimulation:
    """Single-torrent swarm on the flow-level data plane.

    Drop-in counterpart of :class:`SwarmSimulation` (same constructor
    shape, same :class:`SwarmReport`), but ``run`` drives a discrete-
    event control plane whose epochs reallocate max-min fair flow rates
    instead of stepping wall-clock seconds.
    """

    def __init__(
        self,
        underlay: Underlay,
        torrent: Torrent,
        tracker: Tracker,
        *,
        config: SwarmConfig | None = None,
        flow_config: FlowPlaneConfig | None = None,
        rng: SeedLike = None,
        engine: Simulation | None = None,
    ) -> None:
        self.underlay = underlay
        self.torrent = torrent
        self.tracker = tracker
        self.config = config or SwarmConfig()
        self.flow_config = flow_config or FlowPlaneConfig()
        self._rng = ensure_rng(rng)
        self.engine = engine if engine is not None else Simulation()

        self.peers: dict[int, _FlowPeer] = {}
        self._peer_rows: list[_FlowPeer] = []
        self._host_ids: list[int] = []
        # per-peer columns (capacity-doubled)
        self._bytes = np.zeros(16)
        self._up_bps = np.zeros(16)
        self._down_bps = np.zeros(16)
        self._uploaded = np.zeros(16)
        self._downloaded = np.zeros(16)
        self._asn_col = np.zeros(16, dtype=np.int64)
        self._complete_col = np.zeros(16, dtype=bool)
        self._leecher_col = np.zeros(16, dtype=bool)

        # flow columns, rebuilt per rechoke epoch, masked per completion
        self._f_up = np.zeros(0, dtype=np.int64)
        self._f_down = np.zeros(0, dtype=np.int64)
        self._f_pair = np.zeros(0, dtype=np.int64)
        self._f_rate = np.zeros(0)
        self._f_bytes = np.zeros(0)
        self._f_alive = np.zeros(0, dtype=bool)
        self._f_parked = np.zeros(0, dtype=bool)
        # sticky piece bindings: (up_row << 32 | down_row) keys of the
        # flows kept transferring the last time piece-granularity
        # parking was applied
        self._bound_keys = np.zeros(0, dtype=np.int64)

        # AS-pair classification registry (grows to at most |AS|^2)
        self._pair_id: dict[tuple[int, int], int] = {}
        self._pair_class: list[int] = []
        self._pair_payers: list[tuple[int, ...]] = []
        self._pair_trunks: list[tuple[int, ...]] = []
        self._pair_class_arr = np.zeros(0, dtype=np.int64)
        self._pair_extra_len = np.zeros(0, dtype=np.int64)
        # per paying AS transit trunk (only when capacitated)
        self._trunk_of_as: dict[int, int] = {}
        self._trunk_caps: list[float] = []
        # pair -> payers incidence (CSR-ish), for vectorised billing
        self._payer_asns: list[int] = []
        self._payer_idx: dict[int, int] = {}
        self._pp_pair = np.zeros(0, dtype=np.int64)
        self._pp_payer = np.zeros(0, dtype=np.int64)
        self._pp_dirty = False

        # accounting
        self.intra_as_bytes = 0.0
        self.peering_bytes = 0.0
        self.transit_bytes = 0.0
        self.paid_transit: dict[int, float] = {}
        self.billing = TransitBillingLedger(
            bucket_seconds=self.flow_config.billing_bucket_s
        )
        self.reallocs_total = 0

        self._last_adv = self.engine.now
        self._last_activity = self.engine.now
        self._sync_handle: Optional[EventHandle] = None
        self._pending_joins = 0
        self._started = False

        self._bytes_ctr = None
        self._announce_ctr = None
        self._dltime_hist = None
        self._realloc_ctr = None
        registry = active_registry()
        if registry is not None:
            self.instrument(registry)

    def instrument(self, registry: MetricRegistry) -> None:
        """Same instruments as the time-stepped twin, plus reallocation
        epochs of the flow plane."""
        self._announce_ctr = registry.counter(
            "bittorrent_messages_sent_total",
            "BitTorrent control messages sent, by kind.",
            ("kind",),
        )
        self._bytes_ctr = registry.counter(
            "bittorrent_bytes_total",
            "Payload bytes transferred, by underlay traffic class.",
            ("traffic_class",),
        )
        self._dltime_hist = registry.histogram(
            "bittorrent_download_time_s",
            "Per-leecher time to complete the torrent (simulated seconds).",
        )
        self._realloc_ctr = registry.counter(
            "flow_reallocations_total",
            "Max-min rate recomputations (flow arrival/departure epochs).",
        )

    # -- population ------------------------------------------------------------
    def _grow_columns(self, need: int) -> None:
        cap = self._bytes.size
        if need <= cap:
            return
        new = max(need, cap * 2)
        for name in ("_bytes", "_up_bps", "_down_bps", "_uploaded",
                     "_downloaded"):
            col = getattr(self, name)
            grown = np.zeros(new)
            grown[: col.size] = col
            setattr(self, name, grown)
        grown = np.zeros(new, dtype=np.int64)
        grown[: self._asn_col.size] = self._asn_col
        self._asn_col = grown
        for name in ("_complete_col", "_leecher_col"):
            col = getattr(self, name)
            grown = np.zeros(new, dtype=bool)
            grown[: col.size] = col
            setattr(self, name, grown)

    def add_peer(self, host_id: int, *, is_seed: bool = False) -> _FlowPeer:
        """Join a peer now: announce to the tracker, link neighbors."""
        if host_id in self.peers:
            raise OverlayError(f"peer {host_id} already in swarm")
        host = self.underlay.host(host_id)
        (peer_rng,) = spawn(self._rng, 1)
        row = len(self._peer_rows)
        self._grow_columns(row + 1)
        peer = _FlowPeer(
            host_id, row, host.asn, is_seed=is_seed, rng=peer_rng
        )
        peer.join_time = self.engine.now
        self.peers[host_id] = peer
        self._peer_rows.append(peer)
        self._host_ids.append(host_id)
        total = float(self.torrent.total_bytes)
        self._bytes[row] = total if is_seed else 0.0
        self._up_bps[row] = host.resources.bandwidth_up_kbps * 1000.0 / 8.0
        self._down_bps[row] = host.resources.bandwidth_down_kbps * 1000.0 / 8.0
        self._asn_col[row] = host.asn
        self._complete_col[row] = is_seed
        self._leecher_col[row] = not is_seed
        if self._announce_ctr is not None:
            self._announce_ctr.inc(kind="TRACKER_ANNOUNCE")
        peer_list = self.tracker.announce(host_id)
        peer.neighbors.update(peer_list)
        for p in peer_list:
            other = self.peers.get(p)
            if other is not None:
                other.neighbors.add(host_id)
        return peer

    def populate(
        self,
        leechers: Sequence[int],
        seeds: Sequence[int],
        *,
        arrival_span_s: float = 0.0,
    ) -> None:
        """Schedule every join on the engine (seeds first, then leechers
        spread uniformly over ``arrival_span_s``) in one
        :meth:`~repro.sim.engine.Simulation.schedule_many` batch."""
        if arrival_span_s < 0:
            raise OverlayError("arrival span must be non-negative")
        items: list[tuple[float, object, tuple]] = [
            (0.0, self._join, (s, True)) for s in seeds
        ]
        if arrival_span_s > 0 and len(leechers) > 1:
            offsets = np.sort(
                self._rng.uniform(0.0, arrival_span_s, size=len(leechers))
            )
        else:
            offsets = np.zeros(len(leechers))
        items.extend(
            (float(off), self._join, (l, False))
            for off, l in zip(offsets, leechers)
        )
        self._pending_joins += len(items)
        self.engine.schedule_many(items)

    def _join(self, host_id: int, is_seed: bool) -> None:
        self._pending_joins -= 1
        self.add_peer(host_id, is_seed=is_seed)

    # -- AS-pair classification --------------------------------------------------
    def _pair(self, src_asn: int, dst_asn: int) -> int:
        """Classify one AS pair once: traffic class, paying ASes, and the
        capacitated transit trunks its route crosses."""
        key = (src_asn, dst_asn)
        pid = self._pair_id.get(key)
        if pid is not None:
            return pid
        if src_asn == dst_asn:
            cls, payers = _INTRA, ()
        else:
            payers_l = []
            crossed = False
            for a, b, link_type in self.underlay.routing.path_links(
                src_asn, dst_asn
            ):
                if link_type is LinkType.TRANSIT:
                    crossed = True
                    payer = (
                        a
                        if b in self.underlay.topology.asys(a).providers
                        else b
                    )
                    payers_l.append(payer)
            cls = _TRANSIT if crossed else _PEERING
            payers = tuple(payers_l)
        trunks: tuple[int, ...] = ()
        if self.flow_config.transit_capacity_mbps is not None and payers:
            cap = self.flow_config.transit_capacity_mbps * 1e6 / 8.0
            ids = []
            for payer in payers:
                trunk = self._trunk_of_as.get(payer)
                if trunk is None:
                    trunk = len(self._trunk_caps)
                    self._trunk_of_as[payer] = trunk
                    self._trunk_caps.append(cap)
                ids.append(trunk)
            trunks = tuple(sorted(set(ids)))
        pid = len(self._pair_class)
        self._pair_id[key] = pid
        self._pair_class.append(cls)
        self._pair_payers.append(payers)
        self._pair_trunks.append(trunks)
        self._pair_class_arr = np.asarray(self._pair_class, dtype=np.int64)
        self._pair_extra_len = np.asarray(
            [len(t) for t in self._pair_trunks], dtype=np.int64
        )
        self._pp_dirty = True
        return pid

    def _payer_members(self) -> tuple[np.ndarray, np.ndarray]:
        """Pair → paying-AS incidence arrays for vectorised billing."""
        if self._pp_dirty:
            pp_pair: list[int] = []
            pp_payer: list[int] = []
            for pid, payers in enumerate(self._pair_payers):
                for asn in payers:
                    idx = self._payer_idx.get(asn)
                    if idx is None:
                        idx = len(self._payer_asns)
                        self._payer_idx[asn] = idx
                        self._payer_asns.append(asn)
                    pp_pair.append(pid)
                    pp_payer.append(idx)
            self._pp_pair = np.asarray(pp_pair, dtype=np.int64)
            self._pp_payer = np.asarray(pp_payer, dtype=np.int64)
            self._pp_dirty = False
        return self._pp_pair, self._pp_payer

    # -- control plane: rechoke + flow table -------------------------------------
    def _nbr_rows(self, peer: _FlowPeer) -> np.ndarray:
        """Neighbor rows of a peer, cached until its neighbor set grows."""
        if len(peer.neighbors) != peer._nbr_len:
            peers = self.peers
            peer._nbr_rows = np.fromiter(
                (peers[nid].row for nid in peer.neighbors if nid in peers),
                dtype=np.int64,
            )
            peer._nbr_len = len(peer.neighbors)
        return peer._nbr_rows

    def _rechoke_and_rebuild(self) -> None:
        """Recompute every peer's unchoke set (tit-for-tat; CAT same-AS
        preference when configured) and materialise the flow table.

        Fluid interest: an incomplete peer wants data from anyone who has
        any bytes (the piece-level overlap of the reference twin averages
        out at flow granularity).
        """
        n = len(self._peer_rows)
        # a leecher can only serve *complete* pieces, so it needs at
        # least one piece's worth of bytes before it can upload
        has_data = self._complete_col[:n] | (
            self._bytes[:n] >= float(self.torrent.piece_size_bytes)
        )
        wants = ~self._complete_col[:n]
        host_ids = self._host_ids
        asn_col = self._asn_col
        cfg = self.config
        cost_aware = cfg.cost_aware
        regular = cfg.regular_slots
        optimistic = cfg.optimistic_slots
        ups: list[int] = []
        downs: list[int] = []
        pairs: list[int] = []
        pair_of = self._pair
        for peer in self._peer_rows:
            if not has_data[peer.row]:
                peer.unchoked_rows = []
                continue
            nbr = self._nbr_rows(peer)
            cand = nbr[wants[nbr]]
            if cand.size == 0:
                peer.unchoked_rows = []
                peer.recv_from.clear()
                peer.sent_to.clear()
                continue
            # leechers rank by bytes received from the peer (tit-for-tat),
            # seeds by bytes recently sent (serve fast downloaders)
            ranking = peer.recv_from if not peer.complete else peer.sent_to
            if cost_aware:
                my_asn = peer.asn

                def tft_key(r: int) -> tuple:
                    return (
                        asn_col[r] == my_asn,
                        ranking.get(host_ids[r], 0.0),
                    )
            else:
                def tft_key(r: int) -> float:
                    return ranking.get(host_ids[r], 0.0)
            ranked = sorted(cand.tolist(), key=tft_key, reverse=True)
            chosen = ranked[:regular]
            rest = ranked[regular:]
            for _ in range(optimistic):
                if not rest:
                    break
                chosen.append(rest.pop(int(peer._rng.integers(len(rest)))))
            peer.unchoked_rows = chosen
            peer.recv_from.clear()
            peer.sent_to.clear()
            up_row = peer.row
            up_asn = peer.asn
            for r in chosen:
                ups.append(up_row)
                downs.append(r)
                pairs.append(pair_of(up_asn, int(asn_col[r])))
        nf = len(ups)
        self._f_up = np.asarray(ups, dtype=np.int64)
        self._f_down = np.asarray(downs, dtype=np.int64)
        self._f_pair = np.asarray(pairs, dtype=np.int64)
        self._f_rate = np.zeros(nf)
        self._f_bytes = np.zeros(nf)
        self._f_alive = np.ones(nf, dtype=bool)
        self._f_parked = np.zeros(nf, dtype=bool)

    # -- data plane --------------------------------------------------------------
    def _fold_flow_bytes(self, rows: np.ndarray) -> None:
        """Credit accumulated per-flow bytes to the tit-for-tat counters
        of the endpoints (on teardown, and before each rechoke ranks)."""
        rows = rows[self._f_bytes[rows] > 0.0]
        peers_by_row = self._peer_rows
        f_up, f_down, f_bytes = self._f_up, self._f_down, self._f_bytes
        for k in rows:
            moved = f_bytes[k]
            up = peers_by_row[f_up[k]]
            down = peers_by_row[f_down[k]]
            down.recv_from[up.host_id] = (
                down.recv_from.get(up.host_id, 0.0) + moved
            )
            up.sent_to[down.host_id] = (
                up.sent_to.get(down.host_id, 0.0) + moved
            )
            f_bytes[k] = 0.0

    def _apply_parking(self) -> None:
        """Piece-granularity parallelism cap (the fluid analogue of the
        reference's piece binding): a downloader with ``m`` pieces left
        can fetch from at most ``m`` uploaders concurrently — each piece
        is bound to one uploader, and the extra unchoke slots sit idle
        rather than duplicating a piece in flight.  Bindings are sticky
        (``self._bound_keys``): a slow uploader keeps its piece until
        done, which is exactly what stretches the reference's endgame
        tail.  One lexsort over the affected flows ranks existing
        bindings first, then flows mid-transfer, then fresh ones (random
        within each tier); a segment-rank cut keeps the top ``m`` per
        downloader.
        """
        self._f_parked[:] = False
        alive = np.flatnonzero(self._f_alive)
        if alive.size == 0:
            return
        n = len(self._peer_rows)
        k = np.bincount(self._f_down[alive], minlength=n)
        total = float(self.torrent.total_bytes)
        piece = float(self.torrent.piece_size_bytes)
        m = np.ceil((total - self._bytes[:n]) / piece)
        down_a = self._f_down[alive]
        sub = alive[(~self._complete_col[down_a]) & (k[down_a] > m[down_a])]
        if sub.size == 0:
            self._bound_keys = np.zeros(0, dtype=np.int64)
            return
        keys = (self._f_up[sub] << 32) | self._f_down[sub]
        bound = np.isin(keys, self._bound_keys)
        order = np.lexsort((
            self._rng.random(sub.size),
            self._f_bytes[sub] <= 0.0,
            ~bound,
            self._f_down[sub],
        ))
        srows = sub[order]
        d_sorted = self._f_down[srows]
        change = np.empty(srows.size, dtype=bool)
        change[0] = True
        np.not_equal(d_sorted[1:], d_sorted[:-1], out=change[1:])
        gstart = np.flatnonzero(change)
        pos = np.arange(srows.size) - gstart[np.cumsum(change) - 1]
        keep = pos < m[d_sorted]
        self._f_parked[srows[~keep]] = True
        kept = srows[keep]
        self._bound_keys = (self._f_up[kept] << 32) | self._f_down[kept]

    def _reallocate(self) -> None:
        """Max-min rates for the live, unparked flow rows."""
        self._apply_parking()
        self._f_rate[:] = 0.0
        alive = np.flatnonzero(self._f_alive & ~self._f_parked)
        if alive.size == 0:
            self._schedule_sync()
            return
        n = len(self._peer_rows)
        up = self._f_up[alive]
        down = self._f_down[alive]
        pair = self._f_pair[alive]
        extra = self._pair_extra_len[pair]
        if self.flow_config.work_conserving:
            flow_cap = None
        else:
            # equal split of each uploader's capacity across its slots;
            # parked slots still count (their unclaimed share is wasted,
            # exactly as in the reference's equal split)
            slots = np.bincount(self._f_up[self._f_alive], minlength=n)
            flow_cap = self._up_bps[up] / slots[up]
        if flow_cap is not None and not extra.any():
            # access-bottlenecked fast path: the slot ceilings sum to the
            # uplink, so only the downlink is shared — closed form
            rates = single_link_waterfill(
                self._down_bps[:n], down, flow_cap
            )
        else:
            counts = 2 + extra
            indptr = np.zeros(alive.size + 1, dtype=np.int64)
            np.cumsum(counts, out=indptr[1:])
            indices = np.zeros(indptr[-1], dtype=np.int64)
            starts = indptr[:-1]
            indices[starts] = up
            indices[starts + 1] = n + down
            if extra.any():
                trunk_base = 2 * n
                for j in np.flatnonzero(extra):
                    trunks = self._pair_trunks[pair[j]]
                    indices[starts[j] + 2 : indptr[j + 1]] = [
                        trunk_base + t for t in trunks
                    ]
            capacity = np.concatenate(
                [self._up_bps[:n], self._down_bps[:n],
                 np.asarray(self._trunk_caps)]
            )
            rates = max_min_rates(capacity, indptr, indices, flow_cap)
        self._f_rate[alive] = rates
        self.reallocs_total += 1
        if self._realloc_ctr is not None:
            self._realloc_ctr.inc()
        self._schedule_sync()

    def _advance_to(self, t: float) -> None:
        """Integrate flow progress from the last epoch up to time ``t``."""
        dt = t - self._last_adv
        self._last_adv = t
        if dt <= 0.0 or self._f_rate.size == 0:
            return
        delta = self._f_rate * dt
        if not delta.any():
            return
        self._last_activity = t
        self._f_bytes += delta
        n = len(self._peer_rows)
        dl = np.bincount(self._f_down, weights=delta, minlength=n)
        ul = np.bincount(self._f_up, weights=delta, minlength=n)
        self._bytes[:n] += dl
        self._downloaded[:n] += dl
        self._uploaded[:n] += ul
        n_pairs = len(self._pair_class)
        pair_sum = np.bincount(
            self._f_pair, weights=delta, minlength=n_pairs
        )
        cls_sum = np.bincount(
            self._pair_class_arr, weights=pair_sum, minlength=3
        )
        self.intra_as_bytes += float(cls_sum[_INTRA])
        self.peering_bytes += float(cls_sum[_PEERING])
        self.transit_bytes += float(cls_sum[_TRANSIT])
        if self._bytes_ctr is not None:
            for code, name in enumerate(_CLASS_NAMES):
                if cls_sum[code] > 0:
                    self._bytes_ctr.inc(
                        float(cls_sum[code]), traffic_class=name
                    )
        if cls_sum[_TRANSIT] > 0:
            pp_pair, pp_payer = self._payer_members()
            payer_bytes = np.bincount(
                pp_payer,
                weights=pair_sum[pp_pair],
                minlength=len(self._payer_asns),
            )
            when = t - dt  # interval start; buckets are coarse vs epochs
            paid = self.paid_transit
            for i in np.flatnonzero(payer_bytes):
                asn = self._payer_asns[i]
                moved = float(payer_bytes[i])
                paid[asn] = paid.get(asn, 0.0) + moved
                self.billing.record(asn, when, moved)

    # -- completions -------------------------------------------------------------
    def _schedule_sync(self) -> None:
        """(Re)schedule the data-plane sync at the earliest projected
        leecher completion under the current rates."""
        if self._sync_handle is not None:
            self._sync_handle.cancel()
            self._sync_handle = None
        n = len(self._peer_rows)
        if n == 0:
            return
        rate_in = np.bincount(
            self._f_down, weights=self._f_rate, minlength=n
        )
        pending = (~self._complete_col[:n]) & (rate_in > 0.0)
        if not pending.any():
            return
        total = float(self.torrent.total_bytes)
        remaining = total - self._bytes[:n][pending]
        eta = float((remaining / rate_in[pending]).min())
        self._sync_handle = self.engine.schedule(
            max(eta, 0.0), self._on_sync
        )

    def _on_sync(self) -> None:
        self._sync_handle = None
        self._advance_to(self.engine.now)
        self._complete_finished()
        self._reallocate()

    def _complete_finished(self) -> None:
        """Promote leechers whose byte column reached the torrent size."""
        n = len(self._peer_rows)
        total = float(self.torrent.total_bytes)
        done_rows = np.flatnonzero(
            (~self._complete_col[:n]) & (self._bytes[:n] >= total - 0.5)
        )
        if done_rows.size == 0:
            return
        now = self.engine.now
        for row in done_rows:
            peer = self._peer_rows[row]
            peer.complete = True
            peer.finish_time = now
            self._complete_col[row] = True
            self._bytes[row] = total
            if self._dltime_hist is not None:
                self._dltime_hist.observe(now - peer.join_time)
        # tear down the completed peers' inbound flows
        dead = self._f_alive & np.isin(self._f_down, done_rows)
        rows = np.flatnonzero(dead)
        if rows.size:
            self._fold_flow_bytes(rows)
            self._f_alive[rows] = False
            self._f_rate[rows] = 0.0

    # -- epochs ------------------------------------------------------------------
    def _on_rechoke(self) -> None:
        self._advance_to(self.engine.now)
        self._complete_finished()
        # rankings must see the bytes moved since the last rechoke
        self._fold_flow_bytes(np.flatnonzero(self._f_alive))
        self._rechoke_and_rebuild()
        self._reallocate()
        n = len(self._peer_rows)
        incomplete = (~self._complete_col[:n]) & self._leecher_col[:n]
        # arrival-span populations keep the rechoke loop alive until the
        # last scheduled join has fired
        if incomplete.any() or self._pending_joins > 0:
            self.engine.schedule(
                self.config.rechoke_interval_s, self._on_rechoke
            )

    # -- runs --------------------------------------------------------------------
    def start(self) -> None:
        """Arm the control plane (first rechoke at the current time)."""
        if self._started:
            return
        self._started = True
        self._last_adv = self.engine.now
        self.engine.schedule(0.0, self._on_rechoke)

    def run(self, *, max_time_s: float = 3600.0) -> SwarmReport:
        """Drive the engine until every leecher finishes (the event queue
        drains) or ``max_time_s``; returns the swarm report."""
        self.start()
        self.engine.run(until=max_time_s)
        self._advance_to(min(self.engine.now, max_time_s))
        self._complete_finished()
        return self.report()

    def download_times_by_as(self) -> dict[int, np.ndarray]:
        """Completed leechers' download times grouped by home AS — the
        per-ISP fairness view of a locality sweep (aggregate medians hide
        the ASes whose peers a biased tracker starves)."""
        out: dict[int, list[float]] = {}
        for p in self._peer_rows:
            if p.is_initial_seed or p.finish_time is None:
                continue
            out.setdefault(p.asn, []).append(p.finish_time - p.join_time)
        return {asn: np.asarray(ts) for asn, ts in out.items()}

    def report(self) -> SwarmReport:
        leechers = [p for p in self._peer_rows if not p.is_initial_seed]
        done = [p for p in leechers if p.finish_time is not None]
        times = (
            np.array([p.finish_time - p.join_time for p in done])
            if done
            else np.array([])
        )
        return SwarmReport(
            completed=len(done),
            total_leechers=len(leechers),
            mean_download_time_s=float(times.mean()) if times.size else float("nan"),
            median_download_time_s=float(np.median(times)) if times.size else float("nan"),
            intra_as_bytes=self.intra_as_bytes,
            peering_bytes=self.peering_bytes,
            transit_bytes=self.transit_bytes,
            duration_s=self._last_activity - (
                self._peer_rows[0].join_time if self._peer_rows else 0.0
            ),
        )
