"""Swarm peer: bitfield, choking and piece selection.

Standard BitTorrent behaviours, simplified to the granularity the Bindal
experiments need:

- **rarest-first** piece selection over the neighbour set;
- **tit-for-tat choking**: every rechoke interval a peer unchokes its
  ``regular_slots`` best recent uploaders plus one optimistic random
  interested neighbour; seeds rank by recent download rate given;
- **cost-aware unchoking** (CAT, Yamazaki et al. [32]): an optional mode
  preferring same-AS neighbours among otherwise comparable candidates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.errors import OverlayError
from repro.overlay.bittorrent.torrent import Bitfield, Torrent
from repro.rng import SeedLike, ensure_rng
from repro.underlay.hosts import Host


@dataclass(frozen=True)
class SwarmConfig:
    """Choking parameters: unchoke slots, rechoke interval, CAT mode."""
    regular_slots: int = 4
    optimistic_slots: int = 1
    rechoke_interval_s: float = 10.0
    cost_aware: bool = False          # CAT-style same-AS preference

    def __post_init__(self) -> None:
        if self.regular_slots < 1 or self.optimistic_slots < 0:
            raise OverlayError("invalid unchoke slot configuration")
        if self.rechoke_interval_s <= 0:
            raise OverlayError("rechoke interval must be positive")


class SwarmPeer:
    """A swarm participant: bitfield, neighbours, tit-for-tat state."""
    def __init__(
        self,
        host: Host,
        torrent: Torrent,
        config: SwarmConfig,
        *,
        is_seed: bool = False,
        rng: SeedLike = None,
    ) -> None:
        self.host = host
        self.torrent = torrent
        self.config = config
        self.bitfield = Bitfield(torrent.n_pieces, complete=is_seed)
        self.is_initial_seed = is_seed
        self.neighbors: set[int] = set()
        self.unchoked: set[int] = set()   # whom *we* are uploading to
        self._rng = ensure_rng(rng)
        # rolling byte counters for tit-for-tat (reset each rechoke)
        self.recv_from: dict[int, float] = {}
        self.sent_to: dict[int, float] = {}
        # per-uploader progress toward the piece currently fetched from them
        self.partial: dict[int, tuple[int, float]] = {}  # uploader -> (piece, bytes)
        self.finish_time: Optional[float] = None
        self.join_time: float = 0.0
        self.uploaded_bytes: float = 0.0
        self.downloaded_bytes: float = 0.0

    # -- identity ----------------------------------------------------------------
    @property
    def host_id(self) -> int:
        return self.host.host_id

    @property
    def asn(self) -> int:
        return self.host.asn

    @property
    def up_bps(self) -> float:
        return self.host.resources.bandwidth_up_kbps * 1000.0 / 8.0

    @property
    def down_bps(self) -> float:
        return self.host.resources.bandwidth_down_kbps * 1000.0 / 8.0

    @property
    def complete(self) -> bool:
        return self.bitfield.complete

    # -- choking -----------------------------------------------------------------
    def rechoke(self, interested: dict[int, "SwarmPeer"]) -> None:
        """Recompute the unchoke set from the interested neighbours."""
        if not interested:
            self.unchoked = set()
            return
        cfg = self.config

        def tft_key(pid: int) -> tuple:
            # leechers rank by bytes received from the peer (tit-for-tat),
            # seeds by bytes recently sent (serve fast downloaders).
            rate = (
                self.sent_to.get(pid, 0.0)
                if self.complete
                else self.recv_from.get(pid, 0.0)
            )
            same_as = interested[pid].asn == self.asn
            if cfg.cost_aware:
                return (same_as, rate)
            return (rate,)

        ranked = sorted(interested, key=tft_key, reverse=True)
        chosen = set(ranked[: cfg.regular_slots])
        rest = [p for p in ranked if p not in chosen]
        for _ in range(cfg.optimistic_slots):
            if not rest:
                break
            pick = rest.pop(int(self._rng.integers(len(rest))))
            chosen.add(pick)
        self.unchoked = chosen
        self.recv_from.clear()
        self.sent_to.clear()

    # -- piece selection --------------------------------------------------------------
    def pick_piece(
        self, uploader: "SwarmPeer", availability: np.ndarray, in_flight: set[int]
    ) -> Optional[int]:
        """Rarest-first among pieces the uploader has and we lack, avoiding
        pieces already being fetched from someone else."""
        wanted = (uploader.bitfield.have() - self.bitfield.have()) - in_flight
        if not wanted:
            return None
        wanted_list = sorted(wanted)
        avail = availability[wanted_list]
        best = int(np.argmin(avail))
        # random tie-break among equal-rarity pieces
        ties = [p for p, a in zip(wanted_list, avail) if a == avail[best]]
        return int(ties[int(self._rng.integers(len(ties)))])

    def interested_in(self, other: "SwarmPeer") -> bool:
        return bool(other.bitfield.have() - self.bitfield.have())
