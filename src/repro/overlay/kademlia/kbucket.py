"""K-buckets with pluggable retention policy.

Plain Kademlia retains the *oldest live* contacts (LRU with head
preference) because old contacts predict future liveness.  The proximity
variant of Kaune et al. [17] instead retains the *lowest-latency* contacts
among the candidates for a full bucket — "embracing the peer next door" —
which leaves routing correctness untouched (any contact in the right
bucket works) while making every hop cheaper for the underlay.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.errors import OverlayError


@dataclass(frozen=True)
class Contact:
    """A routing-table entry: overlay id + transport address (+ measured
    proximity, used only by the PNS policy)."""

    node_id: int
    host_id: int
    rtt_ms: float = float("inf")


class KBucket:
    """A bounded, ordered list of contacts.

    ``proximity`` False: classic LRU — new contacts appended, existing
    contacts moved to the tail on update, inserts into a full bucket are
    dropped (we skip the liveness-ping eviction dance; under our churn
    model stale contacts are removed explicitly).

    ``proximity`` True: the bucket keeps the k lowest-RTT contacts seen.
    """

    def __init__(self, k: int = 8, proximity: bool = False) -> None:
        if k < 1:
            raise OverlayError("bucket size must be >= 1")
        self.k = k
        self.proximity = proximity
        self._contacts: list[Contact] = []

    def __len__(self) -> int:
        return len(self._contacts)

    def __contains__(self, node_id: int) -> bool:
        return any(c.node_id == node_id for c in self._contacts)

    def contacts(self) -> list[Contact]:
        return list(self._contacts)

    def get(self, node_id: int) -> Optional[Contact]:
        for c in self._contacts:
            if c.node_id == node_id:
                return c
        return None

    def update(self, contact: Contact) -> bool:
        """Insert or refresh a contact; returns True if it is (now) in the
        bucket."""
        for i, c in enumerate(self._contacts):
            if c.node_id == contact.node_id:
                # refresh: move to tail (LRU) or keep best RTT (proximity)
                del self._contacts[i]
                if self.proximity and c.rtt_ms < contact.rtt_ms:
                    contact = c
                self._contacts.append(contact)
                return True
        if len(self._contacts) < self.k:
            self._contacts.append(contact)
            return True
        if self.proximity:
            worst_i = max(
                range(len(self._contacts)), key=lambda i: self._contacts[i].rtt_ms
            )
            if contact.rtt_ms < self._contacts[worst_i].rtt_ms:
                del self._contacts[worst_i]
                self._contacts.append(contact)
                return True
        return False

    def remove(self, node_id: int) -> None:
        self._contacts = [c for c in self._contacts if c.node_id != node_id]
