"""Kademlia DHT with proximity neighbor selection (Kaune et al. [17])."""

from repro.overlay.kademlia.id_space import (
    ID_BITS,
    ID_SPACE,
    bucket_index,
    key_for,
    random_id,
    random_id_in_bucket,
    sort_by_distance,
    xor_distance,
)
from repro.overlay.kademlia.kbucket import Contact, KBucket
from repro.overlay.kademlia.network import KademliaNetwork, LookupStats
from repro.overlay.kademlia.node import KademliaConfig, KademliaNode, LookupResult
from repro.overlay.kademlia.routing_table import RoutingTable
from repro.overlay.kademlia.scoped import ScopedHashing, ScopedKademlia

__all__ = [
    "Contact",
    "ID_BITS",
    "ID_SPACE",
    "KBucket",
    "KademliaConfig",
    "KademliaNetwork",
    "KademliaNode",
    "LookupResult",
    "LookupStats",
    "RoutingTable",
    "ScopedHashing",
    "ScopedKademlia",
    "bucket_index",
    "key_for",
    "random_id",
    "random_id_in_bucket",
    "sort_by_distance",
    "xor_distance",
]
