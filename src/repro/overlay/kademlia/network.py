"""Kademlia network orchestration: population, bootstrap, workload stats."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.errors import OverlayError
from repro.obs import active_registry
from repro.obs.registry import MetricRegistry
from repro.overlay.kademlia.id_space import key_for, random_id
from repro.overlay.kademlia.kbucket import Contact
from repro.overlay.kademlia.node import KademliaConfig, KademliaNode, LookupResult
from repro.rng import SeedLike, ensure_rng
from repro.sim.engine import Simulation
from repro.sim.messages import MessageBus
from repro.sim.shard import ShardedScheduler, sharded_scheduling_enabled
from repro.underlay.network import Underlay


@dataclass
class LookupStats:
    """Aggregate over a batch of lookups."""

    n: int
    success_rate: float
    mean_latency_ms: float
    median_latency_ms: float
    mean_rpcs: float

    @staticmethod
    def from_results(results: Sequence[LookupResult], value_lookups: bool) -> "LookupStats":
        results = list(results)
        if not results:
            raise OverlayError("no lookup results to aggregate")
        lat = np.array([r.latency_ms for r in results])
        ok = (
            np.array([r.found_value for r in results])
            if value_lookups
            else np.array([bool(r.closest) for r in results])
        )
        return LookupStats(
            n=len(results),
            success_rate=float(ok.mean()),
            mean_latency_ms=float(lat.mean()),
            median_latency_ms=float(np.median(lat)),
            mean_rpcs=float(np.mean([r.rpcs_sent for r in results])),
        )


class KademliaNetwork:
    """A Kademlia DHT over the underlay's host population."""

    def __init__(
        self,
        underlay: Underlay,
        sim: Simulation,
        bus: MessageBus,
        *,
        config: KademliaConfig | None = None,
        rng: SeedLike = None,
        use_coordinate_estimates: bool = True,
    ) -> None:
        self.underlay = underlay
        self.sim = sim
        self.bus = bus
        self.config = config or KademliaConfig()
        self._rng = ensure_rng(rng)
        self.nodes: dict[int, KademliaNode] = {}
        self._registry: Optional[MetricRegistry] = active_registry()
        # When a proximity technique is on, nodes estimate the RTT of
        # heard-of contacts from network coordinates (§3.2 prediction);
        # modelled as the true RTT with multiplicative coordinate error.
        self._estimator = None
        cfg = self.config
        if use_coordinate_estimates and (cfg.proximity_buckets or cfg.proximity_routing):
            err_rng = ensure_rng(int(self._rng.integers(2**31)))

            def estimator(src: int, dst: int) -> float:
                true_rtt = 2.0 * self.underlay.one_way_delay(src, dst)
                return true_rtt * float(np.clip(err_rng.normal(1.0, 0.15), 0.5, 1.8))

            self._estimator = estimator

    def instrument(self, registry: MetricRegistry) -> None:
        """Count RPCs by kind and record lookup hop/latency histograms
        into ``registry`` (applies to current and future nodes)."""
        self._registry = registry
        for node in self.nodes.values():
            node.instrument(registry, "kademlia")

    def add_all_hosts(self) -> None:
        self.add_hosts(self.underlay.hosts)

    def add_hosts(self, hosts) -> None:
        """Add a subset of the underlay's hosts to this DHT."""
        for h in hosts:
            node = KademliaNode(
                h, self.sim, self.bus, random_id(self._rng), self.config,
                rtt_estimator=self._estimator,
            )
            if self._registry is not None:
                node.instrument(self._registry, "kademlia")
            node.go_online()
            self.nodes[h.host_id] = node

    def bootstrap_all(
        self,
        *,
        seeds_per_node: int = 3,
        stagger_ms: float = 500.0,
        sharded: Optional[bool] = None,
    ) -> None:
        """Every node seeds its table from a few random already-known nodes
        and performs a self-lookup; staggered so the mesh forms gradually.

        ``sharded`` (default: the process-wide setting) routes the
        per-node bootstrap events through an AS-sharded
        :class:`ShardedScheduler` — one batched ``schedule_many`` insert
        for the whole population, bit-identical to the serial path."""
        ids = list(self.nodes)
        if len(ids) < 2:
            raise OverlayError("need at least two nodes to bootstrap")
        if sharded is None:
            sharded = sharded_scheduling_enabled()
        scheduler = ShardedScheduler(self.sim) if sharded else None
        for i, hid in enumerate(ids):
            node = self.nodes[hid]
            pool = [x for x in ids if x != hid]
            k = min(seeds_per_node, len(pool))
            chosen = self._rng.choice(len(pool), size=k, replace=False)
            seeds = [self.nodes[pool[int(c)]].contact() for c in chosen]
            delay = float(self._rng.uniform(0, stagger_ms)) + i * 2.0
            if scheduler is not None:
                scheduler.defer(self.underlay.asn_of(hid), delay, node.bootstrap, seeds)
            else:
                self.sim.schedule(delay, node.bootstrap, seeds)
        if scheduler is not None:
            scheduler.flush()

    # -- maintenance ---------------------------------------------------------------
    def start_maintenance(
        self, *, refresh_period_ms: float = 60_000.0
    ) -> None:
        """Periodic bucket refreshes for every online node (staggered)."""
        from repro.sim.process import PeriodicProcess

        self._maintenance: list[PeriodicProcess] = []
        for node in self.nodes.values():
            self._maintenance.append(
                PeriodicProcess(
                    self.sim,
                    refresh_period_ms,
                    lambda n=node: n.online and n.refresh_buckets(self._rng),
                    jitter=0.4,
                    rng=self._rng,
                )
            )

    def stop_maintenance(self) -> None:
        for p in getattr(self, "_maintenance", []):
            p.stop()

    def republish(self, key: int) -> int:
        """Re-publish a key from every current holder to the (possibly
        changed) k closest nodes; returns the number of holders."""
        holders = [
            (hid, node) for hid, node in self.nodes.items()
            if node.online and key in node.storage
        ]
        for _hid, node in holders:
            for value in set(node.storage[key]):
                node.store_value(key, value)
        return len(holders)

    # -- workload -----------------------------------------------------------------
    def publish(self, owner: int, content: object) -> int:
        key = key_for(content)
        self.nodes[owner].store_value(key, owner)
        return key

    def lookup_value(
        self, origin: int, key: int, results: list[LookupResult]
    ) -> None:
        self.nodes[origin].iterative_find_value(key, results.append)

    def lookup_node(
        self, origin: int, target: int, results: list[LookupResult]
    ) -> None:
        self.nodes[origin].iterative_find_node(target, results.append)

    def run_value_workload(
        self, n_publishes: int, n_lookups: int, *, settle_ms: float = 60_000.0
    ) -> LookupStats:
        """Publish random content from random owners, let STOREs settle,
        then issue lookups from random origins; returns aggregate stats.
        Only online nodes act (dead nodes cannot originate operations)."""
        ids = [hid for hid, n in self.nodes.items() if n.online]
        if len(ids) < 2:
            raise OverlayError("need at least two online nodes for a workload")
        keys = []
        for i in range(n_publishes):
            owner = ids[int(self._rng.integers(len(ids)))]
            keys.append(self.publish(owner, f"content-{i}"))
        self.sim.run(until=self.sim.now + settle_ms)
        results: list[LookupResult] = []
        for _ in range(n_lookups):
            origin = ids[int(self._rng.integers(len(ids)))]
            key = keys[int(self._rng.integers(len(keys)))]
            self.lookup_value(origin, key, results)
        self.sim.run(until=self.sim.now + settle_ms)
        return LookupStats.from_results(results, value_lookups=True)

    # -- analysis -------------------------------------------------------------------
    def mean_contact_rtt(self) -> float:
        """Mean measured RTT of routing-table entries with a measurement —
        the quantity PNS pushes down."""
        rtts = [
            c.rtt_ms
            for node in self.nodes.values()
            for c in node.routing_table.all_contacts()
            if np.isfinite(c.rtt_ms)
        ]
        return float(np.mean(rtts)) if rtts else float("nan")

    def intra_as_contact_fraction(self) -> float:
        total = same = 0
        for node in self.nodes.values():
            for c in node.routing_table.all_contacts():
                total += 1
                if self.underlay.asn_of(c.host_id) == node.asn:
                    same += 1
        return same / total if total else 0.0
