"""Kademlia identifier space: 160-bit ids under the XOR metric.

The XOR metric is a genuine metric (symmetric, zero iff equal, triangle
inequality holds with equality-or-better) and is unidirectional: for any
target there is exactly one closest id.  Property tests in the test suite
verify these invariants.
"""

from __future__ import annotations

import hashlib

import numpy as np

from repro.errors import OverlayError
from repro.rng import SeedLike, ensure_rng

ID_BITS = 160
ID_SPACE = 1 << ID_BITS


def validate_id(node_id: int) -> int:
    """Return the id unchanged after checking type and 160-bit range."""
    if not isinstance(node_id, int):
        raise OverlayError(f"node id must be int, got {type(node_id).__name__}")
    if not (0 <= node_id < ID_SPACE):
        raise OverlayError(f"node id out of range: {node_id}")
    return node_id


def xor_distance(a: int, b: int) -> int:
    """XOR distance between two ids."""
    return validate_id(a) ^ validate_id(b)


def bucket_index(own_id: int, other_id: int) -> int:
    """Index of the k-bucket that ``other_id`` falls into relative to
    ``own_id``: the position of the highest differing bit (0..159).
    Raises for identical ids (a node does not bucket itself)."""
    d = xor_distance(own_id, other_id)
    if d == 0:
        raise OverlayError("cannot bucket an identical id")
    return d.bit_length() - 1


def random_id(rng: SeedLike = None) -> int:
    """Uniform random 160-bit id."""
    rng = ensure_rng(rng)
    # draw 160 bits as 20 bytes
    data = rng.integers(0, 256, size=ID_BITS // 8, dtype=np.uint8).tobytes()
    return int.from_bytes(data, "big")


def random_id_in_bucket(own_id: int, bucket: int, rng: SeedLike = None) -> int:
    """Random id whose bucket index relative to ``own_id`` is ``bucket``
    (used for bucket refresh lookups)."""
    if not (0 <= bucket < ID_BITS):
        raise OverlayError(f"bucket index out of range: {bucket}")
    rng = ensure_rng(rng)
    # flip bit `bucket`, randomise all lower bits
    prefix = own_id >> (bucket + 1) << (bucket + 1)
    flipped = prefix | ((~own_id >> bucket) & 1) << bucket
    low_bits = 0
    remaining = bucket
    while remaining > 0:
        take = min(remaining, 31)
        low_bits = (low_bits << take) | int(rng.integers(0, 1 << take))
        remaining -= take
    return flipped | low_bits


def key_for(content: object) -> int:
    """Hash any hashable/printable content id into the key space (SHA-1,
    Kademlia's original choice — 160 bits exactly)."""
    digest = hashlib.sha1(repr(content).encode()).digest()
    return int.from_bytes(digest, "big")


def sort_by_distance(ids: list[int], target: int) -> list[int]:
    """Ids sorted by XOR distance to ``target`` (ties impossible for
    distinct ids)."""
    return sorted(ids, key=lambda i: xor_distance(i, target))
