"""Kademlia routing table: 160 k-buckets keyed by shared-prefix length."""

from __future__ import annotations

import heapq
from typing import Optional

from repro.errors import OverlayError
from repro.overlay.kademlia.id_space import (
    ID_BITS,
    bucket_index,
    validate_id,
    xor_distance,
)
from repro.overlay.kademlia.kbucket import Contact, KBucket


class RoutingTable:
    """160 k-buckets indexed by shared-prefix length with the owner id."""
    def __init__(self, own_id: int, *, k: int = 8, proximity: bool = False) -> None:
        self.own_id = validate_id(own_id)
        self.k = k
        self.proximity = proximity
        self.buckets = [KBucket(k=k, proximity=proximity) for _ in range(ID_BITS)]

    def update(self, contact: Contact) -> bool:
        """Record that we heard from ``contact``; returns True if retained."""
        if contact.node_id == self.own_id:
            return False
        return self.buckets[bucket_index(self.own_id, contact.node_id)].update(contact)

    def remove(self, node_id: int) -> None:
        if node_id == self.own_id:
            return
        self.buckets[bucket_index(self.own_id, node_id)].remove(node_id)

    def get(self, node_id: int) -> Optional[Contact]:
        if node_id == self.own_id:
            return None
        return self.buckets[bucket_index(self.own_id, node_id)].get(node_id)

    def all_contacts(self) -> list[Contact]:
        out: list[Contact] = []
        for b in self.buckets:
            out.extend(b.contacts())
        return out

    def closest(self, target: int, count: Optional[int] = None) -> list[Contact]:
        """The ``count`` contacts closest to ``target`` by XOR distance."""
        count = self.k if count is None else count
        target = validate_id(target)
        return heapq.nsmallest(
            count, self.all_contacts(), key=lambda c: xor_distance(c.node_id, target)
        )

    def size(self) -> int:
        return sum(len(b) for b in self.buckets)

    def nonempty_buckets(self) -> list[int]:
        return [i for i, b in enumerate(self.buckets) if len(b)]
