"""Kademlia routing table: 160 k-buckets keyed by shared-prefix length.

Two backends share one API:

- ``backend="array"`` (default) — struct-of-arrays storage: contact ids
  as 20-byte rows of a ``uint8`` matrix, host ids and RTTs as parallel
  ``int64``/``float64`` columns, one row block per *occupied* bucket
  (lazily allocated — a node at 10^5-host scale touches ~log2(N)
  buckets, so preallocating all 160 would waste two orders of magnitude
  of memory).  ``closest()`` is vectorised: XOR distance comparison
  equals lexicographic comparison of the XORed big-endian byte rows, so
  one ``np.lexsort`` ranks the whole table without converting a single
  160-bit Python int.
- ``backend="object"`` — the retained ``_reference`` implementation on
  :class:`~repro.overlay.kademlia.kbucket.KBucket` objects, used by the
  equivalence tests (``tests/test_peerstate_equiv.py``) to pin the array
  backend to the seed behaviour bucket-for-bucket.
"""

from __future__ import annotations

import heapq
from typing import Iterator, Optional

import numpy as np

from repro.errors import OverlayError
from repro.overlay.kademlia.id_space import (
    ID_BITS,
    bucket_index,
    validate_id,
    xor_distance,
)
from repro.overlay.kademlia.kbucket import Contact, KBucket

_ID_BYTES = ID_BITS // 8


def _id_bytes(node_id: int) -> np.ndarray:
    return np.frombuffer(node_id.to_bytes(_ID_BYTES, "big"), dtype=np.uint8)


class ArrayBucketView:
    """Read/write view of one bucket of an array-backed table, API- and
    behaviour-compatible with :class:`KBucket`."""

    __slots__ = ("_table", "_bucket")

    def __init__(self, table: "RoutingTable", bucket: int) -> None:
        self._table = table
        self._bucket = bucket

    def __len__(self) -> int:
        return self._table._bucket_len(self._bucket)

    def __contains__(self, node_id: int) -> bool:
        return self._table._bucket_get(self._bucket, node_id) is not None

    def get(self, node_id: int) -> Optional[Contact]:
        return self._table._bucket_get(self._bucket, node_id)

    def contacts(self) -> list[Contact]:
        return self._table._bucket_contacts(self._bucket)

    def update(self, contact: Contact) -> bool:
        return self._table._bucket_update(self._bucket, contact)

    def remove(self, node_id: int) -> None:
        self._table._bucket_remove(self._bucket, node_id)


class _BucketList:
    """Lazy sequence façade so ``table.buckets[i]`` works on both backends."""

    __slots__ = ("_table",)

    def __init__(self, table: "RoutingTable") -> None:
        self._table = table

    def __len__(self) -> int:
        return ID_BITS

    def __getitem__(self, bucket: int) -> ArrayBucketView:
        if not (-ID_BITS <= bucket < ID_BITS):
            raise IndexError(bucket)
        return ArrayBucketView(self._table, bucket % ID_BITS)

    def __iter__(self) -> Iterator[ArrayBucketView]:
        for b in range(ID_BITS):
            yield ArrayBucketView(self._table, b)


class RoutingTable:
    """160 k-buckets indexed by shared-prefix length with the owner id."""

    def __init__(
        self,
        own_id: int,
        *,
        k: int = 8,
        proximity: bool = False,
        backend: str = "array",
    ) -> None:
        self.own_id = validate_id(own_id)
        self.k = k
        self.proximity = proximity
        if backend not in ("array", "object"):
            raise OverlayError(f"unknown routing-table backend {backend!r}")
        self.backend = backend
        if backend == "object":
            self.buckets = [KBucket(k=k, proximity=proximity) for _ in range(ID_BITS)]
            return
        if k < 1:
            raise OverlayError("bucket size must be >= 1")
        self.buckets = _BucketList(self)
        # SoA columns: one row block per occupied bucket, grown on demand.
        self._row_of: dict[int, int] = {}    # bucket index -> row
        self._bucket_of: list[int] = []      # row -> bucket index
        self._ids = np.zeros((0, k, _ID_BYTES), dtype=np.uint8)
        self._ids_int: list[list[int]] = []  # row -> python ids (scan index)
        self._hosts = np.zeros((0, k), dtype=np.int64)
        self._rtts = np.zeros((0, k), dtype=np.float64)
        self._counts = np.zeros(0, dtype=np.int16)

    # -- array-backend internals ---------------------------------------------------
    def _row(self, bucket: int) -> int:
        row = self._row_of.get(bucket)
        if row is not None:
            return row
        row = len(self._bucket_of)
        if row >= self._ids.shape[0]:
            new_rows = max(8, self._ids.shape[0] * 2)
            grow = lambda a, shape: np.concatenate(  # noqa: E731
                [a, np.zeros(shape, dtype=a.dtype)]
            )
            add = new_rows - self._ids.shape[0]
            self._ids = grow(self._ids, (add, self.k, _ID_BYTES))
            self._hosts = grow(self._hosts, (add, self.k))
            self._rtts = grow(self._rtts, (add, self.k))
            self._counts = np.concatenate(
                [self._counts, np.zeros(add, dtype=np.int16)]
            )
        self._row_of[bucket] = row
        self._bucket_of.append(bucket)
        self._ids_int.append([])
        return row

    def _bucket_len(self, bucket: int) -> int:
        row = self._row_of.get(bucket)
        return 0 if row is None else int(self._counts[row])

    def _contact_at(self, row: int, i: int) -> Contact:
        return Contact(
            node_id=self._ids_int[row][i],
            host_id=int(self._hosts[row, i]),
            rtt_ms=float(self._rtts[row, i]),
        )

    def _bucket_get(self, bucket: int, node_id: int) -> Optional[Contact]:
        row = self._row_of.get(bucket)
        if row is None:
            return None
        ids = self._ids_int[row]
        for i in range(int(self._counts[row])):
            if ids[i] == node_id:
                return self._contact_at(row, i)
        return None

    def _bucket_contacts(self, bucket: int) -> list[Contact]:
        row = self._row_of.get(bucket)
        if row is None:
            return []
        return [self._contact_at(row, i) for i in range(int(self._counts[row]))]

    def _delete_slot(self, row: int, i: int, n: int) -> None:
        """Remove slot ``i`` from a row of length ``n``, shifting the tail
        left (LRU order is slot order)."""
        self._ids[row, i : n - 1] = self._ids[row, i + 1 : n]
        self._hosts[row, i : n - 1] = self._hosts[row, i + 1 : n]
        self._rtts[row, i : n - 1] = self._rtts[row, i + 1 : n]
        del self._ids_int[row][i]
        self._counts[row] = n - 1

    def _append_slot(self, row: int, contact: Contact) -> None:
        n = int(self._counts[row])
        self._ids[row, n] = _id_bytes(contact.node_id)
        self._hosts[row, n] = contact.host_id
        self._rtts[row, n] = contact.rtt_ms
        self._ids_int[row].append(contact.node_id)
        self._counts[row] = n + 1

    def _bucket_update(self, bucket: int, contact: Contact) -> bool:
        """Exact :meth:`KBucket.update` semantics on the array columns."""
        row = self._row(bucket)
        n = int(self._counts[row])
        ids = self._ids_int[row]
        for i in range(n):
            if ids[i] == contact.node_id:
                # refresh: move to tail (LRU) or keep best RTT (proximity)
                if self.proximity and self._rtts[row, i] < contact.rtt_ms:
                    contact = self._contact_at(row, i)
                self._delete_slot(row, i, n)
                self._append_slot(row, contact)
                return True
        if n < self.k:
            self._append_slot(row, contact)
            return True
        if self.proximity:
            rtts = self._rtts[row, :n]
            worst_i = int(np.argmax(rtts))
            if contact.rtt_ms < rtts[worst_i]:
                self._delete_slot(row, worst_i, n)
                self._append_slot(row, contact)
                return True
        return False

    def _bucket_remove(self, bucket: int, node_id: int) -> None:
        row = self._row_of.get(bucket)
        if row is None:
            return
        ids = self._ids_int[row]
        for i in range(int(self._counts[row])):
            if ids[i] == node_id:
                self._delete_slot(row, i, int(self._counts[row]))
                return

    def _occupancy_mask(self) -> np.ndarray:
        """Boolean (rows, k) mask of live slots."""
        rows = len(self._bucket_of)
        return np.arange(self.k) < self._counts[:rows, None]

    # -- public API ------------------------------------------------------------------
    def update(self, contact: Contact) -> bool:
        """Record that we heard from ``contact``; returns True if retained."""
        if contact.node_id == self.own_id:
            return False
        b = bucket_index(self.own_id, contact.node_id)
        if self.backend == "object":
            return self.buckets[b].update(contact)
        return self._bucket_update(b, contact)

    def remove(self, node_id: int) -> None:
        if node_id == self.own_id:
            return
        b = bucket_index(self.own_id, node_id)
        if self.backend == "object":
            self.buckets[b].remove(node_id)
        else:
            self._bucket_remove(b, node_id)

    def get(self, node_id: int) -> Optional[Contact]:
        if node_id == self.own_id:
            return None
        b = bucket_index(self.own_id, node_id)
        if self.backend == "object":
            return self.buckets[b].get(node_id)
        return self._bucket_get(b, node_id)

    def all_contacts(self) -> list[Contact]:
        if self.backend == "object":
            out: list[Contact] = []
            for b in self.buckets:
                out.extend(b.contacts())
            return out
        out = []
        for bucket in sorted(self._row_of):
            out.extend(self._bucket_contacts(bucket))
        return out

    def closest(self, target: int, count: Optional[int] = None) -> list[Contact]:
        """The ``count`` contacts closest to ``target`` by XOR distance."""
        count = self.k if count is None else count
        target = validate_id(target)
        if self.backend == "object":
            return heapq.nsmallest(
                count,
                self.all_contacts(),
                key=lambda c: xor_distance(c.node_id, target),
            )
        rows = len(self._bucket_of)
        if rows == 0 or count <= 0:
            return []
        mask = self._occupancy_mask()
        flat_ids = self._ids[:rows][mask]            # (n_contacts, 20)
        if flat_ids.shape[0] == 0:
            return []
        xored = flat_ids ^ _id_bytes(target)
        # Big-endian byte rows compare like the 160-bit integers they
        # encode: lexsort with byte 0 (most significant) as primary key.
        order = np.lexsort(tuple(xored[:, i] for i in range(_ID_BYTES - 1, -1, -1)))
        take = order[:count]
        # map flat positions back to (row, slot); distances are unique
        # (node ids are unique), so the order is fully determined
        row_idx, slot_idx = np.nonzero(mask)
        return [
            self._contact_at(int(row_idx[p]), int(slot_idx[p])) for p in take
        ]

    def size(self) -> int:
        if self.backend == "object":
            return sum(len(b) for b in self.buckets)
        rows = len(self._bucket_of)
        return int(self._counts[:rows].sum())

    def nonempty_buckets(self) -> list[int]:
        if self.backend == "object":
            return [i for i, b in enumerate(self.buckets) if len(b)]
        return sorted(
            b for b, row in self._row_of.items() if self._counts[row]
        )
