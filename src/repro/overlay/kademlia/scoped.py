"""Geographically Scoped Hashing — Leopard-style locality DHT (Yu et al. [33]).

Leopard's idea, quoted in the survey's §4: "both content identifiers and
latency information are processed together using a special hashing
function called Geographically Scoped Hashing to produce the final peer
and content identifiers."  Concretely, the top bits of every identifier
encode the *region*; the remaining bits are an ordinary content/node
hash.  Consequences:

- a peer's id places it among the other peers of its region in the XOR
  metric, so lookups for region-scoped keys converge *within* the region
  (cheap, few inter-AS hops, "no hot spot" since every region serves its
  own replicas);
- a publisher can store one replica per region of interest (or all
  regions), and a reader asks its own region first.

The module provides the hashing scheme plus a :class:`ScopedKademlia`
wrapper that runs a standard :class:`KademliaNetwork` whose node ids are
scoped — routing logic is untouched, exactly as in the original design.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.errors import OverlayError
from repro.overlay.kademlia.id_space import ID_BITS, key_for, random_id, validate_id
from repro.overlay.kademlia.network import KademliaNetwork
from repro.overlay.kademlia.node import KademliaConfig, KademliaNode, LookupResult
from repro.rng import SeedLike, ensure_rng
from repro.sim.engine import Simulation
from repro.sim.messages import MessageBus
from repro.underlay.network import Underlay

#: Number of leading id bits reserved for the geographic scope.
DEFAULT_SCOPE_BITS = 4


@dataclass(frozen=True)
class ScopedHashing:
    """The GSH codec: (region, content) <-> 160-bit identifier."""

    scope_bits: int = DEFAULT_SCOPE_BITS

    def __post_init__(self) -> None:
        if not (1 <= self.scope_bits <= 16):
            raise OverlayError("scope_bits must be within 1..16")

    @property
    def n_scopes(self) -> int:
        return 1 << self.scope_bits

    @property
    def body_bits(self) -> int:
        return ID_BITS - self.scope_bits

    def scope_of(self, identifier: int) -> int:
        return validate_id(identifier) >> self.body_bits

    def scoped_key(self, region: int, content: object) -> int:
        """Content key whose top bits pin it to ``region``."""
        if not (0 <= region < self.n_scopes):
            raise OverlayError(
                f"region {region} out of range for {self.scope_bits} scope bits"
            )
        body = key_for(content) & ((1 << self.body_bits) - 1)
        return (region << self.body_bits) | body

    def scoped_node_id(self, region: int, rng: SeedLike = None) -> int:
        """Node id placed inside the region's id slice."""
        if not (0 <= region < self.n_scopes):
            raise OverlayError(
                f"region {region} out of range for {self.scope_bits} scope bits"
            )
        body = random_id(rng) & ((1 << self.body_bits) - 1)
        return (region << self.body_bits) | body


class ScopedKademlia:
    """A Kademlia DHT whose node ids carry the peer's geographic scope.

    ``region_of`` maps a host to its scope (defaults to the AS's region
    from the topology generator, i.e. what a geolocation source would
    coarsely report).
    """

    def __init__(
        self,
        underlay: Underlay,
        sim: Simulation,
        bus: MessageBus,
        *,
        hashing: ScopedHashing | None = None,
        config: KademliaConfig | None = None,
        rng: SeedLike = None,
    ) -> None:
        self.underlay = underlay
        self.hashing = hashing or ScopedHashing()
        self._rng = ensure_rng(rng)
        self.network = KademliaNetwork(
            underlay, sim, bus, config=config, rng=self._rng,
            use_coordinate_estimates=False,
        )
        self.sim = sim
        # region is a pure function of the AS; memoised so the per-contact
        # loops in the locality analysis don't re-walk the topology
        self._region_by_asn: dict[int, int] = {}

    def region_of(self, host_id: int) -> int:
        asn = self.underlay.asn_of(host_id)
        region = self._region_by_asn.get(asn)
        if region is None:
            region = (
                max(self.underlay.topology.asys(asn).region, 0)
                % self.hashing.n_scopes
            )
            self._region_by_asn[asn] = region
        return region

    # -- population --------------------------------------------------------------
    def add_all_hosts(self) -> None:
        """Create nodes with region-scoped ids (bypasses the plain
        random-id path of KademliaNetwork)."""
        for h in self.underlay.hosts:
            node_id = self.hashing.scoped_node_id(
                self.region_of(h.host_id), self._rng
            )
            node = KademliaNode(
                h, self.network.sim, self.network.bus, node_id,
                self.network.config,
            )
            node.go_online()
            self.network.nodes[h.host_id] = node

    def bootstrap_all(self, **kwargs) -> None:
        self.network.bootstrap_all(**kwargs)

    # -- scoped operations ------------------------------------------------------------
    def publish_scoped(
        self, owner: int, content: object, *, regions: Optional[Sequence[int]] = None
    ) -> list[int]:
        """Store the content under one key per region (default: the
        owner's own region).  Returns the keys used."""
        regions = list(regions) if regions is not None else [self.region_of(owner)]
        keys = []
        for r in regions:
            key = self.hashing.scoped_key(r, content)
            self.network.nodes[owner].store_value(key, owner)
            keys.append(key)
        return keys

    def lookup_scoped(
        self, origin: int, content: object, results: list[LookupResult]
    ) -> int:
        """Look the content up under the *origin's region* key — the GSH
        read path that keeps queries regional."""
        key = self.hashing.scoped_key(self.region_of(origin), content)
        self.network.lookup_value(origin, key, results)
        return key

    # -- analysis --------------------------------------------------------------------
    def same_region_contact_fraction(self) -> float:
        """Fraction of routing-table contacts inside the owner's region —
        scoped ids drive this up, which is where the locality comes from."""
        same = total = 0
        for hid, node in self.network.nodes.items():
            mine = self.region_of(hid)
            for c in node.routing_table.all_contacts():
                total += 1
                same += self.region_of(c.host_id) == mine
        return same / total if total else 0.0
