"""Kademlia node: RPCs and the iterative lookup state machine.

Implements the classic protocol (k-buckets, α-parallel iterative
FIND_NODE/FIND_VALUE, STORE replication to the k closest) plus the two
proximity techniques studied by Kaune et al. [17] for reducing inter-AS
DHT traffic:

- **PNS** (proximity neighbor selection): k-buckets retain the
  lowest-RTT contacts (see :class:`~repro.overlay.kademlia.kbucket.KBucket`);
- **PR** (proximity routing): among equally useful next hops the lookup
  queries the lowest-RTT one first.

RTTs are *measured*, not oracular: every RPC reply is timed on the
simulation clock and the observed RTT is attached to the contact before
it enters the routing table.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, Optional

import numpy as np

from repro.errors import OverlayError
from repro.obs.registry import Histogram, MetricRegistry
from repro.overlay.base import OverlayNode
from repro.overlay.kademlia.id_space import validate_id, xor_distance
from repro.overlay.kademlia.kbucket import Contact
from repro.overlay.kademlia.routing_table import RoutingTable
from repro.sim.engine import Simulation
from repro.sim.messages import Message, MessageBus
from repro.sim.requests import RequestManager, RetryPolicy
from repro.underlay.hosts import Host

#: Approximate RPC sizes (bytes): header + ids/contact list.
RPC_REQUEST_SIZE = 72
RPC_REPLY_BASE = 40
CONTACT_WIRE_SIZE = 26


@dataclass(frozen=True)
class KademliaConfig:
    """Protocol constants: k, alpha, proximity modes, RPC retry policy.

    ``rpc_max_retries`` retransmissions (capped exponential backoff,
    factor ``rpc_backoff_factor``, deadline capped at
    ``rpc_max_timeout_ms``, default 4x the base timeout) keep lookups
    alive over a lossy bus; 0 restores bare-timeout behaviour.
    """
    k: int = 8
    alpha: int = 3
    proximity_buckets: bool = False   # PNS
    proximity_routing: bool = False   # PR
    rpc_timeout_ms: float = 1500.0
    rpc_max_retries: int = 2
    rpc_backoff_factor: float = 2.0
    rpc_max_timeout_ms: Optional[float] = None
    max_rounds: int = 32
    #: dispatch a lookup round's alpha RPCs as one batch (single timeout
    #: heap insert via ``RequestManager.issue_many``) instead of one
    #: issue per RPC; transmits still happen in per-RPC order, so bus
    #: accounting and loss draws are unchanged
    round_batching: bool = True

    def __post_init__(self) -> None:
        if self.k < 1 or self.alpha < 1:
            raise OverlayError("k and alpha must be >= 1")
        if self.rpc_timeout_ms <= 0:
            raise OverlayError("rpc timeout must be positive")
        if self.rpc_max_retries < 0 or self.rpc_backoff_factor < 1.0:
            raise OverlayError("invalid rpc retry configuration")
        if (
            self.rpc_max_timeout_ms is not None
            and self.rpc_max_timeout_ms < self.rpc_timeout_ms
        ):
            raise OverlayError("rpc_max_timeout_ms must be >= rpc_timeout_ms")

    def retry_policy(self) -> RetryPolicy:
        return RetryPolicy(
            timeout_ms=self.rpc_timeout_ms,
            max_retries=self.rpc_max_retries,
            backoff_factor=self.rpc_backoff_factor,
            max_timeout_ms=(
                self.rpc_max_timeout_ms
                if self.rpc_max_timeout_ms is not None
                else 4.0 * self.rpc_timeout_ms
            ),
        )


@dataclass
class LookupResult:
    """Outcome of one iterative lookup: closest contacts, values, timing."""
    target: int
    closest: list[Contact] = field(default_factory=list)
    values: set[int] = field(default_factory=set)
    found_value: bool = False
    started_at: float = 0.0
    finished_at: float = 0.0
    rpcs_sent: int = 0
    timeouts: int = 0

    @property
    def latency_ms(self) -> float:
        return self.finished_at - self.started_at


class _Lookup:
    """One iterative lookup in flight."""

    _NEW, _INFLIGHT, _DONE, _FAILED = range(4)

    def __init__(
        self,
        node: "KademliaNode",
        target: int,
        *,
        find_value: bool,
        on_done: Callable[[LookupResult], None],
    ) -> None:
        self.node = node
        self.target = validate_id(target)
        self.find_value = find_value
        self.on_done = on_done
        self.result = LookupResult(target=target, started_at=node.sim.now)
        self.state: dict[int, int] = {}
        self.contact_of: dict[int, Contact] = {}
        self.finished = False
        for c in node.routing_table.closest(target, node.config.k):
            self._add_candidate(c)

    def _add_candidate(self, contact: Contact) -> None:
        if contact.node_id == self.node.node_id:
            return
        if contact.node_id not in self.state:
            self.state[contact.node_id] = self._NEW
            self.contact_of[contact.node_id] = contact
        elif contact.rtt_ms < self.contact_of[contact.node_id].rtt_ms:
            self.contact_of[contact.node_id] = contact

    def _k_closest_ids(self) -> list[int]:
        ids = [i for i, s in self.state.items() if s != self._FAILED]
        ids.sort(key=lambda i: xor_distance(i, self.target))
        return ids[: self.node.config.k]

    def start(self) -> None:
        self._launch_queries()
        self._check_done()

    def _launch_queries(self) -> None:
        cfg = self.node.config
        inflight = sum(1 for s in self.state.values() if s == self._INFLIGHT)
        budget = cfg.alpha - inflight
        if budget <= 0:
            return
        candidates = [
            i for i in self._k_closest_ids() if self.state[i] == self._NEW
        ]
        if cfg.proximity_routing:
            # PR: among the useful candidates, lowest measured RTT first.
            # Only the alpha cheapest are dispatched, so take them with a
            # single scan instead of sorting the whole candidate list
            # (nsmallest == sorted(...)[:budget], same tie-break key).
            candidates = heapq.nsmallest(
                budget,
                candidates,
                key=lambda i: (self.contact_of[i].rtt_ms,
                               xor_distance(i, self.target)),
            )
        dispatch = candidates[:budget]
        for nid in dispatch:
            self.state[nid] = self._INFLIGHT
        self.result.rpcs_sent += len(dispatch)
        if cfg.round_batching and len(dispatch) > 1:
            self.node._send_lookup_rpcs(
                self, [self.contact_of[nid] for nid in dispatch]
            )
        else:
            for nid in dispatch:
                self.node._send_lookup_rpc(self, self.contact_of[nid])

    def on_reply(
        self, responder: Contact, contacts: list[Contact], values: set[int]
    ) -> None:
        if self.finished:
            return
        if self.state.get(responder.node_id) == self._INFLIGHT:
            self.state[responder.node_id] = self._DONE
        self.contact_of[responder.node_id] = responder
        if self.find_value and values:
            self.result.values |= values
            self.result.found_value = True
            self._finish()
            return
        for c in contacts:
            self._add_candidate(c)
        self._launch_queries()
        self._check_done()

    def on_timeout(self, node_id: int) -> None:
        if self.finished:
            return
        if self.state.get(node_id) == self._INFLIGHT:
            self.state[node_id] = self._FAILED
            self.result.timeouts += 1
        self._launch_queries()
        self._check_done()

    def _check_done(self) -> None:
        if self.finished:
            return
        k_closest = self._k_closest_ids()
        pending = [i for i in k_closest if self.state[i] in (self._NEW, self._INFLIGHT)]
        inflight_any = any(s == self._INFLIGHT for s in self.state.values())
        if not pending and not inflight_any:
            self._finish()

    def _finish(self) -> None:
        if self.finished:
            return
        self.finished = True
        self.result.finished_at = self.node.sim.now
        self.result.closest = [
            self.contact_of[i]
            for i in self._k_closest_ids()
            if self.state[i] == self._DONE
        ]
        self.node._record_lookup(self.result)
        self.on_done(self.result)


class KademliaNode(OverlayNode):
    """One DHT participant: routing table, storage, RPCs, lookup machine."""

    _lookup_hops_hist: Optional[Histogram] = None
    _lookup_latency_hist: Optional[Histogram] = None

    def __init__(
        self,
        host: Host,
        sim: Simulation,
        bus: MessageBus,
        node_id: int,
        config: KademliaConfig | None = None,
        rtt_estimator: Optional[Callable[[int, int], float]] = None,
    ) -> None:
        super().__init__(host, sim, bus)
        self.config = config or KademliaConfig()
        #: predicts RTT to a host we have not measured yet (e.g. network
        #: coordinates, §3.2 prediction methods); enables PNS/PR to act on
        #: heard-of contacts.  Signature: (my_host_id, other_host_id) -> ms.
        self.rtt_estimator = rtt_estimator
        self.node_id = validate_id(node_id)
        self.routing_table = RoutingTable(
            node_id, k=self.config.k, proximity=self.config.proximity_buckets
        )
        self.storage: dict[int, set[int]] = {}
        self._rpc_seq = itertools.count()
        # rpc_id -> (lookup, contact, first_sent_at); timeouts/retries are
        # owned by the request manager
        self._pending: dict[int, tuple[_Lookup, Contact, float]] = {}
        self.requests = RequestManager(
            sim, policy=self.config.retry_policy(), component="kademlia"
        )

    # -- observability -----------------------------------------------------------
    def instrument(self, registry: MetricRegistry, component: str = "kademlia") -> None:
        super().instrument(registry, component)
        self._lookup_hops_hist = registry.histogram(
            f"{component}_lookup_hops",
            "RPCs issued per iterative lookup (overlay hops taken).",
            buckets=tuple(range(0, 33)),
        )
        self._lookup_latency_hist = registry.histogram(
            f"{component}_lookup_latency_ms",
            "Iterative lookup completion time (simulated ms).",
        )

    def _record_lookup(self, result: LookupResult) -> None:
        hist = self._lookup_hops_hist
        if hist is not None:
            hist.observe(result.rpcs_sent)
            self._lookup_latency_hist.observe(result.latency_ms)

    # -- wire helpers ------------------------------------------------------------
    def contact(self) -> Contact:
        return Contact(node_id=self.node_id, host_id=self.host_id)

    def _observe(self, node_id: int, host_id: int, rtt_ms: float) -> None:
        if not np.isfinite(rtt_ms) and self.rtt_estimator is not None:
            rtt_ms = float(self.rtt_estimator(self.host_id, host_id))
        self.routing_table.update(
            Contact(node_id=node_id, host_id=host_id, rtt_ms=rtt_ms)
        )

    def _send_lookup_rpc(self, lookup: _Lookup, target_contact: Contact) -> None:
        if not self.online:
            # a crashed node's lookup cannot transmit; fail the candidate
            # asynchronously so the lookup machine unwinds without sending
            self.sim.schedule(0.0, lookup.on_timeout, target_contact.node_id)
            return
        rpc_id = next(self._rpc_seq)
        kind = "FIND_VALUE" if lookup.find_value else "FIND_NODE"
        payload = {
            "rpc_id": rpc_id,
            "target": lookup.target,
            "sender_id": self.node_id,
        }
        self._pending[rpc_id] = (lookup, target_contact, self.sim.now)

        def transmit() -> None:
            if self.online:
                self.send(target_contact.host_id, kind, payload, RPC_REQUEST_SIZE)

        self.requests.issue(
            rpc_id, transmit, on_fail=lambda: self._rpc_failed(rpc_id)
        )

    def _send_lookup_rpcs(
        self, lookup: _Lookup, target_contacts: "list[Contact]"
    ) -> None:
        """Round-batched form of :meth:`_send_lookup_rpc`: the round's
        alpha RPCs transmit in contact order (identical sends and loss
        draws), then all first-attempt timeouts are armed with a single
        heap insert through :meth:`RequestManager.issue_many`."""
        if not self.online:
            self.sim.schedule_many(
                (0.0, lookup.on_timeout, (c.node_id,)) for c in target_contacts
            )
            return
        kind = "FIND_VALUE" if lookup.find_value else "FIND_NODE"
        items = []
        for contact in target_contacts:
            rpc_id = next(self._rpc_seq)
            payload = {
                "rpc_id": rpc_id,
                "target": lookup.target,
                "sender_id": self.node_id,
            }
            self._pending[rpc_id] = (lookup, contact, self.sim.now)

            def transmit(
                host: int = contact.host_id, p: dict = payload
            ) -> None:
                if self.online:
                    self.send(host, kind, p, RPC_REQUEST_SIZE)

            items.append(
                (rpc_id, transmit, lambda r=rpc_id: self._rpc_failed(r))
            )
        self.requests.issue_many(items)

    def _rpc_failed(self, rpc_id: int) -> None:
        """All attempts timed out: purge the contact, notify the lookup."""
        entry = self._pending.pop(rpc_id, None)
        if entry is None:
            return
        lookup, contact, _sent = entry
        self.routing_table.remove(contact.node_id)
        lookup.on_timeout(contact.node_id)

    # -- server side -----------------------------------------------------------------
    def _reply_contacts(self, msg: Message, with_values: bool) -> None:
        req = msg.payload
        target = req["target"]
        closest = [
            c
            for c in self.routing_table.closest(target, self.config.k)
            if c.host_id != msg.src
        ]
        values = self.storage.get(target, set()) if with_values else set()
        kind = "FIND_VALUE_REPLY" if with_values else "FIND_NODE_REPLY"
        self.send(
            msg.src,
            kind,
            {
                "rpc_id": req["rpc_id"],
                "sender_id": self.node_id,
                "contacts": [(c.node_id, c.host_id) for c in closest],
                "values": set(values),
            },
            RPC_REPLY_BASE + CONTACT_WIRE_SIZE * len(closest) + 8 * len(values),
        )
        # learn the requester
        self._observe(req["sender_id"], msg.src, rtt_ms=float("inf"))

    def on_find_node(self, msg: Message) -> None:
        self._reply_contacts(msg, with_values=False)

    def on_find_value(self, msg: Message) -> None:
        self._reply_contacts(msg, with_values=True)

    def on_store(self, msg: Message) -> None:
        req = msg.payload
        self.storage.setdefault(req["key"], set()).add(req["value"])
        self._observe(req["sender_id"], msg.src, rtt_ms=float("inf"))
        self.send(
            msg.src,
            "STORE_ACK",
            {"rpc_id": req["rpc_id"], "sender_id": self.node_id},
            RPC_REPLY_BASE,
        )

    def on_store_ack(self, msg: Message) -> None:
        # acks carry no lookup state; just refresh the contact
        rep = msg.payload
        self._observe(rep["sender_id"], msg.src, rtt_ms=float("inf"))

    # -- client side --------------------------------------------------------------------
    def _on_lookup_reply(self, msg: Message) -> None:
        rep = msg.payload
        entry = self._pending.pop(rep["rpc_id"], None)
        if entry is None:
            return  # reply after final failure
        lookup, contact, sent_at = entry
        self.requests.resolve(rep["rpc_id"])
        rtt = self.sim.now - sent_at
        responder = Contact(
            node_id=rep["sender_id"], host_id=msg.src, rtt_ms=rtt
        )
        self._observe(responder.node_id, responder.host_id, rtt)
        contacts = [
            Contact(node_id=nid, host_id=hid)
            for nid, hid in rep["contacts"]
        ]
        for c in contacts:
            # heard-of (not measured) contacts enter the lookup, and the
            # routing table only if there is room / they win on proximity
            self._observe(c.node_id, c.host_id, rtt_ms=float("inf"))
        lookup.on_reply(responder, contacts, set(rep.get("values", ())))

    def on_find_node_reply(self, msg: Message) -> None:
        self._on_lookup_reply(msg)

    def on_find_value_reply(self, msg: Message) -> None:
        self._on_lookup_reply(msg)

    # -- public operations ---------------------------------------------------------------
    def iterative_find_node(
        self, target: int, on_done: Callable[[LookupResult], None]
    ) -> _Lookup:
        lookup = _Lookup(self, target, find_value=False, on_done=on_done)
        lookup.start()
        return lookup

    def iterative_find_value(
        self, key: int, on_done: Callable[[LookupResult], None]
    ) -> _Lookup:
        if key in self.storage:
            # local hit: resolve immediately
            res = LookupResult(
                target=key,
                values=set(self.storage[key]),
                found_value=True,
                started_at=self.sim.now,
                finished_at=self.sim.now,
            )
            self._record_lookup(res)
            on_done(res)
            lookup = _Lookup(self, key, find_value=True, on_done=lambda r: None)
            lookup.finished = True
            return lookup
        lookup = _Lookup(self, key, find_value=True, on_done=on_done)
        lookup.start()
        return lookup

    def store_value(
        self,
        key: int,
        value: int,
        on_done: Optional[Callable[[LookupResult], None]] = None,
    ) -> None:
        """Publish ``value`` under ``key`` on the k closest nodes."""

        def _store_at(result: LookupResult) -> None:
            for c in result.closest:
                rpc_id = next(self._rpc_seq)
                self.send(
                    c.host_id,
                    "STORE",
                    {
                        "rpc_id": rpc_id,
                        "key": key,
                        "value": value,
                        "sender_id": self.node_id,
                    },
                    RPC_REQUEST_SIZE + 8,
                )
            # store locally too if we are among the closest... Kademlia
            # leaves this to the k-closest rule; keep the simple variant.
            if on_done is not None:
                on_done(result)

        self.iterative_find_node(key, _store_at)

    def bootstrap(self, seeds: list[Contact], on_done=None) -> None:
        """Insert seed contacts and look up our own id to fill buckets."""
        for s in seeds:
            if s.node_id != self.node_id:
                self.routing_table.update(s)
        self.iterative_find_node(self.node_id, on_done or (lambda r: None))

    # -- maintenance ---------------------------------------------------------------
    def refresh_buckets(self, rng=None, *, max_buckets: int = 3) -> int:
        """Kademlia bucket refresh: look up a random id inside each of up
        to ``max_buckets`` of the emptiest non-trivial buckets, repairing
        routing state lost to churn.  Returns lookups started."""
        from repro.overlay.kademlia.id_space import random_id_in_bucket

        candidates = sorted(
            (i for i, b in enumerate(self.routing_table.buckets)
             if 0 < len(b) < self.config.k),
            key=lambda i: len(self.routing_table.buckets[i]),
        )
        started = 0
        for bucket in candidates[:max_buckets]:
            target = random_id_in_bucket(self.node_id, bucket, rng)
            self.iterative_find_node(target, lambda r: None)
            started += 1
        return started
