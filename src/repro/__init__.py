"""repro — underlay awareness in P2P systems.

A simulation framework reproducing *"Underlay Awareness in P2P Systems:
Techniques and Challenges"* (Abboud, Kovacevic, Graffi, Pussep, Steinmetz —
IPDPS 2009): every surveyed collection technique (Figure 3), every usage
technique (Table 1), and the experiments behind the paper's figures and
impact analysis (Figure 2, Figures 5/6, Table 2), on top of a synthetic
tiered-Internet underlay.

Quickstart::

    from repro import Underlay, UnderlayConfig, UnderlayAwarenessFramework
    from repro.collection import ISPOracle
    from repro.core import REAL_TIME

    underlay = Underlay.generate(UnderlayConfig(n_hosts=100, seed=42))
    fw = UnderlayAwarenessFramework(underlay)
    fw.use_oracle(ISPOracle(underlay))
    fw.use_true_latency()
    ids = underlay.host_ids()
    neighbors = fw.select_neighbors(ids[0], ids[1:], k=8, profile=REAL_TIME)

See DESIGN.md for the per-experiment index and EXPERIMENTS.md for
paper-vs-measured results.
"""

from repro.core.framework import UnderlayAwarenessFramework
from repro.sim.engine import Simulation
from repro.underlay.network import Underlay, UnderlayConfig

__version__ = "1.0.0"

__all__ = [
    "Simulation",
    "Underlay",
    "UnderlayAwarenessFramework",
    "UnderlayConfig",
    "__version__",
]
