"""Graphviz DOT export for topologies and overlays.

The paper's Figures 5 and 6 are *visualisations* of overlay topologies
(random vs oracle-biased).  This module renders the same pictures: DOT
text with one colour per AS, peering/transit link styles for the
underlay, and role-shaped nodes for Gnutella overlays.  Feed the output
to ``dot -Tsvg`` (Graphviz is not a dependency; the strings are plain
text and are asserted structurally in the tests).
"""

from __future__ import annotations

from typing import Callable, Hashable, Optional

import networkx as nx

from repro.underlay.autonomous_system import LinkType, Tier
from repro.underlay.topology import InternetTopology

#: Distinguishable fill colours, reused cyclically per AS.
_PALETTE = (
    "#e6194b", "#3cb44b", "#4363d8", "#f58231", "#911eb4",
    "#46f0f0", "#f032e6", "#bcf60c", "#fabebe", "#008080",
    "#e6beff", "#9a6324", "#fffac8", "#800000", "#aaffc3",
    "#808000", "#ffd8b1", "#000075", "#808080", "#ffe119",
)


def color_for(asn: int) -> str:
    """Stable fill colour for an AS (palette cycles past 20 ASes)."""
    return _PALETTE[asn % len(_PALETTE)]


def dot_topology(topology: InternetTopology) -> str:
    """The Figure 1 picture: tiers as ranks, transit solid, peering dashed."""
    lines = [
        "graph underlay {",
        "  rankdir=TB;",
        '  node [style=filled, fontname="Helvetica"];',
    ]
    shape = {Tier.TIER1: "doubleoctagon", Tier.TIER2: "box", Tier.STUB: "ellipse"}
    for asys in topology.ases:
        lines.append(
            f'  as{asys.asn} [label="AS{asys.asn}", '
            f"shape={shape[asys.tier]}, fillcolor=\"{color_for(asys.asn)}\"];"
        )
    for provider, customer in topology.transit_links():
        lines.append(
            f"  as{provider} -- as{customer} [style=solid, penwidth=1.5];"
        )
    for a, b in topology.peering_links():
        lines.append(f"  as{a} -- as{b} [style=dashed];")
    lines.append("}")
    return "\n".join(lines)


def dot_overlay(
    graph: nx.Graph,
    asn_of: Callable[[Hashable], int],
    *,
    role_of: Optional[Callable[[Hashable], str]] = None,
    title: str = "overlay",
) -> str:
    """The Figure 5/6 picture: peers coloured by AS, intra-AS edges bold,
    inter-AS edges grey; ultrapeers (if roles given) drawn as boxes."""
    lines = [
        "graph overlay {",
        f'  label="{title}";',
        "  layout=neato;",
        '  node [style=filled, fontsize=8, fontname="Helvetica"];',
    ]
    for n in sorted(graph.nodes(), key=str):
        asn = asn_of(n)
        shape = "ellipse"
        if role_of is not None and role_of(n) == "ultrapeer":
            shape = "box"
        lines.append(
            f'  n{n} [label="{n}", shape={shape}, '
            f"fillcolor=\"{color_for(asn)}\"];"
        )
    for a, b in sorted(graph.edges(), key=str):
        if asn_of(a) == asn_of(b):
            lines.append(f"  n{a} -- n{b} [penwidth=1.6];")
        else:
            lines.append(f'  n{a} -- n{b} [color="#999999"];')
    lines.append("}")
    return "\n".join(lines)


def write_figure6_pair(
    uniform_graph: nx.Graph,
    biased_graph: nx.Graph,
    asn_of: Callable[[Hashable], int],
    path_prefix: str,
) -> tuple[str, str]:
    """Write the two Figure 6 panels as .dot files; returns the paths."""
    paths = (f"{path_prefix}_uniform.dot", f"{path_prefix}_biased.dot")
    for path, graph, title in zip(
        paths,
        (uniform_graph, biased_graph),
        ("(a) uniform random neighbor selection", "(b) biased neighbor selection"),
    ):
        with open(path, "w") as fh:
            fh.write(dot_overlay(graph, asn_of, title=title))
    return paths
