"""Deterministic random-number utilities.

Every stochastic component in the library accepts either an integer seed or
a pre-built :class:`numpy.random.Generator`.  :func:`ensure_rng` normalises
both spellings; :func:`spawn` derives independent child generators so that
subsystems (topology generation, churn, workload) do not perturb each
other's streams when one of them changes how many draws it makes.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

SeedLike = Union[int, np.random.Generator, None]


def ensure_rng(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    ``None`` produces a fresh nondeterministic generator; an ``int`` seeds a
    PCG64 stream; an existing generator is returned unchanged.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn(rng: np.random.Generator, n: int) -> list[np.random.Generator]:
    """Derive ``n`` statistically independent child generators from ``rng``.

    Uses the generator's bit-stream to draw child seeds, which keeps the
    derivation deterministic for a seeded parent.
    """
    if n < 0:
        raise ValueError(f"cannot spawn {n} generators")
    seeds = rng.integers(0, 2**63 - 1, size=n, dtype=np.int64)
    return [np.random.default_rng(int(s)) for s in seeds]
