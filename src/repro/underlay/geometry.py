"""Planar geography for the synthetic Internet.

Positions live on a continental plane measured in kilometres (a UTM-like
projected coordinate system, per the survey's §3.3 note that UTM is the
usual representation for geolocation).  Distances are Euclidean; the
propagation-delay conversion lives in :mod:`repro.underlay.latency`.

All pairwise computations are vectorised NumPy.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: Default extent of the plane, km (roughly a continent).
DEFAULT_EXTENT_KM = 5000.0


@dataclass(frozen=True)
class Position:
    """A point on the projected plane, in kilometres."""

    x: float
    y: float

    def distance_to(self, other: "Position") -> float:
        return float(np.hypot(self.x - other.x, self.y - other.y))

    def as_array(self) -> np.ndarray:
        return np.array([self.x, self.y], dtype=float)


def positions_to_array(positions: list[Position]) -> np.ndarray:
    """Stack positions into an ``(n, 2)`` float array."""
    if not positions:
        return np.zeros((0, 2), dtype=float)
    return np.array([[p.x, p.y] for p in positions], dtype=float)


def pairwise_distances(points: np.ndarray) -> np.ndarray:
    """All-pairs Euclidean distances of an ``(n, 2)`` array, vectorised.

    Returns an ``(n, n)`` symmetric matrix with zero diagonal.
    """
    points = np.asarray(points, dtype=float)
    if points.ndim != 2 or points.shape[1] != 2:
        raise ValueError(f"expected (n, 2) array, got shape {points.shape}")
    diff = points[:, None, :] - points[None, :, :]
    return np.sqrt(np.einsum("ijk,ijk->ij", diff, diff))


def cross_distances(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Distances between each row of ``a`` (n,2) and each row of ``b`` (m,2)."""
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    diff = a[:, None, :] - b[None, :, :]
    return np.sqrt(np.einsum("ijk,ijk->ij", diff, diff))


def scatter_around(
    center: Position, spread_km: float, n: int, rng: np.random.Generator
) -> list[Position]:
    """Draw ``n`` positions normally scattered around ``center``.

    Used to place hosts inside an ISP's service area and ISPs inside a
    geographic region.
    """
    if spread_km < 0:
        raise ValueError("spread_km must be non-negative")
    offsets = rng.normal(0.0, spread_km, size=(n, 2))
    return [Position(center.x + dx, center.y + dy) for dx, dy in offsets]
