"""Mobility: peers that change their attachment point over time (§6).

The survey's mobile-support challenge: "some underlay provided
information such as ISP-location and latency no longer apply because of
continuous variation, or at least this might introduce additional
overhead."  This module generates *attachment traces* — a subset of
hosts re-homes to a different AS at exponential intervals (a phone
hopping between cellular/wifi providers, a laptop commuting) — and
quantifies exactly that trade-off:

- :func:`cached_info_accuracy` — how fast a one-shot ISP-location
  snapshot decays as peers move;
- :func:`refresh_tradeoff` — accuracy vs re-query overhead for a range of
  refresh intervals, the curve a mobility-aware system must pick from.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.rng import SeedLike, ensure_rng
from repro.underlay.network import Underlay


@dataclass(frozen=True)
class MobilityConfig:
    """Which fraction of peers move, and how often."""

    mobile_fraction: float = 0.3
    mean_dwell_h: float = 2.0        # mean time between attachment changes
    roam_within_region: bool = True  # phones usually hop between local ISPs

    def __post_init__(self) -> None:
        if not (0.0 <= self.mobile_fraction <= 1.0):
            raise ConfigurationError("mobile_fraction must be a probability")
        if self.mean_dwell_h <= 0:
            raise ConfigurationError("mean dwell time must be positive")


@dataclass
class MobilityTrace:
    """Per-host attachment timelines: sorted (time_h, asn) change points."""

    initial_asn: dict[int, int]
    moves: dict[int, list[tuple[float, int]]] = field(default_factory=dict)
    horizon_h: float = 24.0

    def asn_at(self, host_id: int, t_h: float) -> int:
        """The AS a host is attached to at time ``t_h``."""
        if host_id not in self.initial_asn:
            raise ConfigurationError(f"host {host_id} not in trace")
        asn = self.initial_asn[host_id]
        timeline = self.moves.get(host_id, [])
        times = [m[0] for m in timeline]
        k = bisect.bisect_right(times, t_h)
        if k:
            asn = timeline[k - 1][1]
        return asn

    def mobile_hosts(self) -> list[int]:
        return sorted(self.moves)

    def total_moves(self) -> int:
        return sum(len(m) for m in self.moves.values())


def generate_mobility(
    underlay: Underlay,
    config: MobilityConfig | None = None,
    *,
    horizon_h: float = 24.0,
    rng: SeedLike = None,
) -> MobilityTrace:
    """Draw a mobility trace over the underlay's host population."""
    if horizon_h <= 0:
        raise ConfigurationError("horizon must be positive")
    config = config or MobilityConfig()
    rng = ensure_rng(rng)
    hosts = underlay.hosts
    n_mobile = int(round(config.mobile_fraction * len(hosts)))
    idx = rng.choice(len(hosts), size=n_mobile, replace=False)
    trace = MobilityTrace(
        initial_asn={h.host_id: h.asn for h in hosts}, horizon_h=horizon_h
    )
    stub_asns = underlay.topology.stub_asns()
    by_region: dict[int, list[int]] = {}
    for asn in stub_asns:
        by_region.setdefault(underlay.topology.asys(asn).region, []).append(asn)
    for i in idx:
        host = hosts[int(i)]
        timeline: list[tuple[float, int]] = []
        t = float(rng.exponential(config.mean_dwell_h))
        current = host.asn
        while t < horizon_h:
            region = underlay.topology.asys(current).region
            pool = (
                by_region.get(region, stub_asns)
                if config.roam_within_region
                else stub_asns
            )
            choices = [a for a in pool if a != current] or [current]
            current = int(choices[int(rng.integers(len(choices)))])
            timeline.append((t, current))
            t += float(rng.exponential(config.mean_dwell_h))
        trace.moves[host.host_id] = timeline
    return trace


def cached_info_accuracy(
    trace: MobilityTrace, at_times_h: Sequence[float]
) -> list[dict[str, float]]:
    """Accuracy of a t=0 ISP-location snapshot at later times."""
    rows = []
    hosts = list(trace.initial_asn)
    for t in at_times_h:
        if t < 0:
            raise ConfigurationError("query times must be non-negative")
        correct = sum(
            trace.asn_at(h, t) == trace.initial_asn[h] for h in hosts
        )
        rows.append({"t_h": float(t), "accuracy": correct / len(hosts)})
    return rows


def refresh_tradeoff(
    trace: MobilityTrace,
    refresh_intervals_h: Sequence[float],
    *,
    query_bytes: int = 128,
) -> list[dict[str, float]]:
    """Mean cached-mapping accuracy and re-query overhead per refresh
    interval over the trace horizon — the §6 mobility trade-off curve."""
    hosts = list(trace.initial_asn)
    rows = []
    for interval in refresh_intervals_h:
        if interval <= 0:
            raise ConfigurationError("refresh interval must be positive")
        sample_times = np.arange(0.0, trace.horizon_h, trace.horizon_h / 48.0)
        hits = total = 0
        for t in sample_times:
            last_refresh = np.floor(t / interval) * interval
            for h in hosts:
                total += 1
                hits += trace.asn_at(h, t) == trace.asn_at(h, last_refresh)
        refreshes = int(np.ceil(trace.horizon_h / interval)) * len(hosts)
        rows.append(
            {
                "refresh_interval_h": float(interval),
                "mean_accuracy": hits / total,
                "refresh_bytes": refreshes * query_bytes,
            }
        )
    return rows
