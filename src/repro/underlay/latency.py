"""Latency model: host-to-host one-way delay over the AS topology.

Delay decomposes as::

    delay(a, b) = access(a) + access(b)
                + sum over AS path links of (propagation + router penalty)
                + intra-AS internal delay at each traversed AS
                + per-pair jitter

Propagation uses the speed of light in fibre (~0.005 ms/km) over the
geographic distance between AS positions along the *routed* (valley-free)
path — so two geographically close hosts in different ISPs can see a large
delay when their route climbs through distant transit carriers, which is
exactly the geolocation/latency de-correlation the survey's §2.4 warns
about.

The per-pair jitter is a *counter-hash* kernel: a SplitMix64-style mix of
the sorted host-id pair and the jitter seed produces one uniform per pair,
mapped through the inverse normal CDF and clipped — symmetric and
deterministic with **no per-pair RNG state**, so the scalar, row, and
matrix paths all agree exactly on the same multiplier (see
:func:`pair_jitter`).  It gives the matrix mild triangle-inequality
violations like real RTT datasets.

:class:`StreamingDelayKernel` computes delay rows and blocks straight
from struct-of-arrays host columns (access-latency vector, ASN vector,
positions) plus the small ``(n_ases, n_ases)`` AS-delay matrix, with no
``(n_hosts, n_hosts)`` intermediate — the O(n)-memory backend behind
``Underlay(delay_backend="stream")`` that serves per-message delays for
10^5–10^6-host underlays where the full host matrix (~80 GB of float64
at 10^5 hosts) cannot exist.

The all-pairs AS delay matrix is accumulated *during* the routing BFS
(:meth:`~repro.underlay.routing.ASRouting.delay_matrix`), not
reconstructed path by path, and is built lazily on first use; see
:meth:`LatencyModel.precompute` / :meth:`LatencyModel.invalidate` and
``docs/performance.md`` for the caching rules.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.underlay._obs import note_cache_event, timed_build
from repro.underlay.geometry import pairwise_distances, positions_to_array
from repro.underlay.hosts import Host
from repro.underlay.routing import ASRouting
from repro.underlay.topology import InternetTopology

#: Speed of light in fibre: ~200 000 km/s  ->  0.005 ms per km.
PROPAGATION_MS_PER_KM = 0.005

#: Default bound on the streaming kernel's scalar pair memo (entries).
DEFAULT_PAIR_MEMO_SIZE = 1 << 17


# -- counter-hash jitter kernel ------------------------------------------------

_U64_30 = np.uint64(30)
_U64_27 = np.uint64(27)
_U64_31 = np.uint64(31)
_U64_11 = np.uint64(11)
_SM_MULT1 = np.uint64(0xBF58476D1CE4E5B9)
_SM_MULT2 = np.uint64(0x94D049BB133111EB)
_SM_GAMMA = 0x9E3779B97F4A7C15
_U53_INV = 2.0 ** -53


def _mix64(x: np.ndarray) -> np.ndarray:
    """SplitMix64 finalizer (bijective avalanche mix) on uint64 arrays."""
    x = (x ^ (x >> _U64_30)) * _SM_MULT1
    x = (x ^ (x >> _U64_27)) * _SM_MULT2
    return x ^ (x >> _U64_31)


# Acklam's rational approximation of the inverse normal CDF
# (|relative error| < 1.15e-9 over (0, 1)); the central branch covers
# ~95% of draws, the tail branches are hit only by pairs whose jitter
# the clip would mostly saturate anyway.
_PPF_A = (
    -3.969683028665376e01, 2.209460984245205e02, -2.759285104469687e02,
    1.383577518672690e02, -3.066479806614716e01, 2.506628277459239e00,
)
_PPF_B = (
    -5.447609879822406e01, 1.615858368580409e02, -1.556989798598866e02,
    6.680131188771972e01, -1.328068155288572e01,
)
_PPF_C = (
    -7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e00,
    -2.549732539343734e00, 4.374664141464968e00, 2.938163982698783e00,
)
_PPF_D = (
    7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e00,
    3.754408661907416e00,
)
_PPF_LOW = 0.02425


def _norm_ppf(u: np.ndarray) -> np.ndarray:
    """Vectorised inverse standard-normal CDF for ``u`` in (0, 1)."""
    a, b, c, d = _PPF_A, _PPF_B, _PPF_C, _PPF_D
    out = np.empty_like(u)
    central = (u > _PPF_LOW) & (u < 1.0 - _PPF_LOW)
    q = u[central] - 0.5
    r = q * q
    out[central] = (
        (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * q
        / (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0)
    )
    low = u <= _PPF_LOW
    if low.any():
        q = np.sqrt(-2.0 * np.log(u[low]))
        out[low] = (
            ((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]
        ) / ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0)
    high = u >= 1.0 - _PPF_LOW
    if high.any():
        q = np.sqrt(-2.0 * np.log(1.0 - u[high]))
        out[high] = -(
            ((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]
        ) / ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0)
    return out


def pair_jitter(
    ids_a: np.ndarray,
    ids_b: np.ndarray,
    *,
    jitter_seed: int,
    jitter_std_frac: float,
) -> np.ndarray:
    """Canonical deterministic per-pair jitter multiplier (mean ~1).

    A SplitMix64-style counter hash of the *sorted* host-id pair and the
    seed yields one uniform per pair; the inverse normal CDF turns it
    into a clipped ``N(1, jitter_std_frac)`` draw.  Stateless and
    symmetric, so the scalar, row, block, and full-matrix delay paths
    all see bit-identical multipliers for the same pair — no RNG object
    is ever constructed.  Inputs broadcast like any NumPy binary op.
    """
    a = np.asarray(ids_a, dtype=np.uint64)
    b = np.asarray(ids_b, dtype=np.uint64)
    lo = np.minimum(a, b)
    hi = np.maximum(a, b)
    if jitter_std_frac == 0:
        return np.ones(np.broadcast(lo, hi).shape, dtype=np.float64)
    seed = np.uint64((jitter_seed * _SM_GAMMA) & 0xFFFFFFFFFFFFFFFF)
    h = _mix64(lo ^ _mix64(hi ^ seed))
    # 53 high bits -> uniform strictly inside (0, 1)
    u = ((h >> _U64_11).astype(np.float64) + 0.5) * _U53_INV
    z = _norm_ppf(u)
    return np.clip(1.0 + jitter_std_frac * z, 0.5, 2.0)


@dataclass(frozen=True)
class LatencyConfig:
    """Parameters of the delay model (all in milliseconds / km)."""

    propagation_ms_per_km: float = PROPAGATION_MS_PER_KM
    per_link_router_ms: float = 1.0   # queueing/processing per inter-AS link
    intra_as_ms: float = 1.5          # internal delay of one traversed AS
    jitter_std_frac: float = 0.08     # lognormal-ish per-pair multiplier spread
    jitter_seed: int = 7

    def __post_init__(self) -> None:
        if self.propagation_ms_per_km <= 0:
            raise ConfigurationError("propagation speed must be positive")
        if self.per_link_router_ms < 0 or self.intra_as_ms < 0:
            raise ConfigurationError("delay components must be non-negative")
        if self.jitter_std_frac < 0:
            raise ConfigurationError("jitter fraction must be non-negative")


class LatencyModel:
    """Computes one-way delays and all-pairs latency matrices.

    The AS-pair delay matrix is built lazily on first use and cached;
    :meth:`precompute` forces the build, :meth:`invalidate` drops it
    (e.g. after swapping the routing tables), and :meth:`warm_as_delay`
    injects a matrix loaded from a substrate cache.
    """

    def __init__(
        self,
        topology: InternetTopology,
        routing: ASRouting,
        config: LatencyConfig | None = None,
    ) -> None:
        self.topology = topology
        self.routing = routing
        self.config = config or LatencyConfig()
        self._as_delay: Optional[np.ndarray] = None

    # -- AS-level -----------------------------------------------------------
    @property
    def as_delay(self) -> np.ndarray:
        """AS-path delay matrix for every AS pair, built lazily once."""
        if self._as_delay is None:
            note_cache_event("as_delay", "miss")
            with timed_build("as_delay"):
                self._as_delay = self._build_as_delay_matrix()
        else:
            note_cache_event("as_delay", "hit")
        return self._as_delay

    def precompute(self) -> "LatencyModel":
        """Force the lazy AS delay matrix to build now."""
        self.as_delay
        return self

    def invalidate(self) -> None:
        """Drop the cached AS delay matrix (rebuilt on next use)."""
        self._as_delay = None

    def warm_as_delay(self, matrix: np.ndarray) -> None:
        """Inject a precomputed AS delay matrix (substrate cache load)."""
        mat = np.asarray(matrix, dtype=np.float64)
        n = self.topology.n_ases
        if mat.shape != (n, n):
            raise ConfigurationError(
                f"AS delay matrix shape {mat.shape} does not match {n} ASes"
            )
        self._as_delay = mat

    def _build_as_delay_matrix(self) -> np.ndarray:
        """Delay contributed by the AS path for every AS pair (symmetric
        up to routing asymmetry; we use the src->dst route).

        The per-link and per-AS terms accumulate inside the routing BFS
        itself — no per-pair path reconstruction.
        """
        cfg = self.config
        pos = self.topology.positions_array()
        geo = pairwise_distances(pos)
        link_ms = geo * cfg.propagation_ms_per_km
        mat = self.routing.delay_matrix(
            link_ms,
            per_link_router_ms=cfg.per_link_router_ms,
            intra_as_ms=cfg.intra_as_ms,
        )
        # Valley-free forward and reverse routes can differ slightly; the
        # delay a flow experiences is effectively the mean of both legs
        # (and the coordinate systems of §3.2 consume symmetric RTTs), so
        # the model uses the symmetrised matrix.
        return 0.5 * (mat + mat.T)

    def as_pair_delay(self, asn_a: int, asn_b: int) -> float:
        """AS-path delay component between two ASes (ms)."""
        mat = self._as_delay
        if mat is None:
            mat = self.as_delay
        return float(mat[asn_a, asn_b])

    # -- host-level ----------------------------------------------------------
    def one_way_delay(self, host_a: Host, host_b: Host) -> float:
        """One-way delay between two hosts (ms).

        Uses the canonical :func:`pair_jitter` counter-hash kernel, so
        the returned value equals the corresponding
        :meth:`latency_matrix` entry and :class:`StreamingDelayKernel`
        row entry bit for bit (for distinct hosts).
        """
        if host_a.host_id == host_b.host_id:
            return 0.05  # loopback-ish
        cfg = self.config
        base = (
            host_a.access_latency_ms
            + host_b.access_latency_ms
            + self.as_pair_delay(host_a.asn, host_b.asn)
        )
        if host_a.asn == host_b.asn:
            # direct metro propagation inside the shared ISP; dx*dx+dy*dy
            # mirrors the einsum reduction of the vector paths exactly
            dx = host_a.position.x - host_b.position.x
            dy = host_a.position.y - host_b.position.y
            base = base + np.sqrt(dx * dx + dy * dy) * cfg.propagation_ms_per_km
        mult = float(
            pair_jitter(
                np.array([host_a.host_id], dtype=np.uint64),
                np.array([host_b.host_id], dtype=np.uint64),
                jitter_seed=cfg.jitter_seed,
                jitter_std_frac=cfg.jitter_std_frac,
            )[0]
        )
        return float(base * mult)

    def one_way_delay_reference(self, host_a: Host, host_b: Host) -> float:
        """Retained seed implementation of the scalar delay path.

        Constructs a fresh per-pair ``np.random.default_rng`` for the
        jitter draw — the per-message cost the streaming kernel removes.
        Kept as the wall-cost baseline for ``benchmarks/
        test_microbench_bus.py``; its jitter differs from the canonical
        kernel (that disagreement between the scalar and matrix paths is
        the seed bug PR 9 fixed), so nothing but the benchmark should
        call it.
        """
        if host_a.host_id == host_b.host_id:
            return 0.05  # loopback-ish
        cfg = self.config
        base = (
            host_a.access_latency_ms
            + host_b.access_latency_ms
            + self.as_pair_delay(host_a.asn, host_b.asn)
        )
        if host_a.asn == host_b.asn:
            base += host_a.position.distance_to(host_b.position) * cfg.propagation_ms_per_km
        lo, hi = sorted((host_a.host_id, host_b.host_id))
        pair_rng = np.random.default_rng(
            (cfg.jitter_seed * 1_000_003 + lo) * 1_000_003 + hi
        )
        mult = float(np.clip(pair_rng.normal(1.0, cfg.jitter_std_frac), 0.5, 2.0))
        return base * mult

    def delay_kernel(
        self,
        hosts: Sequence[Host],
        *,
        memo_size: int = DEFAULT_PAIR_MEMO_SIZE,
    ) -> "StreamingDelayKernel":
        """Build the O(n)-memory streaming kernel over ``hosts``.

        Materialises only the SoA host columns and binds the (small)
        AS-delay matrix; rows/blocks are computed on demand.
        """
        return StreamingDelayKernel.from_hosts(
            hosts, self.as_delay, self.config, memo_size=memo_size
        )

    def latency_matrix(self, hosts: Sequence[Host]) -> np.ndarray:
        """All-pairs one-way delay matrix for ``hosts`` (ms), vectorised.

        Same decomposition and :func:`pair_jitter` kernel as
        :meth:`one_way_delay`, so every entry agrees exactly with the
        scalar path and with :class:`StreamingDelayKernel` rows — this
        is the equivalence reference for the streaming backend.
        """
        hosts = list(hosts)
        n = len(hosts)
        if n == 0:
            return np.zeros((0, 0), dtype=float)
        return self.delay_kernel(hosts).full_matrix()

    def rtt_matrix(self, hosts: Sequence[Host]) -> np.ndarray:
        """Round-trip-time matrix: twice the one-way delay."""
        return 2.0 * self.latency_matrix(hosts)


class StreamingDelayKernel:
    """Streaming host-pair delay kernel over struct-of-arrays columns.

    Holds O(n) state — host-id, ASN, and access-latency vectors plus the
    ``(n, 2)`` position array — and the shared ``(n_ases, n_ases)``
    AS-delay matrix, and computes any rectangular block of the host
    delay matrix on demand with no ``(n_hosts, n_hosts)`` intermediate.
    :meth:`delay_row` / :meth:`delay_block` are value-identical, entry
    by entry, to :meth:`LatencyModel.latency_matrix` (which is itself a
    chunked :meth:`full_matrix` over this kernel).

    Scalar lookups go through a bounded LRU pair memo
    (:meth:`delay_scalar`), which is what a message bus hot path wants:
    protocol traffic revisits the same pairs constantly.
    """

    def __init__(
        self,
        host_ids: np.ndarray,
        asns: np.ndarray,
        access_ms: np.ndarray,
        positions: np.ndarray,
        as_delay: np.ndarray,
        config: LatencyConfig,
        *,
        memo_size: int = DEFAULT_PAIR_MEMO_SIZE,
    ) -> None:
        self.host_ids = np.ascontiguousarray(host_ids, dtype=np.uint64)
        self.asns = np.ascontiguousarray(asns, dtype=np.int64)
        self.access_ms = np.ascontiguousarray(access_ms, dtype=np.float64)
        self.positions = np.ascontiguousarray(positions, dtype=np.float64)
        self.as_delay = as_delay
        self.config = config
        n = len(self.host_ids)
        if not (len(self.asns) == len(self.access_ms) == len(self.positions) == n):
            raise ConfigurationError("streaming kernel columns disagree on n_hosts")
        self.n_hosts = n
        self._scalar = functools.lru_cache(maxsize=memo_size)(self._scalar_uncached)

    @classmethod
    def from_hosts(
        cls,
        hosts: Sequence[Host],
        as_delay: np.ndarray,
        config: LatencyConfig,
        *,
        memo_size: int = DEFAULT_PAIR_MEMO_SIZE,
    ) -> "StreamingDelayKernel":
        hosts = list(hosts)
        return cls(
            np.array([h.host_id for h in hosts], dtype=np.uint64),
            np.array([h.asn for h in hosts], dtype=np.int64),
            np.array([h.access_latency_ms for h in hosts], dtype=np.float64),
            positions_to_array([h.position for h in hosts]),
            as_delay,
            config,
            memo_size=memo_size,
        )

    # -- block computation ----------------------------------------------------
    def delay_block(self, rows: Sequence[int], cols: Sequence[int]) -> np.ndarray:
        """Delay block ``(len(rows), len(cols))`` in ms, O(rows x cols)
        work and memory — never O(n^2) in the host population."""
        rows = np.asarray(rows, dtype=np.intp)
        cols = np.asarray(cols, dtype=np.intp)
        cfg = self.config
        acc_r = self.access_ms[rows]
        acc_c = self.access_ms[cols]
        asn_r = self.asns[rows]
        asn_c = self.asns[cols]
        base = acc_r[:, None] + acc_c[None, :] + self.as_delay[np.ix_(asn_r, asn_c)]
        diff = self.positions[rows][:, None, :] - self.positions[cols][None, :, :]
        geo = np.sqrt(np.einsum("ijk,ijk->ij", diff, diff))
        same_as = asn_r[:, None] == asn_c[None, :]
        base = base + np.where(same_as, geo * cfg.propagation_ms_per_km, 0.0)
        ids_r = self.host_ids[rows]
        ids_c = self.host_ids[cols]
        jitter = pair_jitter(
            ids_r[:, None],
            ids_c[None, :],
            jitter_seed=cfg.jitter_seed,
            jitter_std_frac=cfg.jitter_std_frac,
        )
        out = base * jitter
        out[ids_r[:, None] == ids_c[None, :]] = 0.0
        return out

    def delay_row(self, row: int, cols: Sequence[int]) -> np.ndarray:
        """One delay row: host index ``row`` to each host index in
        ``cols`` (ms) — a 1-row :meth:`delay_block`."""
        return self.delay_block((row,), cols)[0]

    def full_matrix(self, row_block: int = 2048) -> np.ndarray:
        """The all-pairs matrix, assembled block-row by block-row so the
        broadcast intermediates stay bounded.  This is the *matrix
        backend build* — only sized populations should call it."""
        n = self.n_hosts
        all_cols = np.arange(n, dtype=np.intp)
        out = np.empty((n, n), dtype=np.float64)
        for start in range(0, n, row_block):
            stop = min(start + row_block, n)
            out[start:stop] = self.delay_block(
                np.arange(start, stop, dtype=np.intp), all_cols
            )
        return out

    # -- memoised scalar path --------------------------------------------------
    def _scalar_uncached(self, i: int, j: int) -> float:
        return float(self.delay_block((i,), (j,))[0, 0])

    def delay_scalar(self, i: int, j: int) -> float:
        """Delay between host indices ``i`` and ``j`` through the
        bounded LRU pair memo (delays are symmetric, so the memo keys on
        the sorted index pair)."""
        if i > j:
            i, j = j, i
        return self._scalar(i, j)

    def memo_info(self):
        """Hit/miss statistics of the scalar pair memo."""
        return self._scalar.cache_info()

    def memo_clear(self) -> None:
        self._scalar.cache_clear()

    def memory_bytes(self) -> int:
        """Bytes held in the SoA columns (excludes the shared AS-delay
        matrix and the pair memo)."""
        return (
            self.host_ids.nbytes
            + self.asns.nbytes
            + self.access_ms.nbytes
            + self.positions.nbytes
        )
