"""Latency model: host-to-host one-way delay over the AS topology.

Delay decomposes as::

    delay(a, b) = access(a) + access(b)
                + sum over AS path links of (propagation + router penalty)
                + intra-AS internal delay at each traversed AS
                + per-pair jitter

Propagation uses the speed of light in fibre (~0.005 ms/km) over the
geographic distance between AS positions along the *routed* (valley-free)
path — so two geographically close hosts in different ISPs can see a large
delay when their route climbs through distant transit carriers, which is
exactly the geolocation/latency de-correlation the survey's §2.4 warns
about.

The per-pair jitter is drawn once per host pair from a seeded generator
(symmetric, deterministic), giving the matrix mild triangle-inequality
violations like real RTT datasets.

The all-pairs AS delay matrix is accumulated *during* the routing BFS
(:meth:`~repro.underlay.routing.ASRouting.delay_matrix`), not
reconstructed path by path, and is built lazily on first use; see
:meth:`LatencyModel.precompute` / :meth:`LatencyModel.invalidate` and
``docs/performance.md`` for the caching rules.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.underlay._obs import note_cache_event, timed_build
from repro.underlay.geometry import pairwise_distances, positions_to_array
from repro.underlay.hosts import Host
from repro.underlay.routing import ASRouting
from repro.underlay.topology import InternetTopology

#: Speed of light in fibre: ~200 000 km/s  ->  0.005 ms per km.
PROPAGATION_MS_PER_KM = 0.005


@dataclass(frozen=True)
class LatencyConfig:
    """Parameters of the delay model (all in milliseconds / km)."""

    propagation_ms_per_km: float = PROPAGATION_MS_PER_KM
    per_link_router_ms: float = 1.0   # queueing/processing per inter-AS link
    intra_as_ms: float = 1.5          # internal delay of one traversed AS
    jitter_std_frac: float = 0.08     # lognormal-ish per-pair multiplier spread
    jitter_seed: int = 7

    def __post_init__(self) -> None:
        if self.propagation_ms_per_km <= 0:
            raise ConfigurationError("propagation speed must be positive")
        if self.per_link_router_ms < 0 or self.intra_as_ms < 0:
            raise ConfigurationError("delay components must be non-negative")
        if self.jitter_std_frac < 0:
            raise ConfigurationError("jitter fraction must be non-negative")


class LatencyModel:
    """Computes one-way delays and all-pairs latency matrices.

    The AS-pair delay matrix is built lazily on first use and cached;
    :meth:`precompute` forces the build, :meth:`invalidate` drops it
    (e.g. after swapping the routing tables), and :meth:`warm_as_delay`
    injects a matrix loaded from a substrate cache.
    """

    def __init__(
        self,
        topology: InternetTopology,
        routing: ASRouting,
        config: LatencyConfig | None = None,
    ) -> None:
        self.topology = topology
        self.routing = routing
        self.config = config or LatencyConfig()
        self._as_delay: Optional[np.ndarray] = None

    # -- AS-level -----------------------------------------------------------
    @property
    def as_delay(self) -> np.ndarray:
        """AS-path delay matrix for every AS pair, built lazily once."""
        if self._as_delay is None:
            note_cache_event("as_delay", "miss")
            with timed_build("as_delay"):
                self._as_delay = self._build_as_delay_matrix()
        else:
            note_cache_event("as_delay", "hit")
        return self._as_delay

    def precompute(self) -> "LatencyModel":
        """Force the lazy AS delay matrix to build now."""
        self.as_delay
        return self

    def invalidate(self) -> None:
        """Drop the cached AS delay matrix (rebuilt on next use)."""
        self._as_delay = None

    def warm_as_delay(self, matrix: np.ndarray) -> None:
        """Inject a precomputed AS delay matrix (substrate cache load)."""
        mat = np.asarray(matrix, dtype=np.float64)
        n = self.topology.n_ases
        if mat.shape != (n, n):
            raise ConfigurationError(
                f"AS delay matrix shape {mat.shape} does not match {n} ASes"
            )
        self._as_delay = mat

    def _build_as_delay_matrix(self) -> np.ndarray:
        """Delay contributed by the AS path for every AS pair (symmetric
        up to routing asymmetry; we use the src->dst route).

        The per-link and per-AS terms accumulate inside the routing BFS
        itself — no per-pair path reconstruction.
        """
        cfg = self.config
        pos = self.topology.positions_array()
        geo = pairwise_distances(pos)
        link_ms = geo * cfg.propagation_ms_per_km
        mat = self.routing.delay_matrix(
            link_ms,
            per_link_router_ms=cfg.per_link_router_ms,
            intra_as_ms=cfg.intra_as_ms,
        )
        # Valley-free forward and reverse routes can differ slightly; the
        # delay a flow experiences is effectively the mean of both legs
        # (and the coordinate systems of §3.2 consume symmetric RTTs), so
        # the model uses the symmetrised matrix.
        return 0.5 * (mat + mat.T)

    def as_pair_delay(self, asn_a: int, asn_b: int) -> float:
        """AS-path delay component between two ASes (ms)."""
        mat = self._as_delay
        if mat is None:
            mat = self.as_delay
        return float(mat[asn_a, asn_b])

    # -- host-level ----------------------------------------------------------
    def _pair_jitter_matrix(self, n: int) -> np.ndarray:
        """Deterministic symmetric multiplicative jitter, mean ~1."""
        cfg = self.config
        if cfg.jitter_std_frac == 0:
            return np.ones((n, n), dtype=float)
        rng = np.random.default_rng(cfg.jitter_seed)
        raw = rng.normal(1.0, cfg.jitter_std_frac, size=(n, n))
        sym = np.triu(raw, 1)
        sym = sym + sym.T
        np.fill_diagonal(sym, 1.0)
        sym[sym == 0] = 1.0
        return np.clip(sym, 0.5, 2.0)

    def one_way_delay(self, host_a: Host, host_b: Host) -> float:
        """One-way delay between two hosts (ms)."""
        if host_a.host_id == host_b.host_id:
            return 0.05  # loopback-ish
        cfg = self.config
        base = (
            host_a.access_latency_ms
            + host_b.access_latency_ms
            + self.as_pair_delay(host_a.asn, host_b.asn)
        )
        if host_a.asn == host_b.asn:
            # add direct metro propagation inside the shared ISP
            base += host_a.position.distance_to(host_b.position) * cfg.propagation_ms_per_km
        # deterministic pair jitter via hashing of the id pair
        lo, hi = sorted((host_a.host_id, host_b.host_id))
        pair_rng = np.random.default_rng(
            (cfg.jitter_seed * 1_000_003 + lo) * 1_000_003 + hi
        )
        mult = float(np.clip(pair_rng.normal(1.0, cfg.jitter_std_frac), 0.5, 2.0))
        return base * mult

    def latency_matrix(self, hosts: Sequence[Host]) -> np.ndarray:
        """All-pairs one-way delay matrix for ``hosts`` (ms), vectorised.

        Uses the same decomposition as :meth:`one_way_delay` but with a
        matrix-level jitter draw, so individual entries agree with the
        scalar path in distribution (and exactly when jitter is disabled).
        """
        hosts = list(hosts)
        n = len(hosts)
        if n == 0:
            return np.zeros((0, 0), dtype=float)
        cfg = self.config
        access = np.array([h.access_latency_ms for h in hosts], dtype=float)
        asns = np.array([h.asn for h in hosts], dtype=np.int64)
        base = access[:, None] + access[None, :] + self.as_delay[np.ix_(asns, asns)]
        # metro propagation for same-AS pairs
        pos = positions_to_array([h.position for h in hosts])
        geo = pairwise_distances(pos)
        same_as = asns[:, None] == asns[None, :]
        base = base + np.where(same_as, geo * cfg.propagation_ms_per_km, 0.0)
        jitter = self._pair_jitter_matrix(n)
        out = base * jitter
        np.fill_diagonal(out, 0.0)
        return out

    def rtt_matrix(self, hosts: Sequence[Host]) -> np.ndarray:
        """Round-trip-time matrix: twice the one-way delay."""
        return 2.0 * self.latency_matrix(hosts)
