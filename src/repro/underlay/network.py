"""The :class:`Underlay` facade: topology + routing + latency + hosts +
traffic accounting behind one object.

This is the substrate every experiment starts from::

    underlay = Underlay.generate(UnderlayConfig(n_hosts=200, seed=42))
    sim = Simulation()
    bus = underlay.message_bus(sim)

The facade implements the :class:`~repro.sim.messages.LatencyProvider`
protocol over *host ids*, precomputing the all-pairs host latency matrix so
per-message delay lookups are O(1) array reads.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Optional, Sequence

import numpy as np

from repro.errors import ConfigurationError, TopologyError
from repro.rng import ensure_rng, spawn
from repro.underlay._obs import note_cache_event, timed_build
from repro.sim.engine import Simulation
from repro.sim.messages import MessageBus
from repro.underlay.cost import CostModel, CostParams
from repro.underlay.hosts import Host, HostFactory
from repro.underlay.latency import LatencyConfig, LatencyModel
from repro.underlay.routing import ASRouting
from repro.underlay.topology import InternetTopology, TopologyConfig, generate_topology
from repro.underlay.traffic import TrafficAccountant


@dataclass(frozen=True)
class UnderlayConfig:
    """One-stop configuration for a generated underlay."""

    topology: TopologyConfig = field(default_factory=TopologyConfig)
    latency: LatencyConfig = field(default_factory=LatencyConfig)
    cost: CostParams = field(default_factory=CostParams)
    n_hosts: int = 200
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_hosts < 0:
            raise ConfigurationError("n_hosts must be non-negative")


class Underlay:
    """A fully materialised synthetic Internet with an attached host
    population.  Use :meth:`generate` for the common path."""

    def __init__(
        self,
        topology: InternetTopology,
        hosts: Sequence[Host],
        *,
        latency_config: LatencyConfig | None = None,
        cost_params: CostParams | None = None,
    ) -> None:
        self.topology = topology
        self.routing = ASRouting(topology)
        self.latency = LatencyModel(topology, self.routing, latency_config)
        self.cost_model = CostModel(cost_params)
        self.hosts: list[Host] = list(hosts)
        self._host_by_id: dict[int, Host] = {h.host_id: h for h in self.hosts}
        if len(self._host_by_id) != len(self.hosts):
            raise TopologyError("duplicate host ids in underlay")
        self._index_of = {h.host_id: i for i, h in enumerate(self.hosts)}
        # asn -> hosts index: hosts_in_as and the oracle paths are called
        # per candidate list, so a linear scan over all hosts is the wrong
        # complexity class
        self._hosts_by_as: dict[int, list[Host]] = {}
        for h in self.hosts:
            self._hosts_by_as.setdefault(h.asn, []).append(h)
        self._host_ids_by_as: dict[int, frozenset[int]] = {
            asn: frozenset(h.host_id for h in hs)
            for asn, hs in self._hosts_by_as.items()
        }
        self._latency_matrix: Optional[np.ndarray] = None

    # -- construction ----------------------------------------------------------
    @classmethod
    def generate(cls, config: UnderlayConfig | None = None) -> "Underlay":
        config = config or UnderlayConfig()
        rng = ensure_rng(config.seed)
        topo_rng, host_rng = spawn(rng, 2)
        topo_cfg = config.topology
        if topo_cfg.seed is None:
            # thread the master seed into topology generation
            topo_cfg = TopologyConfig(
                **{
                    **{f: getattr(topo_cfg, f) for f in topo_cfg.__dataclass_fields__},
                    "seed": topo_rng,
                }
            )
        topology = generate_topology(topo_cfg)
        factory = HostFactory(topology, rng=host_rng)
        hosts = factory.create_hosts(config.n_hosts)
        return cls(
            topology,
            hosts,
            latency_config=config.latency,
            cost_params=config.cost,
        )

    # -- host queries ------------------------------------------------------------
    @staticmethod
    def _host_id_of(endpoint: Hashable) -> int:
        """Bus endpoints are either bare host ids or ("service", host_id)
        tuples when several services share one host; both resolve here."""
        if isinstance(endpoint, tuple):
            endpoint = endpoint[-1]
        return int(endpoint)

    def host(self, host_id: int) -> Host:
        try:
            return self._host_by_id[host_id]
        except KeyError:
            raise TopologyError(f"unknown host id {host_id}") from None

    def asn_of(self, host_id: Hashable) -> int:
        return self.host(self._host_id_of(host_id)).asn

    def host_ids(self) -> list[int]:
        return [h.host_id for h in self.hosts]

    def hosts_in_as(self, asn: int) -> list[Host]:
        """Hosts attached to ``asn`` (O(1) via the asn index)."""
        return list(self._hosts_by_as.get(asn, ()))

    def host_ids_in_as(self, asn: int) -> frozenset[int]:
        """Host-id set of one AS — membership tests for oracle ranking."""
        return self._host_ids_by_as.get(asn, frozenset())

    def as_hops(self, host_a: int, host_b: int) -> int:
        """AS-hop distance between two hosts' ASes."""
        return self.routing.hops(self.asn_of(host_a), self.asn_of(host_b))

    def asns_of(self, host_ids: Sequence[Hashable]) -> np.ndarray:
        """ASN per host id, as one int64 array — the gather step of the
        batched oracle/selection rankers."""
        return np.fromiter(
            (self.asn_of(h) for h in host_ids),
            dtype=np.int64,
            count=len(host_ids),
        )

    # -- latency -------------------------------------------------------------------
    @property
    def latency_matrix(self) -> np.ndarray:
        """All-pairs one-way host delay matrix (ms), computed lazily once."""
        if self._latency_matrix is None:
            note_cache_event("host_latency", "miss")
            with timed_build("host_latency"):
                self._latency_matrix = self.latency.latency_matrix(self.hosts)
        else:
            note_cache_event("host_latency", "hit")
        return self._latency_matrix

    def precompute(self) -> "Underlay":
        """Force every lazy substrate matrix to build now: per-source BFS
        trees, the AS delay matrix, and the host latency matrix."""
        self.routing.precompute()
        self.latency.precompute()
        if self._latency_matrix is None:
            note_cache_event("host_latency", "miss")
            with timed_build("host_latency"):
                self._latency_matrix = self.latency.latency_matrix(self.hosts)
        return self

    def invalidate(self) -> None:
        """Drop every cached substrate matrix (rebuilt lazily on use)."""
        self.routing.invalidate()
        self.latency.invalidate()
        self._latency_matrix = None

    def warm_latency_matrix(self, matrix: np.ndarray) -> None:
        """Inject a precomputed host latency matrix (substrate cache load)."""
        mat = np.asarray(matrix, dtype=np.float64)
        n = len(self.hosts)
        if mat.shape != (n, n):
            raise ConfigurationError(
                f"latency matrix shape {mat.shape} does not match {n} hosts"
            )
        self._latency_matrix = mat

    def rtt_matrix(self) -> np.ndarray:
        return 2.0 * self.latency_matrix

    def one_way_delay(self, src: Hashable, dst: Hashable) -> float:
        """LatencyProvider protocol over host ids (ms)."""
        mat = self._latency_matrix
        if mat is None:  # build once; per-message lookups stay O(1) reads
            mat = self.latency_matrix
        i = self._index_of[self._host_id_of(src)]
        j = self._index_of[self._host_id_of(dst)]
        return float(mat[i, j])

    def one_way_delay_hosts(self, a: Host, b: Host) -> float:
        return self.one_way_delay(a.host_id, b.host_id)

    def one_way_delay_row(
        self, src: Hashable, dsts: Sequence[Hashable]
    ) -> np.ndarray:
        """One-way delay from ``src`` to each of ``dsts`` (ms) as one
        latency-matrix row gather — the batch form of
        :meth:`one_way_delay`, value-identical entry by entry."""
        mat = self._latency_matrix
        if mat is None:
            mat = self.latency_matrix
        i = self._index_of[self._host_id_of(src)]
        idx = self._index_of
        try:  # dsts are almost always bare host ids; resolve tuples lazily
            cols = [idx[d] for d in dsts]
        except (KeyError, TypeError):
            cols = [idx[self._host_id_of(d)] for d in dsts]
        return mat[i, cols].astype(float)

    # -- simulation plumbing ----------------------------------------------------------
    def message_bus(
        self,
        sim: Simulation,
        *,
        with_accounting: bool = True,
        loss_rate: float = 0.0,
        loss_seed: int = 0,
    ) -> tuple[MessageBus, Optional[TrafficAccountant]]:
        """Create a message bus over this underlay plus (optionally) a
        traffic accountant already attached as observer.  ``loss_rate``
        injects in-flight packet loss (failure testing)."""
        bus = MessageBus(sim, self, loss_rate=loss_rate, loss_seed=loss_seed)
        accountant: Optional[TrafficAccountant] = None
        if with_accounting:
            accountant = TrafficAccountant(
                self.topology, self.routing, self.asn_of, clock=lambda: sim.now / 1000.0
            )
            bus.add_observer(accountant)
        return bus, accountant
