"""The :class:`Underlay` facade: topology + routing + latency + hosts +
traffic accounting behind one object.

This is the substrate every experiment starts from::

    underlay = Underlay.generate(UnderlayConfig(n_hosts=200, seed=42))
    sim = Simulation()
    bus = underlay.message_bus(sim)

The facade implements the :class:`~repro.sim.messages.LatencyProvider`
protocol over *host ids* behind a ``delay_backend`` toggle:

- ``"matrix"`` precomputes the all-pairs host latency matrix so
  per-message delay lookups are O(1) array reads — the right call up to
  a few thousand hosts, and the equivalence reference for the stream
  backend (value-identical row by row).
- ``"stream"`` computes delays on demand from the O(n)-memory
  :class:`~repro.underlay.latency.StreamingDelayKernel` (SoA host
  columns + the small AS-delay matrix), with a bounded LRU pair memo
  for repeated scalar lookups — the only backend that can serve
  10^5–10^6-host underlays, where the matrix would need ~80 GB.
- ``"auto"`` (default) picks ``stream`` above
  :data:`STREAM_AUTO_HOST_THRESHOLD` hosts and ``matrix`` below.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Optional, Sequence

import numpy as np

from repro.errors import ConfigurationError, TopologyError
from repro.rng import ensure_rng, spawn
from repro.underlay._obs import note_cache_event, timed_build
from repro.sim.engine import Simulation
from repro.sim.messages import MessageBus
from repro.underlay.cost import CostModel, CostParams
from repro.underlay.hosts import Host, HostFactory
from repro.underlay.latency import LatencyConfig, LatencyModel, StreamingDelayKernel
from repro.underlay.routing import ASRouting
from repro.underlay.topology import InternetTopology, TopologyConfig, generate_topology
from repro.underlay.traffic import TrafficAccountant


#: ``delay_backend="auto"`` switches from the precomputed matrix to the
#: streaming kernel above this host count (matrix memory grows as n^2:
#: 2048 hosts is ~32 MB of float64; 10^5 hosts would be ~80 GB).
STREAM_AUTO_HOST_THRESHOLD = 2048

#: Hard ceiling on materialising the host latency matrix in stream mode
#: (the matrix backend refuses nothing — picking it at scale is the
#: caller's explicit choice).
_STREAM_MATRIX_HARD_LIMIT = 20_000

_DELAY_BACKENDS = ("auto", "matrix", "stream")


@dataclass(frozen=True)
class UnderlayConfig:
    """One-stop configuration for a generated underlay."""

    topology: TopologyConfig = field(default_factory=TopologyConfig)
    latency: LatencyConfig = field(default_factory=LatencyConfig)
    cost: CostParams = field(default_factory=CostParams)
    n_hosts: int = 200
    seed: int = 0
    delay_backend: str = "auto"

    def __post_init__(self) -> None:
        if self.n_hosts < 0:
            raise ConfigurationError("n_hosts must be non-negative")
        if self.delay_backend not in _DELAY_BACKENDS:
            raise ConfigurationError(
                f"delay_backend must be one of {_DELAY_BACKENDS}, "
                f"got {self.delay_backend!r}"
            )


class Underlay:
    """A fully materialised synthetic Internet with an attached host
    population.  Use :meth:`generate` for the common path."""

    def __init__(
        self,
        topology: InternetTopology,
        hosts: Sequence[Host],
        *,
        latency_config: LatencyConfig | None = None,
        cost_params: CostParams | None = None,
        delay_backend: str = "auto",
    ) -> None:
        self.topology = topology
        self.routing = ASRouting(topology)
        self.latency = LatencyModel(topology, self.routing, latency_config)
        self.cost_model = CostModel(cost_params)
        self.hosts: list[Host] = list(hosts)
        self._host_by_id: dict[int, Host] = {h.host_id: h for h in self.hosts}
        if len(self._host_by_id) != len(self.hosts):
            raise TopologyError("duplicate host ids in underlay")
        self._index_of = {h.host_id: i for i, h in enumerate(self.hosts)}
        # asn -> hosts index: hosts_in_as and the oracle paths are called
        # per candidate list, so a linear scan over all hosts is the wrong
        # complexity class
        self._hosts_by_as: dict[int, list[Host]] = {}
        for h in self.hosts:
            self._hosts_by_as.setdefault(h.asn, []).append(h)
        self._host_ids_by_as: dict[int, frozenset[int]] = {
            asn: frozenset(h.host_id for h in hs)
            for asn, hs in self._hosts_by_as.items()
        }
        self._latency_matrix: Optional[np.ndarray] = None
        if delay_backend not in _DELAY_BACKENDS:
            raise ConfigurationError(
                f"delay_backend must be one of {_DELAY_BACKENDS}, "
                f"got {delay_backend!r}"
            )
        if delay_backend == "auto":
            delay_backend = (
                "stream" if len(self.hosts) > STREAM_AUTO_HOST_THRESHOLD else "matrix"
            )
        #: Resolved backend ("matrix" or "stream") serving per-message delays.
        self.delay_backend = delay_backend
        self._delay_kernel: Optional[StreamingDelayKernel] = None

    # -- construction ----------------------------------------------------------
    @classmethod
    def generate(cls, config: UnderlayConfig | None = None) -> "Underlay":
        config = config or UnderlayConfig()
        rng = ensure_rng(config.seed)
        topo_rng, host_rng = spawn(rng, 2)
        topo_cfg = config.topology
        if topo_cfg.seed is None:
            # thread the master seed into topology generation
            topo_cfg = TopologyConfig(
                **{
                    **{f: getattr(topo_cfg, f) for f in topo_cfg.__dataclass_fields__},
                    "seed": topo_rng,
                }
            )
        topology = generate_topology(topo_cfg)
        factory = HostFactory(topology, rng=host_rng)
        hosts = factory.create_hosts(config.n_hosts)
        return cls(
            topology,
            hosts,
            latency_config=config.latency,
            cost_params=config.cost,
            delay_backend=config.delay_backend,
        )

    # -- host queries ------------------------------------------------------------
    @staticmethod
    def _host_id_of(endpoint: Hashable) -> int:
        """Bus endpoints are either bare host ids or ("service", host_id)
        tuples when several services share one host; both resolve here."""
        if isinstance(endpoint, tuple):
            endpoint = endpoint[-1]
        return int(endpoint)

    def host(self, host_id: int) -> Host:
        try:
            return self._host_by_id[host_id]
        except KeyError:
            raise TopologyError(f"unknown host id {host_id}") from None

    def asn_of(self, host_id: Hashable) -> int:
        return self.host(self._host_id_of(host_id)).asn

    def host_ids(self) -> list[int]:
        return [h.host_id for h in self.hosts]

    def hosts_in_as(self, asn: int) -> list[Host]:
        """Hosts attached to ``asn`` (O(1) via the asn index)."""
        return list(self._hosts_by_as.get(asn, ()))

    def host_ids_in_as(self, asn: int) -> frozenset[int]:
        """Host-id set of one AS — membership tests for oracle ranking."""
        return self._host_ids_by_as.get(asn, frozenset())

    def as_hops(self, host_a: int, host_b: int) -> int:
        """AS-hop distance between two hosts' ASes."""
        return self.routing.hops(self.asn_of(host_a), self.asn_of(host_b))

    def asns_of(self, host_ids: Sequence[Hashable]) -> np.ndarray:
        """ASN per host id, as one int64 array — the gather step of the
        batched oracle/selection rankers."""
        return np.fromiter(
            (self.asn_of(h) for h in host_ids),
            dtype=np.int64,
            count=len(host_ids),
        )

    # -- latency -------------------------------------------------------------------
    @property
    def delay_kernel(self) -> StreamingDelayKernel:
        """The streaming delay kernel over this host population, built
        lazily once (O(n) columns + the small AS-delay matrix)."""
        if self._delay_kernel is None:
            note_cache_event("delay_kernel", "miss")
            with timed_build("delay_kernel"):
                self._delay_kernel = self.latency.delay_kernel(self.hosts)
        else:
            note_cache_event("delay_kernel", "hit")
        return self._delay_kernel

    @property
    def latency_matrix(self) -> np.ndarray:
        """All-pairs one-way host delay matrix (ms), computed lazily once.

        In stream mode the matrix is still available for mid-size
        populations (some analyses genuinely want all pairs) but is
        refused beyond ``_STREAM_MATRIX_HARD_LIMIT`` hosts — use
        :meth:`one_way_delay_row` / :attr:`delay_kernel` there.
        """
        if self._latency_matrix is None:
            if (
                self.delay_backend == "stream"
                and len(self.hosts) > _STREAM_MATRIX_HARD_LIMIT
            ):
                n = len(self.hosts)
                raise ConfigurationError(
                    f"refusing to materialise the {n}x{n} host latency matrix "
                    f"(~{n * n * 8 / 2**30:.0f} GiB) in stream mode; use "
                    "one_way_delay_row()/delay_kernel instead"
                )
            note_cache_event("host_latency", "miss")
            with timed_build("host_latency"):
                self._latency_matrix = self.latency.latency_matrix(self.hosts)
        else:
            note_cache_event("host_latency", "hit")
        return self._latency_matrix

    def precompute(self) -> "Underlay":
        """Force every lazy substrate matrix to build now: per-source BFS
        trees, the AS delay matrix, and the delay backend's host state
        (the full latency matrix in matrix mode; only the O(n) kernel
        columns in stream mode)."""
        self.routing.precompute()
        self.latency.precompute()
        if self.delay_backend == "stream":
            self.delay_kernel
        elif self._latency_matrix is None:
            note_cache_event("host_latency", "miss")
            with timed_build("host_latency"):
                self._latency_matrix = self.latency.latency_matrix(self.hosts)
        return self

    def invalidate(self) -> None:
        """Drop every cached substrate matrix (rebuilt lazily on use)."""
        self.routing.invalidate()
        self.latency.invalidate()
        self._latency_matrix = None
        self._delay_kernel = None

    def warm_latency_matrix(self, matrix: np.ndarray) -> None:
        """Inject a precomputed host latency matrix (substrate cache load)."""
        mat = np.asarray(matrix, dtype=np.float64)
        n = len(self.hosts)
        if mat.shape != (n, n):
            raise ConfigurationError(
                f"latency matrix shape {mat.shape} does not match {n} hosts"
            )
        self._latency_matrix = mat

    def rtt_matrix(self) -> np.ndarray:
        return 2.0 * self.latency_matrix

    def one_way_delay(self, src: Hashable, dst: Hashable) -> float:
        """LatencyProvider protocol over host ids (ms).

        Matrix mode reads the precomputed matrix; stream mode computes
        through the kernel's LRU pair memo — same value either way.
        """
        if self.delay_backend == "stream":
            kernel = self._delay_kernel
            if kernel is None:
                kernel = self.delay_kernel
            i = self._index_of[self._host_id_of(src)]
            j = self._index_of[self._host_id_of(dst)]
            return kernel.delay_scalar(i, j)
        mat = self._latency_matrix
        if mat is None:  # build once; per-message lookups stay O(1) reads
            mat = self.latency_matrix
        i = self._index_of[self._host_id_of(src)]
        j = self._index_of[self._host_id_of(dst)]
        return float(mat[i, j])

    def one_way_delay_hosts(self, a: Host, b: Host) -> float:
        return self.one_way_delay(a.host_id, b.host_id)

    def one_way_delay_row(
        self, src: Hashable, dsts: Sequence[Hashable]
    ) -> np.ndarray:
        """One-way delay from ``src`` to each of ``dsts`` (ms) as one
        row — a latency-matrix gather in matrix mode, a streamed
        :meth:`~repro.underlay.latency.StreamingDelayKernel.delay_row`
        in stream mode; the batch form of :meth:`one_way_delay`,
        value-identical entry by entry in either backend."""
        i = self._index_of[self._host_id_of(src)]
        idx = self._index_of
        try:  # dsts are almost always bare host ids; resolve tuples lazily
            cols = [idx[d] for d in dsts]
        except (KeyError, TypeError):
            cols = [idx[self._host_id_of(d)] for d in dsts]
        if self.delay_backend == "stream":
            return self.delay_kernel.delay_row(i, cols)
        mat = self._latency_matrix
        if mat is None:
            mat = self.latency_matrix
        return mat[i, cols].astype(float)

    # -- simulation plumbing ----------------------------------------------------------
    def message_bus(
        self,
        sim: Simulation,
        *,
        with_accounting: bool = True,
        loss_rate: float = 0.0,
        loss_seed: int = 0,
    ) -> tuple[MessageBus, Optional[TrafficAccountant]]:
        """Create a message bus over this underlay plus (optionally) a
        traffic accountant already attached as observer.  ``loss_rate``
        injects in-flight packet loss (failure testing)."""
        bus = MessageBus(sim, self, loss_rate=loss_rate, loss_seed=loss_seed)
        accountant: Optional[TrafficAccountant] = None
        if with_accounting:
            accountant = TrafficAccountant(
                self.topology, self.routing, self.asn_of, clock=lambda: sim.now / 1000.0
            )
            bus.add_observer(accountant)
        return bus, accountant
