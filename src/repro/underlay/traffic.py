"""Traffic accounting over the AS topology.

The accountant observes every delivered message (or bulk transfer) and
attributes its bytes to the inter-AS links its route traverses, classified
as *intra-AS*, *peering* or *transit*.  Transit bytes are additionally
charged to the paying AS (the customer side of each customer-provider link,
in both directions, matching how transit billing works), and sampled into
time buckets so the cost model can apply peak-rate (95th percentile)
billing as described in the survey's §2.1.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Callable, Hashable, Optional

from repro.underlay.autonomous_system import LinkType
from repro.underlay.cost import CostModel, TransitBillingLedger
from repro.underlay.routing import ASRouting
from repro.underlay.topology import InternetTopology


@dataclass
class TrafficSummary:
    """Aggregated byte counters."""

    intra_as_bytes: int = 0
    peering_bytes: int = 0
    transit_bytes: int = 0
    messages: int = 0

    @property
    def total_bytes(self) -> int:
        return self.intra_as_bytes + self.peering_bytes + self.transit_bytes

    @property
    def intra_as_fraction(self) -> float:
        """Fraction of end-to-end flows' bytes that never left the source AS."""
        total = self.total_bytes
        return self.intra_as_bytes / total if total else 0.0

    @property
    def transit_fraction(self) -> float:
        total = self.total_bytes
        return self.transit_bytes / total if total else 0.0


class TrafficAccountant:
    """Attributes message bytes to AS links; implements the
    :class:`repro.sim.messages.TrafficObserver` protocol.

    Parameters
    ----------
    topology, routing:
        The underlay to account against.
    asn_of:
        Maps a bus endpoint id to its ASN.
    clock:
        Optional callable returning current (simulation) time in seconds;
        enables time-bucketed transit sampling for percentile billing.
    bucket_seconds:
        Width of the billing sample buckets (5 minutes by default, the
        industry-standard sampling interval).
    """

    def __init__(
        self,
        topology: InternetTopology,
        routing: ASRouting,
        asn_of: Callable[[Hashable], int],
        *,
        clock: Optional[Callable[[], float]] = None,
        bucket_seconds: float = 300.0,
    ) -> None:
        self.topology = topology
        self.routing = routing
        self._asn_of = asn_of
        self._clock = clock
        self.bucket_seconds = float(bucket_seconds)
        self.summary = TrafficSummary()
        #: bytes per inter-AS link keyed by (min_asn, max_asn)
        self.link_bytes: dict[tuple[int, int], int] = defaultdict(int)
        #: transit bytes charged to each paying (customer) AS
        self.paid_transit_bytes: dict[int, int] = defaultdict(int)
        #: per transit link: {bucket_index: bytes} for percentile billing
        self.transit_samples: dict[tuple[int, int], dict[int, int]] = defaultdict(
            lambda: defaultdict(int)
        )
        #: per paying AS: bucketed transit samples for percentile billing —
        #: the same ledger shape the flow-level data plane writes
        self.billing = TransitBillingLedger(bucket_seconds=self.bucket_seconds)
        #: per message-kind byte counters (kind -> (intra, inter))
        self.kind_bytes: dict[str, list[int]] = defaultdict(lambda: [0, 0])

    # -- TrafficObserver ------------------------------------------------------
    def observe(self, src: Hashable, dst: Hashable, size_bytes: int, kind: str) -> None:
        asn_src = self._asn_of(src)
        asn_dst = self._asn_of(dst)
        self.summary.messages += 1
        if asn_src == asn_dst:
            self.summary.intra_as_bytes += size_bytes
            self.kind_bytes[kind][0] += size_bytes
            return
        self.kind_bytes[kind][1] += size_bytes
        bucket = (
            int(self._clock() // self.bucket_seconds) if self._clock is not None else 0
        )
        crossed_transit = False
        crossed_peering = False
        for a, b, link_type in self.routing.path_links(asn_src, asn_dst):
            key = (min(a, b), max(a, b))
            self.link_bytes[key] += size_bytes
            if link_type is LinkType.TRANSIT:
                crossed_transit = True
                # the customer side of the link pays, regardless of direction
                payer = a if b in self.topology.asys(a).providers else b
                self.paid_transit_bytes[payer] += size_bytes
                self.transit_samples[key][bucket] += size_bytes
                self.billing.record(
                    payer, bucket * self.bucket_seconds, size_bytes
                )
            else:
                crossed_peering = True
        # classify the flow by its most expensive link class
        if crossed_transit:
            self.summary.transit_bytes += size_bytes
        elif crossed_peering:
            self.summary.peering_bytes += size_bytes
        else:  # direct link of unknown type should not happen
            self.summary.intra_as_bytes += size_bytes

    # -- queries ----------------------------------------------------------------
    def reset(self) -> None:
        """Zero all counters (e.g. after a warm-up phase)."""
        self.summary = TrafficSummary()
        self.link_bytes.clear()
        self.paid_transit_bytes.clear()
        self.transit_samples.clear()
        self.kind_bytes.clear()
        self.billing = TransitBillingLedger(bucket_seconds=self.bucket_seconds)

    def per_as_bills(
        self, model: CostModel, *, percentile: float | None = None
    ) -> dict[int, float]:
        """Monthly transit bill per paying AS, percentile-billed through
        the shared :class:`~repro.underlay.cost.TransitBillingLedger`."""
        return self.billing.bills(model, percentile=percentile)

    def peak_transit_mbps(self, link: tuple[int, int], percentile: float = 95.0) -> float:
        """Billable rate of a transit link: the given percentile of the
        per-bucket rates (Mbps)."""
        import numpy as np

        samples = self.transit_samples.get((min(link), max(link)))
        if not samples:
            return 0.0
        buckets = np.array(sorted(samples))
        rates = np.array([samples[int(b)] for b in buckets], dtype=float)
        rates_mbps = rates * 8.0 / 1e6 / self.bucket_seconds
        return float(np.percentile(rates_mbps, percentile))
