"""Shared observability helpers for the underlay substrate.

Unlike the simulation components (which pick up the active registry at
construction time), substrate state is long-lived and often *outlives*
any single ``obs.observe()`` scope — a cached :class:`Underlay` built by
one experiment is reused by the next.  Cache events therefore look up
the active registry at event time, so whichever scope is running when a
matrix builds (or a cache hits) gets the sample.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Iterator

from repro.obs import active_registry

#: Counter of substrate cache events, labelled by ``kind`` (``bfs``,
#: ``as_delay``, ``host_latency``, ``substrate_memory``, ``substrate_disk``)
#: and ``event`` (``hit`` / ``miss`` / ``store``).
CACHE_COUNTER = "underlay_substrate_cache_total"

#: Histogram of wall-clock seconds spent building substrate state,
#: labelled by ``kind``.
BUILD_SECONDS = "underlay_substrate_build_seconds"


def note_cache_event(kind: str, event: str) -> None:
    """Record one cache hit/miss/store on the active registry (no-op
    outside an observation scope)."""
    reg = active_registry()
    if reg is None:
        return
    reg.counter(
        CACHE_COUNTER,
        "Substrate cache events (BFS trees, delay matrices, whole underlays).",
        ("kind", "event"),
    ).inc(kind=kind, event=event)


@contextmanager
def timed_build(kind: str) -> Iterator[None]:
    """Time a substrate build and record it on the active registry."""
    reg = active_registry()
    if reg is None:
        yield
        return
    t0 = time.perf_counter()
    try:
        yield
    finally:
        reg.histogram(
            BUILD_SECONDS,
            "Wall-clock seconds spent building substrate state.",
            ("kind",),
        ).observe(time.perf_counter() - t0, kind=kind)
