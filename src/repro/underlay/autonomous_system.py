"""Autonomous systems, ISP tiers and inter-AS link types.

The survey's Figure 1 describes the Internet as a two-level ISP hierarchy:
*local ISPs* serving limited geographic areas and *transit ISPs* supplying
global connectivity, with money flowing from customers up to providers over
transit links and flat-cost *peering* links between ISPs of similar size.
We model three tiers (a Tier-1 clique of global transit carriers, Tier-2
regional transit ISPs, and Tier-3 local/stub ISPs), which is the minimal
structure that reproduces both the monetary-flow picture and realistic
AS-path lengths.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.underlay.geometry import Position


class Tier(enum.IntEnum):
    """ISP tier.  Lower numeric value = higher in the hierarchy."""

    TIER1 = 1   # global transit carrier
    TIER2 = 2   # regional transit ISP
    STUB = 3    # local/access ISP ("local ISP" in Figure 1)


class LinkType(enum.Enum):
    """Business relationship of an inter-AS link (Gao classification)."""

    TRANSIT = "transit"   # customer-provider: the customer pays per Mbps
    PEERING = "peering"   # settlement-free: flat link-maintenance cost


@dataclass
class AutonomousSystem:
    """One AS / ISP in the synthetic Internet.

    ``providers``, ``customers`` and ``peers`` hold neighbouring ASNs by
    business relationship; they are filled in by the topology generator.
    """

    asn: int
    tier: Tier
    position: Position
    region: int = 0
    name: str = ""
    providers: set[int] = field(default_factory=set)
    customers: set[int] = field(default_factory=set)
    peers: set[int] = field(default_factory=set)

    def __post_init__(self) -> None:
        if not self.name:
            self.name = f"AS{self.asn}"

    @property
    def degree(self) -> int:
        return len(self.providers) + len(self.customers) + len(self.peers)

    def relationship_to(self, other_asn: int) -> LinkType | None:
        """Link type toward a directly connected AS, else ``None``."""
        if other_asn in self.peers:
            return LinkType.PEERING
        if other_asn in self.providers or other_asn in self.customers:
            return LinkType.TRANSIT
        return None

    def is_transit_provider(self) -> bool:
        """True for ASes that sell transit (have customers)."""
        return bool(self.customers)
