"""ISP cost model: transit vs peering economics (Figure 2 of the survey).

Following Norton's business case for ISP peering [24], which the survey
summarises in §2.1:

- **Transit** is billed per Mbps of peak utilisation (sampled peak, usually
  the 95th percentile of 5-minute samples over a month).  The *per-Mbps
  price is roughly constant*, so total transit cost grows proportionally
  with traffic.
- **Peering** links carry a *flat* cost (circuit + colocation + equipment
  amortisation), so the effective cost per Mbps is inversely proportional
  to the traffic exchanged.

The crossover traffic level — where peering becomes cheaper than transit —
is the economic argument for locality of P2P traffic: biased neighbor
selection shifts P2P bytes from transit links onto peering links whose
marginal cost is zero.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import TYPE_CHECKING, Mapping, Sequence

import numpy as np

from repro.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (topology -> cost)
    from repro.underlay.topology import InternetTopology


@dataclass(frozen=True)
class CostParams:
    """Representative 2008-era prices (USD / month)."""

    transit_usd_per_mbps_month: float = 12.0
    peering_flat_usd_month: float = 2500.0   # circuit + colo + amortised gear
    billing_percentile: float = 95.0

    def __post_init__(self) -> None:
        if self.transit_usd_per_mbps_month <= 0:
            raise ConfigurationError("transit price must be positive")
        if self.peering_flat_usd_month <= 0:
            raise ConfigurationError("peering flat cost must be positive")
        if not (0 < self.billing_percentile <= 100):
            raise ConfigurationError("billing percentile must be in (0, 100]")


class CostModel:
    """Monthly-cost calculations for transit and peering links."""

    def __init__(self, params: CostParams | None = None) -> None:
        self.params = params or CostParams()

    # -- billing primitives ---------------------------------------------------
    def billable_mbps(
        self, sample_rates_mbps: Sequence[float], percentile: float | None = None
    ) -> float:
        """Sampled-peak billing: the percentile of the 5-minute rate samples."""
        rates = np.asarray(list(sample_rates_mbps), dtype=float)
        if rates.size == 0:
            return 0.0
        if (rates < 0).any():
            raise ConfigurationError("rate samples must be non-negative")
        p = self.params.billing_percentile if percentile is None else percentile
        return float(np.percentile(rates, p))

    def transit_monthly_cost(self, billable_mbps: float) -> float:
        """Total monthly transit bill for the given billable rate."""
        if billable_mbps < 0:
            raise ConfigurationError("billable rate must be non-negative")
        return billable_mbps * self.params.transit_usd_per_mbps_month

    def peering_monthly_cost(self, traffic_mbps: float = 0.0) -> float:
        """Monthly cost of a peering link — flat, independent of traffic."""
        if traffic_mbps < 0:
            raise ConfigurationError("traffic must be non-negative")
        return self.params.peering_flat_usd_month

    # -- Figure 2 relations ----------------------------------------------------
    def transit_cost_per_mbps(self, traffic_mbps: float) -> float:
        """~Constant: the defining property of transit pricing."""
        if traffic_mbps <= 0:
            raise ConfigurationError("traffic must be positive for unit cost")
        return self.transit_monthly_cost(traffic_mbps) / traffic_mbps

    def peering_cost_per_mbps(self, traffic_mbps: float) -> float:
        """~1/traffic: flat cost amortised over exchanged traffic."""
        if traffic_mbps <= 0:
            raise ConfigurationError("traffic must be positive for unit cost")
        return self.peering_monthly_cost(traffic_mbps) / traffic_mbps

    def crossover_mbps(self) -> float:
        """Traffic level above which peering is cheaper than transit."""
        return (
            self.params.peering_flat_usd_month
            / self.params.transit_usd_per_mbps_month
        )

    def per_as_bills(
        self,
        samples_by_as: Mapping[int, Mapping[int, float]],
        *,
        bucket_seconds: float = 300.0,
        percentile: float | None = None,
    ) -> dict[int, float]:
        """Monthly transit bill per paying AS from bucketed byte samples.

        ``samples_by_as[asn][bucket] = bytes`` is the shape both the
        message-level :class:`~repro.underlay.traffic.TrafficAccountant`
        and the flow-level swarm data plane produce; each AS is billed
        at the configured percentile of its per-bucket Mbps rates —
        the one code path for sampled-peak transit billing.
        """
        if bucket_seconds <= 0:
            raise ConfigurationError("bucket width must be positive")
        bills: dict[int, float] = {}
        for asn, buckets in samples_by_as.items():
            rates = np.fromiter(buckets.values(), dtype=float)
            mbps = self.billable_mbps(
                rates * 8.0 / 1e6 / bucket_seconds, percentile
            )
            bills[int(asn)] = self.transit_monthly_cost(mbps)
        return bills

    def figure2_series(
        self, traffic_mbps: Sequence[float]
    ) -> list[dict[str, float]]:
        """Regenerate the Figure 2 curves: total and per-Mbps cost for both
        link classes across a traffic sweep."""
        rows = []
        for t in traffic_mbps:
            if t <= 0:
                raise ConfigurationError("traffic sweep values must be positive")
            rows.append(
                {
                    "traffic_mbps": float(t),
                    "transit_total_usd": self.transit_monthly_cost(t),
                    "peering_total_usd": self.peering_monthly_cost(t),
                    "transit_per_mbps_usd": self.transit_cost_per_mbps(t),
                    "peering_per_mbps_usd": self.peering_cost_per_mbps(t),
                }
            )
        return rows


class TransitBillingLedger:
    """Per-AS sampled-peak transit accounting (satellite of the flow plane).

    Records transit bytes against the *paying* AS in fixed-width time
    buckets (five-minute samples by default, matching industry billing),
    and turns them into monthly bills via
    :meth:`CostModel.per_as_bills`.  Both the message-level
    :class:`~repro.underlay.traffic.TrafficAccountant` and the
    flow-level swarm data plane feed one of these, so percentile
    billing has exactly one implementation.
    """

    def __init__(self, *, bucket_seconds: float = 300.0) -> None:
        if bucket_seconds <= 0:
            raise ConfigurationError("bucket width must be positive")
        self.bucket_seconds = float(bucket_seconds)
        #: payer ASN -> {bucket index -> bytes}
        self.samples: dict[int, dict[int, float]] = defaultdict(
            lambda: defaultdict(float)
        )
        #: payer ASN -> lifetime transit bytes
        self.total_bytes: dict[int, float] = defaultdict(float)

    def record(self, payer_asn: int, time_s: float, nbytes: float) -> None:
        """Charge ``nbytes`` of transit to ``payer_asn`` at ``time_s``."""
        if nbytes < 0:
            raise ConfigurationError("transit bytes must be non-negative")
        if nbytes == 0:
            return
        bucket = int(time_s // self.bucket_seconds)
        self.samples[payer_asn][bucket] += nbytes
        self.total_bytes[payer_asn] += nbytes

    def merge(self, other: "TransitBillingLedger") -> None:
        """Fold another ledger (same bucket width) into this one."""
        if other.bucket_seconds != self.bucket_seconds:
            raise ConfigurationError("cannot merge ledgers of differing buckets")
        for asn, buckets in other.samples.items():
            mine = self.samples[asn]
            for bucket, nbytes in buckets.items():
                mine[bucket] += nbytes
            self.total_bytes[asn] += other.total_bytes[asn]

    def bills(
        self, model: CostModel, *, percentile: float | None = None
    ) -> dict[int, float]:
        """Monthly transit bill per paying AS (USD)."""
        return model.per_as_bills(
            self.samples,
            bucket_seconds=self.bucket_seconds,
            percentile=percentile,
        )

    def bills_by_tier(
        self,
        model: CostModel,
        topology: "InternetTopology",
        *,
        percentile: float | None = None,
    ) -> dict[str, dict[str, float]]:
        """Bills aggregated per ISP tier: count, total and mean USD plus
        total transit bytes — the per-tier rows of the locality sweep."""
        per_as = self.bills(model, percentile=percentile)
        out: dict[str, dict[str, float]] = {}
        for asn, bill in per_as.items():
            tier = topology.asys(asn).tier.name.lower()
            row = out.setdefault(
                tier, {"ases": 0, "total_usd": 0.0, "mean_usd": 0.0,
                       "transit_bytes": 0.0}
            )
            row["ases"] += 1
            row["total_usd"] += bill
            row["transit_bytes"] += self.total_bytes[asn]
        for row in out.values():
            row["mean_usd"] = row["total_usd"] / row["ases"] if row["ases"] else 0.0
        return out
