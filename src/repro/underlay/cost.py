"""ISP cost model: transit vs peering economics (Figure 2 of the survey).

Following Norton's business case for ISP peering [24], which the survey
summarises in §2.1:

- **Transit** is billed per Mbps of peak utilisation (sampled peak, usually
  the 95th percentile of 5-minute samples over a month).  The *per-Mbps
  price is roughly constant*, so total transit cost grows proportionally
  with traffic.
- **Peering** links carry a *flat* cost (circuit + colocation + equipment
  amortisation), so the effective cost per Mbps is inversely proportional
  to the traffic exchanged.

The crossover traffic level — where peering becomes cheaper than transit —
is the economic argument for locality of P2P traffic: biased neighbor
selection shifts P2P bytes from transit links onto peering links whose
marginal cost is zero.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class CostParams:
    """Representative 2008-era prices (USD / month)."""

    transit_usd_per_mbps_month: float = 12.0
    peering_flat_usd_month: float = 2500.0   # circuit + colo + amortised gear
    billing_percentile: float = 95.0

    def __post_init__(self) -> None:
        if self.transit_usd_per_mbps_month <= 0:
            raise ConfigurationError("transit price must be positive")
        if self.peering_flat_usd_month <= 0:
            raise ConfigurationError("peering flat cost must be positive")
        if not (0 < self.billing_percentile <= 100):
            raise ConfigurationError("billing percentile must be in (0, 100]")


class CostModel:
    """Monthly-cost calculations for transit and peering links."""

    def __init__(self, params: CostParams | None = None) -> None:
        self.params = params or CostParams()

    # -- billing primitives ---------------------------------------------------
    def billable_mbps(
        self, sample_rates_mbps: Sequence[float], percentile: float | None = None
    ) -> float:
        """Sampled-peak billing: the percentile of the 5-minute rate samples."""
        rates = np.asarray(list(sample_rates_mbps), dtype=float)
        if rates.size == 0:
            return 0.0
        if (rates < 0).any():
            raise ConfigurationError("rate samples must be non-negative")
        p = self.params.billing_percentile if percentile is None else percentile
        return float(np.percentile(rates, p))

    def transit_monthly_cost(self, billable_mbps: float) -> float:
        """Total monthly transit bill for the given billable rate."""
        if billable_mbps < 0:
            raise ConfigurationError("billable rate must be non-negative")
        return billable_mbps * self.params.transit_usd_per_mbps_month

    def peering_monthly_cost(self, traffic_mbps: float = 0.0) -> float:
        """Monthly cost of a peering link — flat, independent of traffic."""
        if traffic_mbps < 0:
            raise ConfigurationError("traffic must be non-negative")
        return self.params.peering_flat_usd_month

    # -- Figure 2 relations ----------------------------------------------------
    def transit_cost_per_mbps(self, traffic_mbps: float) -> float:
        """~Constant: the defining property of transit pricing."""
        if traffic_mbps <= 0:
            raise ConfigurationError("traffic must be positive for unit cost")
        return self.transit_monthly_cost(traffic_mbps) / traffic_mbps

    def peering_cost_per_mbps(self, traffic_mbps: float) -> float:
        """~1/traffic: flat cost amortised over exchanged traffic."""
        if traffic_mbps <= 0:
            raise ConfigurationError("traffic must be positive for unit cost")
        return self.peering_monthly_cost(traffic_mbps) / traffic_mbps

    def crossover_mbps(self) -> float:
        """Traffic level above which peering is cheaper than transit."""
        return (
            self.params.peering_flat_usd_month
            / self.params.transit_usd_per_mbps_month
        )

    def figure2_series(
        self, traffic_mbps: Sequence[float]
    ) -> list[dict[str, float]]:
        """Regenerate the Figure 2 curves: total and per-Mbps cost for both
        link classes across a traffic sweep."""
        rows = []
        for t in traffic_mbps:
            if t <= 0:
                raise ConfigurationError("traffic sweep values must be positive")
            rows.append(
                {
                    "traffic_mbps": float(t),
                    "transit_total_usd": self.transit_monthly_cost(t),
                    "peering_total_usd": self.peering_monthly_cost(t),
                    "transit_per_mbps_usd": self.transit_cost_per_mbps(t),
                    "peering_per_mbps_usd": self.peering_cost_per_mbps(t),
                }
            )
        return rows
