"""Valley-free inter-AS routing.

AS paths follow the Gao valley-free rule: a route climbs zero or more
customer→provider links, optionally crosses a single peering link, then
descends zero or more provider→customer links.  Among valid routes we pick
the fewest AS hops (breaking ties deterministically by expansion order),
which matches how the oracle of Aggarwal et al. ranks candidate peers "by
AS hops distance".

The per-source search is a BFS over ``(asn, phase)`` states with
``phase ∈ {UP, PEERED, DOWN}``; results are cached per source AS.
"""

from __future__ import annotations

from collections import deque
from typing import Optional

import numpy as np

from repro.errors import RoutingError
from repro.underlay.autonomous_system import LinkType
from repro.underlay.topology import InternetTopology

_UP, _PEERED, _DOWN = 0, 1, 2


class ASRouting:
    """All-pairs valley-free routing over an :class:`InternetTopology`."""

    def __init__(self, topology: InternetTopology) -> None:
        self.topology = topology
        self._n = topology.n_ases
        # per-source cache: hops array and predecessor map
        self._hops_cache: dict[int, np.ndarray] = {}
        self._pred_cache: dict[int, dict[tuple[int, int], tuple[int, int]]] = {}
        self._best_state: dict[int, dict[int, tuple[int, int]]] = {}

    # -- BFS over (asn, phase) states --------------------------------------
    def _expand(self, asn: int, phase: int) -> list[tuple[int, int]]:
        asys = self.topology.asys(asn)
        out: list[tuple[int, int]] = []
        if phase == _UP:
            for p in sorted(asys.providers):
                out.append((p, _UP))
            for q in sorted(asys.peers):
                out.append((q, _PEERED))
            for c in sorted(asys.customers):
                out.append((c, _DOWN))
        elif phase in (_PEERED, _DOWN):
            for c in sorted(asys.customers):
                out.append((c, _DOWN))
        return out

    def _bfs_from(self, src: int) -> None:
        if src in self._hops_cache:
            return
        self.topology.asys(src)  # validates the ASN
        hops = np.full(self._n, -1, dtype=np.int32)
        hops[src] = 0
        pred: dict[tuple[int, int], tuple[int, int]] = {}
        best: dict[int, tuple[int, int]] = {src: (src, _UP)}
        visited = {(src, _UP)}
        frontier: deque[tuple[int, int, int]] = deque([(src, _UP, 0)])
        while frontier:
            asn, phase, d = frontier.popleft()
            for nxt_asn, nxt_phase in self._expand(asn, phase):
                state = (nxt_asn, nxt_phase)
                if state in visited:
                    continue
                visited.add(state)
                pred[state] = (asn, phase)
                if hops[nxt_asn] < 0:
                    hops[nxt_asn] = d + 1
                    best[nxt_asn] = state
                frontier.append((nxt_asn, nxt_phase, d + 1))
        self._hops_cache[src] = hops
        self._pred_cache[src] = pred
        self._best_state[src] = best

    # -- public API ---------------------------------------------------------
    def hops(self, src: int, dst: int) -> int:
        """AS-hop count of the shortest valley-free route (0 if same AS)."""
        self._bfs_from(src)
        h = int(self._hops_cache[src][dst])
        if h < 0:
            raise RoutingError(f"no valley-free route AS{src} -> AS{dst}")
        return h

    def path(self, src: int, dst: int) -> list[int]:
        """AS path including both endpoints; ``[src]`` when src == dst."""
        self._bfs_from(src)
        if src == dst:
            return [src]
        best = self._best_state[src].get(dst)
        if best is None:
            raise RoutingError(f"no valley-free route AS{src} -> AS{dst}")
        pred = self._pred_cache[src]
        rev: list[int] = []
        state = best
        while True:
            rev.append(state[0])
            if state == (src, _UP):
                break
            state = pred[state]
        rev.reverse()
        return rev

    def path_links(self, src: int, dst: int) -> list[tuple[int, int, LinkType]]:
        """The inter-AS links along the route as (a, b, type) triples."""
        p = self.path(src, dst)
        links = []
        for a, b in zip(p, p[1:]):
            links.append((a, b, self.topology.link_type(a, b)))
        return links

    def hop_matrix(self) -> np.ndarray:
        """All-pairs AS-hop matrix (int32).  Raises if any pair is unroutable."""
        mat = np.empty((self._n, self._n), dtype=np.int32)
        for src in range(self._n):
            self._bfs_from(src)
            mat[src] = self._hops_cache[src]
        if (mat < 0).any():
            bad = np.argwhere(mat < 0)[0]
            raise RoutingError(
                f"no valley-free route AS{bad[0]} -> AS{bad[1]}"
            )
        return mat
