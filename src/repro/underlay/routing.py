"""Valley-free inter-AS routing over a presorted CSR state graph.

AS paths follow the Gao valley-free rule: a route climbs zero or more
customer→provider links, optionally crosses a single peering link, then
descends zero or more provider→customer links.  Among valid routes we pick
the fewest AS hops (breaking ties deterministically by expansion order),
which matches how the oracle of Aggarwal et al. ranks candidate peers "by
AS hops distance".

The search runs over ``(asn, phase)`` states with
``phase ∈ {UP, PEERED, DOWN}``.  The state graph is converted once into
CSR-style NumPy arrays whose neighbour lists are presorted in the exact
expansion order of the original per-node search (providers, then peers,
then customers, each ascending by ASN), and the BFS itself is
level-synchronous and vectorised: every frontier expansion is a handful
of array gathers instead of a Python loop, and many sources are explored
in one batch.  Tie-breaking is bit-for-bit identical to a sequential
FIFO search because within a level candidates are deduplicated by first
occurrence in frontier-major order.

Delay accumulates *during* routing: :meth:`ASRouting.delay_matrix` takes a
per-link propagation-cost matrix and carries an accumulated delay value on
every discovered state (two separate adds per link, preserving the exact
floating-point operation order of a per-path scalar loop), so the latency
model never reconstructs paths pair by pair.

Per-source results (hop vectors, predecessor trees) are cached; use
:meth:`ASRouting.precompute` to batch-build all sources up front and
:meth:`ASRouting.invalidate` to drop the caches after a topology change.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import RoutingError
from repro.underlay._obs import note_cache_event, timed_build
from repro.underlay.autonomous_system import LinkType
from repro.underlay.topology import InternetTopology

_UP, _PEERED, _DOWN = 0, 1, 2


class _StateGraph:
    """CSR adjacency of the ``(asn, phase)`` state graph.

    State ids are ``asn * 3 + phase``.  ``indptr``/``nxt`` follow the
    usual CSR convention: the out-neighbours of state ``s`` are
    ``nxt[indptr[s]:indptr[s + 1]]``, presorted in expansion order.
    """

    def __init__(self, topology: InternetTopology) -> None:
        n = topology.n_ases
        self.n = n
        self.n_states = 3 * n
        out_lists: list[list[int]] = []
        for asys in topology.ases:
            providers = sorted(asys.providers)
            peers = sorted(asys.peers)
            customers = sorted(asys.customers)
            up = (
                [p * 3 + _UP for p in providers]
                + [q * 3 + _PEERED for q in peers]
                + [c * 3 + _DOWN for c in customers]
            )
            down = [c * 3 + _DOWN for c in customers]
            out_lists.append(up)      # from (asn, UP)
            out_lists.append(down)    # from (asn, PEERED)
            out_lists.append(down)    # from (asn, DOWN)
        lengths = np.fromiter(
            (len(lst) for lst in out_lists), dtype=np.int64, count=self.n_states
        )
        self.indptr = np.concatenate(([0], np.cumsum(lengths)))
        flat = [s for lst in out_lists for s in lst]
        self.nxt = np.asarray(flat, dtype=np.int64)


class ASRouting:
    """All-pairs valley-free routing over an :class:`InternetTopology`."""

    def __init__(self, topology: InternetTopology) -> None:
        self.topology = topology
        self._n = topology.n_ases
        self._graph: _StateGraph | None = None
        # per-source caches: hop vector, predecessor tree, best (first
        # discovered) state per destination AS
        self._hops_cache: dict[int, np.ndarray] = {}
        self._pred_cache: dict[int, np.ndarray] = {}
        self._best_cache: dict[int, np.ndarray] = {}

    # -- CSR state graph ----------------------------------------------------
    def _state_graph(self) -> _StateGraph:
        if self._graph is None:
            self._graph = _StateGraph(self.topology)
        return self._graph

    # -- batch BFS over (asn, phase) states --------------------------------
    def _batch_bfs(
        self,
        sources: Sequence[int],
        link_ms: np.ndarray | None = None,
        per_link_router_ms: float = 0.0,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray | None]:
        """Level-synchronous BFS from every source at once.

        Returns ``(hops, best, delay)`` where ``hops`` is ``(S, n)``
        int32, ``best`` is ``(S, n)`` first-discovered state per
        destination, and ``delay`` (``None`` unless ``link_ms`` is given)
        is the per-state accumulated delay ``(S, n_states)``.  Per-source
        hop/predecessor caches are filled as a side effect.

        Tie-breaking matches a sequential FIFO search state for state:
        within a level, candidates are generated in frontier order with
        each state's neighbours in presorted expansion order, and the
        first discovery of a state (or of a destination AS) wins.
        """
        sg = self._state_graph()
        n, n_states = sg.n, sg.n_states
        indptr, nxt = sg.indptr, sg.nxt
        src_arr = np.asarray(list(sources), dtype=np.int64)
        n_src = src_arr.size
        accumulate = link_ms is not None

        hops = np.full((n_src, n), -1, dtype=np.int32)
        best = np.full((n_src, n), -1, dtype=np.int64)
        pred = np.full((n_src, n_states), -1, dtype=np.int64)
        visited = np.zeros((n_src, n_states), dtype=bool)
        delay = np.zeros((n_src, n_states), dtype=np.float64) if accumulate else None

        rows = np.arange(n_src, dtype=np.int64)
        start = src_arr * 3 + _UP
        hops[rows, src_arr] = 0
        best[rows, src_arr] = start
        visited[rows, start] = True

        f_row, f_state = rows, start
        depth = 0
        while f_state.size:
            starts = indptr[f_state]
            counts = indptr[f_state + 1] - starts
            total = int(counts.sum())
            if total == 0:
                break
            # concatenate every frontier state's neighbour slice in
            # frontier-major order (CSR gather without a Python loop)
            cum = np.cumsum(counts)
            offsets = np.repeat(starts - (cum - counts), counts)
            cand_state = nxt[np.arange(total, dtype=np.int64) + offsets]
            cand_row = np.repeat(f_row, counts)
            cand_pred = np.repeat(f_state, counts)

            fresh = ~visited[cand_row, cand_state]
            if not fresh.any():
                break
            cand_state = cand_state[fresh]
            cand_row = cand_row[fresh]
            cand_pred = cand_pred[fresh]

            # first discovery of each (source, state) wins, in candidate order
            _, first = np.unique(cand_row * n_states + cand_state, return_index=True)
            first.sort()
            new_row = cand_row[first]
            new_state = cand_state[first]
            new_pred = cand_pred[first]

            visited[new_row, new_state] = True
            pred[new_row, new_state] = new_pred
            if accumulate:
                # two separate adds keep the float operation order of the
                # scalar reference loop: ((d + link) + router) per link
                delay[new_row, new_state] = (
                    delay[new_row, new_pred] + link_ms[new_pred // 3, new_state // 3]
                ) + per_link_router_ms

            # first discovery of each (source, AS) sets hops and the
            # representative state used for path reconstruction
            asn = new_state // 3
            unseen = hops[new_row, asn] < 0
            if unseen.any():
                u_row = new_row[unseen]
                u_asn = asn[unseen]
                u_state = new_state[unseen]
                _, afirst = np.unique(u_row * n + u_asn, return_index=True)
                hops[u_row[afirst], u_asn[afirst]] = depth + 1
                best[u_row[afirst], u_asn[afirst]] = u_state[afirst]

            f_row, f_state = new_row, new_state
            depth += 1

        for i, src in enumerate(src_arr):
            s = int(src)
            self._hops_cache[s] = hops[i]
            self._pred_cache[s] = pred[i]
            self._best_cache[s] = best[i]
        return hops, best, delay

    def _ensure_tree(self, src: int) -> None:
        """BFS from ``src`` unless its predecessor tree is already cached."""
        if src in self._pred_cache:
            note_cache_event("bfs", "hit")
            return
        self.topology.asys(src)  # validates the ASN
        note_cache_event("bfs", "miss")
        with timed_build("bfs"):
            self._batch_bfs([src])

    # -- cache management ---------------------------------------------------
    def precompute(self) -> "ASRouting":
        """Batch-run the BFS for every source AS (one vectorised sweep)."""
        missing = [s for s in range(self._n) if s not in self._pred_cache]
        if missing:
            note_cache_event("bfs", "miss")
            with timed_build("bfs"):
                self._batch_bfs(missing)
        return self

    def invalidate(self) -> None:
        """Drop every cached BFS result (call after mutating the topology)."""
        self._graph = None
        self._hops_cache.clear()
        self._pred_cache.clear()
        self._best_cache.clear()

    def warm_hops(self, hop_matrix: np.ndarray) -> None:
        """Seed the per-source hop cache from a precomputed all-pairs
        matrix (e.g. loaded from a substrate cache).  Predecessor trees
        are not derivable from hop counts, so :meth:`path` still runs the
        BFS on first use for each source."""
        mat = np.asarray(hop_matrix)
        if mat.shape != (self._n, self._n):
            raise RoutingError(
                f"hop matrix shape {mat.shape} does not match {self._n} ASes"
            )
        for src in range(self._n):
            self._hops_cache.setdefault(src, mat[src].astype(np.int32))

    # -- public API ---------------------------------------------------------
    def hops(self, src: int, dst: int) -> int:
        """AS-hop count of the shortest valley-free route (0 if same AS)."""
        row = self._hops_cache.get(src)
        if row is None:
            self._ensure_tree(src)
            row = self._hops_cache[src]
        h = int(row[dst])
        if h < 0:
            raise RoutingError(f"no valley-free route AS{src} -> AS{dst}")
        return h

    def hops_row(self, src: int) -> np.ndarray:
        """The full hop-count row from ``src`` (read-only int32 view).

        One cache lookup serves a whole candidate list: batched rankers
        gather ``row[dsts]`` instead of calling :meth:`hops` per pair.
        Unreachable destinations hold ``-1``; callers that index
        individual entries must treat negatives like the
        :class:`~repro.errors.RoutingError` raised by :meth:`hops`.
        """
        row = self._hops_cache.get(src)
        if row is None:
            self._ensure_tree(src)
            row = self._hops_cache[src]
        return row

    def path(self, src: int, dst: int) -> list[int]:
        """AS path including both endpoints; ``[src]`` when src == dst."""
        self._ensure_tree(src)
        if src == dst:
            return [src]
        best = int(self._best_cache[src][dst])
        if best < 0:
            raise RoutingError(f"no valley-free route AS{src} -> AS{dst}")
        pred = self._pred_cache[src]
        start = src * 3 + _UP
        rev: list[int] = []
        state = best
        while True:
            rev.append(state // 3)
            if state == start:
                break
            state = int(pred[state])
        rev.reverse()
        return rev

    def path_links(self, src: int, dst: int) -> list[tuple[int, int, LinkType]]:
        """The inter-AS links along the route as (a, b, type) triples."""
        p = self.path(src, dst)
        links = []
        for a, b in zip(p, p[1:]):
            links.append((a, b, self.topology.link_type(a, b)))
        return links

    def hop_matrix(self) -> np.ndarray:
        """All-pairs AS-hop matrix (int32).  Raises if any pair is unroutable."""
        self.precompute()
        mat = np.empty((self._n, self._n), dtype=np.int32)
        for src in range(self._n):
            mat[src] = self._hops_cache[src]
        if (mat < 0).any():
            bad = np.argwhere(mat < 0)[0]
            raise RoutingError(
                f"no valley-free route AS{bad[0]} -> AS{bad[1]}"
            )
        return mat

    def delay_matrix(
        self,
        link_ms: np.ndarray,
        per_link_router_ms: float,
        intra_as_ms: float,
    ) -> np.ndarray:
        """Directed AS-path delay matrix, accumulated during routing.

        ``link_ms[a, b]`` is the propagation cost of the direct link a–b;
        entry (src, dst) is ``sum over route links of (link_ms + router)``
        plus ``intra_as_ms`` per traversed AS, with ``intra_as_ms`` alone
        on the diagonal — exactly the per-path scalar decomposition, but
        computed for all pairs in one vectorised BFS sweep.
        """
        n = self._n
        link_ms = np.asarray(link_ms, dtype=np.float64)
        if link_ms.shape != (n, n):
            raise RoutingError(
                f"link delay matrix shape {link_ms.shape} does not match {n} ASes"
            )
        hops, best, delay = self._batch_bfs(
            range(n), link_ms=link_ms, per_link_router_ms=per_link_router_ms
        )
        if (hops < 0).any():
            bad = np.argwhere(hops < 0)[0]
            raise RoutingError(
                f"no valley-free route AS{bad[0]} -> AS{bad[1]}"
            )
        rows = np.arange(n)
        mat = delay[rows[:, None], best] + intra_as_ms * (hops + 1)
        mat[rows, rows] = intra_as_ms
        return mat
