"""Synthetic Internet underlay: AS topology, routing, latency, hosts,
traffic accounting and ISP economics.

Quick path::

    from repro.underlay import Underlay, UnderlayConfig
    u = Underlay.generate(UnderlayConfig(n_hosts=100, seed=1))
"""

from repro.underlay.autonomous_system import AutonomousSystem, LinkType, Tier
from repro.underlay.cache import (
    SubstrateCache,
    cached_generate,
    configure_default_cache,
    default_cache,
    disable_default_cache,
    substrate_digest,
)
from repro.underlay.cost import CostModel, CostParams, TransitBillingLedger
from repro.underlay.geometry import Position, pairwise_distances
from repro.underlay.hosts import ACCESS_CLASSES, Host, HostFactory, PeerResources
from repro.underlay.latency import (
    LatencyConfig,
    LatencyModel,
    StreamingDelayKernel,
    pair_jitter,
)
from repro.underlay.mobility import (
    MobilityConfig,
    MobilityTrace,
    cached_info_accuracy,
    generate_mobility,
    refresh_tradeoff,
)
from repro.underlay.network import (
    STREAM_AUTO_HOST_THRESHOLD,
    Underlay,
    UnderlayConfig,
)
from repro.underlay.routing import ASRouting
from repro.underlay.topology import InternetTopology, TopologyConfig, generate_topology
from repro.underlay.traffic import TrafficAccountant, TrafficSummary

__all__ = [
    "ACCESS_CLASSES",
    "ASRouting",
    "AutonomousSystem",
    "CostModel",
    "CostParams",
    "Host",
    "HostFactory",
    "InternetTopology",
    "LatencyConfig",
    "LatencyModel",
    "LinkType",
    "MobilityConfig",
    "MobilityTrace",
    "PeerResources",
    "Position",
    "STREAM_AUTO_HOST_THRESHOLD",
    "StreamingDelayKernel",
    "SubstrateCache",
    "Tier",
    "TopologyConfig",
    "TrafficAccountant",
    "TrafficSummary",
    "TransitBillingLedger",
    "Underlay",
    "UnderlayConfig",
    "cached_generate",
    "cached_info_accuracy",
    "configure_default_cache",
    "default_cache",
    "disable_default_cache",
    "generate_mobility",
    "generate_topology",
    "pair_jitter",
    "pairwise_distances",
    "refresh_tradeoff",
    "substrate_digest",
]
