"""Tiered AS-level topology generator (Figure 1 of the survey).

The generator builds a three-tier hierarchy:

- **Tier-1**: a small clique of global carriers peered with each other,
  spread across the plane.
- **Tier-2**: regional transit ISPs clustered into geographic regions;
  each buys transit from 1–2 Tier-1 carriers and peers with nearby Tier-2s.
- **Stub** (local ISPs): each buys transit from 1–2 Tier-2 providers in
  its region and may peer with geographically close stubs — the "peering
  agreements between closely located ISPs" the survey's §2.1 describes.

The result is an :class:`InternetTopology`: the AS objects plus a
:mod:`networkx` multigraph view used by routing and by tests.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx
import numpy as np

from repro.errors import ConfigurationError, TopologyError
from repro.rng import SeedLike, ensure_rng
from repro.underlay.autonomous_system import AutonomousSystem, LinkType, Tier
from repro.underlay.geometry import (
    DEFAULT_EXTENT_KM,
    Position,
    positions_to_array,
    scatter_around,
)


@dataclass(frozen=True)
class TopologyConfig:
    """Parameters of the synthetic AS topology.

    ``n_regions`` geographic regions each receive an equal share of Tier-2
    and stub ISPs.  ``stub_peering_prob`` is the probability that two stubs
    in the same region establish a settlement-free peering link, modelling
    the local peering agreements that make locality of traffic cheap.
    """

    n_tier1: int = 4
    n_tier2: int = 10
    n_stub: int = 25
    n_regions: int = 5
    extent_km: float = DEFAULT_EXTENT_KM
    region_spread_km: float = 400.0
    tier2_providers: int = 2
    stub_providers: int = 2
    tier2_peering_prob: float = 0.5
    stub_peering_prob: float = 0.15
    seed: SeedLike = None

    def __post_init__(self) -> None:
        if self.n_tier1 < 1:
            raise ConfigurationError("need at least one Tier-1 AS")
        if self.n_tier2 < 1:
            raise ConfigurationError("need at least one Tier-2 AS")
        if self.n_stub < 1:
            raise ConfigurationError("need at least one stub AS")
        if self.n_regions < 1:
            raise ConfigurationError("need at least one region")
        if not (0 <= self.tier2_peering_prob <= 1):
            raise ConfigurationError("tier2_peering_prob must be a probability")
        if not (0 <= self.stub_peering_prob <= 1):
            raise ConfigurationError("stub_peering_prob must be a probability")
        if self.tier2_providers < 1 or self.stub_providers < 1:
            raise ConfigurationError("each non-Tier-1 AS needs >= 1 provider")


class InternetTopology:
    """A generated AS-level Internet.

    ASes are numbered 0..n-1 (Tier-1 first, then Tier-2, then stubs), so
    arrays indexed by ASN are straightforward.
    """

    def __init__(self, ases: list[AutonomousSystem]) -> None:
        if not ases:
            raise TopologyError("topology must contain at least one AS")
        for i, asys in enumerate(ases):
            if asys.asn != i:
                raise TopologyError(
                    f"AS at index {i} has asn {asys.asn}; asns must be 0..n-1"
                )
        self.ases = ases
        self._validate_symmetry()
        self.graph = self._build_graph()
        if not nx.is_connected(self.graph):
            raise TopologyError("generated AS graph is not connected")

    # -- construction -----------------------------------------------------
    def _validate_symmetry(self) -> None:
        for asys in self.ases:
            for p in asys.providers:
                if asys.asn not in self.ases[p].customers:
                    raise TopologyError(
                        f"AS{asys.asn} lists AS{p} as provider but not vice versa"
                    )
            for c in asys.customers:
                if asys.asn not in self.ases[c].providers:
                    raise TopologyError(
                        f"AS{asys.asn} lists AS{c} as customer but not vice versa"
                    )
            for q in asys.peers:
                if asys.asn not in self.ases[q].peers:
                    raise TopologyError(
                        f"AS{asys.asn} lists AS{q} as peer but not vice versa"
                    )

    def _build_graph(self) -> nx.Graph:
        g = nx.Graph()
        for asys in self.ases:
            g.add_node(asys.asn, tier=asys.tier, region=asys.region)
        for asys in self.ases:
            for c in asys.customers:
                g.add_edge(asys.asn, c, link_type=LinkType.TRANSIT, provider=asys.asn)
            for q in asys.peers:
                if asys.asn < q:
                    g.add_edge(asys.asn, q, link_type=LinkType.PEERING)
        return g

    # -- queries ----------------------------------------------------------
    def __len__(self) -> int:
        return len(self.ases)

    @property
    def n_ases(self) -> int:
        return len(self.ases)

    def asys(self, asn: int) -> AutonomousSystem:
        try:
            return self.ases[asn]
        except IndexError:
            raise TopologyError(f"unknown ASN {asn}") from None

    def tier(self, asn: int) -> Tier:
        return self.asys(asn).tier

    def ases_by_tier(self, tier: Tier) -> list[AutonomousSystem]:
        return [a for a in self.ases if a.tier == tier]

    def stub_asns(self) -> list[int]:
        return [a.asn for a in self.ases if a.tier == Tier.STUB]

    def link_type(self, a: int, b: int) -> LinkType:
        """Relationship of the direct link a–b; raises if not adjacent."""
        rel = self.asys(a).relationship_to(b)
        if rel is None:
            raise TopologyError(f"AS{a} and AS{b} are not directly connected")
        return rel

    def transit_links(self) -> list[tuple[int, int]]:
        """All (provider, customer) transit links."""
        out = []
        for asys in self.ases:
            for c in sorted(asys.customers):
                out.append((asys.asn, c))
        return out

    def peering_links(self) -> list[tuple[int, int]]:
        """All peering links as (low asn, high asn)."""
        out = []
        for asys in self.ases:
            for q in sorted(asys.peers):
                if asys.asn < q:
                    out.append((asys.asn, q))
        return out

    def positions_array(self) -> np.ndarray:
        return positions_to_array([a.position for a in self.ases])


def generate_topology(config: TopologyConfig | None = None) -> InternetTopology:
    """Generate a connected, valley-free-routable tiered AS topology."""
    config = config or TopologyConfig()
    rng = ensure_rng(config.seed)
    ases: list[AutonomousSystem] = []

    # Region centres, spaced on a ring inside the plane so that regions are
    # geographically distinct (inter-region distance >> intra-region spread).
    cx = cy = config.extent_km / 2.0
    ring_r = config.extent_km * 0.35
    angles = 2.0 * np.pi * np.arange(config.n_regions) / config.n_regions
    region_centers = [
        Position(cx + ring_r * np.cos(a), cy + ring_r * np.sin(a)) for a in angles
    ]

    # Tier-1 carriers: placed near the plane centre, full peering mesh.
    t1_positions = scatter_around(
        Position(cx, cy), config.extent_km * 0.15, config.n_tier1, rng
    )
    for i in range(config.n_tier1):
        ases.append(
            AutonomousSystem(asn=i, tier=Tier.TIER1, position=t1_positions[i], region=-1)
        )
    for i in range(config.n_tier1):
        for j in range(i + 1, config.n_tier1):
            ases[i].peers.add(j)
            ases[j].peers.add(i)

    def add_transit(provider: AutonomousSystem, customer: AutonomousSystem) -> None:
        provider.customers.add(customer.asn)
        customer.providers.add(provider.asn)

    # Tier-2 regional ISPs.
    t2_start = config.n_tier1
    for k in range(config.n_tier2):
        region = k % config.n_regions
        pos = scatter_around(region_centers[region], config.region_spread_km, 1, rng)[0]
        asys = AutonomousSystem(
            asn=t2_start + k, tier=Tier.TIER2, position=pos, region=region
        )
        ases.append(asys)
        n_prov = min(config.tier2_providers, config.n_tier1)
        providers = rng.choice(config.n_tier1, size=n_prov, replace=False)
        for p in providers:
            add_transit(ases[int(p)], asys)

    # Peering between Tier-2 ISPs in the same region.
    tier2 = [a for a in ases if a.tier == Tier.TIER2]
    for i, a in enumerate(tier2):
        for b in tier2[i + 1 :]:
            if a.region == b.region and rng.random() < config.tier2_peering_prob:
                a.peers.add(b.asn)
                b.peers.add(a.asn)

    # Stub / local ISPs.
    stub_start = t2_start + config.n_tier2
    tier2_by_region: dict[int, list[AutonomousSystem]] = {}
    for a in tier2:
        tier2_by_region.setdefault(a.region, []).append(a)
    for k in range(config.n_stub):
        region = k % config.n_regions
        pos = scatter_around(region_centers[region], config.region_spread_km, 1, rng)[0]
        asys = AutonomousSystem(
            asn=stub_start + k, tier=Tier.STUB, position=pos, region=region
        )
        ases.append(asys)
        regional = tier2_by_region.get(region) or tier2
        n_prov = min(config.stub_providers, len(regional))
        idx = rng.choice(len(regional), size=n_prov, replace=False)
        for p in idx:
            add_transit(regional[int(p)], asys)

    # Peering between stubs in the same region (local peering agreements).
    stubs = [a for a in ases if a.tier == Tier.STUB]
    for i, a in enumerate(stubs):
        for b in stubs[i + 1 :]:
            if a.region == b.region and rng.random() < config.stub_peering_prob:
                a.peers.add(b.asn)
                b.peers.add(a.asn)

    return InternetTopology(ases)
