"""Substrate cache: memoised :class:`Underlay` construction.

Ablation suites rebuild the *same* synthetic Internet dozens of times —
every arm of a sweep starts from ``Underlay.generate`` with an identical
``(UnderlayConfig, seed)``.  :class:`SubstrateCache` keys generated
underlays by a deterministic digest of the config and serves repeats from
an in-process LRU; optionally it persists the expensive matrices (AS hop
matrix, AS delay matrix, host latency matrix) as ``.npz`` files so even a
fresh process skips the BFS and delay builds.

Cached underlays are shared objects: treat them as immutable substrate
(every simulation-facing object — buses, accountants, overlays — is built
per experiment on top, so sharing the topology/latency state is safe).

A process-wide default cache (off unless configured) lets the CLI
(``--substrate-cache``) and the benchmark suite opt in without threading
a cache handle through every experiment:

    from repro.underlay.cache import configure_default_cache, cached_generate
    configure_default_cache(disk_dir="~/.cache/repro-substrate")
    underlay = cached_generate(UnderlayConfig(n_hosts=200, seed=42))
"""

from __future__ import annotations

import hashlib
import json
import os
from collections import OrderedDict
from dataclasses import asdict
from pathlib import Path
from typing import Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.underlay._obs import note_cache_event, timed_build
from repro.underlay.network import Underlay, UnderlayConfig

_DIGEST_BITS = 16  # hex chars: 64 bits of SHA-256, plenty for a cache key


def _canonical(obj: object) -> object:
    """JSON-safe canonical form of a config value; rejects anything whose
    repr is not deterministic across processes (e.g. a live RNG seed)."""
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    if isinstance(obj, (list, tuple)):
        return [_canonical(v) for v in obj]
    if isinstance(obj, dict):
        return {str(k): _canonical(v) for k, v in sorted(obj.items())}
    raise ConfigurationError(
        f"config value {obj!r} is not digestable; substrate caching needs "
        "scalar seeds (pass an int seed, not a Generator)"
    )


def substrate_digest(config: UnderlayConfig) -> str:
    """Deterministic hex digest of an :class:`UnderlayConfig` (nested
    dataclasses included) — the substrate cache key."""
    payload = json.dumps(_canonical(asdict(config)), sort_keys=True)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:_DIGEST_BITS]


class SubstrateCache:
    """LRU of generated underlays keyed by ``substrate_digest(config)``.

    ``maxsize`` bounds the in-process LRU.  When ``disk_dir`` is given,
    the hop/delay/latency matrices of every generated underlay are stored
    as ``substrate-<digest>.npz`` there and injected on later cold
    generations (in this or any other process), so only the cheap
    topology/host construction runs.
    """

    def __init__(
        self, maxsize: int = 8, disk_dir: str | Path | None = None
    ) -> None:
        if maxsize < 1:
            raise ConfigurationError("substrate cache maxsize must be >= 1")
        self.maxsize = maxsize
        self.disk_dir = Path(disk_dir).expanduser() if disk_dir is not None else None
        if self.disk_dir is not None:
            self.disk_dir.mkdir(parents=True, exist_ok=True)
        self._lru: OrderedDict[str, Underlay] = OrderedDict()
        self.hits = 0
        self.misses = 0

    # -- public API ---------------------------------------------------------
    def get_or_generate(self, config: UnderlayConfig | None = None) -> Underlay:
        """The memoised version of :meth:`Underlay.generate`."""
        config = config or UnderlayConfig()
        key = substrate_digest(config)
        cached = self._lru.get(key)
        if cached is not None:
            self._lru.move_to_end(key)
            self.hits += 1
            note_cache_event("substrate_memory", "hit")
            return cached
        self.misses += 1
        note_cache_event("substrate_memory", "miss")
        underlay = self._generate(config, key)
        self._lru[key] = underlay
        while len(self._lru) > self.maxsize:
            self._lru.popitem(last=False)
        return underlay

    def __len__(self) -> int:
        return len(self._lru)

    def __contains__(self, config: UnderlayConfig) -> bool:
        return substrate_digest(config) in self._lru

    def clear(self) -> None:
        """Drop the in-process LRU (disk entries are kept)."""
        self._lru.clear()

    # -- generation + disk tier ---------------------------------------------
    def _npz_path(self, key: str) -> Path:
        assert self.disk_dir is not None
        return self.disk_dir / f"substrate-{key}.npz"

    def _generate(self, config: UnderlayConfig, key: str) -> Underlay:
        with timed_build("underlay_generate"):
            underlay = Underlay.generate(config)
        if self.disk_dir is None:
            return underlay
        warm = self._load_disk(key, underlay)
        if warm:
            note_cache_event("substrate_disk", "hit")
        else:
            note_cache_event("substrate_disk", "miss")
            self._store_disk(key, underlay)
            note_cache_event("substrate_disk", "store")
        return underlay

    def _load_disk(self, key: str, underlay: Underlay) -> bool:
        """Inject matrices from a disk entry; False if absent/unusable.

        Stream-backend entries carry only the AS-level matrices (the
        host latency matrix is never materialised at stream scale);
        matrix-backend entries need the host matrix too, so an entry
        written by a stream-mode run does not warm a matrix-mode one.
        """
        path = self._npz_path(key)
        if not path.exists():
            return False
        try:
            with np.load(path) as data:
                as_hops = data["as_hops"]
                as_delay = data["as_delay"]
                host_latency = (
                    data["host_latency"] if "host_latency" in data.files else None
                )
            if underlay.delay_backend != "stream" and host_latency is None:
                return False
            underlay.routing.warm_hops(as_hops)
            underlay.latency.warm_as_delay(as_delay)
            if underlay.delay_backend != "stream":
                underlay.warm_latency_matrix(host_latency)
            return True
        except Exception:
            # corrupt or stale entry: fall back to a clean rebuild
            return False

    def _store_disk(self, key: str, underlay: Underlay) -> None:
        """Write the entry atomically: concurrent sweep workers racing on
        a cold cache must never observe a half-written ``.npz``.

        Each writer uses a private temp name (pid-qualified, keeping the
        ``.npz`` suffix or ``np.savez`` appends one) and publishes it
        with an atomic ``rename``; readers therefore see either nothing
        or a complete entry, and when several workers race the last
        complete write wins — every candidate holds identical bytes, so
        the race is benign.
        """
        underlay.precompute()
        path = self._npz_path(key)
        tmp = path.with_name(f"{path.stem}.{os.getpid()}.tmp.npz")
        arrays = {
            "as_hops": underlay.routing.hop_matrix(),
            "as_delay": underlay.latency.as_delay,
        }
        if underlay.delay_backend != "stream":
            # stream mode never materialises the O(n^2) host matrix;
            # its disk entries hold only the AS-level state
            arrays["host_latency"] = underlay.latency_matrix
        try:
            np.savez(tmp, **arrays)
            tmp.replace(path)
        finally:
            tmp.unlink(missing_ok=True)


# -- process-wide default cache (opt-in) ------------------------------------
_DEFAULT_CACHE: Optional[SubstrateCache] = None


def configure_default_cache(
    maxsize: int = 8, disk_dir: str | Path | None = None
) -> SubstrateCache:
    """Install (and return) the process-wide substrate cache used by
    :func:`cached_generate` — the hook behind the CLI's
    ``--substrate-cache`` flag and the benchmark suite's option."""
    global _DEFAULT_CACHE
    _DEFAULT_CACHE = SubstrateCache(maxsize=maxsize, disk_dir=disk_dir)
    return _DEFAULT_CACHE


def default_cache() -> Optional[SubstrateCache]:
    """The installed process-wide cache, or ``None`` (caching off)."""
    return _DEFAULT_CACHE


def disable_default_cache() -> None:
    """Remove the process-wide cache (generation goes direct again)."""
    global _DEFAULT_CACHE
    _DEFAULT_CACHE = None


def cached_generate(config: UnderlayConfig | None = None) -> Underlay:
    """``Underlay.generate`` through the default cache when one is
    configured, else a plain uncached generation."""
    cache = _DEFAULT_CACHE
    if cache is None:
        return Underlay.generate(config or UnderlayConfig())
    return cache.get_or_generate(config)
