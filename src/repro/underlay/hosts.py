"""End hosts (peers) attached to the AS topology.

Each host lives in one AS, has a geographic position inside that ISP's
service area, an access-link latency, and a :class:`PeerResources` record —
the §2.3 parameters (bandwidth, processing power, storage, memory, online
time) consumed by resource-aware overlays and by the SkyEye-style
information management overlay.

:class:`HostFactory` draws a heterogeneous population from access-class
templates (dial-up / DSL / cable / fiber), matching the survey's premise
that peers differ widely in capability.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional, Sequence

import numpy as np

from repro.errors import ConfigurationError, TopologyError
from repro.rng import SeedLike, ensure_rng
from repro.underlay.geometry import Position, scatter_around
from repro.underlay.topology import InternetTopology


@dataclass(frozen=True)
class PeerResources:
    """Capability vector of a peer (§2.3 of the survey)."""

    bandwidth_down_kbps: float
    bandwidth_up_kbps: float
    cpu_ops: float           # abstract processing capacity
    storage_gb: float
    memory_mb: float
    avg_online_hours: float  # expected session stability

    def __post_init__(self) -> None:
        for name in (
            "bandwidth_down_kbps",
            "bandwidth_up_kbps",
            "cpu_ops",
            "storage_gb",
            "memory_mb",
            "avg_online_hours",
        ):
            if getattr(self, name) < 0:
                raise ConfigurationError(f"{name} must be non-negative")

    def capacity_score(self) -> float:
        """Scalar super-peer fitness: upstream bandwidth dominates, weighted
        by stability — the standard super-peer election criterion."""
        return (
            self.bandwidth_up_kbps / 1000.0
            + 0.2 * self.cpu_ops
            + 0.05 * self.memory_mb / 100.0
        ) * min(self.avg_online_hours / 4.0, 2.0)


#: Access-class templates: (name, weight, resources, access latency ms range)
ACCESS_CLASSES: tuple[tuple[str, float, PeerResources, tuple[float, float]], ...] = (
    (
        "dialup",
        0.05,
        PeerResources(56, 33, 0.5, 5, 256, 1.0),
        (80.0, 150.0),
    ),
    # Access-latency ranges overlap heavily across the broadband classes:
    # last-mile RTT is dominated by distance to the DSLAM/head-end rather
    # than by the medium, so latency rank is only a weak bandwidth signal.
    (
        "dsl",
        0.45,
        PeerResources(6000, 640, 1.0, 60, 1024, 3.0),
        (8.0, 35.0),
    ),
    (
        "cable",
        0.35,
        PeerResources(16000, 2000, 2.0, 120, 2048, 5.0),
        (6.0, 30.0),
    ),
    (
        "fiber",
        0.15,
        PeerResources(50000, 25000, 4.0, 500, 4096, 8.0),
        (3.0, 20.0),
    ),
)


@dataclass(frozen=True)
class Host:
    """A peer endpoint in the underlay."""

    host_id: int
    asn: int
    position: Position
    access_latency_ms: float
    resources: PeerResources
    access_class: str = "dsl"

    def __post_init__(self) -> None:
        if self.access_latency_ms < 0:
            raise ConfigurationError("access latency must be non-negative")


class HostFactory:
    """Populates stub ASes with a heterogeneous host population."""

    def __init__(
        self,
        topology: InternetTopology,
        *,
        host_spread_km: float = 250.0,
        rng: SeedLike = None,
    ) -> None:
        # The default spread is comparable to the region spread so that the
        # service areas of different ISPs in one region overlap — two
        # geographically close hosts frequently use different ISPs, the
        # geolocation/latency de-correlation of the survey's §2.4.
        self.topology = topology
        self.host_spread_km = host_spread_km
        self._rng = ensure_rng(rng)

    def create_hosts(
        self,
        n_hosts: int,
        *,
        asns: Optional[Sequence[int]] = None,
        start_id: int = 0,
    ) -> list[Host]:
        """Create ``n_hosts`` hosts spread round-robin-with-noise over
        ``asns`` (default: all stub ASes).

        Round-robin assignment keeps per-AS populations balanced (the
        testlab reproduction needs exactly equal shares); the shuffle of
        the AS order is seeded, so results are reproducible.
        """
        if n_hosts < 0:
            raise ConfigurationError("n_hosts must be non-negative")
        target_asns = list(asns) if asns is not None else self.topology.stub_asns()
        if not target_asns:
            raise TopologyError("no ASes available to attach hosts to")
        for asn in target_asns:
            self.topology.asys(asn)  # validate

        names = [c[0] for c in ACCESS_CLASSES]
        weights = np.array([c[1] for c in ACCESS_CLASSES], dtype=float)
        weights = weights / weights.sum()
        class_idx = self._rng.choice(len(ACCESS_CLASSES), size=n_hosts, p=weights)

        hosts: list[Host] = []
        for i in range(n_hosts):
            asn = target_asns[i % len(target_asns)]
            asys = self.topology.asys(asn)
            pos = scatter_around(asys.position, self.host_spread_km, 1, self._rng)[0]
            name, _w, res, (lo, hi) = ACCESS_CLASSES[int(class_idx[i])]
            latency = float(self._rng.uniform(lo, hi))
            # Give each host a small individual spin on the template so the
            # population is continuous rather than four point masses.
            jitter = float(self._rng.uniform(0.8, 1.2))
            res_i = replace(
                res,
                bandwidth_down_kbps=res.bandwidth_down_kbps * jitter,
                bandwidth_up_kbps=res.bandwidth_up_kbps * jitter,
                avg_online_hours=res.avg_online_hours * float(self._rng.uniform(0.5, 1.5)),
            )
            hosts.append(
                Host(
                    host_id=start_id + i,
                    asn=asn,
                    position=pos,
                    access_latency_ms=latency,
                    resources=res_i,
                    access_class=name,
                )
            )
        return hosts
