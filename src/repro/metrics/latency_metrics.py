"""Latency metrics: stretch, delay distributions, neighbour quality."""

from __future__ import annotations

from typing import Callable, Hashable, Sequence

import networkx as nx
import numpy as np

from repro.errors import ReproError


def percentile_key(p: float) -> str:
    """Distinct name for a percentile: ``p50`` for integral values,
    ``p99.9`` for fractional ones.  Truncating to ``int`` would collapse
    e.g. 99 and 99.9 onto the same ``"p99"`` key and silently drop one."""
    p = float(p)
    return f"p{int(p)}" if p == int(p) else f"p{p:g}"


def delay_percentiles(
    delays_ms: Sequence[float], percentiles: Sequence[float] = (50, 90, 99)
) -> dict[str, float]:
    """Named percentiles of a delay sample (p50/p90/p99 by default)."""
    d = np.asarray(list(delays_ms), dtype=float)
    if d.size == 0:
        raise ReproError("no delay samples")
    out = {percentile_key(p): float(np.percentile(d, p)) for p in percentiles}
    if len(out) != len(percentiles):
        raise ReproError(f"duplicate percentiles requested: {tuple(percentiles)}")
    return out


def neighbor_delay_stats(
    graph: nx.Graph, delay_of: Callable[[Hashable, Hashable], float]
) -> dict[str, float]:
    """Distribution of direct-neighbour delays in an overlay — the quantity
    latency-aware construction minimises (§2.2)."""
    delays = [delay_of(a, b) for a, b in graph.edges()]
    if not delays:
        raise ReproError("graph has no edges")
    stats = delay_percentiles(delays)
    stats["mean"] = float(np.mean(delays))
    return stats


def overlay_path_stretch(
    graph: nx.Graph,
    delay_of: Callable[[Hashable, Hashable], float],
    pairs: Sequence[tuple[Hashable, Hashable]],
) -> float:
    """Mean stretch: (delay along the overlay's shortest-delay path) /
    (direct underlay delay), over the given node pairs.

    >= 1 by construction; close to 1 means the overlay routes almost as
    well as the underlay could.
    """
    weighted = graph.copy()
    for a, b in weighted.edges():
        weighted[a][b]["delay"] = delay_of(a, b)
    stretches = []
    for src, dst in pairs:
        direct = delay_of(src, dst)
        if direct <= 0:
            continue
        try:
            overlay_delay = nx.shortest_path_length(
                weighted, src, dst, weight="delay"
            )
        except nx.NetworkXNoPath:
            continue
        stretches.append(overlay_delay / direct)
    if not stretches:
        raise ReproError("no connected pairs to compute stretch over")
    return float(np.mean(stretches))
