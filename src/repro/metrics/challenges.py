"""Metrics for the §6 open challenges.

- **Asymmetric node selection**: "the path from node A to node B is the
  shortest for node A, but at the same time the path from node B to node
  A is not the shortest for B" — quantified as the fraction of nodes
  whose nearest-neighbour relation is not mutual, and more generally the
  asymmetry of the k-NN relation.
- **Long hop**: "one single hop may represent a big distance in terms of
  delay" — hop-based systems that rank by AS hops alone miss that a
  1-hop route can be slower than a 3-hop route.  Quantified as the
  hop/delay rank correlation and the fraction of minimal-hop pairs whose
  delay exceeds what a latency-aware system would have picked.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np
from scipy import stats as sstats

from repro.coords.base import validate_distance_matrix
from repro.errors import ReproError
from repro.underlay.network import Underlay


def asymmetric_nearest_fraction(distance_matrix: np.ndarray) -> float:
    """Fraction of nodes whose nearest neighbour does not reciprocate."""
    d = validate_distance_matrix(distance_matrix)
    n = d.shape[0]
    if n < 2:
        raise ReproError("need at least two nodes")
    dd = d.astype(float).copy()
    np.fill_diagonal(dd, np.inf)
    nearest = np.argmin(dd, axis=1)
    non_mutual = sum(1 for i in range(n) if nearest[nearest[i]] != i)
    return non_mutual / n


def knn_asymmetry(distance_matrix: np.ndarray, k: int = 5) -> float:
    """Mean fraction of a node's k nearest that do NOT list it back among
    their own k nearest — 0 for perfectly mutual selection."""
    d = validate_distance_matrix(distance_matrix)
    n = d.shape[0]
    if not (1 <= k < n):
        raise ReproError(f"k must be in [1, n), got {k} for n={n}")
    dd = d.astype(float).copy()
    np.fill_diagonal(dd, np.inf)
    knn = np.argsort(dd, axis=1)[:, :k]
    knn_sets = [set(map(int, row)) for row in knn]
    misses = 0
    for i in range(n):
        misses += sum(1 for j in knn_sets[i] if i not in knn_sets[j])
    return misses / (n * k)


def hop_delay_correlation(underlay: Underlay, max_pairs: int = 2000) -> float:
    """Spearman correlation between AS-hop count and delay over host pairs
    (how much signal a hop-based proximity system actually has)."""
    hosts = underlay.hosts
    hops, delays = [], []
    count = 0
    for i, a in enumerate(hosts):
        for b in hosts[i + 1 :]:
            hops.append(underlay.routing.hops(a.asn, b.asn))
            delays.append(underlay.one_way_delay(a.host_id, b.host_id))
            count += 1
            if count >= max_pairs:
                break
        if count >= max_pairs:
            break
    if len(set(hops)) < 2:
        raise ReproError("hop counts are constant; correlation undefined")
    rho, _p = sstats.spearmanr(hops, delays)
    return float(rho)


def long_hop_fraction(
    underlay: Underlay, *, delay_factor: float = 1.5, max_nodes: int = 60
) -> float:
    """Fraction of hosts for which the hop-minimal peer choice costs more
    than ``delay_factor``× the latency-minimal choice — the §6 long-hop
    penalty of hop-based proximity systems."""
    if delay_factor < 1.0:
        raise ReproError("delay_factor must be >= 1")
    hosts = underlay.hosts[:max_nodes]
    hit = 0
    for a in hosts:
        others = [b for b in hosts if b.host_id != a.host_id]
        min_hops = min(underlay.routing.hops(a.asn, b.asn) for b in others)
        hop_candidates = [
            b for b in others if underlay.routing.hops(a.asn, b.asn) == min_hops
        ]
        hop_choice = min(
            underlay.one_way_delay(a.host_id, b.host_id) for b in hop_candidates
        )
        best_delay = min(
            underlay.one_way_delay(a.host_id, b.host_id) for b in others
        )
        if best_delay > 0 and hop_choice > delay_factor * best_delay:
            hit += 1
    return hit / len(hosts)
