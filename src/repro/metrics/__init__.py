"""Evaluation metrics: locality, latency, messages, resilience, impact."""

from repro.metrics.impact import (
    BIG_EFFECT_THRESHOLD,
    INFO_COLUMNS,
    PAPER_TABLE2,
    PARAMETER_ROWS,
    SMALL_EFFECT_THRESHOLD,
    ImpactCell,
    agreement_rate,
    compare_with_paper,
    impact_symbol,
)
from repro.metrics.challenges import (
    asymmetric_nearest_fraction,
    hop_delay_correlation,
    knn_asymmetry,
    long_hop_fraction,
)
from repro.metrics.latency_metrics import (
    delay_percentiles,
    neighbor_delay_stats,
    overlay_path_stretch,
    percentile_key,
)
from repro.metrics.locality import (
    as_cluster_sizes,
    as_modularity,
    inter_as_edge_count,
    intra_as_edge_fraction,
    is_connected,
    locality_summary,
    min_inter_as_edges,
)
from repro.metrics.message_stats import (
    GNUTELLA_KINDS,
    gnutella_table_row,
    overhead_ratio,
    reduction_percent,
    table_reductions,
)
from repro.metrics.resilience import (
    articulation_point_count,
    largest_component_fraction,
    largest_component_fraction_under_removal,
    partition_risk,
    resilience_summary,
)

__all__ = [
    "BIG_EFFECT_THRESHOLD",
    "GNUTELLA_KINDS",
    "INFO_COLUMNS",
    "ImpactCell",
    "PAPER_TABLE2",
    "PARAMETER_ROWS",
    "SMALL_EFFECT_THRESHOLD",
    "agreement_rate",
    "articulation_point_count",
    "as_cluster_sizes",
    "as_modularity",
    "asymmetric_nearest_fraction",
    "compare_with_paper",
    "delay_percentiles",
    "gnutella_table_row",
    "hop_delay_correlation",
    "impact_symbol",
    "inter_as_edge_count",
    "intra_as_edge_fraction",
    "is_connected",
    "knn_asymmetry",
    "largest_component_fraction",
    "largest_component_fraction_under_removal",
    "locality_summary",
    "long_hop_fraction",
    "min_inter_as_edges",
    "neighbor_delay_stats",
    "overhead_ratio",
    "overlay_path_stretch",
    "partition_risk",
    "percentile_key",
    "reduction_percent",
    "resilience_summary",
    "table_reductions",
]
