"""Message/overhead statistics shared across experiments."""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.errors import ReproError

#: The four Gnutella descriptor types of the [1] message table.
GNUTELLA_KINDS = ("PING", "PONG", "QUERY", "QUERYHIT")


def gnutella_table_row(counts: Mapping[str, int]) -> dict[str, int]:
    """Extract the Figure 5 message-table row from bus per-kind counts."""
    return {k: int(counts.get(k, 0)) for k in GNUTELLA_KINDS}


def reduction_percent(baseline: float, variant: float) -> float:
    """Percentage reduction of ``variant`` relative to ``baseline``."""
    if baseline <= 0:
        raise ReproError("baseline must be positive")
    return 100.0 * (baseline - variant) / baseline


def table_reductions(
    baseline: Mapping[str, int], variant: Mapping[str, int]
) -> dict[str, float]:
    """Per-kind percentage reductions for the Gnutella message table."""
    out = {}
    for k in GNUTELLA_KINDS:
        if baseline.get(k, 0) > 0:
            out[k] = reduction_percent(baseline[k], variant.get(k, 0))
    return out


def overhead_ratio(control_bytes: int, payload_bytes: int) -> float:
    """Control-plane bytes per payload byte (lower is better)."""
    if payload_bytes <= 0:
        raise ReproError("payload bytes must be positive")
    return control_bytes / payload_bytes
