"""Resilience metrics: robustness against churn and failures (§5.4).

The survey flags "robustness especially against churn" as the open
evaluation question for underlay-aware overlays — in particular whether
ISP-based clustering (Figure 6b) makes the overlay fragile: if the few
inter-AS links die, whole ISP clusters partition.  These metrics measure
exactly that:

- ``largest_component_fraction_under_removal`` — classic random-failure
  sweep;
- ``partition_risk`` — probability that removing ``f`` random nodes
  disconnects at least one AS cluster from the rest;
- ``cut_vulnerability`` — how many node removals suffice to disconnect
  the overlay (greedy approximation via articulation points);
- ``stretch_summary`` — achieved lookup latency over the direct underlay
  RTT, the price an overlay pays for indirection (and the quantity that
  degrades first when fault injection knocks out the short paths).
"""

from __future__ import annotations

from typing import Callable, Hashable, Sequence

import networkx as nx
import numpy as np

from repro.errors import ReproError
from repro.rng import SeedLike, ensure_rng


def largest_component_fraction(graph: nx.Graph) -> float:
    """Size of the largest connected component over all nodes."""
    n = graph.number_of_nodes()
    if n == 0:
        raise ReproError("empty graph")
    return max(len(c) for c in nx.connected_components(graph)) / n


def largest_component_fraction_under_removal(
    graph: nx.Graph,
    removal_fractions: Sequence[float],
    *,
    trials: int = 5,
    rng: SeedLike = None,
) -> list[dict[str, float]]:
    """For each removal fraction, the mean size of the largest surviving
    component (fraction of surviving nodes)."""
    rng = ensure_rng(rng)
    nodes = list(graph.nodes())
    rows = []
    for f in removal_fractions:
        if not (0 <= f < 1):
            raise ReproError(f"removal fraction must be in [0, 1), got {f}")
        n_remove = int(round(f * len(nodes)))
        sizes = []
        for _ in range(trials):
            idx = rng.choice(len(nodes), size=n_remove, replace=False)
            removed = {nodes[int(i)] for i in idx}
            sub = graph.subgraph(n for n in nodes if n not in removed)
            survivors = sub.number_of_nodes()
            if survivors == 0:
                sizes.append(0.0)
                continue
            sizes.append(max(len(c) for c in nx.connected_components(sub)) / survivors)
        rows.append({"removal_fraction": float(f), "largest_component": float(np.mean(sizes))})
    return rows


def partition_risk(
    graph: nx.Graph,
    asn_of: Callable[[Hashable], int],
    removal_fraction: float,
    *,
    trials: int = 20,
    rng: SeedLike = None,
) -> float:
    """Probability that random removal of the given node fraction leaves
    at least one AS's surviving peers unreachable from the rest."""
    rng = ensure_rng(rng)
    nodes = list(graph.nodes())
    n_remove = int(round(removal_fraction * len(nodes)))
    bad = 0
    for _ in range(trials):
        idx = rng.choice(len(nodes), size=n_remove, replace=False)
        removed = {nodes[int(i)] for i in idx}
        sub = graph.subgraph(n for n in nodes if n not in removed)
        if sub.number_of_nodes() == 0:
            continue
        comps = list(nx.connected_components(sub))
        if len(comps) == 1:
            continue
        # partitioned: does any AS sit entirely outside the giant component?
        giant = max(comps, key=len)
        outside_ases = {asn_of(n) for c in comps if c is not giant for n in c}
        if outside_ases:
            bad += 1
    return bad / trials


def articulation_point_count(graph: nx.Graph) -> int:
    """Nodes whose individual failure disconnects the overlay."""
    if graph.number_of_nodes() == 0:
        raise ReproError("empty graph")
    return sum(1 for _ in nx.articulation_points(graph))


def stretch_summary(
    achieved_ms: Sequence[float],
    baseline_ms: Sequence[float],
) -> dict[str, float]:
    """Mean/median stretch of achieved latencies over their baselines.

    ``achieved_ms[i]`` is an operation's end-to-end latency (e.g. one
    iterative lookup); ``baseline_ms[i]`` the direct underlay RTT the
    operation would have cost with perfect knowledge.  Pairs with a
    non-positive baseline (local hits) are skipped; with no usable pair
    the stretches are NaN and ``n`` is 0.
    """
    if len(achieved_ms) != len(baseline_ms):
        raise ReproError("achieved/baseline length mismatch")
    ratios = [
        a / b
        for a, b in zip(achieved_ms, baseline_ms)
        if b > 0 and np.isfinite(a)
    ]
    if not ratios:
        return {"n": 0, "mean_stretch": float("nan"),
                "median_stretch": float("nan")}
    return {
        "n": len(ratios),
        "mean_stretch": float(np.mean(ratios)),
        "median_stretch": float(np.median(ratios)),
    }


def resilience_summary(
    graph: nx.Graph,
    asn_of: Callable[[Hashable], int],
    *,
    removal_fraction: float = 0.2,
    rng: SeedLike = 0,
) -> dict[str, float]:
    """One row with the connectivity/robustness quantities of a graph."""
    return {
        "largest_component": largest_component_fraction(graph),
        "articulation_points": articulation_point_count(graph),
        "partition_risk": partition_risk(
            graph, asn_of, removal_fraction, rng=rng
        ),
    }
