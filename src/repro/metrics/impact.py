"""Table 2: the impact matrix of underlay awareness.

The survey summarises impacts qualitatively: for each (parameter ×
underlay-information) cell, ``++`` big effect, ``+`` small effect, ``o``
neutral.  We reproduce the table *quantitatively*: experiments measure
each parameter with and without the given awareness, the relative
improvement is mapped onto the same three-symbol scale, and the result is
compared cell-by-cell with the paper's matrix.

``PAPER_TABLE2`` transcribes the published matrix verbatim.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.errors import ReproError

INFO_COLUMNS = ("isp_location", "latency", "geolocation", "peer_resources")
PARAMETER_ROWS = (
    "download_time",
    "delay",
    "isp_oam",
    "isp_costs",
    "new_applications",
    "resilience",
)

#: The published Table 2, rows × columns, symbols in {"++", "+", "o"}.
PAPER_TABLE2: dict[str, dict[str, str]] = {
    "download_time": {
        "isp_location": "++", "latency": "o", "geolocation": "o",
        "peer_resources": "++",
    },
    "delay": {
        "isp_location": "o", "latency": "++", "geolocation": "+",
        "peer_resources": "o",
    },
    "isp_oam": {
        "isp_location": "++", "latency": "o", "geolocation": "o",
        "peer_resources": "o",
    },
    "isp_costs": {
        "isp_location": "++", "latency": "o", "geolocation": "o",
        "peer_resources": "+",
    },
    "new_applications": {
        "isp_location": "o", "latency": "+", "geolocation": "++",
        "peer_resources": "o",
    },
    "resilience": {
        "isp_location": "++", "latency": "++", "geolocation": "o",
        "peer_resources": "+",
    },
}

#: Default thresholds on relative improvement for the symbol mapping.
BIG_EFFECT_THRESHOLD = 0.25
SMALL_EFFECT_THRESHOLD = 0.05


def impact_symbol(
    relative_improvement: float,
    *,
    big: float = BIG_EFFECT_THRESHOLD,
    small: float = SMALL_EFFECT_THRESHOLD,
) -> str:
    """Map a measured relative improvement onto the paper's scale.

    ``relative_improvement`` is (baseline − aware) / baseline for
    lower-is-better parameters, or the signed gain for higher-is-better
    ones; negative values (regressions) map to "o" like the paper's
    neutral, since Table 2 has no negative symbol.
    """
    if not (0 < small < big):
        raise ReproError("thresholds must satisfy 0 < small < big")
    if relative_improvement >= big:
        return "++"
    if relative_improvement >= small:
        return "+"
    return "o"


@dataclass(frozen=True)
class ImpactCell:
    """One Table 2 cell: measured improvement, its symbol, the paper's symbol."""
    parameter: str
    info_type: str
    measured_improvement: float
    measured_symbol: str
    paper_symbol: str

    @property
    def matches(self) -> bool:
        return self.measured_symbol == self.paper_symbol

    @property
    def within_one_step(self) -> bool:
        scale = {"o": 0, "+": 1, "++": 2}
        return abs(scale[self.measured_symbol] - scale[self.paper_symbol]) <= 1


def compare_with_paper(
    measured: Mapping[str, Mapping[str, float]],
    *,
    big: float = BIG_EFFECT_THRESHOLD,
    small: float = SMALL_EFFECT_THRESHOLD,
) -> list[ImpactCell]:
    """Compare measured relative improvements against PAPER_TABLE2.

    ``measured[row][column]`` is the relative improvement of that cell;
    missing cells are skipped (e.g. "new_applications", which is a
    qualitative enablement claim rather than a measurable delta).
    """
    cells = []
    for row, cols in measured.items():
        if row not in PAPER_TABLE2:
            raise ReproError(f"unknown Table 2 row {row!r}")
        for col, value in cols.items():
            if col not in INFO_COLUMNS:
                raise ReproError(f"unknown Table 2 column {col!r}")
            cells.append(
                ImpactCell(
                    parameter=row,
                    info_type=col,
                    measured_improvement=float(value),
                    measured_symbol=impact_symbol(value, big=big, small=small),
                    paper_symbol=PAPER_TABLE2[row][col],
                )
            )
    return cells


def agreement_rate(cells: list[ImpactCell]) -> float:
    """Fraction of cells whose measured symbol equals the paper's."""
    if not cells:
        raise ReproError("no cells to compare")
    return sum(c.matches for c in cells) / len(cells)
