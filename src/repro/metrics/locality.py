"""Locality metrics for overlay topologies (Figures 5/6).

The survey's Figure 6 contrasts uniform-random and biased neighbor
selection: biased selection clusters the overlay along AS boundaries with
"a minimal number of inter-AS connections necessary to keep the network
connected".  These metrics quantify that picture:

- ``intra_as_edge_fraction`` — share of overlay edges inside one AS;
- ``as_modularity`` — Newman modularity of the AS partition (how strongly
  the overlay clusters along ISP boundaries);
- ``inter_as_edge_count`` vs ``min_inter_as_edges`` — how close the
  topology is to the connectivity-minimal number of cross-ISP links.
"""

from __future__ import annotations

from typing import Callable, Hashable, Iterable

import networkx as nx

from repro.errors import ReproError


def intra_as_edge_fraction(
    graph: nx.Graph, asn_of: Callable[[Hashable], int]
) -> float:
    """Fraction of edges whose endpoints share an AS."""
    edges = list(graph.edges())
    if not edges:
        return 0.0
    same = sum(1 for a, b in edges if asn_of(a) == asn_of(b))
    return same / len(edges)


def inter_as_edge_count(graph: nx.Graph, asn_of: Callable[[Hashable], int]) -> int:
    """Number of overlay edges whose endpoints sit in different ASes."""
    return sum(1 for a, b in graph.edges() if asn_of(a) != asn_of(b))


def min_inter_as_edges(graph: nx.Graph, asn_of: Callable[[Hashable], int]) -> int:
    """Minimum number of inter-AS overlay edges that could keep the
    represented ASes connected: a spanning tree over the distinct ASes."""
    ases = {asn_of(n) for n in graph.nodes()}
    return max(len(ases) - 1, 0)


def as_modularity(graph: nx.Graph, asn_of: Callable[[Hashable], int]) -> float:
    """Newman modularity of the partition of overlay nodes by AS.

    ~0 for AS-agnostic random topologies, approaching its maximum when the
    overlay clusters along ISP boundaries.
    """
    if graph.number_of_edges() == 0:
        raise ReproError("modularity undefined for an edgeless graph")
    groups: dict[int, set] = {}
    for n in graph.nodes():
        groups.setdefault(asn_of(n), set()).add(n)
    return float(nx.algorithms.community.modularity(graph, groups.values()))


def as_cluster_sizes(
    graph: nx.Graph, asn_of: Callable[[Hashable], int]
) -> dict[int, int]:
    """Number of overlay nodes per AS."""
    sizes: dict[int, int] = {}
    for n in graph.nodes():
        sizes[asn_of(n)] = sizes.get(asn_of(n), 0) + 1
    return sizes


def is_connected(graph: nx.Graph) -> bool:
    """True when the graph is connected (empty graphs count as connected)."""
    if graph.number_of_nodes() == 0:
        return True
    return nx.is_connected(graph)


def locality_summary(
    graph: nx.Graph, asn_of: Callable[[Hashable], int]
) -> dict[str, float]:
    """One row with the Figure 6 quantities."""
    return {
        "nodes": graph.number_of_nodes(),
        "edges": graph.number_of_edges(),
        "intra_as_edge_fraction": intra_as_edge_fraction(graph, asn_of),
        "inter_as_edges": inter_as_edge_count(graph, asn_of),
        "min_inter_as_edges": min_inter_as_edges(graph, asn_of),
        "as_modularity": as_modularity(graph, asn_of)
        if graph.number_of_edges()
        else 0.0,
        "connected": float(is_connected(graph)),
    }
