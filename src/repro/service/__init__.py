"""Service layer: arrival processes, load drivers, and the bootstrapper.

Everything experiments and operators need to treat a simulated overlay
as a running *service*: seeded arrival-process generators
(:mod:`~repro.service.arrivals`), open-/closed-loop load drivers with
SLO percentile reports (:mod:`~repro.service.load`), per-protocol
operation adapters (:mod:`~repro.service.ops`), and the asyncio
control-plane front end (:mod:`~repro.service.bootstrap`).
"""

from repro.service.arrivals import (
    ARRIVAL_PROCESSES,
    ArrivalProcess,
    DiurnalArrivals,
    ParetoArrivals,
    PoissonArrivals,
    exponential_interarrival_times,
    make_arrivals,
)
from repro.service.bootstrap import Bootstrapper, ControlServer, ServiceConfig
from repro.service.load import (
    ClosedLoopDriver,
    LoadReport,
    OpenLoopDriver,
    OpRecord,
    OpSpec,
)
from repro.service.ops import GnutellaServiceOps, KademliaServiceOps

__all__ = [
    "ARRIVAL_PROCESSES",
    "ArrivalProcess",
    "Bootstrapper",
    "ClosedLoopDriver",
    "ControlServer",
    "DiurnalArrivals",
    "GnutellaServiceOps",
    "KademliaServiceOps",
    "LoadReport",
    "OpRecord",
    "OpSpec",
    "OpenLoopDriver",
    "ParetoArrivals",
    "PoissonArrivals",
    "ServiceConfig",
    "exponential_interarrival_times",
    "make_arrivals",
]
