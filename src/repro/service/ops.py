"""Protocol operation adapters for the load drivers.

Each adapter turns one overlay's public workload API into
:class:`~repro.service.load.OpSpec` entries — the bridge between "a
running network" and "a stream of service operations with completion
callbacks":

- :class:`KademliaServiceOps` — ``store`` (publish a fresh key to the k
  closest nodes; completes when the underlying FIND_NODE converges) and
  ``retrieve`` (iterative FIND_VALUE over previously stored keys;
  success = value found).
- :class:`GnutellaServiceOps` — keyword ``search`` through the
  ultrapeer mesh; completes at the *first* QueryHit (the service-level
  "time to first result" users experience), via
  ``GnutellaNetwork.search_listener``.

Adapters draw origins uniformly from the online population with the
driver's RNG, so a seeded drive is fully deterministic.
"""

from __future__ import annotations

import itertools
from typing import Callable, Hashable, Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.overlay.gnutella.network import GnutellaNetwork, SearchRecord
from repro.overlay.kademlia.id_space import key_for
from repro.overlay.kademlia.network import KademliaNetwork
from repro.rng import SeedLike, ensure_rng
from repro.service.load import DoneFn, OpSpec
from repro.workloads.content import ContentCatalog


class KademliaServiceOps:
    """store/retrieve operations over a bootstrapped Kademlia network."""

    def __init__(self, net: KademliaNetwork, *, rng: SeedLike = None) -> None:
        self.net = net
        self._rng = ensure_rng(rng)
        self._counter = itertools.count()
        #: keys known to be published (seeded + successfully stored);
        #: retrieve ops draw uniformly from here
        self.keys: list[int] = []

    # -- population helpers --------------------------------------------------
    def online_ids(self) -> list[int]:
        return [hid for hid, node in self.net.nodes.items() if node.online]

    def pick_origin(self, rng: np.random.Generator) -> int:
        ids = self.online_ids()
        if not ids:
            raise ConfigurationError("no online kademlia nodes to issue from")
        return ids[int(rng.integers(len(ids)))]

    def seed_content(self, n_keys: int, *, settle_ms: float = 30_000.0) -> list[int]:
        """Publish ``n_keys`` fresh keys from random online origins and
        run the sim until the STOREs settle, so retrieve ops have
        something to find from the first arrival on."""
        ids = self.online_ids()
        if len(ids) < 2:
            raise ConfigurationError("need at least two online nodes to seed")
        fresh = []
        for _ in range(n_keys):
            origin = ids[int(self._rng.integers(len(ids)))]
            key = key_for(f"svc-seed-{next(self._counter)}")
            self.net.nodes[origin].store_value(key, origin)
            fresh.append(key)
        self.net.sim.run(until=self.net.sim.now + settle_ms)
        self.keys.extend(fresh)
        return fresh

    # -- ops -----------------------------------------------------------------
    def _issue_store(self, origin: Hashable, on_done: DoneFn) -> None:
        key = key_for(f"svc-store-{next(self._counter)}")

        def stored(result) -> None:
            ok = bool(result.closest)
            if ok:
                self.keys.append(key)
            on_done(ok)

        self.net.nodes[origin].store_value(key, int(origin), on_done=stored)

    def _issue_retrieve(self, origin: Hashable, on_done: DoneFn) -> None:
        if not self.keys:
            on_done(False)
            return
        key = self.keys[int(self._rng.integers(len(self.keys)))]
        self.net.nodes[origin].iterative_find_value(
            key, lambda result: on_done(result.found_value)
        )

    def store_spec(self, weight: float = 1.0) -> OpSpec:
        return OpSpec("kad_store", weight, self.pick_origin, self._issue_store)

    def retrieve_spec(self, weight: float = 1.0) -> OpSpec:
        return OpSpec(
            "kad_retrieve", weight, self.pick_origin, self._issue_retrieve
        )

    def mix(self, *, store_fraction: float = 0.3) -> list[OpSpec]:
        """The standard DHT service mix: mostly reads, some writes."""
        if not 0.0 < store_fraction < 1.0:
            raise ConfigurationError("store_fraction must be in (0, 1)")
        return [
            self.store_spec(store_fraction),
            self.retrieve_spec(1.0 - store_fraction),
        ]


class GnutellaServiceOps:
    """Keyword-search operations over a joined Gnutella network.

    Installs itself as the network's ``search_listener``; a search
    completes successfully at its first hit and otherwise runs into the
    driver's timeout.
    """

    def __init__(
        self,
        net: GnutellaNetwork,
        catalog: ContentCatalog,
        *,
        rng: SeedLike = None,
    ) -> None:
        self.net = net
        self.catalog = catalog
        self._rng = ensure_rng(rng)
        self._pending: dict[int, DoneFn] = {}
        if net.search_listener is not None:
            raise ConfigurationError(
                "the gnutella network already has a search listener"
            )
        net.search_listener = self._on_first_hit

    def seed_content(self, *, files_per_host: int = 6) -> None:
        """Give every node a locality-correlated shared-file set (the
        testlab scheme) so searches have answerable targets."""
        shared = self.catalog.assign_shared_content(
            [self.net.underlay.host(hid) for hid in self.net.nodes],
            files_per_host=files_per_host,
        )
        for hid, files in shared.items():
            self.net.share_content(hid, files)

    def online_ids(self) -> list[int]:
        return [hid for hid, node in self.net.nodes.items() if node.online]

    def pick_origin(self, rng: np.random.Generator) -> int:
        ids = self.online_ids()
        if not ids:
            raise ConfigurationError("no online gnutella nodes to issue from")
        return ids[int(rng.integers(len(ids)))]

    def _issue_search(self, origin: Hashable, on_done: DoneFn) -> None:
        keyword = self.catalog.draw_query(self.net.underlay.asn_of(origin))
        guid = self.net.search(int(origin), keyword)
        self._pending[guid] = on_done

    def _on_first_hit(self, record: SearchRecord) -> None:
        done = self._pending.pop(record.guid, None)
        if done is not None:
            done(True)

    def search_spec(self, weight: float = 1.0) -> OpSpec:
        return OpSpec("gnu_search", weight, self.pick_origin, self._issue_search)

    def mix(self) -> list[OpSpec]:
        return [self.search_spec()]
