"""Open- and closed-loop load drivers with SLO accounting.

The drivers issue protocol operations (Kademlia store/retrieve,
Gnutella search — see :mod:`repro.service.ops`) against a running
:class:`~repro.sim.engine.Simulation` and record per-operation latency
and success:

- :class:`OpenLoopDriver` issues operations at the times of an
  :class:`~repro.service.arrivals.ArrivalProcess`, *independently of
  completions* — the only loop shape that exposes saturation, because a
  closed loop slows its own offered load down when the service degrades
  (coordinated omission).  Latency is measured from the scheduled
  arrival, so time spent queued behind a saturated peer counts.
- :class:`ClosedLoopDriver` runs ``n_workers`` think-time loops — the
  locust-style shape used to measure best-case service capacity.

Per-peer capacity is modelled client-side: at most
``concurrency_per_origin`` operations of one origin run concurrently;
excess arrivals wait in a FIFO queue (the knob that turns offered
overload into the queueing delay a saturation-knee sweep measures).

Inside an ``obs.observe()`` scope the drivers record
``service_ops_total{op,status}`` and ``service_op_latency_ms{op}``
(bucketed by :data:`~repro.obs.registry.SLO_LATENCY_BUCKETS_MS`, which
unlike ``DEFAULT_BUCKETS`` resolves tails beyond 5 s).  Reports quote
p50/p95/p99 over successful operations plus throughput.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Hashable, Optional, Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.metrics.latency_metrics import delay_percentiles
from repro.obs import active_registry
from repro.obs.registry import (
    SLO_LATENCY_BUCKETS_MS,
    Counter,
    Histogram,
    MetricRegistry,
)
from repro.rng import SeedLike, ensure_rng
from repro.service.arrivals import ArrivalProcess
from repro.sim.engine import EventHandle, Simulation

#: Percentiles every load report quotes.
SLO_PERCENTILES: tuple[float, ...] = (50, 95, 99)

#: ``on_done(ok)`` completion callback handed to an op's issue function.
DoneFn = Callable[[bool], None]


@dataclass(frozen=True)
class OpSpec:
    """One operation type in a driver's mix.

    ``pick_origin(rng)`` chooses the issuing peer (capacity is accounted
    per origin); ``issue(origin, on_done)`` starts the protocol
    operation and must eventually call ``on_done(ok)`` exactly once
    (extra calls are ignored — late replies after a timeout are normal).
    """

    name: str
    weight: float
    pick_origin: Callable[[np.random.Generator], Hashable]
    issue: Callable[[Hashable, DoneFn], None]

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise ConfigurationError(f"op weight must be positive: {self.name}")


@dataclass
class OpRecord:
    """Lifecycle of one issued operation (sim-clock ms)."""

    kind: str
    arrived_at: float
    started_at: float = math.nan
    finished_at: float = math.nan
    status: str = "pending"  # pending|ok|fail|timeout|unfinished
    _released: bool = field(default=False, repr=False)

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    @property
    def latency_ms(self) -> float:
        """Arrival-to-completion latency (includes client queue wait)."""
        return self.finished_at - self.arrived_at


def _latency_summary(samples: Sequence[float]) -> dict[str, float]:
    if not samples:
        return {key: math.nan for key in ("mean", "p50", "p95", "p99")}
    out = delay_percentiles(samples, SLO_PERCENTILES)
    out["mean"] = float(np.mean(samples))
    return out


@dataclass
class LoadReport:
    """Aggregate outcome of one drive: counts, throughput, percentiles."""

    mode: str
    duration_ms: float
    offered: int
    issued: int
    succeeded: int
    failed: int
    timed_out: int
    unfinished: int
    throughput_per_s: float
    success_rate: float
    latency_ms: dict[str, float]
    per_kind: dict[str, dict[str, float]]

    @property
    def offered_per_s(self) -> float:
        return self.offered / (self.duration_ms / 1000.0)

    def as_dict(self) -> dict[str, Any]:
        """JSON-safe dict (the data-socket wire format)."""
        return {
            "mode": self.mode,
            "duration_ms": self.duration_ms,
            "offered": self.offered,
            "offered_per_s": round(self.offered_per_s, 3),
            "issued": self.issued,
            "succeeded": self.succeeded,
            "failed": self.failed,
            "timed_out": self.timed_out,
            "unfinished": self.unfinished,
            "throughput_per_s": round(self.throughput_per_s, 3),
            "success_rate": round(self.success_rate, 4),
            "latency_ms": {
                k: (None if math.isnan(v) else round(v, 3))
                for k, v in self.latency_ms.items()
            },
            "per_kind": {
                kind: {
                    k: (None if isinstance(v, float) and math.isnan(v) else v)
                    for k, v in stats.items()
                }
                for kind, stats in self.per_kind.items()
            },
        }


class _CapacityGate:
    """Per-origin concurrency limiter with FIFO overflow queues."""

    def __init__(self, concurrency: Optional[int]) -> None:
        if concurrency is not None and concurrency < 1:
            raise ConfigurationError("concurrency_per_origin must be >= 1")
        self.concurrency = concurrency
        self._inflight: dict[Hashable, int] = {}
        self._queues: dict[Hashable, deque] = {}

    def submit(self, origin: Hashable, start: Callable[[], None]) -> None:
        if self.concurrency is None:
            start()
            return
        if self._inflight.get(origin, 0) < self.concurrency:
            self._inflight[origin] = self._inflight.get(origin, 0) + 1
            start()
        else:
            self._queues.setdefault(origin, deque()).append(start)

    def release(self, origin: Hashable) -> None:
        if self.concurrency is None:
            return
        queue = self._queues.get(origin)
        if queue:
            queue.popleft()()  # slot passes straight to the next waiter
        else:
            self._inflight[origin] -= 1

    @property
    def queued(self) -> int:
        return sum(len(q) for q in self._queues.values())


class _DriverBase:
    """Shared machinery: weighted op choice, lifecycle, metrics, report."""

    mode = "abstract"

    def __init__(
        self,
        sim: Simulation,
        ops: Sequence[OpSpec],
        *,
        duration_ms: float,
        timeout_ms: Optional[float],
        concurrency_per_origin: Optional[int],
        rng: SeedLike,
        registry: Optional[MetricRegistry] = None,
    ) -> None:
        if not ops:
            raise ConfigurationError("need at least one op in the mix")
        if duration_ms <= 0:
            raise ConfigurationError("duration must be positive")
        if timeout_ms is not None and timeout_ms <= 0:
            raise ConfigurationError("timeout must be positive")
        self.sim = sim
        self.ops = list(ops)
        self.duration_ms = float(duration_ms)
        self.timeout_ms = timeout_ms
        self._gate = _CapacityGate(concurrency_per_origin)
        self._rng = ensure_rng(rng)
        self._weights = np.cumsum([spec.weight for spec in self.ops])
        self.records: list[OpRecord] = []
        self._ops_ctr: Optional[Counter] = None
        self._latency_hist: Optional[Histogram] = None
        registry = registry if registry is not None else active_registry()
        if registry is not None:
            self.instrument(registry)

    def instrument(self, registry: MetricRegistry) -> None:
        """Record per-op counters and SLO latency histograms."""
        self._ops_ctr = registry.counter(
            "service_ops_total",
            "Service-level operations issued by the load drivers, by op "
            "kind and final status.",
            ("op", "status"),
        )
        self._latency_hist = registry.histogram(
            "service_op_latency_ms",
            "Arrival-to-completion latency of successful service "
            "operations (includes client queue wait), by op kind.",
            ("op",),
            buckets=SLO_LATENCY_BUCKETS_MS,
        )

    # -- op lifecycle --------------------------------------------------------
    def _choose(self) -> OpSpec:
        u = self._rng.uniform(0.0, float(self._weights[-1]))
        return self.ops[int(np.searchsorted(self._weights, u, side="right"))]

    def _launch(self) -> OpRecord:
        spec = self._choose()
        origin = spec.pick_origin(self._rng)
        record = OpRecord(kind=spec.name, arrived_at=self.sim.now)
        self.records.append(record)
        deadline: Optional[EventHandle] = None
        if self.timeout_ms is not None:
            deadline = self.sim.schedule(
                self.timeout_ms, self._on_timeout, record, origin
            )

        def start() -> None:
            if record.status != "pending":
                # timed out while queued: give the slot straight back
                self._gate.release(origin)
                return
            record.started_at = self.sim.now
            spec.issue(origin, done)

        def done(ok: bool) -> None:
            if record.status != "pending":
                return  # late completion after timeout/drain — ignored
            if deadline is not None:
                deadline.cancel()
            self._finalize(record, "ok" if ok else "fail")
            if not record._released:
                record._released = True
                self._gate.release(origin)

        self._gate.submit(origin, start)
        return record

    def _on_timeout(self, record: OpRecord, origin: Hashable) -> None:
        if record.status != "pending":
            return
        self._finalize(record, "timeout")
        if not record._released and not math.isnan(record.started_at):
            # the op held a slot: the client abandons it and frees the slot
            record._released = True
            self._gate.release(origin)
        elif math.isnan(record.started_at):
            # still queued: mark released so the queued start() is a no-op
            record._released = True

    def _finalize(self, record: OpRecord, status: str) -> None:
        record.status = status
        record.finished_at = self.sim.now
        if self._ops_ctr is not None:
            self._ops_ctr.inc(op=record.kind, status=status)
        if status == "ok" and self._latency_hist is not None:
            self._latency_hist.observe(record.latency_ms, op=record.kind)
        self._on_finalized(record)

    def _on_finalized(self, record: OpRecord) -> None:
        """Hook for subclasses (closed loop chains the next op here)."""

    def _sweep_unfinished(self) -> None:
        for record in self.records:
            if record.status == "pending":
                self._finalize(record, "unfinished")

    def _report(self, offered: int) -> LoadReport:
        by_status: dict[str, int] = {}
        for r in self.records:
            by_status[r.status] = by_status.get(r.status, 0) + 1
        oks = [r.latency_ms for r in self.records if r.ok]
        per_kind: dict[str, dict[str, float]] = {}
        for spec in self.ops:
            mine = [r for r in self.records if r.kind == spec.name]
            if not mine:
                continue
            stats = _latency_summary([r.latency_ms for r in mine if r.ok])
            stats["issued"] = len(mine)
            stats["succeeded"] = sum(1 for r in mine if r.ok)
            per_kind[spec.name] = stats
        issued = len(self.records)
        succeeded = by_status.get("ok", 0)
        return LoadReport(
            mode=self.mode,
            duration_ms=self.duration_ms,
            offered=offered,
            issued=issued,
            succeeded=succeeded,
            failed=by_status.get("fail", 0),
            timed_out=by_status.get("timeout", 0),
            unfinished=by_status.get("unfinished", 0),
            throughput_per_s=succeeded / (self.duration_ms / 1000.0),
            success_rate=succeeded / issued if issued else 0.0,
            latency_ms=_latency_summary(oks),
            per_kind=per_kind,
        )


class OpenLoopDriver(_DriverBase):
    """Issue operations at an arrival process's times, ignoring completions."""

    mode = "open"

    def __init__(
        self,
        sim: Simulation,
        ops: Sequence[OpSpec],
        arrivals: ArrivalProcess,
        *,
        duration_ms: float = 30_000.0,
        timeout_ms: Optional[float] = 30_000.0,
        concurrency_per_origin: Optional[int] = None,
        rng: SeedLike = None,
        registry: Optional[MetricRegistry] = None,
    ) -> None:
        super().__init__(
            sim,
            ops,
            duration_ms=duration_ms,
            timeout_ms=timeout_ms,
            concurrency_per_origin=concurrency_per_origin,
            rng=rng,
            registry=registry,
        )
        self.arrivals = arrivals

    def run(self, *, drain_ms: float = 30_000.0) -> LoadReport:
        """Schedule the whole arrival sequence, run the sim through the
        window plus ``drain_ms``, and report.  Operations still pending
        at the end count as ``unfinished`` (a saturated service shows up
        here, not as silently dropped samples)."""
        times = self.arrivals.times(self.duration_ms)
        self.sim.schedule_many((float(t), self._launch, ()) for t in times)
        self.sim.run(until=self.sim.now + self.duration_ms + drain_ms)
        self._sweep_unfinished()
        return self._report(offered=len(times))


class ClosedLoopDriver(_DriverBase):
    """``n_workers`` issue-wait-think loops (locust-style virtual users)."""

    mode = "closed"

    def __init__(
        self,
        sim: Simulation,
        ops: Sequence[OpSpec],
        *,
        n_workers: int = 8,
        think_time_ms: float = 0.0,
        duration_ms: float = 30_000.0,
        timeout_ms: float = 30_000.0,
        concurrency_per_origin: Optional[int] = None,
        rng: SeedLike = None,
        registry: Optional[MetricRegistry] = None,
    ) -> None:
        if n_workers < 1:
            raise ConfigurationError("need at least one worker")
        if think_time_ms < 0:
            raise ConfigurationError("think time must be non-negative")
        if timeout_ms is None:
            raise ConfigurationError(
                "closed-loop driving requires a timeout (a lost reply "
                "would halt the worker forever)"
            )
        super().__init__(
            sim,
            ops,
            duration_ms=duration_ms,
            timeout_ms=timeout_ms,
            concurrency_per_origin=concurrency_per_origin,
            rng=rng,
            registry=registry,
        )
        self.n_workers = n_workers
        self.think_time_ms = float(think_time_ms)
        self._t_end = 0.0

    def run(self, *, drain_ms: float = 30_000.0) -> LoadReport:
        self._t_end = self.sim.now + self.duration_ms
        # stagger worker starts so they do not phase-lock on an idle sim
        starts = np.sort(self._rng.uniform(0.0, 100.0, size=self.n_workers))
        self.sim.schedule_many(
            (float(t), self._worker_tick, ()) for t in starts
        )
        self.sim.run(until=self._t_end + drain_ms)
        self._sweep_unfinished()
        return self._report(offered=len(self.records))

    def _worker_tick(self) -> None:
        if self.sim.now >= self._t_end:
            return  # the worker retires at the end of the window
        self._launch()

    def _on_finalized(self, record: OpRecord) -> None:
        if record.status == "unfinished":
            return
        # floor of 1 ms so a chain of synchronously-completing ops (e.g.
        # local-storage hits) cannot spin the loop without advancing time
        self.sim.schedule(max(self.think_time_ms, 1.0), self._worker_tick)
