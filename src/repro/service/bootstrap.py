"""Asyncio bootstrapper: stand a node population up as a *service*.

Batch experiments construct an underlay, an overlay, and a workload in
one script and tear everything down at the end.  A deployed P2P service
is operated differently: a control plane stands the population up,
traffic is driven against it, percentiles are read off, more traffic is
driven, and eventually the service is drained and stopped.
:class:`Bootstrapper` is that control plane — an asyncio front end over
the synchronous simulator, so an operator (or a test harness, or a CI
job) can do::

    boot = Bootstrapper(ServiceConfig(overlay="kademlia", n_hosts=64))
    await boot.start()                       # build + bootstrap + settle
    report = await boot.drive(process="poisson", rate_per_s=40.0)
    print(report.latency_ms["p99"])
    await boot.drain()
    await boot.stop()

Simulator work (population build, load drives) runs in the event loop's
default executor, keeping the loop responsive for control traffic; a
lock serialises access to the single-threaded simulation.

:class:`ControlServer` exposes the same lifecycle over two TCP sockets
in the classic bootstrapper split (control + data planes, cf. the ESR
bootstrapper's 7777/7778 pair): newline-delimited JSON commands on the
*control* socket (``{"cmd": "start"}``, ``{"cmd": "drive", ...}``), and
a broadcast-only *data* socket streaming lifecycle events and
:class:`~repro.service.load.LoadReport` payloads to every subscriber.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.errors import ConfigurationError
from repro.overlay.gnutella.network import GnutellaNetwork
from repro.overlay.kademlia.network import KademliaNetwork
from repro.rng import ensure_rng
from repro.service.arrivals import make_arrivals
from repro.service.load import ClosedLoopDriver, LoadReport, OpenLoopDriver
from repro.service.ops import GnutellaServiceOps, KademliaServiceOps
from repro.sim.engine import Simulation
from repro.underlay.network import Underlay, UnderlayConfig
from repro.workloads.content import ContentCatalog

OVERLAYS = ("kademlia", "gnutella")


@dataclass(frozen=True)
class ServiceConfig:
    """Shape of the population the bootstrapper stands up."""

    overlay: str = "kademlia"
    n_hosts: int = 64
    seed: int = 7
    settle_ms: float = 30_000.0
    #: kademlia: keys published before traffic starts
    n_seed_keys: int = 16
    #: kademlia: fraction of store ops in the default mix
    store_fraction: float = 0.3
    #: gnutella: shared files per node
    files_per_host: int = 6
    ultrapeer_fraction: float = 1 / 3
    #: gnutella flood expansion path: "auto" switches to the
    #: frontier-batched kernel above the population threshold (mirrors
    #: ``delay_backend="auto"``); "batch"/"reference" force one side
    query_backend: str = "auto"
    #: gnutella: keep at most this many search records (None = unbounded;
    #: long-lived services should bound it so bookkeeping stays flat)
    search_retention: Optional[int] = None

    def __post_init__(self) -> None:
        if self.overlay not in OVERLAYS:
            raise ConfigurationError(
                f"unknown overlay {self.overlay!r} (want one of {OVERLAYS})"
            )
        if self.n_hosts < 4:
            raise ConfigurationError("service needs at least 4 hosts")
        if self.settle_ms <= 0:
            raise ConfigurationError("settle window must be positive")
        if self.query_backend not in ("auto", "batch", "reference"):
            raise ConfigurationError(
                f"query_backend must be 'auto', 'batch' or 'reference', "
                f"got {self.query_backend!r}"
            )


class Bootstrapper:
    """Async control plane over one simulated overlay population.

    States: ``new`` → :meth:`start` → ``ready`` → (:meth:`drive` |
    :meth:`drain`)* → :meth:`stop` → ``stopped``.  All methods are
    idempotence-checked; driving before starting raises.
    """

    def __init__(self, config: ServiceConfig | None = None) -> None:
        self.config = config or ServiceConfig()
        self.state = "new"
        self.sim: Optional[Simulation] = None
        self.underlay: Optional[Underlay] = None
        self.network: Any = None
        self.ops: Any = None
        self.reports: list[LoadReport] = []
        self._drives = 0
        self._lock = asyncio.Lock()

    # -- synchronous core (also usable without an event loop) ----------------
    def build(self) -> dict[str, Any]:
        """Construct underlay + overlay, bootstrap, settle, seed content."""
        if self.state != "new":
            raise ConfigurationError(f"cannot start from state {self.state!r}")
        cfg = self.config
        self.underlay = Underlay.generate(
            UnderlayConfig(n_hosts=cfg.n_hosts, seed=cfg.seed)
        )
        self.sim = Simulation()
        bus, _ = self.underlay.message_bus(self.sim, with_accounting=False)
        rng = ensure_rng(cfg.seed + 1)
        if cfg.overlay == "kademlia":
            net = KademliaNetwork(self.underlay, self.sim, bus, rng=rng)
            net.add_all_hosts()
            net.bootstrap_all()
            self.sim.run(until=self.sim.now + cfg.settle_ms)
            ops = KademliaServiceOps(net, rng=ensure_rng(cfg.seed + 2))
            ops.seed_content(cfg.n_seed_keys, settle_ms=cfg.settle_ms)
        else:
            net = GnutellaNetwork(
                self.underlay, self.sim, bus, rng=rng,
                query_backend=cfg.query_backend,
                search_retention=cfg.search_retention,
            )
            net.add_population(
                self.underlay.hosts, ultrapeer_fraction=cfg.ultrapeer_fraction
            )
            net.bootstrap()
            net.join_all()
            self.sim.run(until=self.sim.now + cfg.settle_ms)
            catalog = ContentCatalog(rng=ensure_rng(cfg.seed + 3))
            ops = GnutellaServiceOps(net, catalog, rng=ensure_rng(cfg.seed + 2))
            ops.seed_content(files_per_host=cfg.files_per_host)
        self.network = net
        self.ops = ops
        self.state = "ready"
        return self.stats()

    def default_mix(self):
        if isinstance(self.ops, KademliaServiceOps):
            return self.ops.mix(store_fraction=self.config.store_fraction)
        return self.ops.mix()

    def drive_sync(
        self,
        *,
        mode: str = "open",
        process: str = "poisson",
        rate_per_s: float = 20.0,
        duration_ms: float = 20_000.0,
        drain_ms: float = 20_000.0,
        timeout_ms: float = 30_000.0,
        concurrency_per_origin: Optional[int] = None,
        n_workers: int = 8,
        think_time_ms: float = 0.0,
        **process_kwargs: Any,
    ) -> LoadReport:
        """One load drive against the running population (blocking)."""
        if self.state != "ready":
            raise ConfigurationError(f"cannot drive in state {self.state!r}")
        self._drives += 1
        drive_seed = self.config.seed + 1000 * self._drives
        if mode == "open":
            driver = OpenLoopDriver(
                self.sim,
                self.default_mix(),
                make_arrivals(
                    process, rate_per_s, rng=drive_seed, **process_kwargs
                ),
                duration_ms=duration_ms,
                timeout_ms=timeout_ms,
                concurrency_per_origin=concurrency_per_origin,
                rng=drive_seed + 1,
            )
        elif mode == "closed":
            driver = ClosedLoopDriver(
                self.sim,
                self.default_mix(),
                n_workers=n_workers,
                think_time_ms=think_time_ms,
                duration_ms=duration_ms,
                timeout_ms=timeout_ms,
                concurrency_per_origin=concurrency_per_origin,
                rng=drive_seed + 1,
            )
        else:
            raise ConfigurationError(
                f"unknown drive mode {mode!r} (want 'open' or 'closed')"
            )
        report = driver.run(drain_ms=drain_ms)
        self.reports.append(report)
        return report

    def drain_sync(self, *, drain_ms: float = 60_000.0) -> dict[str, Any]:
        """Run the sim forward so in-flight work completes (bounded)."""
        if self.state != "ready":
            raise ConfigurationError(f"cannot drain in state {self.state!r}")
        before = self.sim.pending()
        self.sim.run(until=self.sim.now + drain_ms)
        return {"pending_before": before, "pending_after": self.sim.pending()}

    def stats(self) -> dict[str, Any]:
        """Control-plane view of the service (JSON-safe)."""
        out: dict[str, Any] = {
            "state": self.state,
            "overlay": self.config.overlay,
            "n_hosts": self.config.n_hosts,
            "drives": self._drives,
        }
        if self.sim is not None:
            out["sim_now_ms"] = self.sim.now
            out["events_processed"] = self.sim.events_processed
            out["pending_events"] = self.sim.pending()
        if self.reports:
            out["last_report"] = self.reports[-1].as_dict()
        return out

    def stop_sync(self) -> dict[str, Any]:
        if self.state == "stopped":
            return self.stats()
        if self.network is not None:
            stop = getattr(self.network, "stop_maintenance", None)
            if stop is None:
                stop = getattr(self.network, "stop_auto_maintenance", None)
            if stop is not None:
                stop()
        self.state = "stopped"
        return self.stats()

    # -- asyncio façade ------------------------------------------------------
    async def _in_executor(self, fn, *args, **kwargs):
        loop = asyncio.get_running_loop()
        async with self._lock:  # one simulator, one driver at a time
            return await loop.run_in_executor(None, lambda: fn(*args, **kwargs))

    async def start(self) -> dict[str, Any]:
        return await self._in_executor(self.build)

    async def drive(self, **spec: Any) -> LoadReport:
        return await self._in_executor(lambda: self.drive_sync(**spec))

    async def drain(self, *, drain_ms: float = 60_000.0) -> dict[str, Any]:
        return await self._in_executor(
            lambda: self.drain_sync(drain_ms=drain_ms)
        )

    async def stop(self) -> dict[str, Any]:
        return await self._in_executor(self.stop_sync)


class ControlServer:
    """Control/data TCP front end for a :class:`Bootstrapper`.

    Control socket: one JSON object per line in, one per line out —
    ``{"cmd": "ping" | "start" | "drive" | "drain" | "stats" | "stop"}``
    (extra keys are forwarded as keyword arguments, e.g. ``{"cmd":
    "drive", "process": "pareto", "rate_per_s": 50}``).  Replies are
    ``{"ok": true, "result": ...}`` or ``{"ok": false, "error": ...}``.

    Data socket: subscribers receive every lifecycle event as a JSON
    line (``{"event": "ready" | "report" | "stopped", ...}``) — the
    streaming side of the control/data split, so dashboards tail
    percentiles without polling the control plane.
    """

    def __init__(
        self,
        bootstrapper: Bootstrapper,
        *,
        host: str = "127.0.0.1",
        control_port: int = 0,
        data_port: int = 0,
    ) -> None:
        self.bootstrapper = bootstrapper
        self.host = host
        self._want_ports = (control_port, data_port)
        self._control_server: Optional[asyncio.AbstractServer] = None
        self._data_server: Optional[asyncio.AbstractServer] = None
        self._subscribers: set[asyncio.Queue] = set()

    async def start(self) -> None:
        control_port, data_port = self._want_ports
        self._control_server = await asyncio.start_server(
            self._handle_control, self.host, control_port
        )
        self._data_server = await asyncio.start_server(
            self._handle_data, self.host, data_port
        )

    @property
    def control_address(self) -> tuple[str, int]:
        sock = self._control_server.sockets[0]
        return sock.getsockname()[:2]

    @property
    def data_address(self) -> tuple[str, int]:
        sock = self._data_server.sockets[0]
        return sock.getsockname()[:2]

    async def stop(self) -> None:
        for server in (self._control_server, self._data_server):
            if server is not None:
                server.close()
                await server.wait_closed()
        for queue in list(self._subscribers):
            queue.put_nowait(None)  # unblock data handlers so they exit

    # -- data plane ----------------------------------------------------------
    def publish(self, event: dict[str, Any]) -> None:
        for queue in list(self._subscribers):
            queue.put_nowait(event)

    async def _handle_data(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        queue: asyncio.Queue = asyncio.Queue()
        self._subscribers.add(queue)
        try:
            while True:
                event = await queue.get()
                if event is None:
                    break
                writer.write((json.dumps(event) + "\n").encode())
                await writer.drain()
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            self._subscribers.discard(queue)
            writer.close()

    # -- control plane -------------------------------------------------------
    async def _dispatch(self, cmd: str, kwargs: dict[str, Any]) -> Any:
        boot = self.bootstrapper
        if cmd == "ping":
            return "pong"
        if cmd == "start":
            result = await boot.start()
            self.publish({"event": "ready", "stats": result})
            return result
        if cmd == "drive":
            report = await boot.drive(**kwargs)
            payload = report.as_dict()
            self.publish({"event": "report", "report": payload})
            return payload
        if cmd == "drain":
            return await boot.drain(**kwargs)
        if cmd == "stats":
            return boot.stats()
        if cmd == "stop":
            result = await boot.stop()
            self.publish({"event": "stopped", "stats": result})
            return result
        raise ConfigurationError(f"unknown command {cmd!r}")

    async def _handle_control(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                try:
                    request = json.loads(line)
                    cmd = request.pop("cmd")
                    result = await self._dispatch(cmd, request)
                    reply = {"ok": True, "result": result}
                except asyncio.CancelledError:
                    raise
                except Exception as exc:  # noqa: BLE001 — wire boundary
                    reply = {"ok": False, "error": str(exc)}
                writer.write((json.dumps(reply) + "\n").encode())
                await writer.drain()
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            writer.close()
