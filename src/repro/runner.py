"""Deterministic fan-out executor for multi-arm experiment sweeps.

Every multi-arm experiment in the reproduction — seed-robustness sweeps,
ablation grids, the RESILIENCE loss/partition/crash matrix — is a map of
a pure function over a list of *arms* (seeds, configs, fault scenarios).
:func:`run_arms` executes that map either serially in-process or across
a ``multiprocessing`` worker pool, with a hard determinism contract:

**The rows are bit-identical either way.**  Arm functions are pure
(deterministic given their arm), workers receive arms unchanged, and the
parent reassembles results in arm order, so ``run_arms(fn, arms,
workers=8)`` returns exactly ``[fn(a) for a in arms]``.

Worker model
------------
Workers are forked processes (``fork`` start method): the arm function
and its closure — including already-built underlays and the in-memory
tier of the process-default :class:`~repro.underlay.cache.SubstrateCache`
— are inherited by reference at fork time, **not pickled**, so lambdas
and closures over shared substrate work unchanged.  Only arm indices
travel to workers (dynamic load balancing via a task queue) and only
``(index, result, counters, wall_s)`` tuples travel back.  When the
default substrate cache has a disk tier, cold workers share generated
matrices through it, so each unique ``(UnderlayConfig, seed)`` is built
once per machine rather than once per worker (the ``.npz`` writes are
atomic, so racing workers are safe).

Observability
-------------
Each worker runs every arm inside its own ``obs.observe()`` scope and
ships a counter snapshot home; the parent merges worker counters into
its own active registry (if any) and records ``runner_arms_total``,
``runner_workers``, and the per-arm wall-time histogram
``runner_arm_seconds``.  Traces are per-process and are *not* shipped:
a traced sweep is only meaningfully digestable when run serially, where
arms execute in the ambient scope exactly like a plain ``for`` loop
(identical trace digest to the pre-runner code).

Serial fallback
---------------
``workers=1``, ``REPRO_RUNNER_SERIAL=1``, a daemonic parent process
(e.g. inside another pool), or a platform without ``fork`` all fall back
to the serial path automatically.

    from repro.runner import run_arms

    rows = run_arms(lambda seed: run_fig6(seed=seed), [3, 17, 29, 41],
                    workers=4)
"""

from __future__ import annotations

import multiprocessing
import os
import queue
import traceback
from time import perf_counter
from typing import Any, Callable, Optional, Sequence, TypeVar

from repro import obs
from repro.errors import RunnerError
from repro.obs.registry import MetricRegistry

__all__ = [
    "configure_default_workers",
    "default_workers",
    "resolve_workers",
    "run_arms",
]

A = TypeVar("A")
R = TypeVar("R")

#: Force the serial path regardless of any ``workers`` setting (CI
#: environments hostile to nested multiprocessing, pytest-xdist, etc.).
ENV_SERIAL = "REPRO_RUNNER_SERIAL"
#: Default worker count when neither the call nor
#: :func:`configure_default_workers` specifies one.
ENV_WORKERS = "REPRO_RUNNER_WORKERS"

#: Buckets for the per-arm wall-time histogram: experiment arms span
#: ~10 ms smoke cells to minutes-long full sweeps.
_ARM_SECONDS_BUCKETS = (
    0.01, 0.03, 0.1, 0.3, 1.0, 3.0, 10.0, 30.0, 100.0, 300.0,
)

_DEFAULT_WORKERS: Optional[int] = None

#: Worker counter snapshot: ``(name, help, labelnames, cells)`` per
#: Counter, with cells as ``(label_values, value)`` pairs — plain tuples
#: so nothing but stdlib types crosses the process boundary.
_CounterSnapshot = list


def configure_default_workers(workers: Optional[int]) -> None:
    """Set (or with ``None`` clear) the process-wide default worker
    count used by :func:`run_arms` calls that do not pass ``workers`` —
    the hook behind the CLI's ``--workers`` flag and the benchmark
    suite's option."""
    global _DEFAULT_WORKERS
    if workers is not None and workers < 1:
        raise RunnerError(f"worker count must be >= 1, got {workers}")
    _DEFAULT_WORKERS = workers


def default_workers() -> Optional[int]:
    """The configured process-wide default worker count, or ``None``."""
    return _DEFAULT_WORKERS


def resolve_workers(workers: Optional[int] = None) -> int:
    """The worker count :func:`run_arms` will actually use.

    Precedence: ``REPRO_RUNNER_SERIAL=1`` forces ``1``; then the
    explicit argument; then :func:`configure_default_workers`; then
    ``REPRO_RUNNER_WORKERS``; else ``1`` (serial).  Environments where
    forked workers cannot run (no ``fork`` start method, daemonic
    parent) also resolve to ``1``.
    """
    if os.environ.get(ENV_SERIAL, "").strip() in ("1", "true", "yes"):
        return 1
    if workers is None:
        workers = _DEFAULT_WORKERS
    if workers is None:
        raw = os.environ.get(ENV_WORKERS, "").strip()
        if raw:
            try:
                workers = int(raw)
            except ValueError:
                raise RunnerError(f"{ENV_WORKERS}={raw!r} is not an integer")
    if workers is None or workers <= 1:
        return 1
    if "fork" not in multiprocessing.get_all_start_methods():
        return 1
    if multiprocessing.current_process().daemon:
        return 1
    return workers


def _counter_snapshot(registry: MetricRegistry) -> _CounterSnapshot:
    """Extract every Counter's cells as plain tuples (pickle-friendly)."""
    from repro.obs.registry import Counter

    out: _CounterSnapshot = []
    for metric in registry:
        if isinstance(metric, Counter):
            out.append(
                (
                    metric.name,
                    metric.help,
                    metric.labelnames,
                    tuple(metric.cells().items()),
                )
            )
    return out


def _merge_counters(registry: MetricRegistry, snapshot: _CounterSnapshot) -> None:
    """Fold one worker's counter snapshot into ``registry`` (cell-wise
    add — counter merge is associative and commutative, so worker
    arrival order does not matter)."""
    for name, help_, labelnames, cells in snapshot:
        counter = registry.counter(name, help_, labelnames)
        for key, value in cells:
            counter.inc(value, **dict(zip(labelnames, key)))


def _worker_main(
    fn: Callable[[Any], Any],
    arms: Sequence[Any],
    task_queue: Any,
    result_queue: Any,
) -> None:
    """Worker loop: pull arm indices until the ``None`` sentinel, run
    each arm in an isolated observation scope, ship the result home."""
    while True:
        idx = task_queue.get()
        if idx is None:
            return
        t0 = perf_counter()
        try:
            with obs.observe() as session:
                value = fn(arms[idx])
            payload = (
                idx,
                True,
                value,
                _counter_snapshot(session.registry),
                perf_counter() - t0,
            )
        except BaseException as exc:  # ship the failure, do not hang the parent
            detail = f"{type(exc).__name__}: {exc}\n{traceback.format_exc()}"
            payload = (idx, False, detail, None, perf_counter() - t0)
        try:
            result_queue.put(payload)
        except Exception as exc:  # unpicklable result
            result_queue.put(
                (
                    idx,
                    False,
                    f"arm result for index {idx} could not be pickled: {exc!r}",
                    None,
                    perf_counter() - t0,
                )
            )


def _record_parent_metrics(
    n_arms: int, workers: int, wall_times: Sequence[float]
) -> None:
    registry = obs.active_registry()
    if registry is None:
        return
    registry.counter(
        "runner_arms_total", "Sweep arms executed by repro.runner.", ("mode",)
    ).inc(n_arms, mode="serial" if workers == 1 else "parallel")
    registry.gauge(
        "runner_workers", "Worker count of the most recent run_arms call."
    ).set(workers)
    hist = registry.histogram(
        "runner_arm_seconds",
        "Wall-clock seconds per sweep arm.",
        buckets=_ARM_SECONDS_BUCKETS,
    )
    for wall in wall_times:
        hist.observe(wall)


def _run_serial(fn: Callable[[A], R], arms: Sequence[A]) -> list[R]:
    """In-process path: arms run in the ambient obs scope, in order —
    behaviourally identical to the plain ``for`` loop it replaces (same
    trace digest when traced)."""
    results: list[R] = []
    wall_times: list[float] = []
    for arm in arms:
        t0 = perf_counter()
        results.append(fn(arm))
        wall_times.append(perf_counter() - t0)
    _record_parent_metrics(len(arms), 1, wall_times)
    return results


def _run_parallel(
    fn: Callable[[A], R], arms: Sequence[A], workers: int
) -> list[R]:
    ctx = multiprocessing.get_context("fork")
    task_queue = ctx.SimpleQueue()
    result_queue = ctx.Queue()
    procs = [
        ctx.Process(
            target=_worker_main,
            args=(fn, arms, task_queue, result_queue),
            daemon=True,
        )
        for _ in range(workers)
    ]
    for p in procs:
        p.start()
    # dynamic load balancing: workers pull the next arm when free
    for idx in range(len(arms)):
        task_queue.put(idx)
    for _ in procs:
        task_queue.put(None)

    parent_registry = obs.active_registry()
    results: dict[int, R] = {}
    wall_times: list[float] = [0.0] * len(arms)
    failure: Optional[str] = None
    try:
        while len(results) < len(arms):
            try:
                idx, ok, value, counters, wall = result_queue.get(timeout=1.0)
            except queue.Empty:  # is the pool still alive?
                if all(not p.is_alive() for p in procs) and result_queue.empty():
                    failure = "worker pool died without reporting results"
                    break
                continue
            wall_times[idx] = wall
            if not ok:
                failure = f"arm {idx} ({arms[idx]!r}) failed in worker:\n{value}"
                break
            if counters is not None and parent_registry is not None:
                _merge_counters(parent_registry, counters)
            results[idx] = value
    finally:
        for p in procs:
            if p.is_alive():
                p.terminate()
        for p in procs:
            p.join()
        result_queue.close()
        result_queue.cancel_join_thread()
    if failure is not None:
        raise RunnerError(failure)
    _record_parent_metrics(len(arms), workers, wall_times)
    return [results[i] for i in range(len(arms))]


def run_arms(
    fn: Callable[[A], R],
    arms: Sequence[A],
    *,
    workers: Optional[int] = None,
) -> list[R]:
    """Map ``fn`` over ``arms`` and return the results **in arm order**.

    ``fn`` must be deterministic given its arm (every experiment arm in
    this repo is); under that contract the output is bit-identical to
    ``[fn(a) for a in arms]`` at any worker count.  ``workers`` follows
    :func:`resolve_workers`; the parallel path forks, so ``fn`` may be a
    lambda or a closure over shared read-only state (an ``Underlay``, a
    warm substrate cache) without any pickling of the function itself.
    """
    arms = list(arms)
    if not arms:
        return []
    n_workers = resolve_workers(workers)
    if n_workers <= 1 or len(arms) == 1:
        return _run_serial(fn, arms)
    return _run_parallel(fn, arms, min(n_workers, len(arms)))
