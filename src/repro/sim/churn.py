"""Churn models: peer session and inter-session time processes.

The survey repeatedly flags robustness against churn as the open evaluation
question for underlay-aware overlays (§5.4).  This module provides the
standard session-length distributions used in the P2P measurement
literature — exponential, Pareto (heavy-tailed), and Weibull — plus a
:class:`ChurnProcess` that drives join/leave callbacks on the event engine.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Hashable, Iterable, Optional

import numpy as np

from repro.core.peerstate import PeerState
from repro.errors import ConfigurationError
from repro.rng import SeedLike, ensure_rng
from repro.sim.engine import EventHandle, Simulation
from repro.sim.shard import ShardedScheduler, sharded_scheduling_enabled


@dataclass(frozen=True)
class ChurnConfig:
    """Distributional parameters of the churn process.

    ``session_dist`` / ``offline_dist`` select the family for online and
    offline period lengths: ``"exponential"`` (rate = 1/mean),
    ``"pareto"`` (shape fixed at 2.0, scaled to the requested mean), or
    ``"weibull"`` (shape 0.59, the Steiner et al. KAD fit, scaled to mean).
    """

    mean_session: float = 3600.0
    mean_offline: float = 1800.0
    session_dist: str = "exponential"
    offline_dist: str = "exponential"

    _FAMILIES = ("exponential", "pareto", "weibull")

    def __post_init__(self) -> None:
        if self.mean_session <= 0 or self.mean_offline <= 0:
            raise ConfigurationError("churn means must be positive")
        for dist in (self.session_dist, self.offline_dist):
            if dist not in self._FAMILIES:
                raise ConfigurationError(
                    f"unknown distribution {dist!r}; expected one of {self._FAMILIES}"
                )


def draw_duration(rng: np.random.Generator, family: str, mean: float) -> float:
    """Draw one duration from the named family with the requested mean."""
    if family == "exponential":
        return float(rng.exponential(mean))
    if family == "pareto":
        # Lomax/Pareto-II with shape a=2 has mean scale/(a-1) = scale.
        shape = 2.0
        scale = mean * (shape - 1.0)
        return float(scale * rng.pareto(shape))
    if family == "weibull":
        # Weibull with shape k has mean scale * Gamma(1 + 1/k).
        from math import gamma

        k = 0.59
        scale = mean / gamma(1.0 + 1.0 / k)
        return float(scale * rng.weibull(k))
    raise ConfigurationError(f"unknown distribution family {family!r}")


class ChurnProcess:
    """Drives alternating online/offline periods for a set of peers.

    ``on_join(peer)`` / ``on_leave(peer)`` are invoked on the simulation
    clock.  Peers all start offline; :meth:`start` schedules their first
    join within ``warmup`` using a uniform stagger so the network does not
    flash-crowd at t=0.

    Liveness is tracked in a struct-of-arrays status column
    (:class:`~repro.core.peerstate.PeerState`): pass ``peerstate=`` to
    share the overlay's instance (peers not yet admitted are admitted,
    with ``region_of(peer)`` as their shard region when given), or leave
    it ``None`` to use a private one.  ``reference=True`` selects the
    retained object-based path (a Python set), kept only so the
    equivalence tests can pin the column semantics to the seed
    behaviour.
    """

    def __init__(
        self,
        sim: Simulation,
        peers: Iterable[Hashable],
        config: ChurnConfig,
        on_join: Callable[[Hashable], None],
        on_leave: Callable[[Hashable], None],
        *,
        rng: SeedLike = None,
        peerstate: Optional[PeerState] = None,
        region_of: Optional[Callable[[Hashable], int]] = None,
        reference: bool = False,
    ) -> None:
        self._sim = sim
        self._peers = list(peers)
        self._config = config
        self._on_join = on_join
        self._on_leave = on_leave
        self._rng = ensure_rng(rng)
        self._region_of = region_of
        if reference:
            self._state: Optional[PeerState] = None
            self._online: set[Hashable] = set()
        else:
            self._state = peerstate if peerstate is not None else PeerState(
                initial_capacity=max(64, len(self._peers))
            )
            for peer in self._peers:
                if peer not in self._state:
                    self._state.admit(
                        peer, region=region_of(peer) if region_of else 0
                    )
        self._stopped = False
        #: each peer has at most one scheduled transition; retaining the
        #: handle lets stop()/crash() cancel it instead of leaking dead
        #: events into the heap for the rest of the simulation
        self._handles: dict[Hashable, EventHandle] = {}
        self.joins = 0
        self.leaves = 0
        self.crashes = 0

    # -- liveness column accessors ---------------------------------------------
    def _is_online(self, peer: Hashable) -> bool:
        if self._state is None:
            return peer in self._online
        return peer in self._state and self._state.is_online(peer)

    def _mark_online(self, peer: Hashable) -> None:
        if self._state is None:
            self._online.add(peer)
        else:
            self._state.set_online(peer)

    def _mark_offline(self, peer: Hashable, *, crashed: bool = False) -> None:
        if self._state is None:
            self._online.discard(peer)
        elif crashed:
            self._state.set_crashed(peer)
        else:
            self._state.set_offline(peer)

    @property
    def online(self) -> frozenset:
        if self._state is None:
            return frozenset(self._online)
        return frozenset(p for p in self._peers if self._is_online(p))

    @property
    def peerstate(self) -> Optional[PeerState]:
        """The liveness column store (None on the reference path)."""
        return self._state

    def start(self, warmup: float = 60.0, *, sharded: Optional[bool] = None) -> None:
        """Schedule every peer's first join within ``warmup``.

        ``sharded`` (default: the process-wide setting) groups the
        staggered joins by the peer's region and batch-inserts them with
        one ``schedule_many`` — bit-identical to the serial path."""
        if warmup < 0:
            raise ConfigurationError("warmup must be non-negative")
        if sharded is None:
            sharded = sharded_scheduling_enabled()
        scheduler = (
            ShardedScheduler(self._sim)
            if sharded and len(self._peers) > 1
            else None
        )
        for peer in self._peers:
            stagger = float(self._rng.uniform(0.0, warmup)) if warmup > 0 else 0.0
            if scheduler is not None:
                shard = (
                    self._state.region_of(peer)
                    if self._state is not None and peer in self._state
                    else 0
                )
                scheduler.defer(shard, stagger, self._join, peer)
            else:
                self._handles[peer] = self._sim.schedule(stagger, self._join, peer)
        if scheduler is not None:
            for peer, handle in zip(self._peers, scheduler.flush()):
                self._handles[peer] = handle

    def stop(self) -> None:
        """Freeze the process: no further joins/leaves are generated and
        every pending transition is cancelled (the heap drains)."""
        self._stopped = True
        for handle in self._handles.values():
            handle.cancel()
        self._handles.clear()

    def crash(self, peer: Hashable) -> None:
        """Instant failure of ``peer``: its pending transition is cancelled
        and it is marked offline *without* invoking ``on_leave`` — a crash
        is not a polite departure.  The peer stays dead until
        :meth:`revive` reintroduces it."""
        handle = self._handles.pop(peer, None)
        if handle is not None:
            handle.cancel()
        if self._is_online(peer):
            self._mark_offline(peer, crashed=True)
            self.crashes += 1

    def revive(self, peer: Hashable, delay: float = 0.0) -> None:
        """Schedule a crashed (or never-started) peer's next join after
        ``delay``; a no-op for a peer that is online or already scheduled.

        Safe across slot recycling: a peer that was evicted from a shared
        :class:`PeerState` and re-admitted lands in a freshly cleared
        slot (never its predecessor's stale row), so the online check
        here cannot be fooled by a recycled slot's old status."""
        if self._stopped or self._is_online(peer) or peer in self._handles:
            return
        if self._state is not None and peer not in self._state:
            # the peer was evicted from a shared PeerState while dead;
            # re-admit it so the liveness column has a (clean) row again
            self._state.admit(
                peer, region=self._region_of(peer) if self._region_of else 0
            )
        self._handles[peer] = self._sim.schedule(delay, self._join, peer)

    def _join(self, peer: Hashable) -> None:
        self._handles.pop(peer, None)
        if self._stopped or self._is_online(peer):
            return
        self._mark_online(peer)
        self.joins += 1
        self._on_join(peer)
        session = draw_duration(
            self._rng, self._config.session_dist, self._config.mean_session
        )
        self._handles[peer] = self._sim.schedule(session, self._leave, peer)

    def _leave(self, peer: Hashable) -> None:
        self._handles.pop(peer, None)
        if self._stopped or not self._is_online(peer):
            return
        self._mark_offline(peer)
        self.leaves += 1
        self._on_leave(peer)
        offline = draw_duration(
            self._rng, self._config.offline_dist, self._config.mean_offline
        )
        self._handles[peer] = self._sim.schedule(offline, self._join, peer)
