"""Churn models: peer session and inter-session time processes.

The survey repeatedly flags robustness against churn as the open evaluation
question for underlay-aware overlays (§5.4).  This module provides the
standard session-length distributions used in the P2P measurement
literature — exponential, Pareto (heavy-tailed), and Weibull — plus a
:class:`ChurnProcess` that drives join/leave callbacks on the event engine.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Hashable, Iterable, Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.rng import SeedLike, ensure_rng
from repro.sim.engine import EventHandle, Simulation


@dataclass(frozen=True)
class ChurnConfig:
    """Distributional parameters of the churn process.

    ``session_dist`` / ``offline_dist`` select the family for online and
    offline period lengths: ``"exponential"`` (rate = 1/mean),
    ``"pareto"`` (shape fixed at 2.0, scaled to the requested mean), or
    ``"weibull"`` (shape 0.59, the Steiner et al. KAD fit, scaled to mean).
    """

    mean_session: float = 3600.0
    mean_offline: float = 1800.0
    session_dist: str = "exponential"
    offline_dist: str = "exponential"

    _FAMILIES = ("exponential", "pareto", "weibull")

    def __post_init__(self) -> None:
        if self.mean_session <= 0 or self.mean_offline <= 0:
            raise ConfigurationError("churn means must be positive")
        for dist in (self.session_dist, self.offline_dist):
            if dist not in self._FAMILIES:
                raise ConfigurationError(
                    f"unknown distribution {dist!r}; expected one of {self._FAMILIES}"
                )


def draw_duration(rng: np.random.Generator, family: str, mean: float) -> float:
    """Draw one duration from the named family with the requested mean."""
    if family == "exponential":
        return float(rng.exponential(mean))
    if family == "pareto":
        # Lomax/Pareto-II with shape a=2 has mean scale/(a-1) = scale.
        shape = 2.0
        scale = mean * (shape - 1.0)
        return float(scale * rng.pareto(shape))
    if family == "weibull":
        # Weibull with shape k has mean scale * Gamma(1 + 1/k).
        from math import gamma

        k = 0.59
        scale = mean / gamma(1.0 + 1.0 / k)
        return float(scale * rng.weibull(k))
    raise ConfigurationError(f"unknown distribution family {family!r}")


class ChurnProcess:
    """Drives alternating online/offline periods for a set of peers.

    ``on_join(peer)`` / ``on_leave(peer)`` are invoked on the simulation
    clock.  Peers all start offline; :meth:`start` schedules their first
    join within ``warmup`` using a uniform stagger so the network does not
    flash-crowd at t=0.
    """

    def __init__(
        self,
        sim: Simulation,
        peers: Iterable[Hashable],
        config: ChurnConfig,
        on_join: Callable[[Hashable], None],
        on_leave: Callable[[Hashable], None],
        *,
        rng: SeedLike = None,
    ) -> None:
        self._sim = sim
        self._peers = list(peers)
        self._config = config
        self._on_join = on_join
        self._on_leave = on_leave
        self._rng = ensure_rng(rng)
        self._online: set[Hashable] = set()
        self._stopped = False
        #: each peer has at most one scheduled transition; retaining the
        #: handle lets stop()/crash() cancel it instead of leaking dead
        #: events into the heap for the rest of the simulation
        self._handles: dict[Hashable, EventHandle] = {}
        self.joins = 0
        self.leaves = 0
        self.crashes = 0

    @property
    def online(self) -> frozenset:
        return frozenset(self._online)

    def start(self, warmup: float = 60.0) -> None:
        if warmup < 0:
            raise ConfigurationError("warmup must be non-negative")
        for peer in self._peers:
            stagger = float(self._rng.uniform(0.0, warmup)) if warmup > 0 else 0.0
            self._handles[peer] = self._sim.schedule(stagger, self._join, peer)

    def stop(self) -> None:
        """Freeze the process: no further joins/leaves are generated and
        every pending transition is cancelled (the heap drains)."""
        self._stopped = True
        for handle in self._handles.values():
            handle.cancel()
        self._handles.clear()

    def crash(self, peer: Hashable) -> None:
        """Instant failure of ``peer``: its pending transition is cancelled
        and it is marked offline *without* invoking ``on_leave`` — a crash
        is not a polite departure.  The peer stays dead until
        :meth:`revive` reintroduces it."""
        handle = self._handles.pop(peer, None)
        if handle is not None:
            handle.cancel()
        if peer in self._online:
            self._online.discard(peer)
            self.crashes += 1

    def revive(self, peer: Hashable, delay: float = 0.0) -> None:
        """Schedule a crashed (or never-started) peer's next join after
        ``delay``; a no-op for a peer that is online or already scheduled."""
        if self._stopped or peer in self._online or peer in self._handles:
            return
        self._handles[peer] = self._sim.schedule(delay, self._join, peer)

    def _join(self, peer: Hashable) -> None:
        self._handles.pop(peer, None)
        if self._stopped or peer in self._online:
            return
        self._online.add(peer)
        self.joins += 1
        self._on_join(peer)
        session = draw_duration(
            self._rng, self._config.session_dist, self._config.mean_session
        )
        self._handles[peer] = self._sim.schedule(session, self._leave, peer)

    def _leave(self, peer: Hashable) -> None:
        self._handles.pop(peer, None)
        if self._stopped or peer not in self._online:
            return
        self._online.discard(peer)
        self.leaves += 1
        self._on_leave(peer)
        offline = draw_duration(
            self._rng, self._config.offline_dist, self._config.mean_offline
        )
        self._handles[peer] = self._sim.schedule(offline, self._join, peer)
