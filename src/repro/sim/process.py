"""Periodic and one-shot process helpers on top of the event engine.

Protocol implementations need recurring maintenance loops (Gnutella pings,
Kademlia bucket refreshes, Vivaldi sampling).  :class:`PeriodicProcess`
wraps the schedule/re-schedule dance, supports jitter so that thousands of
peers do not fire in lock-step, and can be stopped idempotently.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from repro.rng import SeedLike, ensure_rng
from repro.sim.engine import EventHandle, Simulation


class PeriodicProcess:
    """Repeatedly invoke ``callback()`` every ``period`` time units.

    Parameters
    ----------
    sim:
        The event engine to schedule on.
    period:
        Nominal interval between invocations.
    callback:
        Zero-argument callable invoked at each tick.
    jitter:
        Fraction of the period used as uniform jitter (0 disables).  Each
        tick fires at ``period * (1 + U(-jitter, +jitter))``.
    initial_delay:
        Delay before the first tick; defaults to one (jittered) period.
    rng:
        Seed or generator for the jitter draws.
    """

    def __init__(
        self,
        sim: Simulation,
        period: float,
        callback: Callable[[], None],
        *,
        jitter: float = 0.0,
        initial_delay: Optional[float] = None,
        rng: SeedLike = None,
    ) -> None:
        if period <= 0:
            raise ValueError(f"period must be positive, got {period}")
        if not 0.0 <= jitter < 1.0:
            raise ValueError(f"jitter must be in [0, 1), got {jitter}")
        self._sim = sim
        self._period = float(period)
        self._callback = callback
        self._jitter = float(jitter)
        self._rng = ensure_rng(rng)
        self._handle: Optional[EventHandle] = None
        self._stopped = False
        self.ticks = 0
        first = self._draw_interval() if initial_delay is None else float(initial_delay)
        self._handle = sim.schedule(first, self._tick)

    def _draw_interval(self) -> float:
        if self._jitter == 0.0:
            return self._period
        factor = 1.0 + self._rng.uniform(-self._jitter, self._jitter)
        return self._period * factor

    def _tick(self) -> None:
        if self._stopped:
            return
        self.ticks += 1
        self._callback()
        if not self._stopped:
            self._handle = self._sim.schedule(self._draw_interval(), self._tick)

    @property
    def stopped(self) -> bool:
        return self._stopped

    def stop(self) -> None:
        """Stop the process.  Safe to call multiple times."""
        self._stopped = True
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None


def call_after(
    sim: Simulation, delay: float, callback: Callable[[], None]
) -> EventHandle:
    """One-shot convenience wrapper around :meth:`Simulation.schedule`."""
    return sim.schedule(delay, callback)
