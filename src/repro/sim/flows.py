"""Flow-level bandwidth sharing: max-min fair rates over a capacity graph.

The data plane of a swarm at scale is not per-packet or per-piece message
exchange but a set of concurrent *flows* (active transfers) sharing link
capacities.  This module models exactly that:

- a **link table** of capacitated resources (per-host access up/down
  links, optionally per-AS transit trunks);
- **flows**, each crossing a fixed set of links, receiving a rate from
  the classic **progressive-filling / bottleneck-elimination** algorithm
  (Bertsekas & Gallager): all unfrozen flows grow at the same pace until
  some link saturates, flows through saturated links freeze at their
  current rate, repeat until every flow is frozen.

The allocator is vectorised over link **incidence arrays** (CSR-style
membership of flows in links) in the spirit of the batched selection and
peer-state kernels: one ``bincount`` per filling round instead of a
python loop per flow, so thousand-flow allocations cost milliseconds.

Rates are only recomputed on flow **arrival/departure events** (and
whatever control-plane epochs the caller defines, e.g. rechoke rounds),
never on a fixed time step — between two events every rate is constant,
so byte progress is exact integration, not discretisation.

:class:`FlowNetwork` keeps flows in struct-of-arrays columns with
tombstoned removal and periodic compaction, which makes ``advance()``
(accrue ``rate * dt`` bytes per flow) and allocation both array sweeps.
"""

from __future__ import annotations

from typing import Any, Iterator, Optional, Sequence

import numpy as np

from repro.errors import SimulationError
from repro.obs import active_registry

__all__ = ["FlowNetwork", "max_min_rates", "single_link_waterfill"]

#: Relative tolerance used to group links that saturate "together" in one
#: filling round; keeps the round count low when many identical access
#: classes hit their limit at the same fill level, and makes the result
#: independent of flow insertion order.
_SAT_RTOL = 1e-9


def max_min_rates(
    capacity: np.ndarray,
    indptr: np.ndarray,
    indices: np.ndarray,
    flow_cap: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Max-min fair rates for flows over capacitated links.

    Parameters
    ----------
    capacity:
        Per-link capacity, shape ``(L,)``.  ``np.inf`` marks an
        uncapacitated link (it never bottlenecks, it only exists so the
        caller can account bytes against it).
    indptr, indices:
        CSR membership: flow ``f`` crosses links
        ``indices[indptr[f]:indptr[f+1]]``.  Every flow must cross at
        least one finite-capacity link (or carry a finite ``flow_cap``),
        otherwise its fair rate would be unbounded and a
        :class:`~repro.errors.SimulationError` is raised.
    flow_cap:
        Optional per-flow rate ceilings, shape ``(F,)`` (``np.inf`` =
        uncapped).  A flow freezes when it hits its ceiling even if none
        of its links is saturated — this models non-work-conserving
        senders such as BitTorrent's equal split of upload capacity
        across unchoke slots, where a slot's share left unclaimed by a
        slow receiver is *not* redistributed.

    Returns
    -------
    Rates of shape ``(F,)`` satisfying the (cap-constrained) max-min
    property: no flow's rate can be raised without lowering the rate of
    a flow that is no faster, and each flow is stopped by a fully
    utilised bottleneck link or its own ceiling.

    The result is independent of the order flows appear in (progressive
    filling treats them symmetrically; ties in saturation are grouped
    under a relative tolerance).
    """
    capacity = np.asarray(capacity, dtype=np.float64)
    indptr = np.asarray(indptr, dtype=np.int64)
    indices = np.asarray(indices, dtype=np.int64)
    n_flows = indptr.size - 1
    n_links = capacity.size
    rates = np.zeros(n_flows, dtype=np.float64)
    if n_flows == 0:
        return rates
    if (capacity < 0).any():
        raise SimulationError("link capacities must be non-negative")
    if flow_cap is not None:
        flow_cap = np.asarray(flow_cap, dtype=np.float64)
        if flow_cap.shape != (n_flows,):
            raise SimulationError("flow_cap must have one entry per flow")
        if (flow_cap < 0).any():
            raise SimulationError("flow rate ceilings must be non-negative")
    counts = np.diff(indptr)
    if (counts <= 0).any():
        raise SimulationError("every flow must cross at least one link")
    member_flow = np.repeat(np.arange(n_flows), counts)
    member_link = indices
    if member_link.size and (
        member_link.min() < 0 or member_link.max() >= n_links
    ):
        raise SimulationError("flow references an unknown link index")

    active = np.ones(n_flows, dtype=bool)
    remaining = capacity.copy()
    # Zero-capacity links (and zero ceilings) freeze their flows at rate
    # 0 immediately.  Each round saturates >= 1 link or caps >= 1 flow.
    for _ in range(n_links + n_flows + 1):
        live = active[member_flow]
        if not live.any():
            break
        load = np.bincount(member_link[live], minlength=n_links)
        loaded = load > 0
        finite = loaded & np.isfinite(remaining)
        if finite.any():
            headroom = remaining[finite] / load[finite]
            link_fill = float(headroom.min())
        else:
            headroom = None
            link_fill = np.inf
        if flow_cap is not None:
            cap_fill = float((flow_cap[active] - rates[active]).min())
            fill = min(link_fill, cap_fill)
        else:
            fill = link_fill
        if not np.isfinite(fill):
            raise SimulationError(
                "unbounded max-min allocation: some flow crosses only "
                "uncapacitated links and has no rate ceiling"
            )
        if fill > 0.0:
            rates[active] += fill
            remaining[finite] -= fill * load[finite]
        # Saturate every link that reached (within tolerance of) the
        # bottleneck level this round, then freeze its flows.
        saturated = np.zeros(n_links, dtype=bool)
        if headroom is not None:
            saturated[np.flatnonzero(finite)] = (
                headroom <= fill * (1.0 + _SAT_RTOL)
            )
            remaining[saturated] = 0.0
            frozen = member_flow[saturated[member_link] & live]
            active[frozen] = False
        if flow_cap is not None:
            active &= rates < flow_cap * (1.0 - _SAT_RTOL)
    else:  # pragma: no cover - each round kills >= 1 link or flow
        raise SimulationError("progressive filling failed to converge")
    return rates


def single_link_waterfill(
    capacity: np.ndarray,
    link_of_flow: np.ndarray,
    flow_cap: np.ndarray,
) -> np.ndarray:
    """Closed-form max-min rates when every flow crosses exactly **one**
    capacitated link and carries its own rate ceiling.

    This is the classic single-link water-filling: on each link, flows
    whose ceiling lies below the water level get their ceiling, the rest
    split the leftover equally.  The result is identical to
    :func:`max_min_rates` on the equivalent instance, but it needs one
    ``lexsort`` and a handful of segment reductions instead of one
    filling round per distinct ceiling — the fast path for
    access-bottlenecked swarms, where each transfer is limited by the
    uploader's per-slot share (the ceiling) and the downloader's access
    link (the shared link), and ceilings take hundreds of distinct
    values.

    Parameters
    ----------
    capacity:
        Per-link capacity, shape ``(L,)`` (``np.inf`` = uncapacitated:
        every flow on such a link gets its ceiling).
    link_of_flow:
        The single link each flow crosses, shape ``(F,)``.
    flow_cap:
        Per-flow rate ceilings, shape ``(F,)`` (``np.inf`` = uncapped).
    """
    capacity = np.asarray(capacity, dtype=np.float64)
    link_of_flow = np.asarray(link_of_flow, dtype=np.int64)
    flow_cap = np.asarray(flow_cap, dtype=np.float64)
    n_flows = link_of_flow.size
    if flow_cap.shape != (n_flows,):
        raise SimulationError("flow_cap must have one entry per flow")
    rates = np.zeros(n_flows, dtype=np.float64)
    if n_flows == 0:
        return rates
    if (capacity < 0).any():
        raise SimulationError("link capacities must be non-negative")
    if (flow_cap < 0).any():
        raise SimulationError("flow rate ceilings must be non-negative")
    if link_of_flow.min() < 0 or link_of_flow.max() >= capacity.size:
        raise SimulationError("flow references an unknown link index")
    if (np.isinf(capacity[link_of_flow]) & np.isinf(flow_cap)).any():
        raise SimulationError(
            "unbounded max-min allocation: uncapped flow on an "
            "uncapacitated link"
        )

    order = np.lexsort((flow_cap, link_of_flow))
    link = link_of_flow[order]
    cap = flow_cap[order]
    starts = np.flatnonzero(np.r_[True, link[1:] != link[:-1]])
    counts = np.diff(np.r_[starts, n_flows])
    gidx = np.repeat(np.arange(starts.size), counts)
    pos = np.arange(n_flows) - starts[gidx]  # rank within the link group
    # infinite ceilings sort last within their group and only ever sit at
    # or past the pinning rank, so they can be zeroed out of the prefix
    # sums without changing any water level
    cap_fin = np.where(np.isfinite(cap), cap, 0.0)
    csum = np.cumsum(cap_fin)
    prefix_excl = csum - cap_fin - np.r_[0.0, csum][starts][gidx]
    d = capacity[link[starts]][gidx]
    k = counts[gidx]
    # water = sum of min(c_i, c_t) over the group: flows below rank t at
    # their ceiling, the remaining k - t at c_t.  The first rank where it
    # reaches the link capacity pins the water level.
    water = prefix_excl + (k - pos) * cap
    sentinel = n_flows + 1
    first = np.minimum.reduceat(
        np.where(water >= d, pos, sentinel), starts
    )
    firstg = first[gidx]
    lam = np.full(starts.size, np.inf)
    bound = np.flatnonzero(first < sentinel)
    if bound.size:
        at = starts[bound] + first[bound]
        lam[bound] = (
            capacity[link[starts[bound]]] - prefix_excl[at]
        ) / (counts[bound] - first[bound])
    rates[order] = np.where(pos < firstg, cap, lam[gidx])
    return rates


class FlowNetwork:
    """Capacitated links plus active flows, with event-driven rates.

    Links are created up front (or appended later) via :meth:`add_link`;
    flows arrive with :meth:`add_flow` and leave with
    :meth:`remove_flow`.  :meth:`reallocate` recomputes the max-min
    rates — the caller invokes it once per arrival/departure batch, not
    per flow — and :meth:`advance` integrates ``rate * dt`` bytes of
    progress into every live flow.

    Flow storage is struct-of-arrays with tombstones: removal marks a
    row dead, and the columns compact when the dead fraction passes 1/2,
    so long-running swarms do not leak rows.
    """

    def __init__(self, capacities: Sequence[float] = ()) -> None:
        self._capacity: list[float] = [float(c) for c in capacities]
        for c in self._capacity:
            if c < 0:
                raise SimulationError("link capacities must be non-negative")
        # flow columns (parallel, length = allocated rows)
        self._flow_links: list[Optional[np.ndarray]] = []
        self._rate = np.zeros(0, dtype=np.float64)
        self._bytes_done = np.zeros(0, dtype=np.float64)
        self._alive = np.zeros(0, dtype=bool)
        self._meta: list[Any] = []
        self._id_of_row: list[int] = []
        self._row_of_id: dict[int, int] = {}
        self._next_id = 0
        self._dead = 0
        self._dirty = True  # rates stale (membership changed)
        self.reallocs_total = 0

    # -- links ----------------------------------------------------------------
    def add_link(self, capacity: float) -> int:
        """Register a link; returns its index.  ``np.inf`` is allowed for
        accounting-only links that never constrain rates."""
        if capacity < 0:
            raise SimulationError("link capacities must be non-negative")
        self._capacity.append(float(capacity))
        return len(self._capacity) - 1

    @property
    def n_links(self) -> int:
        return len(self._capacity)

    def capacity_of(self, link: int) -> float:
        return self._capacity[link]

    # -- flows ----------------------------------------------------------------
    def add_flow(self, links: Sequence[int], *, meta: Any = None) -> int:
        """Admit a flow crossing ``links``; returns its flow id.  The new
        flow's rate is 0 until the next :meth:`reallocate`."""
        arr = np.asarray(links, dtype=np.int64)
        if arr.size == 0:
            raise SimulationError("a flow must cross at least one link")
        if arr.min() < 0 or arr.max() >= len(self._capacity):
            raise SimulationError("flow references an unknown link index")
        fid = self._next_id
        self._next_id += 1
        row = len(self._flow_links)
        self._flow_links.append(arr)
        self._meta.append(meta)
        self._id_of_row.append(fid)
        self._row_of_id[fid] = row
        if row >= self._rate.size:
            grow = max(16, self._rate.size)
            self._rate = np.concatenate([self._rate, np.zeros(grow)])
            self._bytes_done = np.concatenate([self._bytes_done, np.zeros(grow)])
            self._alive = np.concatenate(
                [self._alive, np.zeros(grow, dtype=bool)]
            )
        self._rate[row] = 0.0
        self._bytes_done[row] = 0.0
        self._alive[row] = True
        self._dirty = True
        return fid

    def remove_flow(self, fid: int) -> float:
        """Retire a flow; returns the bytes it transferred in its lifetime."""
        row = self._row_of_id.pop(fid)
        self._alive[row] = False
        self._flow_links[row] = None
        self._meta[row] = None
        self._rate[row] = 0.0  # dead rows accrue nothing in advance()
        done = float(self._bytes_done[row])
        self._dead += 1
        self._dirty = True
        if self._dead * 2 > len(self._flow_links):
            self._compact()
        return done

    def _compact(self) -> None:
        keep = [r for r in range(len(self._flow_links)) if self._alive[r]]
        self._flow_links = [self._flow_links[r] for r in keep]
        self._meta = [self._meta[r] for r in keep]
        self._id_of_row = [self._id_of_row[r] for r in keep]
        n = len(keep)
        rate = np.zeros(max(n, 16), dtype=np.float64)
        done = np.zeros_like(rate)
        alive = np.zeros(rate.size, dtype=bool)
        if n:
            rate[:n] = self._rate[keep]
            done[:n] = self._bytes_done[keep]
            alive[:n] = True
        self._rate, self._bytes_done, self._alive = rate, done, alive
        self._row_of_id = {fid: r for r, fid in enumerate(self._id_of_row)}
        self._dead = 0

    def __len__(self) -> int:
        return len(self._row_of_id)

    def __contains__(self, fid: int) -> bool:
        return fid in self._row_of_id

    def flow_ids(self) -> Iterator[int]:
        return iter(list(self._row_of_id))

    def meta_of(self, fid: int) -> Any:
        return self._meta[self._row_of_id[fid]]

    def rate_of(self, fid: int) -> float:
        return float(self._rate[self._row_of_id[fid]])

    def bytes_of(self, fid: int) -> float:
        return float(self._bytes_done[self._row_of_id[fid]])

    # -- vector views (live rows, aligned) ------------------------------------
    def live_ids(self) -> list[int]:
        """Flow ids of the live rows, aligned with :meth:`live_rates`."""
        return [fid for fid in self._id_of_row if fid in self._row_of_id]

    def live_rates(self) -> np.ndarray:
        """Rates of the live rows (copy), aligned with :meth:`live_ids`."""
        rows = [self._row_of_id[fid] for fid in self.live_ids()]
        return self._rate[rows].copy()

    # -- the data-plane kernel -------------------------------------------------
    def reallocate(self) -> None:
        """Recompute max-min rates for the current flow set (no-op when
        membership has not changed since the last call)."""
        if not self._dirty:
            return
        rows = [self._row_of_id[fid] for fid in self._id_of_row
                if fid in self._row_of_id]
        if not rows:
            self._dirty = False
            return
        links = [self._flow_links[r] for r in rows]
        indptr = np.zeros(len(links) + 1, dtype=np.int64)
        np.cumsum([a.size for a in links], out=indptr[1:])
        indices = np.concatenate(links) if links else np.zeros(0, np.int64)
        rates = max_min_rates(
            np.asarray(self._capacity, dtype=np.float64), indptr, indices
        )
        self._rate[rows] = rates
        self._dirty = False
        self.reallocs_total += 1
        registry = active_registry()
        if registry is not None:
            registry.counter(
                "flow_reallocations_total",
                "Max-min rate recomputations (flow arrival/departure epochs).",
            ).inc()
            registry.gauge(
                "flows_active", "Flows live in the flow network."
            ).set(len(rows))

    def advance(self, dt: float) -> None:
        """Integrate ``rate * dt`` bytes into every live flow.

        Rates must be current (call :meth:`reallocate` after membership
        changes); between events rates are constant so this is exact.
        """
        if dt < 0:
            raise SimulationError(f"cannot advance backwards (dt={dt})")
        if self._dirty:
            raise SimulationError(
                "advance() with stale rates; call reallocate() first"
            )
        if dt == 0.0:
            return
        self._bytes_done += self._rate * dt

    def utilisation(self) -> np.ndarray:
        """Per-link carried rate / capacity (0 for idle or infinite links) —
        diagnostic used by the allocation property tests."""
        carried = np.zeros(len(self._capacity), dtype=np.float64)
        for fid in self._row_of_id:
            row = self._row_of_id[fid]
            carried[self._flow_links[row]] += self._rate[row]
        cap = np.asarray(self._capacity, dtype=np.float64)
        out = np.zeros_like(carried)
        ok = np.isfinite(cap) & (cap > 0)
        out[ok] = carried[ok] / cap[ok]
        return out
