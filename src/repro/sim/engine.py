"""Discrete-event simulation engine.

A minimal, deterministic event loop: events are ``(time, sequence, callback)``
triples kept in a binary heap.  Ties in time are broken by insertion order,
which makes runs bit-for-bit reproducible.  All protocol modules in
:mod:`repro.overlay` run on top of this engine.

Observability: inside an ``obs.observe()`` scope (or when a
:class:`~repro.obs.tracing.Tracer` is attached explicitly) the engine
emits ``schedule``/``fire``/``cancel`` trace events, with per-callback
wall-clock timing on ``fire`` in the volatile ``_elapsed_s`` attribute.
Without a tracer the only cost is one ``is None`` check per operation.

Example
-------
>>> sim = Simulation()
>>> fired = []
>>> _ = sim.schedule(1.5, fired.append, "a")
>>> _ = sim.schedule(0.5, fired.append, "b")
>>> sim.run()
>>> fired
['b', 'a']
"""

from __future__ import annotations

import heapq
import itertools
import time as _time
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.errors import SimulationError
from repro.obs import active_tracer
from repro.obs.tracing import Tracer


@dataclass(order=True)
class _Event:
    time: float
    seq: int
    callback: Callable[..., None] = field(compare=False)
    args: tuple = field(compare=False, default=())
    cancelled: bool = field(compare=False, default=False)
    fired: bool = field(compare=False, default=False)


def _callback_name(callback: Callable[..., None]) -> str:
    """Deterministic label for a callback (qualified name, never a repr —
    reprs carry memory addresses and would poison trace digests)."""
    name = getattr(callback, "__qualname__", None)
    return name if isinstance(name, str) else type(callback).__name__


class EventHandle:
    """Opaque handle returned by :meth:`Simulation.schedule`.

    Supports cancellation; a cancelled event is skipped (lazily removed from
    the heap) without disturbing other events.  Cancelling an event that
    already fired is a harmless no-op and does not mark it cancelled.
    """

    __slots__ = ("_event", "_sim")

    def __init__(self, event: _Event, sim: "Optional[Simulation]" = None) -> None:
        self._event = event
        self._sim = sim

    @property
    def time(self) -> float:
        return self._event.time

    @property
    def cancelled(self) -> bool:
        return self._event.cancelled

    @property
    def fired(self) -> bool:
        return self._event.fired

    def cancel(self) -> bool:
        """Cancel the event if it has not fired yet.

        Returns ``True`` if this call actually cancelled it, ``False``
        for an event that already fired or was already cancelled.
        """
        event = self._event
        if event.fired or event.cancelled:
            return False
        event.cancelled = True
        sim = self._sim
        if sim is not None and sim._tracer is not None:
            sim._tracer.emit(
                "sim",
                "cancel",
                time=sim._now,
                at=event.time,
                seq=event.seq,
                callback=_callback_name(event.callback),
            )
        return True


class Simulation:
    """Deterministic discrete-event scheduler.

    Parameters
    ----------
    start_time:
        Clock value at construction (seconds; any unit is fine as long as
        it is used consistently).
    tracer:
        Optional :class:`~repro.obs.tracing.Tracer`.  When omitted, the
        active tracer of an enclosing ``obs.observe()`` scope is picked
        up; outside any scope the engine runs uninstrumented.
    """

    def __init__(
        self, start_time: float = 0.0, *, tracer: Optional[Tracer] = None
    ) -> None:
        self._now = float(start_time)
        self._heap: list[_Event] = []
        self._seq = itertools.count()
        self._running = False
        self.events_processed = 0
        self._tracer = tracer if tracer is not None else active_tracer()

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    # -- observability -----------------------------------------------------------
    @property
    def tracer(self) -> Optional[Tracer]:
        return self._tracer

    def attach_tracer(self, tracer: Tracer) -> None:
        """Start emitting trace events to ``tracer``."""
        self._tracer = tracer

    def detach_tracer(self) -> None:
        """Stop tracing (instrumentation back to zero cost)."""
        self._tracer = None

    # -- scheduling ---------------------------------------------------------------
    def schedule(
        self, delay: float, callback: Callable[..., None], *args: Any
    ) -> EventHandle:
        """Schedule ``callback(*args)`` to run ``delay`` time units from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        return self.schedule_at(self._now + delay, callback, *args)

    def schedule_at(
        self, time: float, callback: Callable[..., None], *args: Any
    ) -> EventHandle:
        """Schedule ``callback(*args)`` at absolute time ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at {time} before current time {self._now}"
            )
        event = _Event(float(time), next(self._seq), callback, args)
        heapq.heappush(self._heap, event)
        if self._tracer is not None:
            self._tracer.emit(
                "sim",
                "schedule",
                time=self._now,
                at=event.time,
                seq=event.seq,
                callback=_callback_name(callback),
            )
        return EventHandle(event, self)

    def peek_time(self) -> Optional[float]:
        """Time of the next pending event, or ``None`` if the queue is empty."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None

    def step(self) -> bool:
        """Process a single event.  Returns ``False`` if the queue was empty."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self._now = event.time
            event.fired = True
            tracer = self._tracer
            if tracer is None:
                event.callback(*event.args)
            else:
                t0 = _time.perf_counter()
                event.callback(*event.args)
                tracer.emit(
                    "sim",
                    "fire",
                    time=event.time,
                    seq=event.seq,
                    callback=_callback_name(event.callback),
                    _elapsed_s=_time.perf_counter() - t0,
                )
            self.events_processed += 1
            return True
        return False

    def run(
        self, until: Optional[float] = None, max_events: Optional[int] = None
    ) -> None:
        """Run until the queue drains, ``until`` is reached, or ``max_events``
        events have been processed (whichever comes first).

        When the run *cleanly* covers the time window (queue drained or the
        next event lies beyond ``until``), the clock is advanced to ``until``
        even if no event fires exactly there, so subsequent relative
        scheduling behaves intuitively.  A run cut short — a callback raised,
        or ``max_events`` stopped it mid-window — leaves the clock at the
        last processed event so failures are not reported as completions.
        """
        if self._running:
            raise SimulationError("simulation is already running (reentrant run())")
        self._running = True
        processed = 0
        completed = False
        try:
            while True:
                if max_events is not None and processed >= max_events:
                    break
                next_time = self.peek_time()
                if next_time is None:
                    completed = True
                    break
                if until is not None and next_time > until:
                    completed = True
                    break
                self.step()
                processed += 1
        finally:
            self._running = False
        if completed and until is not None and until > self._now:
            self._now = float(until)

    def pending(self) -> int:
        """Number of pending (non-cancelled) events."""
        return sum(1 for e in self._heap if not e.cancelled)
