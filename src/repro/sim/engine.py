"""Discrete-event simulation engine.

A minimal, deterministic event loop: events are plain-list heap entries
``[time, seq, callback, args, cancelled, fired]`` kept in a binary heap.
Ties in time are broken by insertion order (the monotonically increasing
``seq``), which makes runs bit-for-bit reproducible.  All protocol
modules in :mod:`repro.overlay` run on top of this engine.

The hot path is deliberately allocation-light: a heap entry is one list
(no per-event object construction), :meth:`Simulation.run` inlines the
pop/fire loop with the tracer check hoisted out into two specialised
loop bodies, and :meth:`Simulation.schedule_many` batch-inserts fan-out
events (one ``heapify`` instead of many ``heappush`` when the batch is
large relative to the pending queue).

Observability: inside an ``obs.observe()`` scope (or when a
:class:`~repro.obs.tracing.Tracer` is attached explicitly) the engine
emits ``schedule``/``fire``/``cancel`` trace events, with per-callback
wall-clock timing on ``fire`` in the volatile ``_elapsed_s`` attribute.
Without a tracer the only cost is one ``is None`` check per schedule
and none at all inside the :meth:`Simulation.run` loop — the tracer is
sampled when ``run()`` starts, so attaching one mid-run takes effect
from the next ``run()``/``step()`` call.

Example
-------
>>> sim = Simulation()
>>> fired = []
>>> _ = sim.schedule(1.5, fired.append, "a")
>>> _ = sim.schedule(0.5, fired.append, "b")
>>> sim.run()
>>> fired
['b', 'a']
"""

from __future__ import annotations

import heapq
import itertools
import time as _time
from typing import Any, Callable, Iterable, Optional

from repro.errors import SimulationError
from repro.obs import active_tracer
from repro.obs.tracing import Tracer

# Heap-entry layout.  A plain list compares element-wise, so the heap
# orders by (time, seq) and never reaches the non-comparable callback:
# ``seq`` is unique.  Mutating CANCELLED/FIRED in place keeps
# EventHandle.cancel() O(1) (lazy removal on pop).
_TIME, _SEQ, _CALLBACK, _ARGS, _CANCELLED, _FIRED = range(6)

#: A scheduled-but-not-fired heap entry.
_Entry = list


def _callback_name(callback: Callable[..., None]) -> str:
    """Deterministic label for a callback (qualified name, never a repr —
    reprs carry memory addresses and would poison trace digests)."""
    name = getattr(callback, "__qualname__", None)
    return name if isinstance(name, str) else type(callback).__name__


class EventHandle:
    """Opaque handle returned by :meth:`Simulation.schedule`.

    Supports cancellation; a cancelled event is skipped (lazily removed from
    the heap) without disturbing other events.  Cancelling an event that
    already fired is a harmless no-op and does not mark it cancelled.
    """

    __slots__ = ("_entry", "_sim")

    def __init__(self, entry: _Entry, sim: "Optional[Simulation]" = None) -> None:
        self._entry = entry
        self._sim = sim

    @property
    def time(self) -> float:
        return self._entry[_TIME]

    @property
    def cancelled(self) -> bool:
        return self._entry[_CANCELLED]

    @property
    def fired(self) -> bool:
        return self._entry[_FIRED]

    def cancel(self) -> bool:
        """Cancel the event if it has not fired yet.

        Returns ``True`` if this call actually cancelled it, ``False``
        for an event that already fired or was already cancelled.
        """
        entry = self._entry
        if entry[_FIRED] or entry[_CANCELLED]:
            return False
        entry[_CANCELLED] = True
        sim = self._sim
        if sim is not None and sim._tracer is not None:
            sim._tracer.emit(
                "sim",
                "cancel",
                time=sim._now,
                at=entry[_TIME],
                seq=entry[_SEQ],
                callback=_callback_name(entry[_CALLBACK]),
            )
        return True


class Simulation:
    """Deterministic discrete-event scheduler.

    Parameters
    ----------
    start_time:
        Clock value at construction (seconds; any unit is fine as long as
        it is used consistently).
    tracer:
        Optional :class:`~repro.obs.tracing.Tracer`.  When omitted, the
        active tracer of an enclosing ``obs.observe()`` scope is picked
        up; outside any scope the engine runs uninstrumented.
    """

    def __init__(
        self, start_time: float = 0.0, *, tracer: Optional[Tracer] = None
    ) -> None:
        self._now = float(start_time)
        self._heap: list[_Entry] = []
        self._seq = itertools.count()
        self._running = False
        self.events_processed = 0
        self._tracer = tracer if tracer is not None else active_tracer()

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    # -- observability -----------------------------------------------------------
    @property
    def tracer(self) -> Optional[Tracer]:
        return self._tracer

    def attach_tracer(self, tracer: Tracer) -> None:
        """Start emitting trace events to ``tracer`` (picked up by the
        next ``run()``/``step()`` call)."""
        self._tracer = tracer

    def detach_tracer(self) -> None:
        """Stop tracing (instrumentation back to zero cost)."""
        self._tracer = None

    # -- scheduling ---------------------------------------------------------------
    def schedule(
        self, delay: float, callback: Callable[..., None], *args: Any
    ) -> EventHandle:
        """Schedule ``callback(*args)`` to run ``delay`` time units from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        return self.schedule_at(self._now + delay, callback, *args)

    def schedule_at(
        self, time: float, callback: Callable[..., None], *args: Any
    ) -> EventHandle:
        """Schedule ``callback(*args)`` at absolute time ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at {time} before current time {self._now}"
            )
        entry: _Entry = [float(time), next(self._seq), callback, args, False, False]
        heapq.heappush(self._heap, entry)
        if self._tracer is not None:
            self._tracer.emit(
                "sim",
                "schedule",
                time=self._now,
                at=entry[_TIME],
                seq=entry[_SEQ],
                callback=_callback_name(callback),
            )
        return EventHandle(entry, self)

    def schedule_many(
        self, items: Iterable[tuple[float, Callable[..., None], tuple]]
    ) -> list[EventHandle]:
        """Batch-schedule ``(delay, callback, args)`` triples.

        Semantically identical to calling :meth:`schedule` once per item
        in order — sequence numbers (and therefore tie-breaking) follow
        the iteration order, and the same trace events are emitted — but
        a large batch is inserted with one ``heapify`` instead of a
        ``heappush`` per event, which is what fan-out senders (message
        broadcast, flooding) want.
        """
        now = self._now
        seq = self._seq
        entries: list[_Entry] = []
        for delay, callback, args in items:
            if delay < 0:
                raise SimulationError(
                    f"cannot schedule in the past (delay={delay})"
                )
            entries.append([now + delay, next(seq), callback, args, False, False])
        if not entries:
            return []
        heap = self._heap
        # heapify is O(n+m); m pushes are O(m log n).  Rebuild when the
        # batch is big relative to what is already pending.
        if len(entries) * 4 >= len(heap):
            heap.extend(entries)
            heapq.heapify(heap)
        else:
            push = heapq.heappush
            for entry in entries:
                push(heap, entry)
        tracer = self._tracer
        if tracer is not None:
            for entry in entries:
                tracer.emit(
                    "sim",
                    "schedule",
                    time=now,
                    at=entry[_TIME],
                    seq=entry[_SEQ],
                    callback=_callback_name(entry[_CALLBACK]),
                )
        return [EventHandle(entry, self) for entry in entries]

    def peek_time(self) -> Optional[float]:
        """Time of the next pending event, or ``None`` if the queue is empty."""
        heap = self._heap
        while heap and heap[0][_CANCELLED]:
            heapq.heappop(heap)
        return heap[0][_TIME] if heap else None

    def step(self) -> bool:
        """Process a single event.  Returns ``False`` if the queue was empty."""
        heap = self._heap
        while heap:
            entry = heapq.heappop(heap)
            if entry[_CANCELLED]:
                continue
            self._now = entry[_TIME]
            entry[_FIRED] = True
            tracer = self._tracer
            if tracer is None:
                entry[_CALLBACK](*entry[_ARGS])
            else:
                t0 = _time.perf_counter()
                entry[_CALLBACK](*entry[_ARGS])
                tracer.emit(
                    "sim",
                    "fire",
                    time=entry[_TIME],
                    seq=entry[_SEQ],
                    callback=_callback_name(entry[_CALLBACK]),
                    _elapsed_s=_time.perf_counter() - t0,
                )
            self.events_processed += 1
            return True
        return False

    def run(
        self, until: Optional[float] = None, max_events: Optional[int] = None
    ) -> None:
        """Run until the queue drains, ``until`` is reached, or ``max_events``
        events have been processed (whichever comes first).

        When the run *cleanly* covers the time window (queue drained or the
        next event lies beyond ``until``), the clock is advanced to ``until``
        even if no event fires exactly there, so subsequent relative
        scheduling behaves intuitively.  A run cut short — a callback raised,
        or ``max_events`` stopped it mid-window — leaves the clock at the
        last processed event so failures are not reported as completions.
        """
        if self._running:
            raise SimulationError("simulation is already running (reentrant run())")
        self._running = True
        completed = False
        try:
            if self._tracer is None:
                completed = self._run_plain(until, max_events)
            else:
                completed = self._run_traced(until, max_events)
        finally:
            self._running = False
        if completed and until is not None and until > self._now:
            self._now = float(until)

    def _run_plain(
        self, until: Optional[float], max_events: Optional[int]
    ) -> bool:
        """Untraced drain loop: no tracer logic on the per-event path."""
        heap = self._heap
        pop = heapq.heappop
        processed = 0
        while True:
            if max_events is not None and processed >= max_events:
                return False
            while heap and heap[0][_CANCELLED]:
                pop(heap)
            if not heap:
                return True
            entry = heap[0]
            if until is not None and entry[_TIME] > until:
                return True
            pop(heap)
            self._now = entry[_TIME]
            entry[_FIRED] = True
            entry[_CALLBACK](*entry[_ARGS])
            self.events_processed += 1
            processed += 1

    def _run_traced(
        self, until: Optional[float], max_events: Optional[int]
    ) -> bool:
        """Traced drain loop: identical control flow plus fire events."""
        heap = self._heap
        pop = heapq.heappop
        tracer = self._tracer
        perf_counter = _time.perf_counter
        processed = 0
        while True:
            if max_events is not None and processed >= max_events:
                return False
            while heap and heap[0][_CANCELLED]:
                pop(heap)
            if not heap:
                return True
            entry = heap[0]
            if until is not None and entry[_TIME] > until:
                return True
            pop(heap)
            self._now = entry[_TIME]
            entry[_FIRED] = True
            t0 = perf_counter()
            entry[_CALLBACK](*entry[_ARGS])
            tracer.emit(
                "sim",
                "fire",
                time=entry[_TIME],
                seq=entry[_SEQ],
                callback=_callback_name(entry[_CALLBACK]),
                _elapsed_s=perf_counter() - t0,
            )
            self.events_processed += 1
            processed += 1

    def pending(self) -> int:
        """Number of pending (non-cancelled) events."""
        return sum(1 for e in self._heap if not e[_CANCELLED])
