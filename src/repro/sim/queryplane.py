"""Shared infrastructure of the frontier-batched query plane.

PR 9 made the *data* plane cheap (streamed delays, a single inline bus
send path); the query plane — Gnutella TTL floods, ping rounds, Kademlia
lookup rounds — still expanded one Python callback per message.  This
module holds the overlay-independent pieces the batched expansion kernels
build on (the Gnutella kernel itself lives in
:mod:`repro.overlay.gnutella.flood`, keeping ``sim`` below ``overlay`` in
the import graph):

- :class:`SeenFilter` — the bounded (GUID, host) duplicate-suppression
  window shared by the per-message reference handlers and the batch
  kernel.  Backed by a :class:`~repro.core.peerstate.Bitmap2D` column per
  active key when a ``PeerState`` is available (one bit per host per key,
  vectorised mark/test), or a dict-of-sets fallback otherwise; either
  way, keys expire FIFO once ``window`` distinct keys are live, so the
  suppression state of a long-running service stays flat instead of
  growing with every query ever issued.
- :class:`BoundedRouteTable` — FIFO-bounded reverse-path routing state
  (``key -> previous hop``); an evicted route behaves exactly like the
  protocols' existing "route evaporated" case.
- :class:`SendLog` / :func:`flood_trace_digest` — a bus observer that
  records ``(time, src, dst, kind, size)`` for every *send* (including
  messages later dropped in flight) and hashes the sorted tuple set.
  Batch expansion schedules different simulator events than the
  per-message path, so engine-level trace digests cannot match across
  backends; this message-level digest is the equivalence currency — it is
  bit-identical iff both backends send the same messages at the same
  simulated times.  Batch kernels append through :meth:`SendLog.record`
  with the computed virtual send time; on the reference path the bus
  observer hook stamps ``sim.now``.
"""

from __future__ import annotations

import hashlib
from typing import TYPE_CHECKING, Callable, Hashable, Optional, Sequence

from repro.errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.peerstate import PeerState
    from repro.sim.engine import Simulation

#: ``query_backend="auto"`` switches a network to batched flood expansion
#: at this population size — below it the per-message reference path is
#: just as fast and keeps engine-level golden traces byte-stable.
QUERY_AUTO_NODE_THRESHOLD = 512


class SeenFilter:
    """Bounded (key, host) membership — the duplicate-suppression window.

    ``key`` is a protocol descriptor identity (e.g. ``("QUERY", guid)``);
    hosts that have handled it are marked so later copies are dropped.  At
    most ``window`` distinct keys are live: admitting key ``window + 1``
    expires the oldest (FIFO), after which a re-flood of the expired GUID
    is deliverable again — the bounded-memory trade every real servent
    makes.

    With a :class:`~repro.core.peerstate.PeerState`, per-key membership is
    one bit column of a packed bitmap over the population's slots
    (``window/8`` bytes per host, total); without one, a dict of host
    sets.  Both backends implement the identical window policy, so object
    and struct-of-arrays networks stay behaviourally equivalent.
    """

    def __init__(
        self,
        window: int = 4096,
        *,
        peerstate: Optional["PeerState"] = None,
        bitmap_name: str = "seen",
    ) -> None:
        if window < 1:
            raise SimulationError(f"seen window must be >= 1, got {window}")
        self.window = int(window)
        self._ps = peerstate
        self._bitmap = (
            peerstate.bitmap(bitmap_name, self.window)
            if peerstate is not None
            else None
        )
        #: key -> bit column (insertion-ordered: FIFO expiry order)
        self._key_bit: dict[Hashable, int] = {}
        self._free_bits: list[int] = []
        self._sets: dict[Hashable, set] = {}
        self.expired_keys = 0

    def __len__(self) -> int:
        return len(self._key_bit) if self._bitmap is not None else len(self._sets)

    def known(self, key: Hashable) -> bool:
        """Whether any host is (still) marked for ``key`` — ``False``
        means a whole-population test can be skipped (fresh GUID)."""
        if self._bitmap is not None:
            return key in self._key_bit
        return key in self._sets

    def _admit(self, key: Hashable) -> int:
        bit = self._key_bit.get(key)
        if bit is not None:
            return bit
        if self._free_bits:
            bit = self._free_bits.pop()
        elif len(self._key_bit) < self.window:
            bit = len(self._key_bit)
        else:  # window full: expire the oldest key, recycle its column
            oldest = next(iter(self._key_bit))
            bit = self._key_bit.pop(oldest)
            self._bitmap.clear_column(bit)
            self.expired_keys += 1
        self._key_bit[key] = bit
        return bit

    def _admit_set(self, key: Hashable) -> set:
        entry = self._sets.get(key)
        if entry is None:
            if len(self._sets) >= self.window:
                del self._sets[next(iter(self._sets))]
                self.expired_keys += 1
            entry = self._sets[key] = set()
        return entry

    def test(self, host: Hashable, key: Hashable) -> bool:
        if self._bitmap is not None:
            bit = self._key_bit.get(key)
            if bit is None:
                return False
            return self._bitmap.test(self._ps.slot_of(host), bit)
        entry = self._sets.get(key)
        return entry is not None and host in entry

    def mark(self, host: Hashable, key: Hashable) -> None:
        if self._bitmap is not None:
            self._bitmap.set(self._ps.slot_of(host), self._admit(key))
        else:
            self._admit_set(key).add(host)

    def mark_many(self, hosts: Sequence[Hashable], key: Hashable) -> None:
        """Batch :meth:`mark` — one vectorised ``set_slots`` on the bitmap
        backend (how a flood kernel commits a whole expansion's accepts)."""
        if not hosts:
            # still admit the key: an empty flood reserves its window slot
            # exactly like the per-message path marking only the origin
            (self._admit if self._bitmap is not None else self._admit_set)(key)
            return
        if self._bitmap is not None:
            bit = self._admit(key)
            slot_of = self._ps.slot_of
            self._bitmap.set_slots([slot_of(h) for h in hosts], bit)
        else:
            self._admit_set(key).update(hosts)

    def membership(self, key: Hashable) -> Optional[Callable[[Hashable], bool]]:
        """A fast membership predicate for ``key``, or ``None`` when no
        host is marked (the overwhelmingly common fresh-GUID case)."""
        if not self.known(key):
            return None
        return lambda host: self.test(host, key)

    def memory_bytes(self) -> int:
        """Approximate resident size of the suppression state — constant
        once the window has filled, whatever the query count."""
        if self._bitmap is not None:
            return int(self._bitmap._bits.nbytes) + 64 * len(self._key_bit)
        return sum(112 + 32 * len(s) for s in self._sets.values())


class BoundedRouteTable:
    """FIFO-bounded ``key -> previous hop`` reverse-path routing state.

    Mapping-ish surface (``get`` / ``in`` / item assignment) matching how
    the protocol handlers already use their route dicts; inserting past
    ``capacity`` silently forgets the oldest route, which downstream code
    already tolerates as the "route evaporated" case.
    """

    __slots__ = ("capacity", "_routes")

    def __init__(self, capacity: int = 4096) -> None:
        if capacity < 1:
            raise SimulationError(f"route capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self._routes: dict[Hashable, Hashable] = {}

    def __setitem__(self, key: Hashable, back: Hashable) -> None:
        routes = self._routes
        if key not in routes and len(routes) >= self.capacity:
            del routes[next(iter(routes))]
        routes[key] = back

    def get(self, key: Hashable, default=None):
        return self._routes.get(key, default)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._routes

    def __len__(self) -> int:
        return len(self._routes)

    def pop(self, key: Hashable, default=None):
        return self._routes.pop(key, default)

    def clear(self) -> None:
        self._routes.clear()


def flood_trace_digest(
    events: Sequence[tuple[float, Hashable, Hashable, str, int]]
) -> str:
    """SHA-256 over the *sorted* ``(time, src, dst, kind, size)`` send
    tuples.  Sorting makes the digest insensitive to expansion order (the
    batch kernel emits a flood's sends grouped; the reference interleaves
    them with deliveries) while staying bit-sensitive to every delivery
    time, endpoint, TTL-driven fan-out difference, and loss draw."""
    h = hashlib.sha256()
    for ev in sorted(events):
        h.update(repr(ev).encode())
    return h.hexdigest()


class SendLog:
    """Bus observer recording every send as ``(time, src, dst, kind,
    size)`` — the capture side of :func:`flood_trace_digest`.

    On the per-message path the bus calls :meth:`observe` (stamping
    ``sim.now``, which *is* the send time there); batch kernels call
    :meth:`record` with the virtual send time they computed, so one log
    fingerprints either backend identically.
    """

    def __init__(self, sim: "Simulation") -> None:
        self._sim = sim
        self.events: list[tuple[float, Hashable, Hashable, str, int]] = []

    def observe(
        self, src: Hashable, dst: Hashable, size_bytes: int, kind: str
    ) -> None:
        self.events.append((self._sim.now, src, dst, kind, size_bytes))

    def record(
        self, time: float, src: Hashable, dst: Hashable, kind: str,
        size_bytes: int,
    ) -> None:
        self.events.append((time, src, dst, kind, size_bytes))

    def digest(self) -> str:
        return flood_trace_digest(self.events)

    def clear(self) -> None:
        self.events.clear()


__all__ = [
    "QUERY_AUTO_NODE_THRESHOLD",
    "BoundedRouteTable",
    "SeenFilter",
    "SendLog",
    "flood_trace_digest",
]
