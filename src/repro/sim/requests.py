"""Request/reply reliability: timeouts, capped exponential backoff, retries.

Every RPC-style exchange in the overlays (Kademlia FIND_NODE/FIND_VALUE,
the Gnutella connect handshake) is a request that expects a reply over an
unreliable :class:`~repro.sim.messages.MessageBus`.  Without retries a
single dropped reply wedges the caller forever — exactly the failure mode
fault injection exists to expose.  :class:`RequestManager` centralises the
recovery policy so protocols only say *how to (re)transmit* and *what to
do on final failure*:

    manager = RequestManager(sim, policy=RetryPolicy(timeout_ms=1500.0))
    manager.issue(rpc_id, transmit, on_fail=give_up)   # transmit() sends
    ...
    manager.resolve(rpc_id)                            # reply arrived

Retries re-invoke the transmit callable with the timeout doubled each
attempt (``backoff_factor``), capped at ``max_timeout_ms``; after
``max_retries`` retransmissions the request fails and ``on_fail`` runs.
Inside an ``obs.observe()`` scope the manager records
``requests_retried_total`` / ``requests_failed_total`` counters (labelled
by component) and emits ``request`` trace events.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Hashable, Optional

from repro.errors import SimulationError
from repro.obs import active_registry, active_tracer
from repro.obs.registry import (
    SLO_LATENCY_BUCKETS_MS,
    Counter,
    Histogram,
    MetricRegistry,
)
from repro.obs.tracing import Tracer
from repro.sim.engine import EventHandle, Simulation


@dataclass(frozen=True)
class RetryPolicy:
    """Timeout and retransmission knobs for one class of requests.

    ``timeout_ms`` is the first attempt's deadline; each retry multiplies
    it by ``backoff_factor`` up to ``max_timeout_ms``.  ``max_retries`` is
    the number of *retransmissions* (0 = single attempt, fail on first
    timeout, which reproduces bare-timeout behaviour).
    """

    timeout_ms: float = 1500.0
    max_retries: int = 2
    backoff_factor: float = 2.0
    max_timeout_ms: float = 12_000.0

    def __post_init__(self) -> None:
        if self.timeout_ms <= 0:
            raise SimulationError("timeout_ms must be positive")
        if self.max_retries < 0:
            raise SimulationError("max_retries must be non-negative")
        if self.backoff_factor < 1.0:
            raise SimulationError("backoff_factor must be >= 1")
        if self.max_timeout_ms < self.timeout_ms:
            raise SimulationError("max_timeout_ms must be >= timeout_ms")

    def timeout_for_attempt(self, attempt: int) -> float:
        """Deadline for the given attempt number (0 = first transmission)."""
        return min(
            self.timeout_ms * self.backoff_factor**attempt, self.max_timeout_ms
        )


@dataclass
class RequestStats:
    """Aggregate counters maintained by one manager."""

    issued: int = 0
    resolved: int = 0
    retried: int = 0
    failed: int = 0
    cancelled: int = 0


class _Outstanding:
    __slots__ = ("transmit", "on_fail", "policy", "attempt", "handle", "issued_at")

    def __init__(
        self,
        transmit: Callable[[], None],
        on_fail: Optional[Callable[[], None]],
        policy: RetryPolicy,
        issued_at: float,
    ) -> None:
        self.transmit = transmit
        self.on_fail = on_fail
        self.policy = policy
        self.attempt = 0
        self.handle: Optional[EventHandle] = None
        self.issued_at = issued_at


class RequestManager:
    """Tracks outstanding requests for one protocol endpoint (or network).

    Keys are caller-chosen hashables (rpc ids, ``("connect", peer)``
    tuples); issuing a key that is already outstanding is an error —
    stop-and-wait callers should check :meth:`is_outstanding` first.
    """

    def __init__(
        self,
        sim: Simulation,
        *,
        policy: RetryPolicy | None = None,
        component: str = "rpc",
    ) -> None:
        self.sim = sim
        self.policy = policy or RetryPolicy()
        self.component = component
        self._outstanding: dict[Hashable, _Outstanding] = {}
        self.stats = RequestStats()
        self._retried_ctr: Optional[Counter] = None
        self._failed_ctr: Optional[Counter] = None
        self._latency_hist: Optional[Histogram] = None
        self._tracer: Optional[Tracer] = None
        registry, tracer = active_registry(), active_tracer()
        if registry is not None or tracer is not None:
            self.instrument(registry, tracer)

    def instrument(
        self,
        registry: Optional[MetricRegistry] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        """Record retry/failure counters and request trace events."""
        if registry is not None:
            self._retried_ctr = registry.counter(
                "requests_retried_total",
                "Request retransmissions after a timeout, by component.",
                ("component",),
            )
            self._failed_ctr = registry.counter(
                "requests_failed_total",
                "Requests abandoned after exhausting retries, by component.",
                ("component",),
            )
            self._latency_hist = registry.histogram(
                "request_latency_ms",
                "Issue-to-resolve latency of completed requests, by "
                "component (includes retransmission waits).",
                ("component",),
                buckets=SLO_LATENCY_BUCKETS_MS,
            )
        if tracer is not None:
            self._tracer = tracer

    # -- lifecycle -----------------------------------------------------------
    def issue(
        self,
        key: Hashable,
        transmit: Callable[[], None],
        *,
        on_fail: Optional[Callable[[], None]] = None,
        policy: RetryPolicy | None = None,
    ) -> None:
        """Transmit a request and arm its timeout.

        ``transmit`` performs the actual send and is re-invoked verbatim on
        every retry (same key, so a late reply to an earlier attempt still
        resolves it).  ``on_fail`` runs once if all attempts time out.

        If ``transmit`` raises, the registration is rolled back before the
        exception propagates: the key is not outstanding, no timeout is
        armed, and the caller may re-issue it later.  (Leaving the entry
        behind would wedge the key forever — no timeout would ever clear
        it, and every re-issue would raise "already outstanding".)
        """
        if key in self._outstanding:
            raise SimulationError(f"request {key!r} is already outstanding")
        entry = _Outstanding(transmit, on_fail, policy or self.policy, self.sim.now)
        self._outstanding[key] = entry
        try:
            transmit()
            entry.handle = self.sim.schedule(
                entry.policy.timeout_for_attempt(0), self._on_timeout, key
            )
        except BaseException:
            # transmit() may have synchronously resolved/cancelled the key
            # (popping it) before raising; only roll back our own entry.
            if self._outstanding.get(key) is entry:
                del self._outstanding[key]
                if entry.handle is not None:
                    entry.handle.cancel()
            raise
        self.stats.issued += 1

    def issue_many(
        self,
        items: "list[tuple[Hashable, Callable[[], None], Optional[Callable[[], None]]]]",
        *,
        policy: RetryPolicy | None = None,
    ) -> None:
        """Issue one batch of ``(key, transmit, on_fail)`` requests.

        Semantically the round-batched form of calling :meth:`issue` per
        item: every transmit runs in item order (so bus sends — and any
        loss draws they trigger — happen in exactly the per-item
        sequence), then all first-attempt timeouts are armed with a
        single :meth:`~repro.sim.engine.Simulation.schedule_many` heap
        insert instead of one ``heappush`` per request.  This is what an
        iterative-lookup round issuing its α RPCs wants.

        If a transmit raises, requests already transmitted keep their
        timeouts armed (they are in flight and must be able to retry or
        fail), the not-yet-transmitted tail is rolled back, and the
        exception propagates.
        """
        pol = policy or self.policy
        entries: list[tuple[Hashable, _Outstanding]] = []
        now = self.sim.now
        for key, transmit, on_fail in items:
            if key in self._outstanding:
                raise SimulationError(f"request {key!r} is already outstanding")
            entry = _Outstanding(transmit, on_fail, pol, now)
            self._outstanding[key] = entry
            entries.append((key, entry))
        sent = 0
        try:
            for _key, entry in entries:
                entry.transmit()
                sent += 1
        except BaseException:
            for key, entry in entries[sent:]:
                # transmit may have synchronously resolved/cancelled the
                # key before raising; only roll back our own entry
                if self._outstanding.get(key) is entry:
                    del self._outstanding[key]
            self._arm_batch(entries[:sent])
            self.stats.issued += sent
            raise
        self._arm_batch(entries)
        self.stats.issued += sent

    def _arm_batch(
        self, entries: "list[tuple[Hashable, _Outstanding]]"
    ) -> None:
        """Arm first-attempt timeouts for a batch with one heap insert."""
        live = [
            (key, entry)
            for key, entry in entries
            if self._outstanding.get(key) is entry
        ]
        if not live:
            return
        handles = self.sim.schedule_many(
            (entry.policy.timeout_for_attempt(0), self._on_timeout, (key,))
            for key, entry in live
        )
        for (_key, entry), handle in zip(live, handles):
            entry.handle = handle

    def is_outstanding(self, key: Hashable) -> bool:
        return key in self._outstanding

    @property
    def outstanding(self) -> int:
        return len(self._outstanding)

    def resolve(self, key: Hashable) -> bool:
        """A reply arrived: disarm the timeout.  Returns ``False`` for an
        unknown key (late duplicate reply after failure) — harmless."""
        entry = self._outstanding.pop(key, None)
        if entry is None:
            return False
        if entry.handle is not None:
            entry.handle.cancel()
        self.stats.resolved += 1
        if self._latency_hist is not None:
            self._latency_hist.observe(
                self.sim.now - entry.issued_at, component=self.component
            )
        return True

    def cancel(self, key: Hashable) -> bool:
        """Forget a request without invoking ``on_fail``."""
        entry = self._outstanding.pop(key, None)
        if entry is None:
            return False
        if entry.handle is not None:
            entry.handle.cancel()
        self.stats.cancelled += 1
        return True

    def cancel_all(self) -> int:
        """Drop every outstanding request (e.g. the node went offline)."""
        n = 0
        for key in list(self._outstanding):
            n += int(self.cancel(key))
        return n

    # -- timeout path ----------------------------------------------------------
    def _on_timeout(self, key: Hashable) -> None:
        entry = self._outstanding.get(key)
        if entry is None:
            return
        if entry.attempt < entry.policy.max_retries:
            entry.attempt += 1
            self.stats.retried += 1
            if self._retried_ctr is not None:
                self._retried_ctr.inc(component=self.component)
            if self._tracer is not None:
                self._tracer.emit(
                    "request", "retry", time=self.sim.now,
                    component=self.component, attempt=entry.attempt,
                )
            entry.transmit()
            entry.handle = self.sim.schedule(
                entry.policy.timeout_for_attempt(entry.attempt),
                self._on_timeout,
                key,
            )
            return
        del self._outstanding[key]
        self.stats.failed += 1
        if self._failed_ctr is not None:
            self._failed_ctr.inc(component=self.component)
        if self._tracer is not None:
            self._tracer.emit(
                "request", "fail", time=self.sim.now,
                component=self.component, attempts=entry.attempt + 1,
            )
        if entry.on_fail is not None:
            entry.on_fail()
