"""Message-passing layer between simulated hosts.

The :class:`MessageBus` delivers messages between endpoints with a latency
obtained from a pluggable :class:`LatencyProvider` (in practice the underlay
model), and reports every delivery to zero or more traffic observers so
that experiments can account intra-AS / peering / transit bytes without the
protocols knowing about accounting.

Protocols deliver to *endpoint ids* (opaque hashable values, typically
host ids); receivers register a handler callable per endpoint.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Callable, Hashable, Optional, Protocol, Sequence

import numpy as np

from repro.errors import SimulationError
from repro.obs import active_registry, active_tracer
from repro.obs.registry import Counter, CounterCell, MetricRegistry
from repro.obs.tracing import Tracer
from repro.sim.engine import Simulation


class LatencyProvider(Protocol):
    """Anything that can answer one-way delay between two endpoints."""

    def one_way_delay(self, src: Hashable, dst: Hashable) -> float:
        """One-way delay (same time unit as the simulation clock)."""
        ...


class TrafficObserver(Protocol):
    """Callback protocol for per-message accounting."""

    def observe(self, src: Hashable, dst: Hashable, size_bytes: int, kind: str) -> None:
        ...


@dataclass(slots=True)
class Message:
    """An in-flight protocol message.

    ``kind`` is a protocol-defined tag (e.g. ``"QUERY"``); ``payload`` is an
    arbitrary protocol object.  ``size_bytes`` feeds traffic accounting only —
    delivery latency is independent of size (the surveyed systems reason
    about propagation delay, not bandwidth-limited transfer; bulk transfer
    is modelled separately by the BitTorrent swarm).

    A slots dataclass: the bus allocates one per send, so the instance
    dict matters at fan-out scale — and a handler assigning a misspelled
    attribute fails loudly instead of silently growing the message.
    """

    src: Hashable
    dst: Hashable
    kind: str
    payload: Any = None
    size_bytes: int = 64


@dataclass(slots=True)
class BusStats:
    """Aggregate counters maintained by the bus."""

    sent: int = 0
    delivered: int = 0
    dropped_no_handler: int = 0
    dropped_loss: int = 0
    dropped_fault: int = 0
    bytes_sent: int = 0
    by_kind: dict[str, int] = field(default_factory=dict)


#: Interposition hook installed by :class:`repro.faults.FaultInjector`:
#: given ``(src, dst, kind)`` it returns an extra delay in clock units to
#: add to the message, or ``math.inf`` to drop it in flight.  ``0.0`` is a
#: no-op.  Kept as a bare callable so the sim layer stays below the faults
#: layer in the import graph.
FaultHook = Callable[[Hashable, Hashable, str], float]


class MessageBus:
    """Latency-aware unicast message delivery between registered endpoints.

    Sending to an unregistered endpoint is not an error at send time — the
    peer may have churned out while the message was in flight — the message
    is counted as dropped on arrival instead, mirroring UDP semantics.

    ``loss_rate`` injects network failures: each message is independently
    dropped in flight with that probability (after being counted as sent
    and observed by traffic accounting, as a really lost packet would be).
    """

    def __init__(
        self,
        sim: Simulation,
        latency: LatencyProvider,
        *,
        loss_rate: float = 0.0,
        loss_seed: int = 0,
    ) -> None:
        self._sim = sim
        self._latency = latency
        self._handlers: dict[Hashable, Callable[[Message], None]] = {}
        self._observers: list[TrafficObserver] = []
        self._loss_seed = loss_seed
        self._loss_rng: Optional[np.random.Generator] = None
        self._loss_rate = 0.0
        self.loss_rate = loss_rate  # property: validates + creates the RNG
        self._fault_hook: Optional[FaultHook] = None
        self.stats = BusStats()
        self._sent_ctr: Optional[Counter] = None
        self._bytes_ctr: Optional[Counter] = None
        self._delivered_ctr: Optional[Counter] = None
        self._dropped_ctr: Optional[Counter] = None
        # Bound label cells: ``kind`` -> (sent, bytes, delivered) cell
        # views, populated lazily per kind (None when uninstrumented) —
        # the send fast path pays one dict lookup instead of label
        # validation per message.
        self._kind_cells: Optional[dict[str, tuple]] = None
        self._drop_fault_cell: Optional[CounterCell] = None
        self._drop_loss_cell: Optional[CounterCell] = None
        self._drop_nohandler_cell: Optional[CounterCell] = None
        self._tracer: Optional[Tracer] = None
        registry, tracer = active_registry(), active_tracer()
        if registry is not None or tracer is not None:
            self.instrument(registry, tracer)

    def instrument(
        self,
        registry: Optional[MetricRegistry] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        """Start recording per-kind counters into ``registry`` and/or
        send/deliver/drop trace events into ``tracer``."""
        if registry is not None:
            self._sent_ctr = registry.counter(
                "bus_messages_sent_total", "Messages sent, by kind.", ("kind",)
            )
            self._bytes_ctr = registry.counter(
                "bus_bytes_sent_total", "Payload bytes sent, by kind.", ("kind",)
            )
            self._delivered_ctr = registry.counter(
                "bus_messages_delivered_total", "Messages delivered, by kind.",
                ("kind",),
            )
            self._dropped_ctr = registry.counter(
                "bus_messages_dropped_total", "Messages dropped, by reason.",
                ("reason",),
            )
            self._kind_cells = {}
            self._drop_fault_cell = self._dropped_ctr.labelled(reason="fault")
            self._drop_loss_cell = self._dropped_ctr.labelled(reason="loss")
            self._drop_nohandler_cell = self._dropped_ctr.labelled(
                reason="no_handler"
            )
        if tracer is not None:
            self._tracer = tracer

    def _bind_kind(self, kind: str) -> tuple:
        """Bind (and cache) the per-kind counter cells."""
        cells = (
            self._sent_ctr.labelled(kind=kind),
            self._bytes_ctr.labelled(kind=kind),
            self._delivered_ctr.labelled(kind=kind),
        )
        self._kind_cells[kind] = cells
        return cells

    # -- failure injection --------------------------------------------------------
    @property
    def loss_rate(self) -> float:
        """Independent in-flight drop probability per message.

        Settable at any time (fault injection raises and lowers it during a
        run); the loss RNG is created lazily on the first nonzero rate, so
        a bus that never loses anything never draws from it.
        """
        return self._loss_rate

    @loss_rate.setter
    def loss_rate(self, rate: float) -> None:
        if not (0.0 <= rate < 1.0):
            raise SimulationError(f"loss_rate must be in [0, 1), got {rate}")
        self._loss_rate = float(rate)
        if rate and self._loss_rng is None:
            self._loss_rng = np.random.default_rng(self._loss_seed)

    @property
    def latency(self) -> LatencyProvider:
        """The delay provider messages are scheduled against — batch
        expansion kernels read it to compute virtual delivery times with
        the exact per-pair values the per-message path would use."""
        return self._latency

    def account_external(
        self,
        kind: str,
        *,
        sent: int = 0,
        bytes_sent: int = 0,
        delivered: int = 0,
        dropped_loss: int = 0,
        dropped_fault: int = 0,
        dropped_no_handler: int = 0,
    ) -> None:
        """Fold a batch of *externally simulated* traffic into the bus
        counters — the commit half of a frontier-batched flood expansion
        (:mod:`repro.sim.queryplane`), which delivers messages inside its
        own kernel loop without touching the event heap.  One call per
        kind updates :class:`BusStats` and the bound metric cells exactly
        as ``sent``/``delivered`` individual messages would have; traffic
        observers are *not* notified here (kernels call them per message,
        in send order, so accounting totals match the reference path).
        """
        stats = self.stats
        if sent:
            stats.sent += sent
            stats.bytes_sent += bytes_sent
            stats.by_kind[kind] = stats.by_kind.get(kind, 0) + sent
        stats.delivered += delivered
        stats.dropped_loss += dropped_loss
        stats.dropped_fault += dropped_fault
        stats.dropped_no_handler += dropped_no_handler
        cells = self._kind_cells
        if cells is not None:
            kc = cells.get(kind) or self._bind_kind(kind)
            if sent:
                kc[0].inc(sent)
                kc[1].inc(bytes_sent)
            if delivered:
                kc[2].inc(delivered)
            if dropped_loss:
                self._drop_loss_cell.inc(dropped_loss)
            if dropped_fault:
                self._drop_fault_cell.inc(dropped_fault)
            if dropped_no_handler:
                self._drop_nohandler_cell.inc(dropped_no_handler)

    def set_fault_hook(self, hook: Optional[FaultHook]) -> None:
        """Install (or with ``None`` remove) the fault-injection hook.

        The hook sees every sent message after traffic accounting and
        returns an extra delay, or ``math.inf`` to drop the message in
        flight (counted as ``dropped_fault``, trace reason ``"fault"``).
        """
        self._fault_hook = hook

    def register(self, endpoint: Hashable, handler: Callable[[Message], None]) -> None:
        """Attach ``handler`` to ``endpoint``; replaces any previous handler."""
        self._handlers[endpoint] = handler

    def unregister(self, endpoint: Hashable) -> None:
        self._handlers.pop(endpoint, None)

    def is_registered(self, endpoint: Hashable) -> bool:
        return endpoint in self._handlers

    def add_observer(self, observer: TrafficObserver) -> None:
        self._observers.append(observer)

    def _send_one(
        self,
        src: Hashable,
        dst: Hashable,
        kind: str,
        payload: Any,
        size_bytes: int,
        extra_delay: float,
        cells: Optional[tuple],
        batch: Optional[list],
    ) -> Message:
        """The single inline send path shared by :meth:`send` and
        :meth:`send_many`: accounting, bound-cell metrics, fault hook,
        loss draw, delay validation, then either a direct ``schedule``
        (``batch is None``) or an append to the caller's batch list.
        """
        msg = Message(src, dst, kind, payload, size_bytes)
        delay = self._latency.one_way_delay(src, dst) + extra_delay
        stats = self.stats
        stats.sent += 1
        stats.bytes_sent += size_bytes
        by_kind = stats.by_kind
        by_kind[kind] = by_kind.get(kind, 0) + 1
        for obs in self._observers:
            obs.observe(src, dst, size_bytes, kind)
        if cells is not None:
            cells[0].inc()
            cells[1].inc(size_bytes)
        tracer = self._tracer
        if tracer is not None:
            tracer.emit(
                "bus", "send", time=self._sim.now,
                src=src, dst=dst, kind=kind, size=size_bytes,
            )
        if self._fault_hook is not None:
            penalty = self._fault_hook(src, dst, kind)
            if penalty == math.inf:
                stats.dropped_fault += 1
                if self._drop_fault_cell is not None:
                    self._drop_fault_cell.inc()
                if tracer is not None:
                    tracer.emit(
                        "bus", "drop", time=self._sim.now,
                        src=src, dst=dst, kind=kind, reason="fault",
                    )
                return msg
            delay += penalty
        if delay < 0.0:
            # a negative extra_delay/fault penalty larger than the
            # underlay latency would schedule delivery before the send
            # and silently corrupt event ordering
            raise SimulationError(
                f"negative total delay {delay} for {kind} {src}->{dst} "
                f"(extra_delay/fault penalty exceeds the underlay latency)"
            )
        if self._loss_rate and self._loss_rng.random() < self._loss_rate:
            stats.dropped_loss += 1
            if self._drop_loss_cell is not None:
                self._drop_loss_cell.inc()
            if tracer is not None:
                tracer.emit(
                    "bus", "drop", time=self._sim.now,
                    src=src, dst=dst, kind=kind, reason="loss",
                )
            return msg
        if batch is None:
            self._sim.schedule(delay, self._deliver, msg)
        else:
            batch.append((delay, self._deliver, (msg,)))
        return msg

    def send(
        self,
        src: Hashable,
        dst: Hashable,
        kind: str,
        payload: Any = None,
        size_bytes: int = 64,
        extra_delay: float = 0.0,
    ) -> Message:
        """Send a message; it arrives after the underlay one-way delay.

        Raises :class:`SimulationError` if the total delay (underlay +
        ``extra_delay`` + fault penalty) would be negative.
        """
        if size_bytes < 0:
            raise SimulationError(f"negative message size: {size_bytes}")
        cells = self._kind_cells
        if cells is not None:
            cells = cells.get(kind) or self._bind_kind(kind)
        return self._send_one(
            src, dst, kind, payload, size_bytes, extra_delay, cells, None
        )

    def send_many(
        self,
        src: Hashable,
        dsts: Sequence[Hashable],
        kind: str,
        payload: Any = None,
        size_bytes: int = 64,
        extra_delay: float = 0.0,
    ) -> list[Message]:
        """Send one message per destination, batch-scheduling delivery.

        Semantically identical to calling :meth:`send` once per
        destination in order — accounting, fault-hook calls, and loss
        draws happen per message in destination order, so the observable
        behaviour (including loss-RNG state and delivery tie-breaking)
        is bit-for-bit the same — but surviving deliveries are inserted
        with one :meth:`Simulation.schedule_many` call, which is what
        flooding/broadcast fan-out wants.
        """
        if size_bytes < 0:
            raise SimulationError(f"negative message size: {size_bytes}")
        cells = self._kind_cells
        if cells is not None:
            cells = cells.get(kind) or self._bind_kind(kind)
        messages: list[Message] = []
        batch: list[tuple[float, Callable[..., None], tuple]] = []
        send_one = self._send_one
        for dst in dsts:
            messages.append(
                send_one(src, dst, kind, payload, size_bytes, extra_delay,
                         cells, batch)
            )
        if batch:
            self._sim.schedule_many(batch)
        return messages

    def _deliver(self, msg: Message) -> None:
        handler = self._handlers.get(msg.dst)
        if handler is None:
            self.stats.dropped_no_handler += 1
            if self._drop_nohandler_cell is not None:
                self._drop_nohandler_cell.inc()
            if self._tracer is not None:
                self._tracer.emit(
                    "bus", "drop", time=self._sim.now,
                    src=msg.src, dst=msg.dst, kind=msg.kind, reason="no_handler",
                )
            return
        self.stats.delivered += 1
        cells = self._kind_cells
        if cells is not None:
            kc = cells.get(msg.kind)
            if kc is None:
                kc = self._bind_kind(msg.kind)
            kc[2].inc()
        handler(msg)
