"""Discrete-event simulation kernel.

Public surface:

- :class:`~repro.sim.engine.Simulation` — deterministic event loop.
- :class:`~repro.sim.process.PeriodicProcess` — recurring maintenance loops.
- :class:`~repro.sim.messages.MessageBus` / :class:`~repro.sim.messages.Message`
  — latency-aware unicast between endpoints.
- :class:`~repro.sim.churn.ChurnProcess` / :class:`~repro.sim.churn.ChurnConfig`
  — peer session dynamics.
- :class:`~repro.sim.requests.RequestManager` / :class:`~repro.sim.requests.RetryPolicy`
  — RPC timeouts with capped exponential backoff.
- :class:`~repro.sim.flows.FlowNetwork` / :func:`~repro.sim.flows.max_min_rates`
  / :func:`~repro.sim.flows.single_link_waterfill` — flow-level max-min
  fair bandwidth sharing over capacitated links.
- :class:`~repro.sim.queryplane.SeenFilter` /
  :class:`~repro.sim.queryplane.BoundedRouteTable` /
  :class:`~repro.sim.queryplane.SendLog` — bounded duplicate
  suppression, reverse-path routing state, and the message-level
  trace digest behind the frontier-batched query plane.
"""

from repro.sim.churn import ChurnConfig, ChurnProcess, draw_duration
from repro.sim.engine import EventHandle, Simulation
from repro.sim.flows import FlowNetwork, max_min_rates, single_link_waterfill
from repro.sim.messages import BusStats, Message, MessageBus
from repro.sim.process import PeriodicProcess, call_after
from repro.sim.queryplane import (
    QUERY_AUTO_NODE_THRESHOLD,
    BoundedRouteTable,
    SeenFilter,
    SendLog,
    flood_trace_digest,
)
from repro.sim.requests import RequestManager, RequestStats, RetryPolicy
from repro.sim.shard import (
    ShardedScheduler,
    configure_sharded_scheduling,
    sharded_scheduling_enabled,
)

__all__ = [
    "BoundedRouteTable",
    "BusStats",
    "ChurnConfig",
    "ChurnProcess",
    "EventHandle",
    "FlowNetwork",
    "Message",
    "MessageBus",
    "PeriodicProcess",
    "QUERY_AUTO_NODE_THRESHOLD",
    "RequestManager",
    "RequestStats",
    "RetryPolicy",
    "SeenFilter",
    "SendLog",
    "ShardedScheduler",
    "Simulation",
    "call_after",
    "configure_sharded_scheduling",
    "draw_duration",
    "flood_trace_digest",
    "max_min_rates",
    "sharded_scheduling_enabled",
    "single_link_waterfill",
]
