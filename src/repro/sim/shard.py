"""Region/AS-sharded event scheduling on top of ``Simulation.schedule_many``.

Population-scale operations (bootstrap joins, churn warm-up, maintenance
kickoff) schedule one event per host.  At 10^5–10^6 hosts, a
``heappush`` per host and a Python-level call per host is the dominant
cost of standing the network up.  :class:`ShardedScheduler` batches
this: callers *defer* events into per-shard buffers (sharded by
region/AS, so each shard's batch can be built from contiguous substrate
rows), and ``flush()`` inserts everything through one
:meth:`~repro.sim.engine.Simulation.schedule_many` call — one heapify
instead of N pushes.

Determinism contract
--------------------
``flush()`` replays the deferred events in **global arrival order**
(each ``defer`` is stamped; the per-shard buffers are merged back by
stamp), so sequence numbers, tie-breaking, and trace events are
bit-identical to calling ``sim.schedule`` once per event at defer time.
``tests/test_shard_schedule.py`` locks this down against the golden
trace digests: a sharded fig5/kademlia run and a serial one produce the
same digest.

The global default (:func:`configure_sharded_scheduling`) lets the
equivalence tests flip population-scale call sites between the sharded
and serial paths without threading a flag through every experiment.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Hashable, Iterable, Optional

from repro.sim.engine import EventHandle, Simulation

_SHARDED_DEFAULT = True


def configure_sharded_scheduling(enabled: bool) -> None:
    """Process-wide default for population-scale call sites
    (``GnutellaNetwork.join_all``, ``KademliaNetwork.bootstrap_all``,
    ``ChurnProcess.start``): sharded batch insertion when True, the
    serial per-event ``schedule`` reference path when False.  Both paths
    are bit-identical; the switch exists so the equivalence tests can
    compare them."""
    global _SHARDED_DEFAULT
    _SHARDED_DEFAULT = bool(enabled)


def sharded_scheduling_enabled() -> bool:
    return _SHARDED_DEFAULT


class ShardedScheduler:
    """Per-shard deferred event buffers with one batched flush.

    Parameters
    ----------
    sim:
        The simulation to insert into at :meth:`flush`.
    shard_of:
        Optional key function mapping the caller's shard argument to a
        shard id; by default the argument is used as the shard id
        directly (any hashable — AS numbers, region ids, ints).
    """

    def __init__(
        self,
        sim: Simulation,
        *,
        shard_of: Optional[Callable[[Hashable], Hashable]] = None,
    ) -> None:
        self._sim = sim
        self._shard_of = shard_of
        #: shard id -> list of (stamp, delay, callback, args), stamp-ordered
        self._buffers: dict[Hashable, list[tuple]] = {}
        self._stamp = itertools.count()
        self.deferred = 0
        self.flushes = 0

    # -- deferral -----------------------------------------------------------------
    def defer(
        self, shard: Hashable, delay: float, callback: Callable[..., None], *args: Any
    ) -> None:
        """Queue ``callback(*args)`` for ``delay`` after the *flush-time*
        clock, in the buffer of ``shard``."""
        if self._shard_of is not None:
            shard = self._shard_of(shard)
        self._buffers.setdefault(shard, []).append(
            (next(self._stamp), float(delay), callback, args)
        )
        self.deferred += 1

    def defer_many(
        self,
        shard: Hashable,
        items: Iterable[tuple[float, Callable[..., None], tuple]],
    ) -> None:
        """Queue a batch of ``(delay, callback, args)`` triples on one shard."""
        if self._shard_of is not None:
            shard = self._shard_of(shard)
        buf = self._buffers.setdefault(shard, [])
        stamp = self._stamp
        for delay, callback, args in items:
            buf.append((next(stamp), float(delay), callback, args))
            self.deferred += 1

    # -- introspection -------------------------------------------------------------
    @property
    def pending(self) -> int:
        return sum(len(b) for b in self._buffers.values())

    def shard_sizes(self) -> dict[Hashable, int]:
        """Deferred event count per shard (diagnostics/load balance)."""
        return {shard: len(buf) for shard, buf in self._buffers.items()}

    # -- flush ---------------------------------------------------------------------
    def flush(self) -> list[EventHandle]:
        """Insert every deferred event with one ``schedule_many``.

        The per-shard buffers (each already stamp-ordered) are k-way
        merged back into global arrival order, so the heap receives the
        events exactly as a serial caller would have scheduled them.
        """
        if not self._buffers:
            return []
        buffers = [self._buffers[k] for k in sorted(self._buffers, key=repr)]
        if len(buffers) == 1:
            merged = buffers[0]
        else:
            merged = list(heapq.merge(*buffers, key=lambda item: item[0]))
        self._buffers.clear()
        self.flushes += 1
        return self._sim.schedule_many(
            (delay, callback, args) for _stamp, delay, callback, args in merged
        )
