"""FIG3 — the collection taxonomy, measured.

Figure 3 classifies collection techniques per information type.  This
experiment runs every implemented technique against the *same* underlay
and reports, per technique, the two quantities the survey discusses
qualitatively: **accuracy** (technique-specific, normalised so higher is
better) and **overhead** (bytes on the wire per peer served) — turning
the taxonomy diagram into a measured trade-off table.
"""

from __future__ import annotations

import numpy as np

from repro.collection import (
    GPSService,
    IPToISPMapping,
    IPToLocationMapping,
    ISPOracle,
    PingService,
    SkyEyeOverlay,
    SyntheticCDN,
)
from repro.coords import VivaldiConfig, VivaldiSystem, evaluate_embedding
from repro.experiments.common import ExperimentResult
from repro.experiments.common import generate_underlay
from repro.underlay.network import UnderlayConfig


def run_fig3(n_hosts: int = 80, seed: int = 21) -> ExperimentResult:
    """Measure every Figure 3 collection technique on one underlay."""
    underlay = generate_underlay(UnderlayConfig(n_hosts=n_hosts, seed=seed))
    ids = underlay.host_ids()
    result = ExperimentResult(
        "FIG3", "Collection techniques: measured accuracy vs overhead"
    )

    # --- ISP-location -----------------------------------------------------------
    mapping = IPToISPMapping(underlay, accuracy=0.95)
    acc = 1.0 - mapping.error_rate(ids)
    result.add_row(
        info="isp-location", method="ip-to-isp-mapping",
        accuracy=acc,
        overhead_bytes=mapping.overhead.bytes_on_wire / len(ids),
        overhead_unit="per peer",
    )

    oracle = ISPOracle(underlay)
    correct = 0
    for h in ids:
        ranked = oracle.rank(h, [x for x in ids if x != h])
        top_asn = underlay.asn_of(ranked[0])
        best_hops = min(
            underlay.routing.hops(underlay.asn_of(h), underlay.asn_of(x))
            for x in ids
            if x != h
        )
        if underlay.routing.hops(underlay.asn_of(h), top_asn) == best_hops:
            correct += 1
    result.add_row(
        info="isp-location", method="isp-component-in-network",
        accuracy=correct / len(ids),
        overhead_bytes=oracle.overhead.bytes_on_wire / len(ids),
        overhead_unit="per peer",
    )

    cdn = SyntheticCDN(underlay, n_edges=10, rng=seed)
    maps = {h.host_id: cdn.ratio_map(h, samples=24) for h in underlay.hosts}
    # accuracy: same-AS pairs judged close minus far pairs judged close
    same_hit = far_hit = same_n = far_n = 0
    hosts = underlay.hosts
    for i, a in enumerate(hosts):
        for b in hosts[i + 1 :]:
            sim_ab = cdn.cosine_similarity(maps[a.host_id], maps[b.host_id])
            close = sim_ab >= 0.9
            if a.asn == b.asn:
                same_n += 1
                same_hit += close
            elif underlay.topology.asys(a.asn).region != underlay.topology.asys(b.asn).region:
                far_n += 1
                far_hit += close
    cdn_acc = (same_hit / same_n if same_n else 0.0) - (far_hit / far_n if far_n else 0.0)
    result.add_row(
        info="isp-location", method="cdn-provided-information",
        accuracy=cdn_acc,
        overhead_bytes=cdn.overhead.bytes_on_wire / len(ids),
        overhead_unit="per peer",
    )

    # --- Latency -------------------------------------------------------------------
    # Both techniques are charged per *pair whose latency they can answer*:
    # explicit measurement answers only measured pairs (O(n^2) total cost),
    # prediction answers every pair from O(n) samples per node — the
    # survey's core trade-off.
    rtt = underlay.rtt_matrix()
    sample = min(25, n_hosts)
    ping = PingService(underlay, rng=seed)
    measured = ping.measure_matrix(ids[:sample], probes=3)
    rel_err = np.abs(measured - rtt[:sample, :sample])[np.triu_indices(sample, 1)]
    denom = rtt[:sample, :sample][np.triu_indices(sample, 1)]
    ping_acc = 1.0 - float(np.median(rel_err / np.maximum(denom, 1e-9)))
    pairs_measured = sample * (sample - 1) // 2
    result.add_row(
        info="latency", method="explicit-measurements",
        accuracy=ping_acc,
        overhead_bytes=ping.overhead.bytes_on_wire / pairs_measured,
        overhead_unit="per pair",
    )

    viv = VivaldiSystem(rtt, VivaldiConfig(dim=2, use_height=True), rng=seed)
    viv.run(rounds=15, neighbors_per_round=4)
    report = evaluate_embedding(viv.estimated_matrix(), rtt)
    # overhead: each sample is one ping exchange (2 packets à 64B), but
    # the resulting coordinates answer all C(n,2) pairs
    pairs_covered = n_hosts * (n_hosts - 1) // 2
    result.add_row(
        info="latency", method="prediction-methods",
        accuracy=1.0 - report.median_relative_error,
        overhead_bytes=viv.samples_used * 128 / pairs_covered,
        overhead_unit="per pair",
    )

    # --- Geolocation -----------------------------------------------------------------
    # GPS is metre-accurate but only covers peers with a fix; IP-to-location
    # covers everyone with 100+ km errors — accuracy and coverage reported
    # separately so the trade-off is visible.
    gps = GPSService(underlay, availability=0.6)
    fixes = [gps.position_of(h) for h in ids]
    errs = [
        p.distance_to(underlay.host(h).position)
        for h, p in zip(ids, fixes)
        if p is not None
    ]
    diag = 5000.0
    result.add_row(
        info="geolocation", method="gps",
        accuracy=1.0 - float(np.median(errs)) / diag,
        coverage=len(errs) / len(ids),
        overhead_bytes=0.0,
        overhead_unit="per peer",
    )

    ipl = IPToLocationMapping(underlay, error_km=150.0)
    med = ipl.median_error_km(ids)
    result.add_row(
        info="geolocation", method="ip-to-location-mapping",
        accuracy=1.0 - med / diag,
        coverage=1.0,
        overhead_bytes=ipl.overhead.bytes_on_wire / len(ids),
        overhead_unit="per peer",
    )

    # --- Peer resources -----------------------------------------------------------------
    sky = SkyEyeOverlay(ids, branching=4, top_k=10)
    for h in underlay.hosts:
        sky.report(h.host_id, h.resources)
    sky.run_aggregation_round()
    true_top = {
        h.host_id
        for h in sorted(
            underlay.hosts, key=lambda x: x.resources.capacity_score(), reverse=True
        )[:10]
    }
    got = set(sky.top_capacity_peers(10))
    result.add_row(
        info="peer-resources", method="information-management-overlay",
        accuracy=len(got & true_top) / 10.0,
        overhead_bytes=sky.overhead.bytes_on_wire / len(ids),
        overhead_unit="per peer",
    )
    return result
