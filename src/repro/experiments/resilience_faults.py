"""RESILIENCE — lookup success and stretch under injected faults (§5.4).

The survey leaves "robustness especially against churn [and failures]"
as the open evaluation question for underlay-aware overlays.  This
experiment answers it operationally: the same Kademlia workload runs
once per fault scenario — message loss bursts of increasing severity, an
AS partition that cuts the largest ISP cluster off, and peer crashes
with later recovery — for an underlay-unaware arm and an underlay-aware
arm (proximity neighbor selection + proximity routing).  Faults are
injected by :class:`~repro.faults.injector.FaultInjector` interposing on
the message bus; the protocols recover only through the generic
:class:`~repro.sim.requests.RequestManager` retry path.

Reported per (scenario, arm): lookup success rate, mean latency of the
successful lookups, their stretch over the direct underlay RTT to the
content owner (:func:`~repro.metrics.resilience.stretch_summary`), the
retry/failure counts the request layer paid, and what the injector
actually dropped.

Expected shape: with no faults both arms succeed and the aware arm has
lower latency/stretch; under loss both degrade but retries keep success
high; under the AS partition the aware arm — whose routing tables are
biased toward intra-AS contacts — keeps more lookups local and loses
less than the unaware arm.
"""

from __future__ import annotations

from collections import Counter as TallyCounter

import numpy as np

from repro.experiments.common import ExperimentResult, generate_underlay
from repro.faults import (
    CrashFault,
    FaultInjector,
    FaultSchedule,
    LossFault,
    PartitionFault,
)
from repro.metrics.resilience import stretch_summary
from repro.overlay.kademlia import KademliaConfig, KademliaNetwork
from repro.rng import ensure_rng
from repro.runner import run_arms
from repro.sim.engine import Simulation
from repro.underlay.network import Underlay, UnderlayConfig
from repro.underlay.topology import TopologyConfig

#: The two overlay arms: identical protocol, different neighbor knowledge.
ARMS: tuple[tuple[str, KademliaConfig], ...] = (
    ("unaware", KademliaConfig()),
    ("aware", KademliaConfig(proximity_buckets=True, proximity_routing=True)),
)

FULL_SCENARIOS = ("baseline", "loss_0.15", "loss_0.35", "partition", "crash")
SMOKE_SCENARIOS = ("baseline", "loss_0.35", "partition")


def _largest_as(underlay: Underlay) -> int:
    """The ASN hosting the most peers — the ISP cluster worth cutting."""
    counts = TallyCounter(h.asn for h in underlay.hosts)
    return max(sorted(counts), key=counts.__getitem__)


def _scenario_schedule(
    name: str,
    t0: float,
    window_ms: float,
    underlay: Underlay,
    rng: np.random.Generator,
) -> FaultSchedule:
    """Build one named scenario's schedule, anchored at sim time ``t0``."""
    if name == "baseline":
        return FaultSchedule()
    if name.startswith("loss_"):
        rate = float(name.split("_", 1)[1])
        return FaultSchedule(
            (LossFault(start=t0, end=t0 + window_ms, rate=rate),)
        )
    if name == "partition":
        # Cut the largest ISP cluster off for 60% of the window; retries
        # outliving the partition get to witness the healing.
        return FaultSchedule((
            PartitionFault(
                start=t0,
                end=t0 + 0.6 * window_ms,
                groups=(frozenset({_largest_as(underlay)}),),
            ),
        ))
    if name == "crash":
        ids = sorted(h.host_id for h in underlay.hosts)
        k = max(2, len(ids) // 5)
        chosen = rng.choice(len(ids), size=k, replace=False)
        peers = tuple(ids[int(i)] for i in sorted(chosen))
        return FaultSchedule((
            CrashFault(
                at=t0 + 1_000.0, peers=peers, recover_at=t0 + 0.5 * window_ms
            ),
        ))
    raise ValueError(f"unknown fault scenario {name!r}")


def _run_arm(
    underlay: Underlay,
    config: KademliaConfig,
    scenario: str,
    run_seed: int,
    *,
    n_publishes: int,
    n_lookups: int,
    settle_ms: float,
    window_ms: float,
    drain_ms: float,
) -> dict[str, float]:
    """One (scenario, arm) cell: bootstrap, publish, inject, measure."""
    sim = Simulation()
    bus, _ = underlay.message_bus(sim, with_accounting=False)
    rng = ensure_rng(run_seed)
    net = KademliaNetwork(underlay, sim, bus, config=config, rng=rng)
    net.add_all_hosts()
    net.bootstrap_all()
    sim.run(until=settle_ms)

    ids = sorted(net.nodes)
    keys = [
        net.publish(ids[int(rng.integers(len(ids)))], f"content-{i}")
        for i in range(n_publishes)
    ]
    sim.run(until=sim.now + settle_ms)

    t0 = sim.now
    schedule = _scenario_schedule(scenario, t0, window_ms, underlay, rng)
    injector = FaultInjector(
        sim,
        bus,
        schedule,
        asn_of=underlay.asn_of,
        on_crash=lambda hid: net.nodes[hid].go_offline(),
        on_recover=lambda hid: net.nodes[hid].go_online(),
        seed=run_seed + 7,
    )
    injector.start()

    pending = []
    for _ in range(n_lookups):
        origin = ids[int(rng.integers(len(ids)))]
        key = keys[int(rng.integers(len(keys)))]
        results: list = []
        net.lookup_value(origin, key, results)
        pending.append((origin, results))
    sim.run(until=t0 + window_ms + drain_ms)

    achieved, baseline = [], []
    successes = 0
    for origin, results in pending:
        if not results or not results[0].found_value:
            continue
        successes += 1
        r = results[0]
        achieved.append(r.latency_ms)
        baseline.append(
            min(2.0 * underlay.one_way_delay(origin, v) for v in r.values)
        )
    stretch = stretch_summary(achieved, baseline)
    return {
        "success_rate": successes / n_lookups,
        "mean_latency_ms": float(np.mean(achieved)) if achieved else float("nan"),
        "mean_stretch": stretch["mean_stretch"],
        "requests_retried": sum(
            n.requests.stats.retried for n in net.nodes.values()
        ),
        "requests_failed": sum(
            n.requests.stats.failed for n in net.nodes.values()
        ),
        "messages_dropped": injector.stats.messages_dropped,
        "peers_crashed": injector.stats.crashes,
    }


def run_resilience_faults(
    n_hosts: int = 48,
    seed: int = 23,
    *,
    smoke: bool = False,
    n_publishes: int = 8,
    n_lookups: int = 24,
    settle_ms: float = 30_000.0,
    window_ms: float = 45_000.0,
    drain_ms: float = 60_000.0,
    workers: int | None = None,
) -> ExperimentResult:
    """Sweep fault scenarios for underlay-aware vs unaware Kademlia.

    ``smoke=True`` shrinks the population, workload, and scenario list to
    a seconds-scale CI check with the identical code path.  The
    (scenario × arm) cells — each an independent simulation over the
    shared read-only underlay — fan out through
    :func:`repro.runner.run_arms`; rows are identical at any worker
    count because each cell derives its RNG from its grid position.
    """
    scenarios = FULL_SCENARIOS
    if smoke:
        n_hosts = min(n_hosts, 24)
        n_publishes = min(n_publishes, 4)
        n_lookups = min(n_lookups, 8)
        settle_ms = min(settle_ms, 20_000.0)
        window_ms = min(window_ms, 30_000.0)
        drain_ms = min(drain_ms, 45_000.0)
        scenarios = SMOKE_SCENARIOS
    underlay = generate_underlay(
        UnderlayConfig(
            topology=TopologyConfig(n_tier1=2, n_tier2=4, n_stub=8, n_regions=3),
            n_hosts=n_hosts,
            seed=seed,
        )
    )
    result = ExperimentResult(
        "RESILIENCE",
        "Lookup success & stretch under injected faults, aware vs unaware",
    )
    grid = [
        (si, scenario, ai, arm, config)
        for si, scenario in enumerate(scenarios)
        for ai, (arm, config) in enumerate(ARMS)
    ]

    def run_cell(cell_spec: tuple) -> dict[str, float]:
        # the shared underlay is read-only substrate: forked workers
        # inherit it, so no worker regenerates it
        si, scenario, ai, _arm, config = cell_spec
        return _run_arm(
            underlay,
            config,
            scenario,
            seed + 101 * si + 13 * ai,
            n_publishes=n_publishes,
            n_lookups=n_lookups,
            settle_ms=settle_ms,
            window_ms=window_ms,
            drain_ms=drain_ms,
        )

    for (_si, scenario, _ai, arm, _config), cell in zip(
        grid, run_arms(run_cell, grid, workers=workers)
    ):
        result.add_row(scenario=scenario, arm=arm, **cell)
    result.notes.append(
        "stretch baseline is the direct RTT to the content owner; values "
        "below 1 mean a replica closer than the owner served the lookup"
    )
    result.notes.append(
        "expected shape: baseline succeeds on both arms with the aware arm "
        "faster; loss bursts cost retries but retries keep success up; the "
        "AS partition hurts the unaware arm at least as much as the aware "
        "one, whose tables lean on intra-AS contacts"
    )
    return result
