"""TAB1 — the catalogue of underlay-aware systems, exercised.

Table 1 lists the prominent systems per information type.  This
experiment walks the registry (:mod:`repro.core.taxonomy`), instantiates
one representative per implemented technique on a common small underlay,
and reports each system's headline metric — the registry is therefore
not documentation but executable coverage of the survey's Table 1.
"""

from __future__ import annotations

import numpy as np

from repro.collection import ISPOracle, SkyEyeOverlay, SyntheticCDN
from repro.coords import (
    GNPConfig,
    GNPSystem,
    ICS,
    ICSConfig,
    VivaldiConfig,
    VivaldiSystem,
    evaluate_embedding,
)
from repro.core.taxonomy import TABLE1_SYSTEMS
from repro.experiments.common import ExperimentResult
from repro.overlay.bittorrent import SwarmConfig, SwarmSimulation, Torrent, Tracker, TrackerPolicy
from repro.overlay.geo import GlobaseOverlay
from repro.overlay.kademlia import KademliaConfig, KademliaNetwork
from repro.overlay.superpeer import ElectionPolicy, SuperPeerOverlay
from repro.sim.engine import Simulation
from repro.experiments.common import generate_underlay
from repro.underlay.network import UnderlayConfig


def run_table1(n_hosts: int = 80, seed: int = 23) -> ExperimentResult:
    """Run one representative per Table 1 class; returns their headline metrics."""
    underlay = generate_underlay(UnderlayConfig(n_hosts=n_hosts, seed=seed))
    ids = underlay.host_ids()
    rtt = underlay.rtt_matrix()
    result = ExperimentResult(
        "TAB1", "Representative underlay-aware systems on one underlay"
    )

    # --- ISP-location representatives -----------------------------------------
    oracle = ISPOracle(underlay)
    ranked = oracle.rank(ids[0], ids[1:])
    top_hops = underlay.routing.hops(
        underlay.asn_of(ids[0]), underlay.asn_of(ranked[0])
    )
    result.add_row(
        system="Oracle [1]", info="isp-location",
        metric="AS hops of top-ranked candidate", value=float(top_hops),
    )

    torrent = Torrent(0, n_pieces=48)
    reports = {}
    for policy in (TrackerPolicy.RANDOM, TrackerPolicy.BIASED):
        tracker = Tracker(underlay, policy=policy, rng=seed)
        swarm = SwarmSimulation(underlay, torrent, tracker,
                                config=SwarmConfig(), rng=seed + 1)
        swarm.populate(leechers=ids[2:50], seeds=ids[:2])
        reports[policy] = swarm.run(max_time_s=1200, dt=2.0)
    bns_gain = (
        reports[TrackerPolicy.RANDOM].transit_fraction
        - reports[TrackerPolicy.BIASED].transit_fraction
    )
    result.add_row(
        system="BNS [3]", info="isp-location",
        metric="transit-traffic fraction cut vs random tracker",
        value=float(bns_gain),
    )

    cdn = SyntheticCDN(underlay, n_edges=10, rng=seed)
    hosts = underlay.hosts[:40]
    maps = {h.host_id: cdn.ratio_map(h, samples=20) for h in hosts}
    same, diff = [], []
    for i, a in enumerate(hosts):
        for b in hosts[i + 1 :]:
            s = cdn.cosine_similarity(maps[a.host_id], maps[b.host_id])
            (same if a.asn == b.asn else diff).append(s)
    result.add_row(
        system="Ono [5]", info="isp-location",
        metric="ratio-map similarity gap (same-AS minus other)",
        value=float(np.mean(same) - np.mean(diff)) if same and diff else 0.0,
    )

    # --- Latency representatives --------------------------------------------------
    viv = VivaldiSystem(rtt, VivaldiConfig(dim=3, use_height=True), rng=seed)
    viv.run(rounds=30, neighbors_per_round=8)
    rep = evaluate_embedding(viv.estimated_matrix(), rtt)
    result.add_row(
        system="Vivaldi [7]", info="latency",
        metric="median relative embedding error", value=rep.median_relative_error,
    )

    nb = 10
    ics = ICS(rtt[:nb, :nb], ICSConfig(variance_threshold=0.95))
    coords = ics.host_coordinates(rtt[:, :nb])
    diffm = coords[:, None, :] - coords[None, :, :]
    pred = np.sqrt(np.einsum("ijk,ijk->ij", diffm, diffm))
    np.fill_diagonal(pred, 0.0)
    rep = evaluate_embedding(pred, rtt)
    result.add_row(
        system="ICS [20]", info="latency",
        metric="median relative embedding error", value=rep.median_relative_error,
    )

    gnp = GNPSystem(rtt[:nb, :nb], GNPConfig(dim=3), seed=seed)
    rep = evaluate_embedding(gnp.estimated_matrix(), rtt[:nb, :nb])
    result.add_row(
        system="GNP/landmarks [26]", info="latency",
        metric="median relative embedding error (landmarks)",
        value=rep.median_relative_error,
    )

    pns_rtts = {}
    for pns in (False, True):
        sim = Simulation()
        bus, _ = underlay.message_bus(sim, with_accounting=False)
        net = KademliaNetwork(
            underlay, sim, bus,
            config=KademliaConfig(proximity_buckets=pns), rng=seed,
        )
        net.add_all_hosts()
        net.bootstrap_all()
        sim.run(until=120_000)
        net.run_value_workload(20, 60)
        pns_rtts[pns] = net.mean_contact_rtt()
    result.add_row(
        system="Proximity in Kademlia [17][4]", info="latency",
        metric="routing-table contact RTT cut by PNS",
        value=float(1.0 - pns_rtts[True] / pns_rtts[False]),
    )

    # --- Geolocation representative ---------------------------------------------------
    geo = GlobaseOverlay(underlay, zone_capacity=6)
    geo.join_all()
    rnd = np.random.default_rng(seed)
    rand_pairs = rnd.choice(n_hosts, size=(100, 2))
    rand_dist = float(np.mean([
        underlay.hosts[a].position.distance_to(underlay.hosts[b].position)
        for a, b in rand_pairs if a != b
    ]))
    result.add_row(
        system="Globase.KOM [19]", info="geolocation",
        metric="zone co-member distance / random-pair distance (km ratio)",
        value=geo.geographic_neighbor_coherence() / rand_dist,
    )

    # --- Peer resources representatives --------------------------------------------------
    sky = SkyEyeOverlay(ids, branching=4, top_k=10)
    for h in underlay.hosts:
        sky.report(h.host_id, h.resources)
    sky.run_aggregation_round()
    true_top = {
        h.host_id
        for h in sorted(underlay.hosts,
                        key=lambda x: x.resources.capacity_score(), reverse=True)[:10]
    }
    result.add_row(
        system="SkyEye.KOM [11]", info="peer-resources",
        metric="top-10 capacity recall at the root",
        value=len(set(sky.top_capacity_peers(10)) & true_top) / 10.0,
    )

    sessions = {}
    for pol in (ElectionPolicy.RANDOM, ElectionPolicy.CAPACITY):
        sp = SuperPeerOverlay(underlay, policy=pol, superpeer_fraction=0.15, rng=seed)
        sp.elect()
        sp.attach_leaves()
        sessions[pol] = sp.report().mean_superpeer_session_h
    result.add_row(
        system="Bandwidth/capacity-aware roles [6][11]", info="peer-resources",
        metric="super-peer session-time gain vs random election",
        value=float(sessions[ElectionPolicy.CAPACITY] / sessions[ElectionPolicy.RANDOM] - 1.0),
    )

    # bandwidth-aware chunk scheduling in a capacity-tight P2P-TV swarm
    from repro.overlay.streaming import (
        SchedulerPolicy,
        StreamConfig,
        StreamingSwarm,
    )

    src = max(
        underlay.hosts, key=lambda h: h.resources.bandwidth_up_kbps
    ).host_id
    viewers = [i for i in ids if i != src][:50]
    continuity = {}
    for policy in (SchedulerPolicy.RANDOM, SchedulerPolicy.BANDWIDTH_AWARE):
        swarm = StreamingSwarm(
            underlay, src, viewers,
            config=StreamConfig(bitrate_kbps=1800.0, source_copies=3),
            policy=policy, rng=seed,
        )
        continuity[policy] = swarm.run(100).mean_continuity
    result.add_row(
        system="Bandwidth-aware P2P-TV [6]", info="peer-resources",
        metric="playback-continuity gain over random scheduling",
        value=float(
            continuity[SchedulerPolicy.BANDWIDTH_AWARE]
            - continuity[SchedulerPolicy.RANDOM]
        ),
    )

    result.notes.append(
        f"registry covers {len(TABLE1_SYSTEMS)} surveyed systems; "
        "non-representative entries map to the same implemented techniques"
    )
    return result
