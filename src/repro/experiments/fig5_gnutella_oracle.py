"""FIG5 — Gnutella with and without the oracle (Aggarwal et al. [1]).

Reproduces the two artefacts embedded in the survey's Figure 5:

1. the **message-count table** (Ping/Pong/Query/QueryHit for unbiased
   Gnutella vs oracle-biased with candidate-list sizes 100 and 1000) —
   expected shape: every row shrinks under bias, and the larger list
   shrinks it further;
2. the **overlay visualisation statistics** (intra-AS edge fraction and
   AS-modularity, i.e. the clustering visible in the plotted topologies);
3. the **file-exchange localisation** arms: intra-AS download fraction for
   unbiased, oracle-at-bootstrap, and oracle-at-both-stages — the
   6.5% → ~10% → ~40% progression of [1].

Absolute counts differ from the paper (their network had tens of
thousands of peers; ours is a few hundred) but the ratios are the result.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.collection.oracle import ISPOracle
from repro.experiments.common import ExperimentResult
from repro.metrics.locality import as_modularity, intra_as_edge_fraction
from repro.metrics.message_stats import gnutella_table_row
from repro.overlay.gnutella import GnutellaConfig, GnutellaNetwork, NeighborPolicy
from repro.sim.engine import Simulation
from repro.experiments.common import generate_underlay
from repro.underlay.network import UnderlayConfig
from repro.underlay.topology import TopologyConfig
from repro.workloads.content import CatalogConfig, ContentCatalog


@dataclass
class GnutellaArmResult:
    """Measured outputs of one Figure 5 arm."""
    name: str
    counts: dict[str, int]
    intra_edge_fraction: float
    modularity: float
    search_success: float
    intra_download_fraction: float
    downloads: int
    dot: str = ""  # Graphviz rendering of the overlay (the Figure 5 panel)


def _run_arm(
    *,
    name: str,
    policy: NeighborPolicy,
    oracle_list_limit: Optional[int],
    biased_download: bool,
    n_hosts: int,
    cache_fill: int,
    seed: int,
    query_backend: str = "auto",
) -> GnutellaArmResult:
    underlay = generate_underlay(
        UnderlayConfig(
            topology=TopologyConfig(n_tier1=3, n_tier2=8, n_stub=20, n_regions=5),
            n_hosts=n_hosts,
            seed=seed,
        )
    )
    sim = Simulation()
    bus, _acct = underlay.message_bus(sim)
    oracle = ISPOracle(underlay)
    net = GnutellaNetwork(
        underlay,
        sim,
        bus,
        config=GnutellaConfig(query_ttl=5, max_up_neighbors=6),
        policy=policy,
        oracle=oracle,
        oracle_list_limit=oracle_list_limit,
        biased_download=biased_download,
        rng=seed + 1,
        query_backend=query_backend,
    )
    net.add_population(underlay.hosts)
    net.bootstrap(cache_fill=cache_fill)
    net.join_all()
    sim.run()

    # locality-correlated interest (Rasti et al. [25]): users' queries tend
    # toward content shared in their own proximity
    catalog = ContentCatalog(
        CatalogConfig(n_files=max(40, n_hosts // 4), locality_bias=0.55),
        rng=seed + 2,
    )
    shared = catalog.assign_shared_content(underlay.hosts, files_per_host=6)
    for hid, files in shared.items():
        net.share_content(hid, files)
    net.ping_round()
    sim.run()

    guids = []
    for h in underlay.hosts:
        guids.append(net.search(h.host_id, catalog.draw_query(h.asn)))
    sim.run()
    for g in guids:
        net.download_stage(g)
    sim.run()

    dls = [
        rec
        for rec in net.searches.values()
        if rec.downloaded_from is not None
    ]
    intra_dl = sum(
        1
        for rec in dls
        if underlay.asn_of(rec.downloaded_from) == underlay.asn_of(rec.origin)
    )
    graph = net.overlay_graph()
    from repro.viz import dot_overlay

    return GnutellaArmResult(
        name=name,
        counts=gnutella_table_row(net.message_counts()),
        intra_edge_fraction=intra_as_edge_fraction(
            graph, underlay.asn_of
        ),
        modularity=as_modularity(graph, underlay.asn_of),
        search_success=net.search_success_rate(),
        intra_download_fraction=intra_dl / len(dls) if dls else 0.0,
        downloads=len(dls),
        dot=dot_overlay(
            graph, underlay.asn_of, role_of=net.role_of, title=name
        ),
    )


def run_fig5(
    n_hosts: int = 300,
    cache_fill: int = 250,
    seed: int = 11,
    dot_path_prefix: str | None = None,
    query_backend: str = "auto",
) -> ExperimentResult:
    """The full Figure 5 reproduction: four arms over one underlay seed.

    With ``dot_path_prefix``, the unbiased and biased overlay panels of
    the paper's Figure 5 visualisation are written as Graphviz files.
    ``query_backend`` selects the flood expansion path (``"auto"``
    batches above the population threshold; ``"batch"``/``"reference"``
    force one side — the two are trace-equivalent).
    """
    arms = [
        ("unbiased", NeighborPolicy.UNBIASED, None, False),
        ("biased_cache_small", NeighborPolicy.BIASED, cache_fill // 5, False),
        ("biased_cache_large", NeighborPolicy.BIASED, cache_fill, False),
        ("biased_both_stages", NeighborPolicy.BIASED, cache_fill, True),
    ]
    result = ExperimentResult(
        "FIG5",
        "Gnutella message counts and localisation: unbiased vs oracle",
    )
    panels: dict[str, str] = {}
    for name, policy, limit, biased_dl in arms:
        arm = _run_arm(
            name=name,
            policy=policy,
            oracle_list_limit=limit,
            biased_download=biased_dl,
            n_hosts=n_hosts,
            cache_fill=cache_fill,
            seed=seed,
            query_backend=query_backend,
        )
        panels[name] = arm.dot
        result.add_row(
            arm=arm.name,
            **arm.counts,
            intra_edges=arm.intra_edge_fraction,
            modularity=arm.modularity,
            success=arm.search_success,
            intra_downloads=arm.intra_download_fraction,
        )
    result.notes.append(
        "paper table (x10^6): Ping 7.6/6.1/4.0, Pong 75.5/59.0/39.1, "
        "Query 6.3/4.0/2.3, QueryHit 3.5/2.9/1.9 for unbiased/cache100/cache1000"
    )
    result.notes.append(
        "paper localisation: intra-AS file exchange 6.5% unbiased, 7.3%/10.02% "
        "oracle at bootstrap, 40.57% oracle at both stages"
    )
    if dot_path_prefix is not None:
        for name in ("unbiased", "biased_cache_large"):
            path = f"{dot_path_prefix}_{name}.dot"
            with open(path, "w") as fh:
                fh.write(panels[name])
            result.notes.append(f"figure panel written: {path}")
    return result
