"""TESTLAB — the controlled 45-node Gnutella experiments of [1], §5.

Setup transcribed from the paper: four 5-AS topologies (ring, star, tree,
random mesh); each AS hosts 9 Gnutella nodes — per "machine", one
ultrapeer and two leaves, three machines per AS.  Two file-distribution
schemes: *uniform* (every node shares 6 files) and *variable* (ultrapeers
share 12, half the leaves 6, the rest none) — 270 unique files either
way.  45 unique search strings, one per node, flooded through the
network; both an unbiased and an oracle-biased run execute the same
query set.

Reported per (topology × scheme × policy): Query/QueryHit message counts,
search success (the paper found biasing causes no additional failures),
and the intra-AS fraction of overlay connections.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.collection.oracle import ISPOracle
from repro.errors import ConfigurationError
from repro.experiments.common import ExperimentResult
from repro.metrics.locality import intra_as_edge_fraction
from repro.overlay.gnutella import (
    GnutellaConfig,
    GnutellaNetwork,
    LEAF,
    NeighborPolicy,
    ULTRAPEER,
)
from repro.runner import run_arms
from repro.sim.engine import Simulation
from repro.underlay.autonomous_system import AutonomousSystem, Tier
from repro.underlay.geometry import Position
from repro.underlay.hosts import HostFactory
from repro.underlay.network import Underlay
from repro.underlay.topology import InternetTopology

TESTLAB_TOPOLOGIES = ("ring", "star", "tree", "mesh")


def testlab_topology(kind: str) -> InternetTopology:
    """Build one of the four 5-AS testlab topologies.

    Inter-AS links are expressed as provider/customer relations so the
    valley-free router still applies; in the testlab a "router is taken
    as an abstraction of an AS boundary", so the economics are nominal.
    """
    if kind not in TESTLAB_TOPOLOGIES:
        raise ConfigurationError(
            f"unknown testlab topology {kind!r}; expected one of {TESTLAB_TOPOLOGIES}"
        )
    r = 300.0
    positions = [
        Position(1000 + r * math.cos(2 * math.pi * i / 5),
                 1000 + r * math.sin(2 * math.pi * i / 5))
        for i in range(5)
    ]
    ases = [
        AutonomousSystem(asn=i, tier=Tier.STUB, position=positions[i], region=0)
        for i in range(5)
    ]

    def transit(provider: int, customer: int) -> None:
        ases[provider].customers.add(customer)
        ases[customer].providers.add(provider)
        ases[provider].tier = Tier.TIER2  # providers sit higher nominally

    def peer(a: int, b: int) -> None:
        ases[a].peers.add(b)
        ases[b].peers.add(a)

    if kind == "ring":
        for i in range(5):
            transit((i + 1) % 5, i)
    elif kind == "star":
        for i in range(1, 5):
            transit(0, i)
    elif kind == "tree":
        transit(0, 1)
        transit(0, 2)
        transit(1, 3)
        transit(2, 4)
    else:  # mesh: star backbone plus peer shortcuts
        for i in range(1, 5):
            transit(0, i)
        peer(1, 2)
        peer(2, 3)
        peer(3, 4)
    # in the ring every AS both provides and consumes; normalise tiers so
    # tests can still ask "who is a provider"
    return InternetTopology(ases)


def build_testlab_underlay(kind: str, *, seed: int = 5) -> Underlay:
    """5 ASes × 9 hosts = the 45-node testlab network."""
    topology = testlab_topology(kind)
    factory = HostFactory(topology, host_spread_km=20.0, rng=seed)
    hosts = factory.create_hosts(45, asns=[0, 1, 2, 3, 4])
    return Underlay(topology, hosts)


def _assign_roles(net: GnutellaNetwork, underlay: Underlay) -> None:
    """Per machine: one ultrapeer + two leaves (host index mod 3)."""
    for i, h in enumerate(underlay.hosts):
        net.add_node(h, ULTRAPEER if i % 3 == 0 else LEAF)


def _file_assignment(
    net: GnutellaNetwork, underlay: Underlay, scheme: str
) -> dict[int, list[int]]:
    """270 unique files per the paper's two schemes."""
    if scheme not in ("uniform", "variable"):
        raise ConfigurationError(f"unknown file scheme {scheme!r}")
    next_file = 0
    assignment: dict[int, list[int]] = {}
    ups = [n.host_id for n in net.ultrapeers()]
    leaves = [n.host_id for n in net.leaves()]
    if scheme == "uniform":
        for h in underlay.hosts:
            assignment[h.host_id] = list(range(next_file, next_file + 6))
            next_file += 6
    else:
        for up in ups:
            assignment[up] = list(range(next_file, next_file + 12))
            next_file += 12
        half = len(leaves) // 2
        for leaf in leaves[:half]:
            assignment[leaf] = list(range(next_file, next_file + 6))
            next_file += 6
        for leaf in leaves[half:]:
            assignment[leaf] = []
    for hid, files in assignment.items():
        net.share_content(hid, files)
    return assignment


def run_testlab_arm(
    kind: str,
    scheme: str,
    policy: NeighborPolicy,
    *,
    seed: int = 5,
) -> dict:
    """Run one (topology, scheme, policy) testlab arm; returns its row."""
    underlay = build_testlab_underlay(kind, seed=seed)
    sim = Simulation()
    bus, _ = underlay.message_bus(sim, with_accounting=False)
    net = GnutellaNetwork(
        underlay,
        sim,
        bus,
        config=GnutellaConfig(query_ttl=5, max_up_neighbors=4, leaf_connections=2),
        policy=policy,
        oracle=ISPOracle(underlay),
        rng=seed + 3,
    )
    _assign_roles(net, underlay)
    net.bootstrap(cache_fill=20)
    net.join_all()
    sim.run()
    assignment = _file_assignment(net, underlay, scheme)
    sim.run()  # deliver the SHARE announcements before querying
    # 45 unique search strings: node i searches a file shared by the node
    # a fixed offset away (so each query has a well-defined unique target)
    sharers = [hid for hid, files in assignment.items() if files]
    rng = np.random.default_rng(seed + 7)
    guids = []
    for i, h in enumerate(underlay.hosts):
        target_owner = sharers[(i * 11 + 5) % len(sharers)]
        options = assignment[target_owner]
        keyword = options[int(rng.integers(len(options)))]
        guids.append(net.search(h.host_id, keyword))
    sim.run()
    counts = net.message_counts()
    return {
        "topology": kind,
        "scheme": scheme,
        "policy": policy.value,
        "query": counts.get("QUERY", 0),
        "queryhit": counts.get("QUERYHIT", 0),
        "success": net.search_success_rate(),
        "intra_as_links": intra_as_edge_fraction(
            net.overlay_graph(), underlay.asn_of
        ),
    }


def run_testlab(
    *,
    topologies: Sequence[str] = TESTLAB_TOPOLOGIES,
    schemes: Sequence[str] = ("uniform", "variable"),
    seed: int = 5,
    workers: int | None = None,
) -> ExperimentResult:
    """Run the full testlab grid; returns one row per arm.

    The (topology × scheme × policy) grid fans out through
    :func:`repro.runner.run_arms` — each cell builds its own underlay
    and overlay, so arms are fully independent and the grid is
    embarrassingly parallel; rows come back in grid order regardless of
    worker count.
    """
    result = ExperimentResult(
        "TESTLAB", "45-node Gnutella testlab: 5-AS topologies, oracle on/off"
    )
    grid = [
        (kind, scheme, policy)
        for kind in topologies
        for scheme in schemes
        for policy in (NeighborPolicy.UNBIASED, NeighborPolicy.BIASED)
    ]
    rows = run_arms(
        lambda arm: run_testlab_arm(arm[0], arm[1], arm[2], seed=seed),
        grid,
        workers=workers,
    )
    for row in rows:
        result.add_row(**row)
    result.notes.append(
        "paper finding: the oracle reduces Query/QueryHit traffic on every "
        "topology without causing search failures"
    )
    return result
