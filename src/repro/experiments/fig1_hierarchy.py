"""FIG1 — the Internet hierarchy of Figure 1, measured on our generator.

Figure 1 shows local ISPs buying transit from transit ISPs (monetary flow
pointing up the hierarchy) and peering links between similar ISPs.  The
experiment generates topologies across sizes and verifies/reports the
structural facts the figure asserts:

- every non-Tier-1 AS has at least one transit provider in a higher tier;
- money flows strictly up: no provider is in a lower tier than its customer;
- peering connects ASes of the same tier;
- stub-to-stub routes have realistic AS-path lengths.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.common import ExperimentResult
from repro.underlay.autonomous_system import Tier
from repro.underlay.routing import ASRouting
from repro.underlay.topology import TopologyConfig, generate_topology


def run_fig1(sizes: list[tuple[int, int, int]] | None = None, seed: int = 42) -> ExperimentResult:
    """``sizes`` is a list of (n_tier1, n_tier2, n_stub) triples."""
    sizes = sizes or [(3, 6, 15), (4, 10, 25), (5, 16, 60)]
    result = ExperimentResult(
        "FIG1", "Internet hierarchy: tiers, transit (money up) and peering"
    )
    for n1, n2, ns in sizes:
        topo = generate_topology(
            TopologyConfig(n_tier1=n1, n_tier2=n2, n_stub=ns, seed=seed)
        )
        routing = ASRouting(topo)
        money_up = all(
            topo.asys(p).tier <= topo.asys(c).tier
            for p, c in topo.transit_links()
        )
        peer_same_tier = all(
            topo.asys(a).tier == topo.asys(b).tier
            for a, b in topo.peering_links()
        )
        orphan_free = all(
            a.providers for a in topo.ases if a.tier != Tier.TIER1
        )
        stubs = topo.stub_asns()
        hops = [
            routing.hops(a, b)
            for i, a in enumerate(stubs)
            for b in stubs[i + 1 :]
        ]
        result.add_row(
            n_ases=len(topo),
            transit_links=len(topo.transit_links()),
            peering_links=len(topo.peering_links()),
            money_flows_up=money_up,
            peering_same_tier=peer_same_tier,
            all_have_providers=orphan_free,
            mean_stub_hops=float(np.mean(hops)),
            max_stub_hops=int(np.max(hops)),
        )
    return result
