"""FIG4 — the ICS Internet coordinate system (Lim et al. [20]).

Two parts:

1. **Worked examples.** The survey's Figure 4 excerpt contains the
   paper's Examples 4–5 with concrete numbers (α=0.6, beacon coordinates
   (−2.1, ±1.5), host A at (−3, 1.8) with estimated distances 0.94/3.42,
   host B at (−12, 0) with 10.01; for n=4: α=0.5927, intra 0.8383,
   inter 3.0224).  ``run_fig4_examples`` recomputes all of them — these
   are deterministic linear algebra and must match to 4 decimals.

2. **Embedding comparison.** ICS vs Vivaldi vs GNP on an RTT matrix from
   the generated underlay: median relative error, closest-peer accuracy,
   selection stretch — the §3.2 latency-prediction trade-off.
"""

from __future__ import annotations

import numpy as np

from repro.coords import (
    GNPConfig,
    GNPSystem,
    ICS,
    ICSConfig,
    PAPER_EXAMPLE_HOST_A,
    PAPER_EXAMPLE_HOST_B,
    PAPER_EXAMPLE_MATRIX,
    VivaldiConfig,
    VivaldiSystem,
    evaluate_embedding,
)
from repro.experiments.common import ExperimentResult
from repro.experiments.common import generate_underlay
from repro.runner import run_arms
from repro.underlay.network import UnderlayConfig


def run_fig4_examples() -> ExperimentResult:
    """Reproduce Lim et al. Examples 4 and 5 exactly."""
    result = ExperimentResult(
        "FIG4a", "ICS worked examples (paper values in parentheses)"
    )
    ics2 = ICS(PAPER_EXAMPLE_MATRIX, ICSConfig(dim=2))
    xa = ics2.host_coordinate(PAPER_EXAMPLE_HOST_A)
    xb = ics2.host_coordinate(PAPER_EXAMPLE_HOST_B)
    c = ics2.beacon_coords
    result.add_row(
        quantity="alpha (n=2)", measured=float(ics2.alpha), paper=0.6
    )
    result.add_row(
        quantity="beacon c1 x", measured=float(c[0, 0]), paper=-2.1
    )
    result.add_row(
        quantity="beacon c1 y", measured=float(c[0, 1]), paper=1.5
    )
    result.add_row(
        quantity="inter-AS beacon distance", measured=ics2.estimate(0, 2), paper=3.0
    )
    result.add_row(quantity="host A x", measured=float(xa[0]), paper=-3.0)
    result.add_row(quantity="host A y", measured=float(xa[1]), paper=1.8)
    result.add_row(
        quantity="d(A, beacon1)", measured=ICS.distance(c[0], xa), paper=0.94
    )
    result.add_row(
        quantity="d(A, beacon3)", measured=ICS.distance(c[2], xa), paper=3.42
    )
    result.add_row(quantity="host B x", measured=float(xb[0]), paper=-12.0)
    result.add_row(
        quantity="d(B, beacons)", measured=ICS.distance(c[0], xb), paper=10.01
    )
    ics4 = ICS(PAPER_EXAMPLE_MATRIX, ICSConfig(dim=4))
    result.add_row(
        quantity="alpha (n=4)", measured=float(ics4.alpha), paper=0.5927
    )
    result.add_row(
        quantity="intra distance (n=4)", measured=ics4.estimate(0, 1), paper=0.8383
    )
    result.add_row(
        quantity="inter distance (n=4)", measured=ics4.estimate(0, 2), paper=3.0224
    )
    return result


def run_fig4_embedding(
    n_hosts: int = 60, n_beacons: int = 12, seed: int = 33
) -> ExperimentResult:
    """Compare latency-prediction systems on a generated underlay."""
    underlay = generate_underlay(UnderlayConfig(n_hosts=n_hosts, seed=seed))
    rtt = underlay.rtt_matrix()
    result = ExperimentResult(
        "FIG4b", "Latency prediction: ICS vs Vivaldi vs GNP"
    )

    # ICS: beacons are the first n_beacons hosts; all hosts embed via
    # their measured RTT vectors to the beacons.
    beacon_idx = np.arange(n_beacons)
    # a high variance threshold keeps most PCA dimensions — Lim et al.
    # recommend the cumulative-variation cut, and on realistic matrices
    # the useful signal extends well past the first two components
    ics = ICS(rtt[np.ix_(beacon_idx, beacon_idx)], ICSConfig(variance_threshold=0.995))
    host_coords = ics.host_coordinates(rtt[:, beacon_idx])
    diff = host_coords[:, None, :] - host_coords[None, :, :]
    ics_pred = np.sqrt(np.einsum("ijk,ijk->ij", diff, diff))
    np.fill_diagonal(ics_pred, 0.0)
    rep = evaluate_embedding(ics_pred, rtt)
    result.add_row(system="ICS", dim=ics.dim,
                   probes_per_host=n_beacons, **rep.as_row())

    viv = VivaldiSystem(rtt, VivaldiConfig(dim=3, use_height=True), rng=seed)
    rounds, nbrs = 40, 8
    viv.run(rounds=rounds, neighbors_per_round=nbrs)
    rep = evaluate_embedding(viv.estimated_matrix(), rtt)
    result.add_row(system="Vivaldi(3D+h)", dim=3,
                   probes_per_host=rounds * nbrs, **rep.as_row())

    gnp = GNPSystem(rtt[np.ix_(beacon_idx, beacon_idx)], GNPConfig(dim=3), seed=seed)
    coords = np.array(
        [gnp.host_coordinate(rtt[i, beacon_idx]) for i in range(n_hosts)]
    )
    diff = coords[:, None, :] - coords[None, :, :]
    gnp_pred = np.sqrt(np.einsum("ijk,ijk->ij", diff, diff))
    np.fill_diagonal(gnp_pred, 0.0)
    rep = evaluate_embedding(gnp_pred, rtt)
    result.add_row(system="GNP", dim=3,
                   probes_per_host=n_beacons, **rep.as_row())
    return result


def run_fig4_dimension_sweep(
    n_hosts: int = 60, n_beacons: int = 14, seed: int = 33,
    workers: int | None = None,
) -> ExperimentResult:
    """The ICS dimension-selection knob: embedding error against the PCA
    dimension (Lim et al.'s step S4 picks it by cumulative variation).

    Expected shape: error drops as dimensions are added and plateaus —
    and the paper's cumulative-variation rule (with a high threshold)
    lands on the plateau without manual tuning.  The per-dimension arms
    fan out through :func:`repro.runner.run_arms` (rows identical at any
    worker count; the RTT matrix is inherited by forked workers).
    """
    underlay = generate_underlay(UnderlayConfig(n_hosts=n_hosts, seed=seed))
    rtt = underlay.rtt_matrix()
    beacon_idx = np.arange(n_beacons)
    beacons = rtt[np.ix_(beacon_idx, beacon_idx)]
    result = ExperimentResult(
        "FIG4c", "ICS embedding error vs PCA dimension"
    )

    def run_dim(dim: int) -> dict:
        ics = ICS(beacons, ICSConfig(dim=dim))
        coords = ics.host_coordinates(rtt[:, beacon_idx])
        diff = coords[:, None, :] - coords[None, :, :]
        pred = np.sqrt(np.einsum("ijk,ijk->ij", diff, diff))
        np.fill_diagonal(pred, 0.0)
        rep = evaluate_embedding(pred, rtt)
        return {
            "dim": ics.dim,
            "cumulative_variation": float(
                ics.cumulative_variation[ics.dim - 1]
            ),
            "median_rel_err": rep.median_relative_error,
            "stretch": rep.mean_selection_stretch,
        }

    for row in run_arms(run_dim, [1, 2, 3, 5, 8, n_beacons], workers=workers):
        result.add_row(**row)
    auto = ICS(beacons, ICSConfig(variance_threshold=0.995))
    result.notes.append(
        f"cumulative-variation rule (threshold 0.995) selects dim={auto.dim}"
    )
    return result
