"""Shared experiment plumbing: result containers, table printing, and the
opt-in observability path.

Every experiment module exposes a ``run_*`` function returning an
:class:`ExperimentResult`; benchmarks call it, print the rows (the same
rows the paper's figure/table reports), and assert the qualitative shape.

Observability: :func:`run_observed` (CLI flag ``--trace``) runs any
experiment inside an :func:`repro.obs.observe` scope — every simulation,
bus, overlay and collection service the experiment constructs
instruments itself — and attaches a metrics snapshot plus the trace
digest to ``result.metrics``.  Golden-trace regression tests compare the
digest across runs.
"""

from __future__ import annotations

import sys
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Mapping, Sequence, TextIO

from repro import obs
from repro.underlay.cache import cached_generate
from repro.underlay.network import Underlay, UnderlayConfig


@dataclass
class ExperimentResult:
    """Named rows plus free-form notes."""

    experiment_id: str
    title: str
    rows: list[dict[str, Any]] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)
    #: populated by :func:`run_observed`: metrics snapshot + trace summary
    metrics: dict[str, Any] | None = field(default=None, repr=False)

    def add_row(self, **kwargs: Any) -> None:
        self.rows.append(dict(kwargs))

    def column(self, key: str) -> list[Any]:
        return [r[key] for r in self.rows]

    def row_by(self, key: str, value: Any) -> dict[str, Any]:
        for r in self.rows:
            if r.get(key) == value:
                return r
        raise KeyError(f"no row with {key}={value!r}")


def generate_underlay(config: UnderlayConfig | None = None) -> Underlay:
    """Build an experiment's underlay, through the process-default
    substrate cache when one is configured (CLI ``--substrate-cache``,
    benchmark suite option) and directly otherwise.

    Every experiment module goes through this helper, so ablation sweeps
    that rebuild the same ``(UnderlayConfig, seed)`` dozens of times pay
    topology generation, the routing BFS, and the delay-matrix builds
    once per unique substrate instead of once per arm.
    """
    return cached_generate(config)


def repeat_over_seeds(
    run: "Callable[[int], ExperimentResult]",
    seeds: Sequence[int],
    *,
    key_column: str,
    value_columns: Sequence[str],
    workers: int | None = None,
) -> ExperimentResult:
    """Robustness harness: run an experiment per seed and report mean/std
    of the chosen numeric columns per key (arm) value.

    ``run(seed)`` must return results with identical keys across seeds.
    Seeds fan out through :func:`repro.runner.run_arms` (serial unless
    ``workers``, the CLI/benchmark ``--workers`` option, or
    ``REPRO_RUNNER_WORKERS`` says otherwise); per-seed results are
    reduced in seed order, so the aggregate is identical at any worker
    count.
    """
    from collections import defaultdict

    from repro.experiments.stats import mean_std
    from repro.runner import run_arms

    if not seeds:
        raise ValueError("need at least one seed")
    per_seed = run_arms(run, list(seeds), workers=workers)
    samples: dict[Any, dict[str, list[float]]] = defaultdict(
        lambda: {c: [] for c in value_columns}
    )
    for res in per_seed:
        for row in res.rows:
            key = row[key_column]
            for col in value_columns:
                samples[key][col].append(float(row[col]))
    first = per_seed[0]
    out = ExperimentResult(
        first.experiment_id + "-seeds",
        f"{first.title} (mean ± std over {len(seeds)} seeds)",
    )
    for key, cols in samples.items():
        row: dict[str, Any] = {key_column: key}
        for col, vals in cols.items():
            row[f"{col}_mean"], row[f"{col}_std"] = mean_std(vals)
        out.add_row(**row)
    return out


@contextmanager
def observability(
    *,
    registry: "obs.MetricRegistry | None" = None,
    tracer: "obs.Tracer | None" = None,
    trace_capacity: int = 65536,
) -> Iterator[obs.Observation]:
    """Scope in which every component an experiment builds records
    metrics and trace events (thin alias of :func:`repro.obs.observe`,
    re-exported here so experiment code has one import)."""
    with obs.observe(
        registry=registry, tracer=tracer, trace_capacity=trace_capacity
    ) as session:
        yield session


def metrics_snapshot(session: obs.Observation) -> dict[str, Any]:
    """JSON-safe snapshot of one observation scope: every metric's cells
    plus the trace digest and volume."""
    return {
        "metrics": obs.registry_to_dict(session.registry),
        "trace": {
            "digest": session.tracer.digest(),
            "events_emitted": session.tracer.emitted,
            "events_buffered": len(session.tracer),
        },
    }


def run_observed(
    run: Callable[..., ExperimentResult], *args: Any, **kwargs: Any
) -> ExperimentResult:
    """Run an experiment with instrumentation on and attach the snapshot.

    The ``collect_metrics`` path of the CLI's ``--trace`` flag: any
    ``run_*`` function works unchanged, because instrumentation is
    picked up ambiently by the components it constructs.
    """
    with observability() as session:
        result = run(*args, **kwargs)
    result.metrics = metrics_snapshot(session)
    return result


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        if value == 0 or 0.001 <= abs(value) < 1e6:
            return f"{value:,.3f}".rstrip("0").rstrip(".")
        return f"{value:.3e}"
    return str(value)


def print_table(result: ExperimentResult, *, file: TextIO | None = None) -> None:
    """Render the result as an aligned text table (the bench output)."""
    file = file or sys.stdout
    print(f"\n=== {result.experiment_id}: {result.title} ===", file=file)
    if not result.rows:
        print("(no rows)", file=file)
        return
    columns: list[str] = []
    for r in result.rows:
        for k in r:
            if k not in columns:
                columns.append(k)
    table = [[_fmt(r.get(c, "")) for c in columns] for r in result.rows]
    widths = [
        max(len(c), *(len(row[i]) for row in table)) for i, c in enumerate(columns)
    ]
    header = "  ".join(c.ljust(w) for c, w in zip(columns, widths))
    print(header, file=file)
    print("-" * len(header), file=file)
    for row in table:
        print("  ".join(v.ljust(w) for v, w in zip(row, widths)), file=file)
    for note in result.notes:
        print(f"note: {note}", file=file)
