"""Shared experiment plumbing: result containers and table printing.

Every experiment module exposes a ``run_*`` function returning an
:class:`ExperimentResult`; benchmarks call it, print the rows (the same
rows the paper's figure/table reports), and assert the qualitative shape.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass, field
from typing import Any, Mapping, Sequence, TextIO


@dataclass
class ExperimentResult:
    """Named rows plus free-form notes."""

    experiment_id: str
    title: str
    rows: list[dict[str, Any]] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add_row(self, **kwargs: Any) -> None:
        self.rows.append(dict(kwargs))

    def column(self, key: str) -> list[Any]:
        return [r[key] for r in self.rows]

    def row_by(self, key: str, value: Any) -> dict[str, Any]:
        for r in self.rows:
            if r.get(key) == value:
                return r
        raise KeyError(f"no row with {key}={value!r}")


def repeat_over_seeds(
    run: "Callable[[int], ExperimentResult]",
    seeds: Sequence[int],
    *,
    key_column: str,
    value_columns: Sequence[str],
) -> ExperimentResult:
    """Robustness harness: run an experiment per seed and report mean/std
    of the chosen numeric columns per key (arm) value.

    ``run(seed)`` must return results with identical keys across seeds.
    """
    from collections import defaultdict
    from typing import Callable  # noqa: F401 (documented signature)

    import numpy as np

    if not seeds:
        raise ValueError("need at least one seed")
    samples: dict[Any, dict[str, list[float]]] = defaultdict(
        lambda: {c: [] for c in value_columns}
    )
    first: ExperimentResult | None = None
    for seed in seeds:
        res = run(seed)
        if first is None:
            first = res
        for row in res.rows:
            key = row[key_column]
            for col in value_columns:
                samples[key][col].append(float(row[col]))
    assert first is not None
    out = ExperimentResult(
        first.experiment_id + "-seeds",
        f"{first.title} (mean ± std over {len(seeds)} seeds)",
    )
    for key, cols in samples.items():
        row: dict[str, Any] = {key_column: key}
        for col, vals in cols.items():
            row[f"{col}_mean"] = float(np.mean(vals))
            row[f"{col}_std"] = float(np.std(vals))
        out.add_row(**row)
    return out


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        if value == 0 or 0.001 <= abs(value) < 1e6:
            return f"{value:,.3f}".rstrip("0").rstrip(".")
        return f"{value:.3e}"
    return str(value)


def print_table(result: ExperimentResult, *, file: TextIO | None = None) -> None:
    """Render the result as an aligned text table (the bench output)."""
    file = file or sys.stdout
    print(f"\n=== {result.experiment_id}: {result.title} ===", file=file)
    if not result.rows:
        print("(no rows)", file=file)
        return
    columns: list[str] = []
    for r in result.rows:
        for k in r:
            if k not in columns:
                columns.append(k)
    table = [[_fmt(r.get(c, "")) for c in columns] for r in result.rows]
    widths = [
        max(len(c), *(len(row[i]) for row in table)) for i, c in enumerate(columns)
    ]
    header = "  ".join(c.ljust(w) for c, w in zip(columns, widths))
    print(header, file=file)
    print("-" * len(header), file=file)
    for row in table:
        print("  ".join(v.ljust(w) for v, w in zip(row, widths)), file=file)
    for note in result.notes:
        print(f"note: {note}", file=file)
