"""Tiny pure-python summary statistics for sweep aggregation.

:func:`repro.experiments.common.repeat_over_seeds` aggregates a handful
of numeric columns over a handful of seeds — importing numpy and paying
array construction per column is pure overhead at that size, and the
numpy path silently emits warnings on degenerate input.  These helpers
are exact for the cases sweeps produce: ``fsum``-based, population
variance (matching ``np.std``'s default ``ddof=0``), and a *single*
sample yields a standard deviation of exactly ``0.0`` rather than
anything NaN-prone.
"""

from __future__ import annotations

import math
from typing import Sequence

__all__ = ["mean", "mean_std", "pstdev"]


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean (``fsum`` accumulation; raises on empty input)."""
    if not values:
        raise ValueError("mean() of empty sequence")
    return math.fsum(values) / len(values)


def pstdev(values: Sequence[float], *, mu: float | None = None) -> float:
    """Population standard deviation (``ddof=0``, like ``np.std``).

    A single sample has no spread: returns exactly ``0.0``, never NaN.
    ``mu`` skips recomputing the mean when the caller already has it.
    """
    if not values:
        raise ValueError("pstdev() of empty sequence")
    if len(values) == 1:
        return 0.0
    m = mean(values) if mu is None else mu
    var = math.fsum((v - m) ** 2 for v in values) / len(values)
    # rounding can push a zero-spread variance infinitesimally negative
    return math.sqrt(var) if var > 0.0 else 0.0


def mean_std(values: Sequence[float]) -> tuple[float, float]:
    """``(mean, population std)`` in one pass over the inputs."""
    m = mean(values)
    return m, pstdev(values, mu=m)
