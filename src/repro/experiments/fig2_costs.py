"""FIG2 — cost relations: transit vs peering economics.

Regenerates the two curves of Figure 2 over a logarithmic traffic sweep:

- transit: cost per Mbps ~constant  →  total cost ∝ traffic;
- peering: total cost flat          →  cost per Mbps ∝ 1/traffic;

plus the crossover point and an applied scenario: the monthly bill of a
local ISP whose P2P traffic is shifted from transit to peering links by a
locality-aware overlay (the economic punchline of §2.1).
"""

from __future__ import annotations

import numpy as np

from repro.experiments.common import ExperimentResult
from repro.underlay.cost import CostModel, CostParams


def run_fig2(
    params: CostParams | None = None,
    traffic_points: list[float] | None = None,
) -> ExperimentResult:
    """Regenerate the Figure 2 cost curves over a traffic sweep."""
    model = CostModel(params)
    traffic = traffic_points or list(np.logspace(0, 4, 9))  # 1 Mbps .. 10 Gbps
    result = ExperimentResult(
        "FIG2", "Cost relations: transit (per-Mbps constant) vs peering (flat)"
    )
    for row in model.figure2_series(traffic):
        result.add_row(**row)
    result.notes.append(
        f"crossover: peering cheaper than transit above "
        f"{model.crossover_mbps():,.0f} Mbps"
    )
    return result


def run_locality_savings(
    *,
    p2p_traffic_mbps: float = 800.0,
    locality_fractions: list[float] | None = None,
    params: CostParams | None = None,
) -> ExperimentResult:
    """Monthly ISP bill as locality of traffic increases.

    ``locality_fraction`` of the P2P traffic stays on intra-AS/peering
    infrastructure (marginal cost ~0 once the peering link exists); the
    rest rides the transit link at the billable peak.
    """
    model = CostModel(params)
    fractions = locality_fractions or [0.0, 0.25, 0.5, 0.75, 0.9]
    result = ExperimentResult(
        "FIG2b", "ISP monthly bill vs locality of P2P traffic"
    )
    peering_links = 1
    for f in fractions:
        if not (0 <= f <= 1):
            raise ValueError(f"locality fraction must be in [0, 1], got {f}")
        transit_mbps = p2p_traffic_mbps * (1 - f)
        bill = model.transit_monthly_cost(transit_mbps) + (
            peering_links * model.peering_monthly_cost()
        )
        result.add_row(
            locality_fraction=f,
            transit_mbps=transit_mbps,
            monthly_bill_usd=bill,
        )
    return result
