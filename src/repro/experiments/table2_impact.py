"""TAB2 — the impact matrix, measured.

For each underlay-information column we build an overlay whose neighbor
and source selection uses *only* that information (via the framework's
strategies), run the same workloads against the underlay-oblivious
baseline, and convert relative improvements into the paper's ++/+/o
symbols (:mod:`repro.metrics.impact`).

Measured proxies per row (all improvements relative to the random
baseline; higher is better):

- **download_time** — mean time to fetch a 4 MB file from a source chosen
  by the column's selector among the replica holders.  Transfers whose
  route crosses congested transit links run at reduced rate (the survey's
  "bottlenecks ... longer waiting times" argument).
- **delay** — mean shortest-path delay through the overlay graph between
  random host pairs (real-time traffic relayed over the overlay).
- **isp_oam** — reduction of inter-AS *control* links the ISP has to
  carry (overlay maintenance crossing AS borders).
- **isp_costs** — reduction of *billed transit bytes* caused by the
  downloads.
- **new_applications** — capability score: does the awareness enable a
  new application class (measured: POI-query recall for geolocation,
  VoIP-grade neighbor links for latency)?
- **resilience** — the better of (a) overlay survival when the busiest
  transit link fails, (b) neighbor session-time gain (stable neighbors
  survive churn).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence

import networkx as nx
import numpy as np

from repro.collection.gps import GPSService
from repro.collection.oracle import ISPOracle
from repro.core.selection import (
    GeoSelection,
    ISPLocalitySelection,
    LatencySelection,
    NeighborSelection,
    RandomSelection,
    ResourceSelection,
)
from repro.experiments.common import ExperimentResult
from repro.metrics.impact import (
    ImpactCell,
    agreement_rate,
    compare_with_paper,
    impact_symbol,
)
from repro.overlay.geo import GlobaseOverlay, Rect
from repro.rng import ensure_rng
from repro.underlay.autonomous_system import LinkType
from repro.experiments.common import generate_underlay
from repro.underlay.network import Underlay, UnderlayConfig

#: bandwidth derating for transfers whose route crosses a transit link
TRANSIT_CONGESTION_FACTOR = 0.45
FILE_SIZE_BYTES = 4_000_000
VOIP_RTT_BUDGET_MS = 150.0


@dataclass
class _ArmMetrics:
    mean_download_s: float
    mean_overlay_path_delay_ms: float
    mean_neighbor_rtt_ms: float
    inter_as_control_edges: int
    billed_transit_bytes: float
    transit_fail_edge_survival: float
    neighbor_session_h: float
    voip_grade_fraction: float


class _Arm:
    """One awareness column: a selector + the workload measurements."""

    def __init__(
        self,
        underlay: Underlay,
        selector: NeighborSelection,
        *,
        k_neighbors: int = 5,
        candidate_pool: int = 30,
        seed: int = 0,
    ) -> None:
        self.underlay = underlay
        self.selector = selector
        self.k = k_neighbors
        self.pool = candidate_pool
        self._rng = ensure_rng(seed)
        self.graph = self._build_graph()

    def _build_graph(self) -> nx.Graph:
        ids = self.underlay.host_ids()
        g = nx.Graph()
        g.add_nodes_from(ids)
        for h in ids:
            others = [x for x in ids if x != h]
            pick = self._rng.choice(len(others), size=min(self.pool, len(others)),
                                    replace=False)
            candidates = [others[int(i)] for i in pick]
            for nb in self.selector.select(h, candidates, self.k):
                g.add_edge(h, nb)
        return g

    # -- workload measurements ----------------------------------------------------
    def _route_crosses_transit(self, a: int, b: int) -> bool:
        asn_a, asn_b = self.underlay.asn_of(a), self.underlay.asn_of(b)
        if asn_a == asn_b:
            return False
        return any(
            t is LinkType.TRANSIT
            for _x, _y, t in self.underlay.routing.path_links(asn_a, asn_b)
        )

    def measure(self, *, n_downloads: int = 150, n_pairs: int = 150) -> _ArmMetrics:
        ids = self.underlay.host_ids()
        rng = ensure_rng(int(self._rng.integers(2**31)))

        # downloads with column-driven source selection; a transfer from an
        # unstable source can abort mid-way and restart (doubling the bytes
        # and stretching the time) — the channel through which resource
        # awareness reduces wasted traffic
        times, transit_bytes = [], 0.0
        for _ in range(n_downloads):
            req = ids[int(rng.integers(len(ids)))]
            holders = list(
                rng.choice([x for x in ids if x != req], size=5, replace=False)
            )
            src = self.selector.select(req, [int(h) for h in holders], 1)[0]
            h_req = self.underlay.host(req)
            h_src = self.underlay.host(src)
            rate = min(
                h_src.resources.bandwidth_up_kbps,
                h_req.resources.bandwidth_down_kbps,
            ) * 1000.0 / 8.0
            crosses = self._route_crosses_transit(req, src)
            if crosses:
                rate *= TRANSIT_CONGESTION_FACTOR
            rtt_s = 2.0 * self.underlay.one_way_delay(req, src) / 1000.0
            t = FILE_SIZE_BYTES / max(rate, 1.0) + rtt_s
            nbytes = float(FILE_SIZE_BYTES)
            p_abort = min(0.8, t / (h_src.resources.avg_online_hours * 3600.0))
            if rng.random() < p_abort:
                # restart once from a retry of the same source
                t *= 1.0 + float(rng.uniform(0.3, 1.0))
                nbytes *= 2.0
            if crosses:
                transit_bytes += nbytes
            times.append(t)

        # overlay relay delay between random pairs
        weighted = self.graph.copy()
        for a, b in weighted.edges():
            weighted[a][b]["delay"] = self.underlay.one_way_delay(a, b)
        delays = []
        for _ in range(n_pairs):
            a, b = (int(x) for x in rng.choice(len(ids), size=2, replace=False))
            try:
                delays.append(
                    nx.shortest_path_length(
                        weighted, ids[a], ids[b], weight="delay"
                    )
                )
            except nx.NetworkXNoPath:
                continue

        inter_ctrl = sum(
            1 for a, b in self.graph.edges()
            if self.underlay.asn_of(a) != self.underlay.asn_of(b)
        )

        # resilience (a): kill the busiest transit link; count the fraction
        # of overlay links that keep working (their route does not use it)
        usage: dict[tuple[int, int], int] = {}
        edge_links: dict[tuple[int, int], set[tuple[int, int]]] = {}
        for a, b in self.graph.edges():
            asn_a, asn_b = self.underlay.asn_of(a), self.underlay.asn_of(b)
            if asn_a == asn_b:
                edge_links[(a, b)] = set()
                continue
            used = {
                (min(x, y), max(x, y))
                for x, y, t in self.underlay.routing.path_links(asn_a, asn_b)
                if t is LinkType.TRANSIT
            }
            edge_links[(a, b)] = used
            for key in used:
                usage[key] = usage.get(key, 0) + 1
        survival = 1.0
        if usage and self.graph.number_of_edges():
            dead = max(usage, key=lambda k: usage[k])
            alive = sum(1 for used in edge_links.values() if dead not in used)
            survival = alive / self.graph.number_of_edges()

        # resilience (b): neighbor stability
        sessions = [
            self.underlay.host(b).resources.avg_online_hours
            for _a, b in self.graph.edges()
        ]

        # VoIP-grade neighbor links (latency "new application" capability)
        voip = [
            1.0
            if 2.0 * self.underlay.one_way_delay(a, b) <= VOIP_RTT_BUDGET_MS
            else 0.0
            for a, b in self.graph.edges()
        ]

        neighbor_rtts = [
            2.0 * self.underlay.one_way_delay(a, b) for a, b in self.graph.edges()
        ]
        return _ArmMetrics(
            mean_download_s=float(np.mean(times)),
            mean_overlay_path_delay_ms=float(np.mean(delays)) if delays else float("inf"),
            mean_neighbor_rtt_ms=float(np.mean(neighbor_rtts)) if neighbor_rtts else 0.0,
            inter_as_control_edges=inter_ctrl,
            billed_transit_bytes=transit_bytes,
            transit_fail_edge_survival=survival,
            neighbor_session_h=float(np.mean(sessions)) if sessions else 0.0,
            voip_grade_fraction=float(np.mean(voip)) if voip else 0.0,
        )


def _improvement(baseline: float, aware: float, *, lower_better: bool = True) -> float:
    if baseline == 0:
        return 0.0
    if lower_better:
        return (baseline - aware) / baseline
    return (aware - baseline) / baseline


def run_table2(n_hosts: int = 200, seed: int = 31) -> ExperimentResult:
    """Run the Table 2 factorial and compare symbols against the paper."""
    from repro.underlay.topology import TopologyConfig

    underlay = generate_underlay(
        UnderlayConfig(
            topology=TopologyConfig(n_tier1=3, n_tier2=8, n_stub=20, n_regions=4),
            n_hosts=n_hosts,
            seed=seed,
        )
    )
    gps = GPSService(underlay, availability=1.0, error_m=500.0)
    coord_rng = ensure_rng(seed + 5)

    def coord_rtt(a: int, b: int) -> float:
        true = 2.0 * underlay.one_way_delay(a, b)
        return true * float(np.clip(coord_rng.normal(1.0, 0.15), 0.5, 1.8))

    selectors: dict[str, NeighborSelection] = {
        "isp_location": ISPLocalitySelection(underlay, oracle=ISPOracle(underlay)),
        # coord_rtt draws coordinate error from coord_rng per call, so it
        # must stay on the scalar per-candidate path (a batch predictor
        # would change the draw order); the scalar loop preserves the
        # enumeration order of the candidates exactly
        "latency": LatencySelection(coord_rtt),
        "geolocation": GeoSelection(gps.position_of),
        "peer_resources": ResourceSelection.from_underlay(underlay),
    }
    baseline_arm = _Arm(underlay, RandomSelection(seed), seed=seed + 1)
    base = baseline_arm.measure()

    measured: dict[str, dict[str, float]] = {
        row: {} for row in (
            "download_time", "delay", "isp_oam", "isp_costs",
            "new_applications", "resilience",
        )
    }
    for col, selector in selectors.items():
        arm = _Arm(underlay, selector, seed=seed + 1)
        m = arm.measure()
        measured["download_time"][col] = _improvement(
            base.mean_download_s, m.mean_download_s
        )
        # delay blends direct-neighbour RTT (partner quality) and overlay
        # relay-path delay (multi-hop real-time traffic)
        measured["delay"][col] = 0.5 * _improvement(
            base.mean_neighbor_rtt_ms, m.mean_neighbor_rtt_ms
        ) + 0.5 * _improvement(
            base.mean_overlay_path_delay_ms, m.mean_overlay_path_delay_ms
        )
        measured["isp_oam"][col] = _improvement(
            float(base.inter_as_control_edges), float(m.inter_as_control_edges)
        )
        measured["isp_costs"][col] = _improvement(
            base.billed_transit_bytes, m.billed_transit_bytes
        )
        measured["resilience"][col] = max(
            _improvement(
                base.transit_fail_edge_survival, m.transit_fail_edge_survival,
                lower_better=False,
            ),
            _improvement(
                base.neighbor_session_h, m.neighbor_session_h, lower_better=False
            ) / 2.0,  # halved: stability is the weaker resilience channel
        )
        # new-application capability
        if col == "latency":
            measured["new_applications"][col] = _improvement(
                base.voip_grade_fraction, m.voip_grade_fraction, lower_better=False
            ) / 2.0
        elif col == "geolocation":
            geo = GlobaseOverlay(underlay, position_source=gps.position_of)
            geo.join_all()
            recall = geo.recall_of_area_query(Rect(500.0, 500.0, 3000.0, 3000.0))
            measured["new_applications"][col] = recall  # enables POI search
        else:
            measured["new_applications"][col] = 0.0

    cells = compare_with_paper(measured)
    result = ExperimentResult("TAB2", "Impact matrix: measured vs paper")
    for cell in cells:
        result.add_row(
            parameter=cell.parameter,
            info=cell.info_type,
            improvement=round(cell.measured_improvement, 3),
            measured=cell.measured_symbol,
            paper=cell.paper_symbol,
            match=cell.matches,
            within_one=cell.within_one_step,
        )
    result.notes.append(
        f"agreement: {agreement_rate(cells):.0%} exact, "
        f"{np.mean([c.within_one_step for c in cells]):.0%} within one step"
    )
    return result
