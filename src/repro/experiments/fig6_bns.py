"""FIG6 — uniform random vs biased neighbor selection: topology shape.

Figure 6 contrasts (a) an AS-agnostic random overlay with (b) a
biased-selection overlay that clusters along AS boundaries while keeping
"a minimal number of inter-AS connections necessary to keep the network
connected".  The experiment builds both over the same underlay and
reports the locality summary plus the §5.4 resilience question: does
ISP clustering make the overlay fragile?
"""

from __future__ import annotations

from repro.collection.oracle import ISPOracle
from repro.experiments.common import ExperimentResult
from repro.metrics.locality import locality_summary
from repro.metrics.resilience import resilience_summary
from repro.overlay.gnutella import GnutellaConfig, GnutellaNetwork, NeighborPolicy
from repro.runner import run_arms
from repro.sim.engine import Simulation
from repro.experiments.common import generate_underlay
from repro.underlay.network import Underlay, UnderlayConfig
from repro.underlay.topology import TopologyConfig


def _build_overlay(
    underlay: Underlay, policy: NeighborPolicy, seed: int, external_quota: int
):
    sim = Simulation()
    bus, _ = underlay.message_bus(sim, with_accounting=False)
    net = GnutellaNetwork(
        underlay,
        sim,
        bus,
        config=GnutellaConfig(max_up_neighbors=5),
        policy=policy,
        oracle=ISPOracle(underlay),
        oracle_list_limit=None,
        external_quota=external_quota,
        rng=seed,
    )
    net.add_population(underlay.hosts)
    net.bootstrap(cache_fill=len(underlay.hosts) - 1)
    net.join_all()
    sim.run()
    return net


def run_fig6(
    n_hosts: int = 120,
    seed: int = 17,
    *,
    removal_fraction: float = 0.2,
    dot_path_prefix: str | None = None,
    workers: int | None = None,
) -> ExperimentResult:
    """``dot_path_prefix`` additionally renders the two Figure 6 panels
    as Graphviz files (``<prefix>_uniform.dot`` / ``<prefix>_biased.dot``).
    The three policy arms fan out over :func:`repro.runner.run_arms`
    (``workers`` defaults to the process-wide runner setting; rows are
    identical at any worker count)."""
    underlay = generate_underlay(
        UnderlayConfig(
            topology=TopologyConfig(n_tier1=3, n_tier2=6, n_stub=12, n_regions=4),
            n_hosts=n_hosts,
            seed=seed,
        )
    )
    result = ExperimentResult(
        "FIG6", "Uniform random vs biased neighbor selection"
    )
    arms = [
        ("uniform_random", NeighborPolicy.UNBIASED, 1),
        ("biased", NeighborPolicy.BIASED, 1),
        ("biased_no_floor", NeighborPolicy.BIASED, 0),  # ablation: quota off
    ]

    def run_arm(arm: tuple) -> tuple:
        # workers inherit ``underlay`` via fork; each arm builds its own
        # sim/overlay on top of the shared read-only substrate
        name, policy, quota = arm
        net = _build_overlay(underlay, policy, seed + 1, quota)
        graph = net.overlay_graph()
        loc = locality_summary(graph, underlay.asn_of)
        res = resilience_summary(
            graph, underlay.asn_of, removal_fraction=removal_fraction, rng=seed
        )
        return graph, {"arm": name, **loc, **res}

    graphs = {}
    for (name, _policy, _quota), (graph, row) in zip(
        arms, run_arms(run_arm, arms, workers=workers)
    ):
        graphs[name] = graph
        result.add_row(**row)
    if dot_path_prefix is not None:
        from repro.viz import write_figure6_pair

        paths = write_figure6_pair(
            graphs["uniform_random"], graphs["biased"], underlay.asn_of,
            dot_path_prefix,
        )
        result.notes.append(f"figure panels written: {paths[0]}, {paths[1]}")
    result.notes.append(
        "expected shape: biased raises intra_as_edge_fraction and modularity "
        "while staying connected with few inter-AS edges; removing the "
        "external floor (ablation) raises partition risk"
    )
    return result
