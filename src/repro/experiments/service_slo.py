"""SERVICE — SLO percentiles under realistic arrival processes (§6).

The survey's evaluation chapters benchmark overlays with batch sweeps:
fire N lookups, average the latency.  A deployed P2P service is judged
differently — by the tail of its latency distribution under *traffic*,
i.e. operations arriving as a stochastic process while earlier ones are
still in flight.  This experiment drives both overlays as services:

- **Kademlia** store/retrieve (70/30 read-heavy mix by default), via
  :class:`~repro.service.ops.KademliaServiceOps`;
- **Gnutella** keyword search (time-to-first-hit), via
  :class:`~repro.service.ops.GnutellaServiceOps`;

each under three open-loop arrival processes at equal mean offered load
(Poisson baseline, heavy-tailed Pareto, diurnally-modulated Poisson —
:mod:`repro.service.arrivals`) plus one closed-loop arm (fixed worker
pool) as the contrast case that *cannot* exhibit coordinated omission
by construction.  Every cell stands its own population up through
:class:`~repro.service.bootstrap.Bootstrapper` — the same control plane
the socket front end drives — and reports offered vs achieved
throughput, success rate, and p50/p95/p99 latency measured from the
*scheduled arrival time* (client queue wait included, so open-loop
percentiles are coordinated-omission-free).

Expected shape: at equal mean rate the heavy-tail and diurnal arms show
the same p50 but a fatter p99 than Poisson — bursts queue behind the
per-origin concurrency gate — and the closed-loop arm shows the highest
success rate at the lowest offered rate, since its workers self-clock.
"""

from __future__ import annotations

from typing import Any

from repro.experiments.common import ExperimentResult
from repro.runner import run_arms
from repro.service.bootstrap import Bootstrapper, ServiceConfig

OVERLAY_ARMS = ("kademlia", "gnutella")
PROCESS_ARMS = ("poisson", "pareto", "diurnal")


def _run_cell(
    overlay: str,
    mode: str,
    process: str,
    seed: int,
    *,
    n_hosts: int,
    rate_per_s: float,
    duration_ms: float,
    settle_ms: float,
    drain_ms: float,
    timeout_ms: float,
    n_workers: int,
) -> dict[str, Any]:
    """One (overlay, mode, process) cell: bootstrap a fresh population
    and run a single load drive against it."""
    boot = Bootstrapper(
        ServiceConfig(overlay=overlay, n_hosts=n_hosts, seed=seed,
                      settle_ms=settle_ms)
    )
    boot.build()
    if mode == "open":
        report = boot.drive_sync(
            mode="open", process=process, rate_per_s=rate_per_s,
            duration_ms=duration_ms, drain_ms=drain_ms, timeout_ms=timeout_ms,
        )
    else:
        report = boot.drive_sync(
            mode="closed", n_workers=n_workers,
            duration_ms=duration_ms, drain_ms=drain_ms, timeout_ms=timeout_ms,
        )
    boot.stop_sync()
    row: dict[str, Any] = {
        "overlay": overlay,
        "mode": mode,
        "process": process if mode == "open" else "-",
        "rate_per_s": rate_per_s if mode == "open" else float(n_workers),
    }
    rep = report.as_dict()
    for field in ("offered", "offered_per_s", "throughput_per_s",
                  "success_rate", "timed_out", "unfinished"):
        row[field] = rep[field]
    row.update(rep["latency_ms"])
    return row


def run_service_slo(
    n_hosts: int = 48,
    seed: int = 31,
    *,
    smoke: bool = False,
    rate_per_s: float = 30.0,
    duration_ms: float = 30_000.0,
    settle_ms: float = 30_000.0,
    drain_ms: float = 30_000.0,
    timeout_ms: float = 20_000.0,
    n_workers: int = 8,
    workers: int | None = None,
) -> ExperimentResult:
    """Sweep arrival processes × overlays through the service layer.

    ``smoke=True`` shrinks populations and windows to a seconds-scale CI
    check over the identical code path.  Cells are independent (each
    bootstraps its own population) and fan out through
    :func:`repro.runner.run_arms`; every cell derives its seed from its
    grid position, so rows are identical at any worker count.
    """
    if smoke:
        n_hosts = min(n_hosts, 24)
        rate_per_s = min(rate_per_s, 15.0)
        duration_ms = min(duration_ms, 8_000.0)
        settle_ms = min(settle_ms, 10_000.0)
        drain_ms = min(drain_ms, 10_000.0)
        # keep the op deadline inside the drain window so no-hit
        # searches report as timeouts rather than unfinished
        timeout_ms = min(timeout_ms, 8_000.0)
        n_workers = min(n_workers, 4)
    result = ExperimentResult(
        "SERVICE",
        "Service-level SLO percentiles under open- and closed-loop load",
    )
    grid: list[tuple[str, str, str]] = [
        (overlay, "open", process)
        for overlay in OVERLAY_ARMS
        for process in PROCESS_ARMS
    ] + [(overlay, "closed", "-") for overlay in OVERLAY_ARMS]

    def run_cell(spec: tuple[str, str, str]) -> dict[str, Any]:
        overlay, mode, process = spec
        cell_seed = seed + 101 * grid.index(spec)
        return _run_cell(
            overlay, mode, process, cell_seed,
            n_hosts=n_hosts, rate_per_s=rate_per_s, duration_ms=duration_ms,
            settle_ms=settle_ms, drain_ms=drain_ms, timeout_ms=timeout_ms,
            n_workers=n_workers,
        )

    for row in run_arms(run_cell, grid, workers=workers):
        result.add_row(**row)

    by_tail = {}
    for row in result.rows:
        if row["mode"] == "open" and row["overlay"] == "kademlia":
            by_tail[row["process"]] = row["p99"]
    if by_tail:
        result.notes.append(
            "kademlia open-loop p99 by arrival process: "
            + ", ".join(f"{k}={v:.0f}ms" for k, v in sorted(by_tail.items()))
        )
    return result
