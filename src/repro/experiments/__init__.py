"""Experiments: one module per figure/table of the paper.

| id      | paper artefact                          | module                 |
|---------|-----------------------------------------|------------------------|
| FIG1    | Internet hierarchy                      | fig1_hierarchy         |
| FIG2    | cost relations (+ locality savings)     | fig2_costs             |
| FIG3    | collection taxonomy, measured           | fig3_taxonomy          |
| FIG4    | ICS coordinates (+ worked examples)     | fig4_ics               |
| FIG5    | Gnutella + oracle message table         | fig5_gnutella_oracle   |
| FIG6    | uniform vs biased neighbor selection    | fig6_bns               |
| TESTLAB | 45-node 5-AS controlled experiments     | testlab                |
| TAB1    | catalogue of underlay-aware systems     | table1_systems         |
| TAB2    | impact matrix                           | table2_impact          |

Beyond the paper's artefacts, ``resilience_faults`` (id RESILIENCE)
answers its §5.4 open question with the fault-injection subsystem:
lookup success and stretch under loss, partition, and crash scenarios;
``locality_swarm`` (id LOCALITY) sweeps tracker locality bias over a
thousand-peer BitTorrent swarm on the flow-level data plane, reproducing
the Cuevas et al. win-win vs ISP-unfairness regimes; ``service_slo``
(id SERVICE) drives both overlays as *services* through the
:mod:`repro.service` layer — open- and closed-loop load under Poisson,
heavy-tail, and diurnal arrivals — and reports SLO latency percentiles.
"""

from repro.experiments.common import (
    ExperimentResult,
    generate_underlay,
    metrics_snapshot,
    observability,
    print_table,
    repeat_over_seeds,
    run_observed,
)
from repro.experiments.fig1_hierarchy import run_fig1
from repro.experiments.fig2_costs import run_fig2, run_locality_savings
from repro.experiments.fig3_taxonomy import run_fig3
from repro.experiments.fig4_ics import (
    run_fig4_dimension_sweep,
    run_fig4_embedding,
    run_fig4_examples,
)
from repro.experiments.fig5_gnutella_oracle import run_fig5
from repro.experiments.fig6_bns import run_fig6
from repro.experiments.framework_composite import run_framework_composite
from repro.experiments.isp_bill import run_isp_bill
from repro.experiments.locality_swarm import run_locality_swarm
from repro.experiments.resilience_faults import run_resilience_faults
from repro.experiments.service_slo import run_service_slo
from repro.experiments.table1_systems import run_table1
from repro.experiments.table2_impact import run_table2
from repro.experiments.testlab import (
    TESTLAB_TOPOLOGIES,
    build_testlab_underlay,
    run_testlab,
    run_testlab_arm,
    testlab_topology,
)

__all__ = [
    "ExperimentResult",
    "TESTLAB_TOPOLOGIES",
    "build_testlab_underlay",
    "generate_underlay",
    "metrics_snapshot",
    "observability",
    "print_table",
    "repeat_over_seeds",
    "run_fig1",
    "run_fig2",
    "run_fig3",
    "run_fig4_dimension_sweep",
    "run_fig4_embedding",
    "run_fig4_examples",
    "run_fig5",
    "run_fig6",
    "run_framework_composite",
    "run_isp_bill",
    "run_locality_savings",
    "run_locality_swarm",
    "run_observed",
    "run_resilience_faults",
    "run_service_slo",
    "run_table1",
    "run_table2",
    "run_testlab",
    "run_testlab_arm",
    "testlab_topology",
]
