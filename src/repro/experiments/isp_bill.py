"""ISPBILL — end-to-end ISP economics of an overlay workload.

Connects the whole pipeline the paper argues through: a P2P workload
runs over the underlay (Gnutella searches + HTTP downloads), the traffic
accountant samples every transit link in five-minute buckets, and the
cost model bills each local ISP at the 95th-percentile sampled peak —
then the same workload runs with the oracle switched on.

This is the quantitative form of §2.1/§5.2: "the shift of traffic from
transit to peering links due to locality of traffic means that increased
P2P traffic does not inflict any additional costs on the ISP."
"""

from __future__ import annotations

import numpy as np

from repro.collection.oracle import ISPOracle
from repro.experiments.common import ExperimentResult
from repro.overlay.gnutella import GnutellaConfig, GnutellaNetwork, NeighborPolicy
from repro.sim.engine import Simulation
from repro.underlay.autonomous_system import Tier
from repro.underlay.cost import CostModel
from repro.experiments.common import generate_underlay
from repro.underlay.network import UnderlayConfig
from repro.underlay.topology import TopologyConfig
from repro.workloads.content import CatalogConfig, ContentCatalog


def _run_workload(policy: NeighborPolicy, biased_download: bool,
                  n_hosts: int, seed: int):
    underlay = generate_underlay(
        UnderlayConfig(
            topology=TopologyConfig(n_tier1=3, n_tier2=6, n_stub=12, n_regions=4),
            n_hosts=n_hosts,
            seed=seed,
        )
    )
    sim = Simulation()
    bus, acct = underlay.message_bus(sim)
    net = GnutellaNetwork(
        underlay, sim, bus,
        config=GnutellaConfig(query_ttl=5),
        policy=policy, oracle=ISPOracle(underlay),
        biased_download=biased_download, rng=seed + 1,
    )
    net.add_population(underlay.hosts)
    net.bootstrap(cache_fill=n_hosts - 1)
    net.join_all()
    sim.run()
    catalog = ContentCatalog(
        CatalogConfig(n_files=60, locality_bias=0.5), rng=seed + 2
    )
    for hid, files in catalog.assign_shared_content(
        underlay.hosts, files_per_host=6
    ).items():
        net.share_content(hid, files)
    sim.run()
    # a month's worth of downloads compressed: spread searches over many
    # billing buckets so percentile billing has samples to chew on
    rng = np.random.default_rng(seed + 3)
    for h in underlay.hosts:
        delay = float(rng.uniform(0, 3_000_000.0))  # within ~50 min of sim time
        sim.schedule(delay, _search_and_fetch, net, h.host_id,
                     catalog.draw_query(h.asn))
    sim.run()
    return underlay, acct


def _search_and_fetch(net: GnutellaNetwork, origin: int, keyword: int) -> None:
    guid = net.search(origin, keyword)

    def fetch() -> None:
        net.download_stage(guid, file_size_bytes=4_000_000)

    net.sim.schedule(5_000.0, fetch)


def run_isp_bill(n_hosts: int = 150, seed: int = 19) -> ExperimentResult:
    """Run the ISPBILL experiment; returns per-arm billing rows."""
    model = CostModel()
    result = ExperimentResult(
        "ISPBILL", "Per-ISP transit bills: unbiased vs oracle-biased workload"
    )
    arms = [
        ("unbiased", NeighborPolicy.UNBIASED, False),
        ("biased_both_stages", NeighborPolicy.BIASED, True),
    ]
    for name, policy, biased_dl in arms:
        underlay, acct = _run_workload(policy, biased_dl, n_hosts, seed)
        stubs = [a.asn for a in underlay.topology.ases if a.tier is Tier.STUB]
        bills = []
        for stub in stubs:
            links = [
                (min(stub, p), max(stub, p))
                for p in underlay.topology.asys(stub).providers
            ]
            peak = sum(acct.peak_transit_mbps(l) for l in links)
            bills.append(model.transit_monthly_cost(peak))
        result.add_row(
            arm=name,
            total_transit_mb=acct.summary.transit_bytes / 1e6,
            intra_as_fraction=acct.summary.intra_as_fraction,
            mean_stub_bill_usd=float(np.mean(bills)),
            max_stub_bill_usd=float(np.max(bills)),
        )
    u, b = result.rows
    if u["mean_stub_bill_usd"] > 0:
        result.notes.append(
            f"oracle cuts the mean local-ISP transit bill by "
            f"{1 - b['mean_stub_bill_usd'] / u['mean_stub_bill_usd']:.0%}"
        )
    return result
