"""FRAMEWORK — the §7 claim, measured: a general architecture in which
*different underlay information can be collected and used together*.

One overlay-construction task (pick k neighbours per peer), five ways:
underlay-oblivious, each single information type through the framework,
and the composite QoS profiles that blend them.  Every arm is scored on
the axes the paper's Table 2 uses — neighbour RTT (delay), intra-AS edge
fraction (ISP costs), neighbour session time (stability) — plus the
collection overhead actually spent.

The composite profiles should dominate their single-information
components on the blend of axes they weight — that is what the framework
buys over any single technique.
"""

from __future__ import annotations

import networkx as nx
import numpy as np

from repro.collection import GPSService, ISPOracle, SkyEyeOverlay
from repro.core import (
    BUILTIN_PROFILES,
    FILE_SHARING,
    REAL_TIME,
    UnderlayAwarenessFramework,
)
from repro.core.qos import QoSProfile
from repro.collection.base import UnderlayInfoType
from repro.experiments.common import ExperimentResult
from repro.rng import ensure_rng
from repro.experiments.common import generate_underlay
from repro.underlay.network import Underlay, UnderlayConfig
from repro.underlay.topology import TopologyConfig


def _score_graph(underlay: Underlay, graph: nx.Graph) -> dict[str, float]:
    edges = list(graph.edges())
    rtts = [2.0 * underlay.one_way_delay(a, b) for a, b in edges]
    same = sum(
        1 for a, b in edges if underlay.asn_of(a) == underlay.asn_of(b)
    )
    sessions = [
        underlay.host(b).resources.avg_online_hours for _a, b in edges
    ] + [underlay.host(a).resources.avg_online_hours for a, _b in edges]
    return {
        "neighbor_rtt_ms": float(np.mean(rtts)),
        "intra_as_edges": same / len(edges),
        "neighbor_session_h": float(np.mean(sessions)),
    }


def run_framework_composite(
    n_hosts: int = 150, seed: int = 37, k: int = 5, pool: int = 30
) -> ExperimentResult:
    """Run the FRAMEWORK experiment; returns one row per selection arm."""
    underlay = generate_underlay(
        UnderlayConfig(
            topology=TopologyConfig(n_tier1=3, n_tier2=8, n_stub=16, n_regions=4),
            n_hosts=n_hosts,
            seed=seed,
        )
    )
    fw = UnderlayAwarenessFramework(underlay)
    fw.use_oracle(ISPOracle(underlay))
    fw.use_true_latency()
    fw.use_gps(GPSService(underlay, availability=1.0))
    sky = SkyEyeOverlay(underlay.host_ids())
    for h in underlay.hosts:
        sky.report(h.host_id, h.resources)
    sky.run_aggregation_round()
    fw.use_skyeye(sky)

    single = {
        f"only:{info.value}": QoSProfile(f"only-{info.value}", {info: 1.0})
        for info in UnderlayInfoType
    }
    arms: dict[str, object] = {"random": None}
    arms.update(single)
    arms.update({f"profile:{p.name}": p for p in BUILTIN_PROFILES})

    rng = ensure_rng(seed + 1)
    ids = underlay.host_ids()
    result = ExperimentResult(
        "FRAMEWORK", "Composite profiles vs single-information selection"
    )
    for name, profile in arms.items():
        g = nx.Graph()
        g.add_nodes_from(ids)
        arm_rng = ensure_rng(seed + 2)  # identical candidate draws per arm
        for h in ids:
            others = [x for x in ids if x != h]
            picks = arm_rng.choice(len(others), size=pool, replace=False)
            candidates = [others[int(i)] for i in picks]
            if profile is None:
                chosen = fw.baseline_selector(rng).select(h, candidates, k)
            else:
                chosen = fw.select_neighbors(h, candidates, k, profile)
            for nb in chosen:
                g.add_edge(h, nb)
        result.add_row(arm=name, **_score_graph(underlay, g))
    result.notes.append(
        f"collection overhead spent: {fw.total_overhead_bytes()} bytes "
        f"across {len(fw.overhead_report())} services"
    )
    return result
