"""LOCALITY — thousand-peer BitTorrent locality sweep on the flow plane.

Sweeps the tracker's locality bias over a large single-torrent swarm and
reports, per bias level, the two sides of the locality trade-off the
paper argues through (§2.1, §5.2) and that Cuevas et al. (*Deep Diving
into BitTorrent Locality*) quantified at scale:

- **users** — median/mean download time and completion rate;
- **ISPs** — transit byte fraction and the per-tier monthly transit
  bills from 95th-percentile sampled-peak accounting
  (:class:`~repro.underlay.cost.TransitBillingLedger`).

The expected shape is Cuevas' two regimes: moderate bias is *win-win*
(transit bills fall, download times hold — the swarm still has enough
external capacity), while pushing bias toward 1 starves small-AS peers
of external capacity and download times degrade even as bills keep
falling (the ISP-unfairness regime).

Bias ``b`` maps onto the Bindal-style tracker: ``b = 0`` is the plain
``RANDOM`` policy; ``b > 0`` uses ``BIASED`` with
``external_quota = max(1, round((1 - b) * peer_list_size))``, so ``b``
is the target fraction of same-AS entries in each announce response.

The swarm runs on the flow-level data plane
(:class:`~repro.overlay.bittorrent.FlowSwarmSimulation`), which is what
makes thousand-peer sweeps tractable; ``smoke=True`` keeps the
2000-peer population but trims the torrent and the bias grid to
CI size.  Arms fan out over :func:`repro.runner.run_arms`.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.experiments.common import ExperimentResult, generate_underlay
from repro.overlay.bittorrent import (
    FlowPlaneConfig,
    FlowSwarmSimulation,
    Torrent,
    Tracker,
    TrackerPolicy,
)
from repro.runner import run_arms
from repro.underlay.cost import CostModel
from repro.underlay.network import Underlay, UnderlayConfig
from repro.underlay.topology import TopologyConfig

#: default bias grid: random, mild, Bindal-ish, near-total (one external
#: announce entry — the quota floor that keeps the swarm connected)
DEFAULT_BIASES = (0.0, 0.5, 0.8, 0.97)


def _provisioned_seeds(underlay: Underlay, n_seeds: int) -> list[int]:
    """The ``n_seeds`` fastest-uplink hosts.  Initial seeds gate content
    injection, so a locality sweep seeds from well-provisioned hosts
    (mirroring a publisher on a fat pipe) rather than random DSL lines —
    otherwise every arm just measures the seed bottleneck."""
    ids = underlay.host_ids()
    return sorted(
        ids,
        key=lambda h: -underlay.host(h).resources.bandwidth_up_kbps,
    )[:n_seeds]


def _run_arm(
    underlay: Underlay,
    bias: float,
    torrent: Torrent,
    *,
    peer_list_size: int,
    n_seeds: int,
    arrival_span_s: float,
    max_time_s: float,
    seed: int,
) -> dict:
    if bias <= 0.0:
        tracker = Tracker(
            underlay, peer_list_size=peer_list_size, rng=seed + 1
        )
    else:
        quota = max(1, round((1.0 - bias) * peer_list_size))
        tracker = Tracker(
            underlay,
            policy=TrackerPolicy.BIASED,
            peer_list_size=peer_list_size,
            external_quota=quota,
            rng=seed + 1,
        )
    swarm = FlowSwarmSimulation(
        underlay,
        torrent,
        tracker,
        flow_config=FlowPlaneConfig(),
        rng=seed + 2,
    )
    seeds = _provisioned_seeds(underlay, n_seeds)
    leechers = [h for h in underlay.host_ids() if h not in seeds]
    swarm.populate(leechers, seeds, arrival_span_s=arrival_span_s)
    report = swarm.run(max_time_s=max_time_s)

    model = CostModel()
    tiers = swarm.billing.bills_by_tier(model, underlay.topology)
    stub = tiers.get("stub", {"total_usd": 0.0, "mean_usd": 0.0})
    by_as = swarm.download_times_by_as()
    worst_as_median = max(
        (float(np.median(ts)) for ts in by_as.values()), default=float("nan")
    )
    return {
        "bias": bias,
        "completion_rate": round(report.completion_rate, 4),
        "median_download_s": round(report.median_download_time_s, 1),
        "mean_download_s": round(report.mean_download_time_s, 1),
        "worst_as_median_s": round(worst_as_median, 1),
        "intra_as_fraction": round(report.intra_as_fraction, 4),
        "transit_fraction": round(report.transit_fraction, 4),
        "transit_gb": round(report.transit_bytes / 1e9, 3),
        "stub_transit_bill_usd": round(stub["total_usd"], 2),
        "mean_stub_bill_usd": round(stub["mean_usd"], 2),
        "rate_reallocations": swarm.reallocs_total,
    }


def run_locality_swarm(
    n_hosts: int = 2000,
    seed: int = 11,
    *,
    biases: Optional[Sequence[float]] = None,
    n_pieces: int = 64,
    piece_size_bytes: int = 262144,
    n_seeds: int = 5,
    peer_list_size: int = 35,
    arrival_span_s: float = 120.0,
    max_time_s: float = 7200.0,
    smoke: bool = False,
    workers: int | None = None,
) -> ExperimentResult:
    """Run the locality sweep; one row per bias level.

    ``smoke=True`` is the CI-sized run: the full 2000-peer population
    (the point of the flow plane is that this stays cheap) but a
    quarter-size torrent and a two-point bias grid.
    """
    if smoke:
        n_pieces = min(n_pieces, 16)
        if biases is None:
            biases = (0.0, 0.8)
    if biases is None:
        biases = DEFAULT_BIASES
    underlay = generate_underlay(
        UnderlayConfig(
            topology=TopologyConfig(
                n_tier1=3, n_tier2=8, n_stub=16, n_regions=4
            ),
            n_hosts=n_hosts,
            seed=seed,
        )
    )
    torrent = Torrent(0, n_pieces=n_pieces, piece_size_bytes=piece_size_bytes)
    result = ExperimentResult(
        "LOCALITY",
        f"Locality bias sweep, {n_hosts}-peer swarm on the flow-level "
        "data plane",
    )

    def one(bias: float) -> dict:
        # workers inherit ``underlay`` via fork; each arm builds its own
        # tracker + swarm over the shared read-only substrate
        return _run_arm(
            underlay,
            bias,
            torrent,
            peer_list_size=peer_list_size,
            n_seeds=n_seeds,
            arrival_span_s=arrival_span_s,
            max_time_s=max_time_s,
            seed=seed,
        )

    for row in run_arms(one, list(biases), workers=workers):
        result.add_row(**row)

    rows = result.rows
    base = rows[0]
    peak = max(rows, key=lambda r: r["bias"])
    if base["stub_transit_bill_usd"] > 0:
        result.notes.append(
            f"bias {peak['bias']:.2f} cuts stub-AS transit bills by "
            f"{1 - peak['stub_transit_bill_usd'] / base['stub_transit_bill_usd']:.0%} "
            f"vs the random tracker"
        )
    result.notes.append(
        "expected shape (Cuevas et al.): transit fraction and stub bills "
        "fall monotonically with bias; aggregate download times hold "
        "(win-win), while at near-total bias the worst-AS median degrades "
        "— the ISP whose peers the biased tracker starves pays for the "
        "aggregate win (ISP-unfairness regime)"
    )
    return result
