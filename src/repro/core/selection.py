"""Neighbor-selection strategies: the *usage* half of underlay awareness.

Every strategy consumes a querying host plus candidate host ids and
returns the candidates ranked best-first.  Strategies differ only in
which underlay information they consult — which makes them directly
pluggable into any overlay's join/neighbor-maintenance path and into the
framework's composite selector.

Concrete strategies (one per §2 information type, plus the strawman):

- :class:`RandomSelection` — underlay-oblivious baseline;
- :class:`ISPLocalitySelection` — ISP-location via an oracle or an
  IP-to-ISP mapping (biased neighbor selection);
- :class:`LatencySelection` — predicted RTT from a coordinate system or
  explicit measurement;
- :class:`GeoSelection` — geographic distance from a geolocation source;
- :class:`ResourceSelection` — candidate capacity (super-peer affinity);
- :class:`CompositeSelection` — weighted rank fusion of any of the above,
  the "different underlay information collected and used together" that
  the survey's framework vision calls for.

Batch ranking
-------------

Ranking sits on the critical path of every biased-neighbor-selection and
proximity experiment, so each strategy exposes two protocols on top of
:meth:`NeighborSelection.rank`:

- :meth:`NeighborSelection.score_many` — one batched call returning a
  float score per candidate (lower is better); the built-in strategies
  override it to pull whole rows from the underlay substrate (host
  latency row, position arrays, capacity records) instead of one Python
  callback per candidate.
- :meth:`NeighborSelection.top_k` — the best ``k`` candidates without a
  full sort (``np.argpartition`` over vectorised scores,
  ``heapq.nsmallest`` over scalar ones), so top-1/top-k callers (source
  selection, ``select``) never pay ``O(n log n)``.

Orderings are bit-identical to the per-candidate reference path, which
every strategy retains as ``rank_scalar`` — the equivalence is asserted
over multiple seeds by ``tests/test_selection_batch.py`` and timed by
``benchmarks/test_microbench_selection.py``.
"""

from __future__ import annotations

import abc
import heapq
from typing import Callable, Optional, Sequence

import numpy as np

from repro.collection.ip_mapping import IPToISPMapping
from repro.collection.oracle import ISPOracle
from repro.errors import ConfigurationError
from repro.rng import SeedLike, ensure_rng
from repro.underlay.geometry import Position
from repro.underlay.network import Underlay


class NeighborSelection(abc.ABC):
    """Ranks candidate neighbours for a querying host."""

    name: str = "abstract"

    @abc.abstractmethod
    def rank(self, querying_host: int, candidates: Sequence[int]) -> list[int]:
        """Candidates sorted best-first.  Must be a permutation of the
        input (deduplicated, order of ties implementation-defined)."""

    def score_many(
        self, querying_host: int, candidates: Sequence[int]
    ) -> list[float]:
        """One float score per (deduplicated) candidate, lower = better.

        Sorting candidates by ``(score, input position)`` must reproduce
        :meth:`rank` exactly.  The generic fallback derives scores from a
        full ranking; strategies with a real scoring function override it
        with a batched computation.
        """
        cand = _dedup(candidates)
        position = {c: p for p, c in enumerate(self.rank(querying_host, cand))}
        return [float(position[c]) for c in cand]

    def top_k(
        self, querying_host: int, candidates: Sequence[int], k: int
    ) -> list[int]:
        """The best ``k`` candidates, identical to ``rank(...)[:k]``.

        The default pays the full ranking; score-based strategies
        override it with a single-scan/heap selection.
        """
        if k < 0:
            raise ConfigurationError("k must be non-negative")
        if k == 0:
            return []
        return self.rank(querying_host, candidates)[:k]

    def select(
        self, querying_host: int, candidates: Sequence[int], k: int
    ) -> list[int]:
        """Top-``k`` convenience wrapper (routed through :meth:`top_k`)."""
        return self.top_k(querying_host, candidates, k)


def _dedup(candidates: Sequence[int]) -> list[int]:
    """First occurrence of each candidate, input order (C-speed)."""
    return list(dict.fromkeys(candidates))


def _partition_smallest(scores: np.ndarray, k: int) -> np.ndarray:
    """Indices of the ``k`` smallest scores, ordered exactly like the
    first ``k`` entries of a stable ascending sort.

    ``argpartition`` alone is not enough: it may keep *any* of the
    entries tied at the k-th value, while the stable-sort prefix keeps
    the ones with the smallest indices.  So the boundary tie group is
    resolved explicitly.  ``O(n + k log k)``; requires ``0 < k < n``.
    """
    kth = scores[np.argpartition(scores, k - 1)[:k]].max()
    strict = np.flatnonzero(scores < kth)
    tied = np.flatnonzero(scores == kth)[: k - len(strict)]
    chosen = np.concatenate((strict, tied))
    return chosen[np.argsort(scores[chosen], kind="stable")]


class ScoredSelection(NeighborSelection):
    """Base for strategies fully ordered by ``(float score, input index)``.

    Subclasses implement :meth:`score_many`; ``rank`` and ``top_k`` are
    derived from it.  Vectorised scores (an ndarray) order through a
    stable ``argsort`` / exact ``argpartition``; scalar score lists fall
    back to the tuple sort / ``heapq.nsmallest`` — all four paths are
    bit-identical (stable sorts break ties by input index, and
    :func:`_partition_smallest` resolves boundary ties the same way).
    """

    @abc.abstractmethod
    def score_many(
        self, querying_host: int, candidates: Sequence[int]
    ) -> list[float]:
        """Batched scores aligned with the deduplicated candidate order."""

    def rank(self, querying_host: int, candidates: Sequence[int]) -> list[int]:
        cand = _dedup(candidates)
        if len(cand) <= 1:
            return cand
        scores = self.score_many(querying_host, cand)
        if isinstance(scores, np.ndarray):
            order = np.argsort(scores, kind="stable")
            return np.asarray(cand)[order].tolist()
        order = sorted(range(len(cand)), key=lambda i: (scores[i], i))
        return [cand[i] for i in order]

    def top_k(
        self, querying_host: int, candidates: Sequence[int], k: int
    ) -> list[int]:
        if k < 0:
            raise ConfigurationError("k must be non-negative")
        if k == 0:
            return []
        cand = _dedup(candidates)
        if len(cand) <= 1 or k >= len(cand):
            return self.rank(querying_host, cand)[:k]
        scores = self.score_many(querying_host, cand)
        if isinstance(scores, np.ndarray):
            return [cand[i] for i in _partition_smallest(scores, k)]
        best = heapq.nsmallest(
            k, range(len(cand)), key=lambda i: (scores[i], i)
        )
        return [cand[i] for i in best]


class RandomSelection(ScoredSelection):
    """Underlay-oblivious baseline: a seeded random permutation."""
    name = "random"

    def __init__(self, rng: SeedLike = None) -> None:
        self._rng = ensure_rng(rng)

    def score_many(
        self, querying_host: int, candidates: Sequence[int]
    ) -> list[float]:
        cand = _dedup(candidates)
        perm = self._rng.permutation(len(cand))
        scores = [0.0] * len(cand)
        for position, i in enumerate(perm):
            scores[int(i)] = float(position)
        return scores

    def rank_scalar(
        self, querying_host: int, candidates: Sequence[int]
    ) -> list[int]:
        """Retained per-candidate reference path (identical draws)."""
        cand = _dedup(candidates)
        perm = self._rng.permutation(len(cand))
        return [cand[int(i)] for i in perm]


class ISPLocalitySelection(NeighborSelection):
    """Biased neighbor selection via the ISP oracle, or — without ISP
    cooperation — via a client-side IP-to-ISP mapping (same-AS first,
    unknown-hop candidates after).

    The mapping path memoises lookups within a call, so a ``rank`` over
    ``n`` distinct candidates costs exactly ``n + 1`` mapping queries
    (one for the querier) no matter how often a host id repeats.
    """

    name = "isp-location"

    def __init__(
        self,
        underlay: Underlay,
        *,
        oracle: Optional[ISPOracle] = None,
        mapping: Optional[IPToISPMapping] = None,
    ) -> None:
        if oracle is None and mapping is None:
            raise ConfigurationError("need an oracle or an IP-to-ISP mapping")
        self.underlay = underlay
        self.oracle = oracle
        self.mapping = mapping

    def _mapping_scores(
        self, querying_host: int, cand: Sequence[int]
    ) -> list[float]:
        assert self.mapping is not None
        memo: dict[int, int] = {}

        def lookup(host_id: int) -> int:
            asn = memo.get(host_id)
            if asn is None:
                asn = memo[host_id] = self.mapping.lookup(host_id)
            return asn

        my_asn = lookup(querying_host)
        return [0.0 if lookup(c) == my_asn else 1.0 for c in cand]

    def score_many(
        self, querying_host: int, candidates: Sequence[int]
    ) -> list[float]:
        cand = _dedup(candidates)
        if self.oracle is not None:
            return super().score_many(querying_host, cand)
        return self._mapping_scores(querying_host, cand)

    def rank(self, querying_host: int, candidates: Sequence[int]) -> list[int]:
        cand = _dedup(candidates)
        if self.oracle is not None:
            return self.oracle.rank(querying_host, cand)
        scores = self._mapping_scores(querying_host, cand)
        order = sorted(range(len(cand)), key=lambda i: (scores[i], i))
        return [cand[i] for i in order]

    def top_k(
        self, querying_host: int, candidates: Sequence[int], k: int
    ) -> list[int]:
        if k < 0:
            raise ConfigurationError("k must be non-negative")
        if k == 0:
            return []
        cand = _dedup(candidates)
        if self.oracle is not None:
            return self.oracle.top_k(querying_host, cand, k)
        if k >= len(cand):
            return self.rank(querying_host, cand)
        scores = self._mapping_scores(querying_host, cand)
        best = heapq.nsmallest(
            k, range(len(cand)), key=lambda i: (scores[i], i)
        )
        return [cand[i] for i in best]

    def rank_scalar(
        self, querying_host: int, candidates: Sequence[int]
    ) -> list[int]:
        """Retained per-candidate reference path (one lookup per
        candidate, full sort; oracle path uses the oracle's reference)."""
        cand = _dedup(candidates)
        if self.oracle is not None:
            return self.oracle.rank_reference(querying_host, cand)
        assert self.mapping is not None
        my_asn = self.mapping.lookup(querying_host)
        keyed = [
            (0 if self.mapping.lookup(c) == my_asn else 1, i, c)
            for i, c in enumerate(cand)
        ]
        keyed.sort()
        return [c for _k, _i, c in keyed]


class LatencySelection(ScoredSelection):
    """Lowest predicted RTT first.

    ``rtt_predictor(src_host, dst_host) -> ms`` can be a coordinate-system
    estimate (cheap, §3.2 prediction) or a PingService measurement
    (accurate, expensive).  A ``batch_predictor(src_host, candidates) ->
    array of ms`` — a latency-matrix row pull or
    :meth:`~repro.coords.base.CoordinateSystem.estimate_many` — replaces
    the per-candidate callbacks on the batch path; it must agree with the
    scalar predictor value-for-value.
    """

    name = "latency"

    def __init__(
        self,
        rtt_predictor: Callable[[int, int], float],
        *,
        batch_predictor: Optional[
            Callable[[int, Sequence[int]], np.ndarray]
        ] = None,
    ) -> None:
        self.rtt_predictor = rtt_predictor
        self.batch_predictor = batch_predictor

    @classmethod
    def from_underlay(cls, underlay: Underlay) -> "LatencySelection":
        """True-RTT selector over the underlay's host latency matrix —
        the zero-error control; the batch path is one row gather."""
        def scalar(a: int, b: int) -> float:
            return 2.0 * underlay.one_way_delay(a, b)

        def batch(src: int, candidates: Sequence[int]) -> np.ndarray:
            return 2.0 * underlay.one_way_delay_row(src, candidates)

        return cls(scalar, batch_predictor=batch)

    def score_many(
        self, querying_host: int, candidates: Sequence[int]
    ) -> list[float]:
        cand = _dedup(candidates)
        if self.batch_predictor is not None:
            return np.asarray(
                self.batch_predictor(querying_host, cand), dtype=float
            )
        return [float(self.rtt_predictor(querying_host, c)) for c in cand]

    def rank_scalar(
        self, querying_host: int, candidates: Sequence[int]
    ) -> list[int]:
        """Retained per-candidate reference path (one predictor call per
        candidate, full sort)."""
        cand = _dedup(candidates)
        keyed = [
            (float(self.rtt_predictor(querying_host, c)), i, c)
            for i, c in enumerate(cand)
        ]
        keyed.sort()
        return [c for _d, _i, c in keyed]


class GeoSelection(ScoredSelection):
    """Geographically closest first; candidates without a position (e.g.
    no GPS fix) rank last.  Distances are evaluated in one vectorised
    pass over the gathered position array."""

    name = "geolocation"

    def __init__(self, position_source: Callable[[int], Optional[Position]]) -> None:
        self.position_source = position_source

    def score_many(
        self, querying_host: int, candidates: Sequence[int]
    ) -> list[float]:
        cand = _dedup(candidates)
        my_pos = self.position_source(querying_host)
        if my_pos is None:
            # no own fix: keep the input order (all scores tie at zero)
            return [0.0] * len(cand)
        positions = [self.position_source(c) for c in cand]
        have = [i for i, p in enumerate(positions) if p is not None]
        scores = np.full(len(cand), np.inf)
        if have:
            xs = np.array([positions[i].x for i in have], dtype=float)
            ys = np.array([positions[i].y for i in have], dtype=float)
            # elementwise hypot matches Position.distance_to bit-for-bit
            scores[have] = np.hypot(my_pos.x - xs, my_pos.y - ys)
        return scores

    def rank_scalar(
        self, querying_host: int, candidates: Sequence[int]
    ) -> list[int]:
        """Retained per-candidate reference path (one ``distance_to`` per
        candidate, full sort)."""
        cand = _dedup(candidates)
        my_pos = self.position_source(querying_host)
        if my_pos is None:
            return cand
        keyed = []
        for i, c in enumerate(cand):
            pos = self.position_source(c)
            d = my_pos.distance_to(pos) if pos is not None else float("inf")
            keyed.append((d, i, c))
        keyed.sort()
        return [c for _d, _i, c in keyed]


class ResourceSelection(ScoredSelection):
    """Highest capacity first — attach to strong peers."""

    name = "peer-resources"

    def __init__(self, capacity_of: Callable[[int], float]) -> None:
        self.capacity_of = capacity_of

    @classmethod
    def from_underlay(cls, underlay: Underlay) -> "ResourceSelection":
        """Capacity straight from host records, memoised per host (the
        records are immutable substrate, so one attribute walk each)."""
        cache: dict[int, float] = {}

        def capacity(host_id: int) -> float:
            score = cache.get(host_id)
            if score is None:
                score = cache[host_id] = (
                    underlay.host(host_id).resources.capacity_score()
                )
            return score

        return cls(capacity)

    def score_many(
        self, querying_host: int, candidates: Sequence[int]
    ) -> list[float]:
        cand = _dedup(candidates)
        return [-float(self.capacity_of(c)) for c in cand]

    def rank_scalar(
        self, querying_host: int, candidates: Sequence[int]
    ) -> list[int]:
        """Retained per-candidate reference path (full sort)."""
        cand = _dedup(candidates)
        keyed = [(-float(self.capacity_of(c)), i, c) for i, c in enumerate(cand)]
        keyed.sort()
        return [c for _s, _i, c in keyed]


class CompositeSelection(NeighborSelection):
    """Weighted Borda rank fusion of several strategies.

    Each component ranks the candidates; a candidate's fused score is the
    weighted sum of its normalised ranks.  This is the mechanism that
    lets an application say "mostly latency, but break ties toward my
    ISP" — the per-application QoS tailoring of §2.  Ties in the fused
    score break toward the smaller host id (not the input position), so
    the fusion is independent of candidate-list order.
    """

    name = "composite"

    def __init__(
        self, components: Sequence[tuple[NeighborSelection, float]]
    ) -> None:
        if not components:
            raise ConfigurationError("composite needs at least one component")
        if any(w < 0 for _s, w in components):
            raise ConfigurationError("weights must be non-negative")
        total = sum(w for _s, w in components)
        if total <= 0:
            raise ConfigurationError("at least one weight must be positive")
        self.components = [(s, w / total) for s, w in components]

    def score_many(
        self, querying_host: int, candidates: Sequence[int]
    ) -> list[float]:
        cand = _dedup(candidates)
        n = len(cand)
        if n <= 1:
            return [0.0] * n
        index_of = {c: i for i, c in enumerate(cand)}
        denom = n - 1
        fused = np.zeros(n)
        positions = np.empty(n)
        for strategy, weight in self.components:
            for position, c in enumerate(strategy.rank(querying_host, cand)):
                positions[index_of[c]] = position
            fused += weight * (positions / denom)
        return fused

    def rank(self, querying_host: int, candidates: Sequence[int]) -> list[int]:
        cand = _dedup(candidates)
        if len(cand) <= 1:
            return cand
        scores = self.score_many(querying_host, cand)
        # lexsort: primary key fused score, ties by host id (ids are
        # unique after dedup, so this equals the (score, id) tuple sort)
        order = np.lexsort((np.asarray(cand), scores))
        return [cand[i] for i in order]

    def top_k(
        self, querying_host: int, candidates: Sequence[int], k: int
    ) -> list[int]:
        if k < 0:
            raise ConfigurationError("k must be non-negative")
        if k == 0:
            return []
        cand = _dedup(candidates)
        if len(cand) <= 1 or k >= len(cand):
            return self.rank(querying_host, cand)[:k]
        scores = self.score_many(querying_host, cand)
        ids = np.asarray(cand)
        # as in _partition_smallest, but boundary ties resolve by host id
        kth = scores[np.argpartition(scores, k - 1)[:k]].max()
        strict = np.flatnonzero(scores < kth)
        tied = np.flatnonzero(scores == kth)
        keep = k - len(strict)
        if keep < len(tied):
            tied = tied[np.argsort(ids[tied], kind="stable")[:keep]]
        chosen = np.concatenate((strict, tied))
        order = chosen[np.lexsort((ids[chosen], scores[chosen]))]
        return [cand[i] for i in order]

    def rank_scalar(
        self, querying_host: int, candidates: Sequence[int]
    ) -> list[int]:
        """Retained reference path: dict-accumulated fusion over the
        components' own scalar reference rankings."""
        cand = _dedup(candidates)
        if len(cand) <= 1:
            return cand
        scores = {c: 0.0 for c in cand}
        denom = len(cand) - 1
        for strategy, weight in self.components:
            ranker = getattr(strategy, "rank_scalar", strategy.rank)
            for pos, c in enumerate(ranker(querying_host, cand)):
                scores[c] += weight * (pos / denom)
        return sorted(cand, key=lambda c: (scores[c], c))
