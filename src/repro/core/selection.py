"""Neighbor-selection strategies: the *usage* half of underlay awareness.

Every strategy consumes a querying host plus candidate host ids and
returns the candidates ranked best-first.  Strategies differ only in
which underlay information they consult — which makes them directly
pluggable into any overlay's join/neighbor-maintenance path and into the
framework's composite selector.

Concrete strategies (one per §2 information type, plus the strawman):

- :class:`RandomSelection` — underlay-oblivious baseline;
- :class:`ISPLocalitySelection` — ISP-location via an oracle or an
  IP-to-ISP mapping (biased neighbor selection);
- :class:`LatencySelection` — predicted RTT from a coordinate system or
  explicit measurement;
- :class:`GeoSelection` — geographic distance from a geolocation source;
- :class:`ResourceSelection` — candidate capacity (super-peer affinity);
- :class:`CompositeSelection` — weighted rank fusion of any of the above,
  the "different underlay information collected and used together" that
  the survey's framework vision calls for.
"""

from __future__ import annotations

import abc
from typing import Callable, Optional, Sequence

import numpy as np

from repro.collection.ip_mapping import IPToISPMapping
from repro.collection.oracle import ISPOracle
from repro.errors import ConfigurationError
from repro.rng import SeedLike, ensure_rng
from repro.underlay.geometry import Position
from repro.underlay.network import Underlay


class NeighborSelection(abc.ABC):
    """Ranks candidate neighbours for a querying host."""

    name: str = "abstract"

    @abc.abstractmethod
    def rank(self, querying_host: int, candidates: Sequence[int]) -> list[int]:
        """Candidates sorted best-first.  Must be a permutation of the
        input (deduplicated, order of ties implementation-defined)."""

    def select(
        self, querying_host: int, candidates: Sequence[int], k: int
    ) -> list[int]:
        """Top-``k`` convenience wrapper."""
        if k < 0:
            raise ConfigurationError("k must be non-negative")
        return self.rank(querying_host, candidates)[:k]


def _dedup(candidates: Sequence[int]) -> list[int]:
    seen: set[int] = set()
    out: list[int] = []
    for c in candidates:
        if c not in seen:
            seen.add(c)
            out.append(c)
    return out


class RandomSelection(NeighborSelection):
    """Underlay-oblivious baseline: a seeded random permutation."""
    name = "random"

    def __init__(self, rng: SeedLike = None) -> None:
        self._rng = ensure_rng(rng)

    def rank(self, querying_host: int, candidates: Sequence[int]) -> list[int]:
        cand = _dedup(candidates)
        perm = self._rng.permutation(len(cand))
        return [cand[int(i)] for i in perm]


class ISPLocalitySelection(NeighborSelection):
    """Biased neighbor selection via the ISP oracle, or — without ISP
    cooperation — via a client-side IP-to-ISP mapping (same-AS first,
    unknown-hop candidates after)."""

    name = "isp-location"

    def __init__(
        self,
        underlay: Underlay,
        *,
        oracle: Optional[ISPOracle] = None,
        mapping: Optional[IPToISPMapping] = None,
    ) -> None:
        if oracle is None and mapping is None:
            raise ConfigurationError("need an oracle or an IP-to-ISP mapping")
        self.underlay = underlay
        self.oracle = oracle
        self.mapping = mapping

    def rank(self, querying_host: int, candidates: Sequence[int]) -> list[int]:
        cand = _dedup(candidates)
        if self.oracle is not None:
            return self.oracle.rank(querying_host, cand)
        assert self.mapping is not None
        my_asn = self.mapping.lookup(querying_host)
        keyed = [
            (0 if self.mapping.lookup(c) == my_asn else 1, i, c)
            for i, c in enumerate(cand)
        ]
        keyed.sort()
        return [c for _k, _i, c in keyed]


class LatencySelection(NeighborSelection):
    """Lowest predicted RTT first.

    ``rtt_predictor(src_host, dst_host) -> ms`` can be a coordinate-system
    estimate (cheap, §3.2 prediction) or a PingService measurement
    (accurate, expensive).
    """

    name = "latency"

    def __init__(self, rtt_predictor: Callable[[int, int], float]) -> None:
        self.rtt_predictor = rtt_predictor

    def rank(self, querying_host: int, candidates: Sequence[int]) -> list[int]:
        cand = _dedup(candidates)
        keyed = [
            (float(self.rtt_predictor(querying_host, c)), i, c)
            for i, c in enumerate(cand)
        ]
        keyed.sort()
        return [c for _d, _i, c in keyed]


class GeoSelection(NeighborSelection):
    """Geographically closest first; candidates without a position (e.g.
    no GPS fix) rank last."""

    name = "geolocation"

    def __init__(self, position_source: Callable[[int], Optional[Position]]) -> None:
        self.position_source = position_source

    def rank(self, querying_host: int, candidates: Sequence[int]) -> list[int]:
        cand = _dedup(candidates)
        my_pos = self.position_source(querying_host)
        if my_pos is None:
            return cand
        keyed = []
        for i, c in enumerate(cand):
            pos = self.position_source(c)
            d = my_pos.distance_to(pos) if pos is not None else float("inf")
            keyed.append((d, i, c))
        keyed.sort()
        return [c for _d, _i, c in keyed]


class ResourceSelection(NeighborSelection):
    """Highest capacity first — attach to strong peers."""

    name = "peer-resources"

    def __init__(self, capacity_of: Callable[[int], float]) -> None:
        self.capacity_of = capacity_of

    def rank(self, querying_host: int, candidates: Sequence[int]) -> list[int]:
        cand = _dedup(candidates)
        keyed = [(-float(self.capacity_of(c)), i, c) for i, c in enumerate(cand)]
        keyed.sort()
        return [c for _s, _i, c in keyed]


class CompositeSelection(NeighborSelection):
    """Weighted Borda rank fusion of several strategies.

    Each component ranks the candidates; a candidate's fused score is the
    weighted sum of its normalised ranks.  This is the mechanism that
    lets an application say "mostly latency, but break ties toward my
    ISP" — the per-application QoS tailoring of §2.
    """

    name = "composite"

    def __init__(
        self, components: Sequence[tuple[NeighborSelection, float]]
    ) -> None:
        if not components:
            raise ConfigurationError("composite needs at least one component")
        if any(w < 0 for _s, w in components):
            raise ConfigurationError("weights must be non-negative")
        total = sum(w for _s, w in components)
        if total <= 0:
            raise ConfigurationError("at least one weight must be positive")
        self.components = [(s, w / total) for s, w in components]

    def rank(self, querying_host: int, candidates: Sequence[int]) -> list[int]:
        cand = _dedup(candidates)
        if len(cand) <= 1:
            return cand
        scores = {c: 0.0 for c in cand}
        denom = len(cand) - 1
        for strategy, weight in self.components:
            ranked = strategy.rank(querying_host, cand)
            for pos, c in enumerate(ranked):
                scores[c] += weight * (pos / denom)
        return sorted(cand, key=lambda c: (scores[c], c))
