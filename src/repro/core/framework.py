"""The underlay-awareness framework: collection plugged into usage.

The survey's concluding open issue — "the development of a general
architecture for underlay awareness in which different underlay
information can be collected and used" — is this class.  It:

1. registers one collection service per information type (Figure 3),
2. adapts each service into a neighbor-selection strategy (§4), and
3. combines strategies per application QoS profile into a composite
   selector, exposing a single ``select_neighbors`` entry point that any
   overlay can call, plus an aggregated overhead report so the cost of
   awareness stays visible.

Example
-------
>>> from repro.underlay import Underlay, UnderlayConfig
>>> from repro.collection import ISPOracle
>>> from repro.core import UnderlayAwarenessFramework, REAL_TIME
>>> u = Underlay.generate(UnderlayConfig(n_hosts=30, seed=1))
>>> fw = UnderlayAwarenessFramework(u)
>>> fw.use_oracle(ISPOracle(u))
>>> fw.use_true_latency()
>>> ids = u.host_ids()
>>> picked = fw.select_neighbors(ids[0], ids[1:], k=5, profile=REAL_TIME)
>>> len(picked)
5
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

from repro.collection.base import InfoSource, OverheadCounter, UnderlayInfoType
from repro.collection.gps import GPSService
from repro.collection.ip_mapping import IPToISPMapping, IPToLocationMapping
from repro.collection.measurement import PingService
from repro.collection.oracle import ISPOracle
from repro.collection.skyeye import SkyEyeOverlay
from repro.coords.base import CoordinateSystem
from repro.core.qos import QoSProfile
from repro.core.selection import (
    CompositeSelection,
    GeoSelection,
    ISPLocalitySelection,
    LatencySelection,
    NeighborSelection,
    RandomSelection,
    ResourceSelection,
)
from repro.errors import ConfigurationError
from repro.underlay.geometry import Position
from repro.underlay.network import Underlay


class UnderlayAwarenessFramework:
    """Registry of collection services + per-profile neighbor selection."""

    def __init__(self, underlay: Underlay) -> None:
        self.underlay = underlay
        self._strategies: dict[UnderlayInfoType, NeighborSelection] = {}
        self._sources: list[InfoSource] = []

    # -- registration: one helper per Figure 3 technique ---------------------------
    def use_oracle(self, oracle: ISPOracle) -> None:
        """ISP-location via the in-network oracle component."""
        self._strategies[UnderlayInfoType.ISP_LOCATION] = ISPLocalitySelection(
            self.underlay, oracle=oracle
        )
        self._sources.append(oracle)

    def use_ip_mapping(self, mapping: IPToISPMapping) -> None:
        """ISP-location via a client-side mapping database."""
        self._strategies[UnderlayInfoType.ISP_LOCATION] = ISPLocalitySelection(
            self.underlay, mapping=mapping
        )
        self._sources.append(mapping)

    def use_coordinates(
        self,
        predictor: Callable[[int, int], float],
        source: Optional[InfoSource] = None,
        *,
        batch_predictor: Optional[Callable] = None,
    ) -> None:
        """Latency via a prediction method (e.g. Vivaldi/ICS estimate).

        ``batch_predictor(src, candidates) -> array`` (e.g. the system's
        ``estimate_many``) lets rankings evaluate all candidates in one
        vectorised call; it must agree with ``predictor`` value for value.
        """
        self._strategies[UnderlayInfoType.LATENCY] = LatencySelection(
            predictor, batch_predictor=batch_predictor
        )
        if source is not None:
            self._sources.append(source)

    def use_ping(self, ping: PingService) -> None:
        """Latency via explicit measurement (accurate, costly)."""
        self._strategies[UnderlayInfoType.LATENCY] = LatencySelection(
            lambda a, b: ping.measure_rtt(a, b)
        )
        self._sources.append(ping)

    def use_true_latency(self) -> None:
        """Latency from the underlay itself — the zero-error upper bound,
        useful as an experimental control.  Batched: one latency-matrix
        row gather per ranked list."""
        self._strategies[UnderlayInfoType.LATENCY] = LatencySelection.from_underlay(
            self.underlay
        )

    def use_gps(self, gps: GPSService) -> None:
        self._strategies[UnderlayInfoType.GEOLOCATION] = GeoSelection(
            gps.position_of
        )
        self._sources.append(gps)

    def use_ip_location(self, mapping: IPToLocationMapping) -> None:
        self._strategies[UnderlayInfoType.GEOLOCATION] = GeoSelection(
            lambda hid: mapping.lookup(hid)
        )
        self._sources.append(mapping)

    def use_skyeye(self, sky: SkyEyeOverlay) -> None:
        """Peer resources via the information management overlay.  Uses the
        capacity scores reported in the last aggregation round."""
        self._strategies[UnderlayInfoType.PEER_RESOURCES] = (
            ResourceSelection.from_underlay(self.underlay)
        )
        self._sources.append(sky)

    def use_resource_records(self) -> None:
        """Peer resources straight from host records (control condition)."""
        self._strategies[UnderlayInfoType.PEER_RESOURCES] = (
            ResourceSelection.from_underlay(self.underlay)
        )

    # -- queries ---------------------------------------------------------------------
    def available_info(self) -> set[UnderlayInfoType]:
        return set(self._strategies)

    def strategy_for(self, info: UnderlayInfoType) -> NeighborSelection:
        try:
            return self._strategies[info]
        except KeyError:
            raise ConfigurationError(
                f"no collection service registered for {info.value}; "
                f"available: {[t.value for t in self._strategies]}"
            ) from None

    def selector_for(self, profile: QoSProfile) -> NeighborSelection:
        """Build the composite selector for an application profile from the
        registered strategies.  Every profile weight must be backed by a
        registered service — awareness cannot be conjured from nothing."""
        components = [
            (self.strategy_for(info), weight)
            for info, weight in profile.weights.items()
            if weight > 0
        ]
        if len(components) == 1:
            return components[0][0]
        return CompositeSelection(components)

    def select_neighbors(
        self,
        querying_host: int,
        candidates: Sequence[int],
        k: int,
        profile: QoSProfile,
    ) -> list[int]:
        """The framework's single entry point for overlays."""
        return self.selector_for(profile).select(querying_host, candidates, k)

    def cached_selector_for(self, profile: QoSProfile, cache=None):
        """A profile's composite selector wrapped in a
        :class:`~repro.core.score_cache.CachedSelection`.  Hold on to the
        returned selector (each call builds a fresh wrapper) and wire the
        cache's ``watch_*`` hooks to whatever moves the underlay."""
        from repro.core.score_cache import CachedSelection

        return CachedSelection(self.selector_for(profile), cache)

    def baseline_selector(self, rng=None) -> NeighborSelection:
        """Underlay-oblivious control."""
        return RandomSelection(rng)

    # -- accounting --------------------------------------------------------------------
    def overhead_report(self) -> dict[str, OverheadCounter]:
        """Aggregated collection overhead per registered service."""
        return {type(s).__name__: s.overhead for s in self._sources}

    def total_overhead_bytes(self) -> int:
        return sum(s.overhead.bytes_on_wire for s in self._sources)
