"""Application QoS profiles.

"Different applications have different QoS requirements, and thus make
use of different underlay information" (§2).  A profile is a weight
vector over the four information types; the framework turns it into a
:class:`~repro.core.selection.CompositeSelection`.

The built-in profiles follow the survey's examples: file sharing wants
ISP locality (cost) and capable sources; real-time communication wants
latency above all; location-based services want geolocation; hybrid
directory overlays want stable, strong super-peers.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.collection.base import UnderlayInfoType
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class QoSProfile:
    """Weights over information types (will be normalised downstream)."""

    name: str
    weights: dict[UnderlayInfoType, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.weights:
            raise ConfigurationError("profile needs at least one weight")
        if any(w < 0 for w in self.weights.values()):
            raise ConfigurationError("weights must be non-negative")
        if all(w == 0 for w in self.weights.values()):
            raise ConfigurationError("at least one weight must be positive")


FILE_SHARING = QoSProfile(
    "file-sharing",
    {
        UnderlayInfoType.ISP_LOCATION: 0.6,
        UnderlayInfoType.PEER_RESOURCES: 0.4,
    },
)

REAL_TIME = QoSProfile(
    "real-time-communication",
    {
        UnderlayInfoType.LATENCY: 0.8,
        UnderlayInfoType.ISP_LOCATION: 0.2,
    },
)

LOCATION_SERVICES = QoSProfile(
    "location-based-services",
    {
        UnderlayInfoType.GEOLOCATION: 0.8,
        UnderlayInfoType.LATENCY: 0.2,
    },
)

HYBRID_DIRECTORY = QoSProfile(
    "hybrid-directory",
    {
        UnderlayInfoType.PEER_RESOURCES: 0.6,
        UnderlayInfoType.LATENCY: 0.4,
    },
)

BUILTIN_PROFILES = (FILE_SHARING, REAL_TIME, LOCATION_SERVICES, HYBRID_DIRECTORY)
