"""Struct-of-arrays peer state for 10^5–10^6-host overlays.

The object-per-peer layout that the overlays started from (one Python
object per node, per-message dict churn) caps experiments around 10^4
hosts: every liveness check chases a pointer, every neighbor update
rehashes a set, and the garbage collector walks millions of small
objects.  This module keeps the *hot* per-peer state — liveness/churn
status, region (AS) assignment, neighbor sets, piece/role bitmaps — in
contiguous numpy columns keyed by a dense **slot** index, with a
free-list allocator mapping arbitrary host ids onto slots.

Layout
------
- :class:`SlotAllocator` — host id ↔ slot mapping with a LIFO free list;
  slots of evicted hosts are recycled, and every allocation (fresh or
  recycled) clears the slot's row in all registered columns, so a host
  admitted into a recycled slot can never observe its predecessor's
  neighbors, bitmap bits, or liveness status.
- :class:`NeighborColumns` — one bounded neighbor set per slot as a row
  of a ``(capacity, max_degree)`` int64 matrix plus a count vector.
  Rows are kept **ascending-sorted**, which makes membership a
  ``searchsorted``, iteration deterministic, and batch degree queries a
  single vectorised read.
- :class:`Bitmap2D` — one packed bitset per slot (``uint64`` words):
  piece maps, ultrapeer/role flags, any per-peer boolean vector.
- :class:`PeerState` — the façade combining the allocator, a status
  column (offline/online/crashed), a region column for AS/region-sharded
  scheduling, named neighbor tables, and named bitmaps.

:class:`PeerStateReference` is the retained object-based twin (one
record object per peer, Python sets inside) with the same API.  It
exists for the equivalence harness (``tests/test_peerstate_equiv.py``
drives both with identical op sequences and asserts identical observable
state) and as the baseline arm of ``benchmarks/test_microbench_scale.py``.
"""

from __future__ import annotations

from typing import Callable, Hashable, Iterable, Iterator, Optional, Sequence

import numpy as np

from repro.errors import ConfigurationError

#: Liveness states of a slot (the churn/liveness column).
OFFLINE, ONLINE, CRASHED = 0, 1, 2

_STATUS_NAMES = {OFFLINE: "offline", ONLINE: "online", CRASHED: "crashed"}


class SlotAllocator:
    """Free-list allocator: arbitrary hashable host ids → dense slots.

    Slots are handed out densely (0, 1, 2, …) and recycled LIFO when
    freed, so the column arrays stay compact under churn instead of
    growing monotonically.  Columns register a ``clear_row(slot)``
    callback; it runs on **every** allocation, which is what guarantees
    a recycled slot carries no stale state.
    """

    def __init__(self, initial_capacity: int = 64) -> None:
        if initial_capacity < 1:
            raise ConfigurationError("initial capacity must be >= 1")
        self._capacity = int(initial_capacity)
        self._slot_of: dict[Hashable, int] = {}
        self._host_at: list[Optional[Hashable]] = [None] * self._capacity
        self._free: list[int] = []          # LIFO recycled slots
        self._next_fresh = 0                # never-used watermark
        self._clearers: list[Callable[[int], None]] = []
        self._growers: list[Callable[[int], None]] = []
        self.recycles = 0

    # -- capacity ---------------------------------------------------------------
    @property
    def capacity(self) -> int:
        return self._capacity

    def __len__(self) -> int:
        return len(self._slot_of)

    def __contains__(self, host: Hashable) -> bool:
        return host in self._slot_of

    def hosts(self) -> Iterator[Hashable]:
        """Live hosts in slot order (deterministic)."""
        for slot in range(self._next_fresh):
            host = self._host_at[slot]
            if host is not None:
                yield host

    def register(
        self,
        clear_row: Callable[[int], None],
        grow: Callable[[int], None],
    ) -> None:
        """Attach a column: ``clear_row(slot)`` on every alloc,
        ``grow(new_capacity)`` when the slot space expands."""
        self._clearers.append(clear_row)
        self._growers.append(grow)
        grow(self._capacity)

    def _grow(self, needed: int) -> None:
        new_cap = self._capacity
        while new_cap < needed:
            new_cap *= 2
        self._host_at.extend([None] * (new_cap - self._capacity))
        self._capacity = new_cap
        for grow in self._growers:
            grow(new_cap)

    # -- alloc / free ------------------------------------------------------------
    def alloc(self, host: Hashable) -> int:
        """Admit ``host``; returns its (possibly recycled) slot.  The
        slot's row is cleared in every registered column first."""
        if host in self._slot_of:
            raise ConfigurationError(f"host {host!r} already has a slot")
        if self._free:
            slot = self._free.pop()
            self.recycles += 1
        else:
            if self._next_fresh >= self._capacity:
                self._grow(self._next_fresh + 1)
            slot = self._next_fresh
            self._next_fresh += 1
        self._slot_of[host] = slot
        self._host_at[slot] = host
        for clear in self._clearers:
            clear(slot)
        return slot

    def free(self, host: Hashable) -> int:
        """Evict ``host``; its slot goes on the free list for reuse."""
        slot = self._slot_of.pop(host, None)
        if slot is None:
            raise ConfigurationError(f"host {host!r} has no slot")
        self._host_at[slot] = None
        self._free.append(slot)
        return slot

    def slot_of(self, host: Hashable) -> int:
        return self._slot_of[host]

    def get_slot(self, host: Hashable) -> Optional[int]:
        return self._slot_of.get(host)

    def host_at(self, slot: int) -> Hashable:
        host = self._host_at[slot]
        if host is None:
            raise ConfigurationError(f"slot {slot} is not allocated")
        return host

    @property
    def free_slots(self) -> int:
        """Recycled slots currently awaiting reuse."""
        return len(self._free)

    @property
    def high_water(self) -> int:
        """Highest slot count ever allocated at once (fresh watermark)."""
        return self._next_fresh

    def check_invariants(self) -> None:
        """Free-list accounting must balance exactly — the property the
        10^5-host churn smoke test asserts (no leaked slots)."""
        if len(self._slot_of) + len(self._free) != self._next_fresh:
            raise AssertionError(
                f"slot leak: {len(self._slot_of)} live + {len(self._free)} free "
                f"!= {self._next_fresh} allocated"
            )
        if len(set(self._free)) != len(self._free):
            raise AssertionError("free list contains duplicate slots")


class NeighborColumns:
    """Bounded per-slot neighbor sets as rows of one int64 matrix.

    Rows hold **host ids** (not slots, so entries never dangle when a
    neighbor is evicted) in ascending order; ``counts[slot]`` is the row
    length.  The width doubles on demand, so ``max_degree`` is a starting
    hint, not a cap.
    """

    def __init__(self, allocator: SlotAllocator, max_degree: int = 8) -> None:
        if max_degree < 1:
            raise ConfigurationError("max_degree must be >= 1")
        self._width = int(max_degree)
        self._ids = np.empty((0, self._width), dtype=np.int64)
        self.counts = np.zeros(0, dtype=np.int32)
        allocator.register(self._clear_row, self._grow)

    def _grow(self, capacity: int) -> None:
        if capacity <= self._ids.shape[0]:
            return
        ids = np.zeros((capacity, self._width), dtype=np.int64)
        counts = np.zeros(capacity, dtype=np.int32)
        n = self._ids.shape[0]
        ids[:n] = self._ids
        counts[:n] = self.counts
        self._ids, self.counts = ids, counts

    def _widen(self) -> None:
        ids = np.zeros((self._ids.shape[0], self._width * 2), dtype=np.int64)
        ids[:, : self._width] = self._ids
        self._ids, self._width = ids, self._width * 2

    def _clear_row(self, slot: int) -> None:
        self.counts[slot] = 0

    # -- set operations -----------------------------------------------------------
    def add(self, slot: int, host_id: int) -> bool:
        """Insert ``host_id`` keeping the row sorted; False if present."""
        n = int(self.counts[slot])
        row = self._ids[slot, :n]
        i = int(np.searchsorted(row, host_id))
        if i < n and row[i] == host_id:
            return False
        if n == self._width:
            self._widen()
        self._ids[slot, i + 1 : n + 1] = self._ids[slot, i:n]
        self._ids[slot, i] = host_id
        self.counts[slot] = n + 1
        return True

    def discard(self, slot: int, host_id: int) -> bool:
        n = int(self.counts[slot])
        row = self._ids[slot, :n]
        i = int(np.searchsorted(row, host_id))
        if i >= n or row[i] != host_id:
            return False
        self._ids[slot, i : n - 1] = self._ids[slot, i + 1 : n]
        self.counts[slot] = n - 1
        return True

    def contains(self, slot: int, host_id: int) -> bool:
        n = int(self.counts[slot])
        row = self._ids[slot, :n]
        i = int(np.searchsorted(row, host_id))
        return i < n and row[i] == host_id

    def row(self, slot: int) -> np.ndarray:
        """The slot's neighbor ids, ascending (a read-only view)."""
        out = self._ids[slot, : int(self.counts[slot])]
        out.flags.writeable = False
        return out

    def clear(self, slot: int) -> None:
        self.counts[slot] = 0

    def degree(self, slot: int) -> int:
        return int(self.counts[slot])

    def degrees(self, slots: Sequence[int]) -> np.ndarray:
        """Vectorised degree gather for a batch of slots."""
        return self.counts[np.asarray(slots, dtype=np.intp)]


class Bitmap2D:
    """Per-slot packed bitsets: one ``uint64``-word row per slot."""

    def __init__(self, allocator: SlotAllocator, n_bits: int = 64) -> None:
        if n_bits < 1:
            raise ConfigurationError("bitmap width must be >= 1")
        self.n_bits = int(n_bits)
        self._words = (self.n_bits + 63) // 64
        self._bits = np.empty((0, self._words), dtype=np.uint64)
        allocator.register(self._clear_row, self._grow)

    def _grow(self, capacity: int) -> None:
        if capacity <= self._bits.shape[0]:
            return
        bits = np.zeros((capacity, self._words), dtype=np.uint64)
        n = self._bits.shape[0]
        bits[:n] = self._bits
        self._bits = bits

    def _clear_row(self, slot: int) -> None:
        self._bits[slot] = 0

    def _locate(self, bit: int) -> tuple[int, np.uint64]:
        if not (0 <= bit < self.n_bits):
            raise ConfigurationError(
                f"bit {bit} out of range for {self.n_bits}-bit bitmap"
            )
        return bit >> 6, np.uint64(1 << (bit & 63))

    def set(self, slot: int, bit: int) -> None:
        word, mask = self._locate(bit)
        self._bits[slot, word] |= mask

    def clear(self, slot: int, bit: int) -> None:
        word, mask = self._locate(bit)
        self._bits[slot, word] &= ~mask

    def test(self, slot: int, bit: int) -> bool:
        word, mask = self._locate(bit)
        return bool(self._bits[slot, word] & mask)

    def clear_row(self, slot: int) -> None:
        self._bits[slot] = 0

    def count(self, slot: int) -> int:
        """Popcount of one slot's row."""
        return int(
            np.bitwise_count(self._bits[slot]).sum()
            if hasattr(np, "bitwise_count")
            else sum(int(w).bit_count() for w in self._bits[slot])
        )

    def bits(self, slot: int) -> list[int]:
        """Set bit positions of one slot, ascending."""
        row = self._bits[slot]
        out: list[int] = []
        for w, word in enumerate(row):
            word = int(word)
            base = w << 6
            while word:
                low = word & -word
                out.append(base + low.bit_length() - 1)
                word ^= low
        return out

    def counts(self, slots: Sequence[int]) -> np.ndarray:
        """Vectorised popcount over a batch of slots."""
        rows = self._bits[np.asarray(slots, dtype=np.intp)]
        if hasattr(np, "bitwise_count"):
            return np.bitwise_count(rows).sum(axis=1, dtype=np.int64)
        return np.array(
            [sum(int(w).bit_count() for w in r) for r in rows], dtype=np.int64
        )

    # -- column (per-bit) batch operations ----------------------------------------
    def test_slots(self, slots: Sequence[int], bit: int) -> np.ndarray:
        """Vectorised :meth:`test` of one bit over a batch of slots."""
        word, mask = self._locate(bit)
        idx = np.asarray(slots, dtype=np.intp)
        return (self._bits[idx, word] & mask) != 0

    def set_slots(self, slots: Sequence[int], bit: int) -> None:
        """Vectorised :meth:`set` of one bit over a batch of slots."""
        word, mask = self._locate(bit)
        idx = np.asarray(slots, dtype=np.intp)
        self._bits[idx, word] |= mask

    def clear_column(self, bit: int) -> None:
        """Clear one bit across *all* slots (one masked word-column AND —
        how a generation-expired seen-filter key is retired)."""
        word, mask = self._locate(bit)
        self._bits[:, word] &= ~mask


class PeerState:
    """The struct-of-arrays hot state of a peer population.

    One instance can back several overlays at once: each named neighbor
    table (``table("neighbors")``) and named bitmap (``bitmap("pieces",
    n_bits)``) is an independent column family over the same slot space,
    and all of them are cleared together when a slot is recycled.
    """

    def __init__(
        self,
        *,
        initial_capacity: int = 64,
        max_degree: int = 8,
    ) -> None:
        self.slots = SlotAllocator(initial_capacity)
        self._default_degree = max_degree
        self.status = np.zeros(0, dtype=np.int8)
        self.region = np.zeros(0, dtype=np.int32)
        self._tables: dict[str, NeighborColumns] = {}
        self._bitmaps: dict[str, Bitmap2D] = {}
        self.slots.register(self._clear_row, self._grow)

    def _grow(self, capacity: int) -> None:
        if capacity <= self.status.shape[0]:
            return
        status = np.zeros(capacity, dtype=np.int8)
        region = np.zeros(capacity, dtype=np.int32)
        n = self.status.shape[0]
        status[:n] = self.status
        region[:n] = self.region
        self.status, self.region = status, region

    def _clear_row(self, slot: int) -> None:
        self.status[slot] = OFFLINE
        self.region[slot] = 0

    # -- column families ---------------------------------------------------------
    def table(self, name: str, max_degree: Optional[int] = None) -> NeighborColumns:
        """The named neighbor table (created on first use)."""
        cols = self._tables.get(name)
        if cols is None:
            cols = NeighborColumns(
                self.slots, max_degree or self._default_degree
            )
            self._tables[name] = cols
        return cols

    def bitmap(self, name: str, n_bits: int = 64) -> Bitmap2D:
        """The named bitmap (created on first use)."""
        bm = self._bitmaps.get(name)
        if bm is None:
            bm = Bitmap2D(self.slots, n_bits)
            self._bitmaps[name] = bm
        return bm

    # -- membership ---------------------------------------------------------------
    def admit(self, host: Hashable, region: int = 0) -> int:
        slot = self.slots.alloc(host)
        self.region[slot] = region
        return slot

    def evict(self, host: Hashable) -> int:
        slot = self.slots.free(host)
        # Freed slots stay out of the allocator until recycled, but the
        # bulk liveness scans (online_count/online_hosts) read the status
        # column straight through the high-water mark — reset it here so
        # an evicted-while-online host cannot linger in those counts.
        self.status[slot] = OFFLINE
        return slot

    def __contains__(self, host: Hashable) -> bool:
        return host in self.slots

    def __len__(self) -> int:
        return len(self.slots)

    def slot_of(self, host: Hashable) -> int:
        return self.slots.slot_of(host)

    def host_at(self, slot: int) -> Hashable:
        return self.slots.host_at(slot)

    def hosts(self) -> list[Hashable]:
        return list(self.slots.hosts())

    # -- liveness -----------------------------------------------------------------
    def set_online(self, host: Hashable) -> None:
        self.status[self.slots.slot_of(host)] = ONLINE

    def set_offline(self, host: Hashable) -> None:
        self.status[self.slots.slot_of(host)] = OFFLINE

    def set_crashed(self, host: Hashable) -> None:
        self.status[self.slots.slot_of(host)] = CRASHED

    def is_online(self, host: Hashable) -> bool:
        return bool(self.status[self.slots.slot_of(host)] == ONLINE)

    def status_of(self, host: Hashable) -> str:
        return _STATUS_NAMES[int(self.status[self.slots.slot_of(host)])]

    def online_count(self) -> int:
        return int(np.count_nonzero(self.status[: self.slots.high_water] == ONLINE))

    def online_hosts(self) -> list[Hashable]:
        """Online hosts in slot order."""
        live = np.flatnonzero(self.status[: self.slots.high_water] == ONLINE)
        return [self.slots.host_at(int(s)) for s in live]

    def set_status_many(self, hosts: Iterable[Hashable], status: int) -> None:
        """Batch liveness update by host id (one fancy-index write)."""
        idx = np.fromiter(
            (self.slots.slot_of(h) for h in hosts), dtype=np.intp
        )
        if idx.size:
            self.status[idx] = status

    def slots_of(self, hosts: Sequence[Hashable]) -> np.ndarray:
        """Resolve a host batch to a slot vector once; steady-state bulk
        callers (churn sweeps, scans at 10^5+ hosts) hold the vector and
        use the slot-level operations instead of re-resolving per call."""
        return np.fromiter(
            (self.slots.slot_of(h) for h in hosts),
            dtype=np.intp,
            count=len(hosts),
        )

    def set_status_slots(self, slots: np.ndarray, status: int) -> None:
        """Batch liveness update by slot vector — one vectorised write,
        no per-host resolution."""
        self.status[slots] = status

    # -- regions / sharding --------------------------------------------------------
    def region_of(self, host: Hashable) -> int:
        return int(self.region[self.slots.slot_of(host)])

    def shard_of(self, host: Hashable, n_shards: int) -> int:
        """Deterministic shard for region/AS-sharded scheduling."""
        return int(self.region[self.slots.slot_of(host)]) % max(1, n_shards)

    # -- diagnostics ---------------------------------------------------------------
    @property
    def capacity(self) -> int:
        return self.slots.capacity

    def memory_bytes(self) -> int:
        """Bytes held by the column arrays (not Python-side indices)."""
        total = self.status.nbytes + self.region.nbytes
        for cols in self._tables.values():
            total += cols._ids.nbytes + cols.counts.nbytes
        for bm in self._bitmaps.values():
            total += bm._bits.nbytes
        return total


class ArrayNeighborSet:
    """Set-like view of one slot's row in a :class:`NeighborColumns`.

    Drop-in for the ``set[int]`` neighbor fields of overlay nodes:
    ``add``/``discard``/``clear``/``in``/``len``/iteration, with
    **ascending** iteration order (the canonical order of the sorted
    rows — deterministic, unlike hash order).
    """

    __slots__ = ("_cols", "_slot")

    def __init__(self, cols: NeighborColumns, slot: int) -> None:
        self._cols = cols
        self._slot = slot

    def add(self, host_id: int) -> None:
        self._cols.add(self._slot, int(host_id))

    def discard(self, host_id: int) -> None:
        self._cols.discard(self._slot, int(host_id))

    def clear(self) -> None:
        self._cols.clear(self._slot)

    def update(self, host_ids: Iterable[int]) -> None:
        for h in host_ids:
            self._cols.add(self._slot, int(h))

    def __contains__(self, host_id: object) -> bool:
        return isinstance(host_id, int) and self._cols.contains(
            self._slot, host_id
        )

    def __len__(self) -> int:
        return self._cols.degree(self._slot)

    def __iter__(self) -> Iterator[int]:
        return iter(self._cols.row(self._slot).tolist())

    def __bool__(self) -> bool:
        return self._cols.degree(self._slot) > 0

    def __or__(self, other: Iterable[int]) -> set[int]:
        return set(self) | set(other)

    __ror__ = __or__

    def __eq__(self, other: object) -> bool:
        if isinstance(other, (set, frozenset, ArrayNeighborSet)):
            return set(self) == set(other)
        return NotImplemented

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ArrayNeighborSet({set(self)!r})"


class _RefPeer:
    """One peer record of the object-based reference implementation —
    deliberately the layout the SoA refactor replaced (per-peer object,
    Python sets, per-field attribute storage)."""

    __slots__ = ("status", "region", "tables", "bitmaps")

    def __init__(self, region: int) -> None:
        self.status = OFFLINE
        self.region = region
        self.tables: dict[str, set[int]] = {}
        self.bitmaps: dict[str, set[int]] = {}


class PeerStateReference:
    """Object-based ``_reference`` twin of :class:`PeerState`.

    Same observable API, classic one-object-per-peer layout.  Used by the
    equivalence harness and as the baseline of the scale benchmark; not
    wired into any overlay hot path.
    """

    def __init__(self, **_ignored) -> None:
        self._peers: dict[Hashable, _RefPeer] = {}
        self._bitmap_widths: dict[str, int] = {}
        self.recycles = 0  # API parity; objects have no slots to recycle

    # -- membership ---------------------------------------------------------------
    def admit(self, host: Hashable, region: int = 0) -> int:
        if host in self._peers:
            raise ConfigurationError(f"host {host!r} already has a slot")
        self._peers[host] = _RefPeer(region)
        return len(self._peers) - 1

    def evict(self, host: Hashable) -> int:
        if host not in self._peers:
            raise ConfigurationError(f"host {host!r} has no slot")
        del self._peers[host]
        return 0

    def __contains__(self, host: Hashable) -> bool:
        return host in self._peers

    def __len__(self) -> int:
        return len(self._peers)

    def hosts(self) -> list[Hashable]:
        return list(self._peers)

    # -- liveness -----------------------------------------------------------------
    def set_online(self, host: Hashable) -> None:
        self._peers[host].status = ONLINE

    def set_offline(self, host: Hashable) -> None:
        self._peers[host].status = OFFLINE

    def set_crashed(self, host: Hashable) -> None:
        self._peers[host].status = CRASHED

    def is_online(self, host: Hashable) -> bool:
        return self._peers[host].status == ONLINE

    def status_of(self, host: Hashable) -> str:
        return _STATUS_NAMES[self._peers[host].status]

    def online_count(self) -> int:
        return sum(1 for p in self._peers.values() if p.status == ONLINE)

    def online_hosts(self) -> list[Hashable]:
        return [h for h, p in self._peers.items() if p.status == ONLINE]

    def set_status_many(self, hosts: Iterable[Hashable], status: int) -> None:
        for h in hosts:
            self._peers[h].status = status

    # -- regions ------------------------------------------------------------------
    def region_of(self, host: Hashable) -> int:
        return self._peers[host].region

    def shard_of(self, host: Hashable, n_shards: int) -> int:
        return self._peers[host].region % max(1, n_shards)

    # -- neighbor tables ------------------------------------------------------------
    def _table(self, host: Hashable, name: str) -> set[int]:
        return self._peers[host].tables.setdefault(name, set())

    def table_add(self, host: Hashable, name: str, host_id: int) -> bool:
        t = self._table(host, name)
        if host_id in t:
            return False
        t.add(host_id)
        return True

    def table_discard(self, host: Hashable, name: str, host_id: int) -> bool:
        t = self._table(host, name)
        if host_id not in t:
            return False
        t.discard(host_id)
        return True

    def table_contains(self, host: Hashable, name: str, host_id: int) -> bool:
        return host_id in self._table(host, name)

    def table_row(self, host: Hashable, name: str) -> list[int]:
        return sorted(self._table(host, name))

    def table_degree(self, host: Hashable, name: str) -> int:
        return len(self._table(host, name))

    def table_clear(self, host: Hashable, name: str) -> None:
        self._table(host, name).clear()

    # -- bitmaps ---------------------------------------------------------------------
    def _bitmap(self, host: Hashable, name: str) -> set[int]:
        return self._peers[host].bitmaps.setdefault(name, set())

    def bitmap_set(self, host: Hashable, name: str, bit: int) -> None:
        width = self._bitmap_widths.setdefault(name, 64)
        if not (0 <= bit < width):
            raise ConfigurationError(
                f"bit {bit} out of range for {width}-bit bitmap"
            )
        self._bitmap(host, name).add(bit)

    def bitmap_clear(self, host: Hashable, name: str, bit: int) -> None:
        self._bitmap(host, name).discard(bit)

    def bitmap_test(self, host: Hashable, name: str, bit: int) -> bool:
        return bit in self._bitmap(host, name)

    def bitmap_bits(self, host: Hashable, name: str) -> list[int]:
        return sorted(self._bitmap(host, name))

    def bitmap_count(self, host: Hashable, name: str) -> int:
        return len(self._bitmap(host, name))

    def declare_bitmap(self, name: str, n_bits: int) -> None:
        self._bitmap_widths[name] = n_bits
