"""Observability helpers for the selection layer.

Selection strategies and score caches are plain objects that outlive any
single ``obs.observe()`` scope (a selector built once serves every query
of an experiment), so — like the underlay substrate — metrics look up
the active registry at *event* time and are a no-op outside a scope.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Iterator

from repro.obs import active_registry

#: Counter of score-cache events, labelled by ``selector`` (the strategy
#: name) and ``event`` (``hit`` / ``miss`` / ``invalidate``).
CACHE_COUNTER = "selection_cache_hits_total"

#: Histogram of wall-clock seconds spent ranking candidate lists,
#: labelled by ``selector``.
RANK_SECONDS = "selection_rank_seconds"


def note_cache_event(selector: str, event: str) -> None:
    """Record one score-cache hit/miss/invalidate on the active registry
    (no-op outside an observation scope)."""
    reg = active_registry()
    if reg is None:
        return
    reg.counter(
        CACHE_COUNTER,
        "Selection score-cache events (hit / miss / invalidate).",
        ("selector", "event"),
    ).inc(selector=selector, event=event)


@contextmanager
def timed_rank(selector: str) -> Iterator[None]:
    """Time one ranking call and record it on the active registry."""
    reg = active_registry()
    if reg is None:
        yield
        return
    t0 = time.perf_counter()
    try:
        yield
    finally:
        reg.histogram(
            RANK_SECONDS,
            "Wall-clock seconds spent ranking candidate lists.",
            ("selector",),
        ).observe(time.perf_counter() - t0, selector=selector)
