"""Table 1: the catalogue of underlay-aware systems, as a code registry.

Each entry records a system the survey lists, its information type, and
which module of this repository implements the corresponding technique.
Entries whose technique is implemented carry a factory used by the
Table 1 benchmark to instantiate a representative configuration; survey
entries we cover by an equivalent technique point at that technique.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.collection.base import UnderlayInfoType


@dataclass(frozen=True)
class SystemEntry:
    """One row of Table 1."""

    name: str
    info_type: UnderlayInfoType
    reference: str           # citation key in the paper
    technique: str           # short description of the mechanism
    implemented_by: str      # module path in this repo realising it
    representative: bool = False  # used as its class representative in benches


TABLE1_SYSTEMS: tuple[SystemEntry, ...] = (
    # --- ISP-location -------------------------------------------------------
    SystemEntry(
        "BNS (biased neighbor selection)", UnderlayInfoType.ISP_LOCATION, "[3]",
        "tracker returns same-AS peers plus a small external quota",
        "repro.overlay.bittorrent.tracker", representative=True,
    ),
    SystemEntry(
        "Oracle (ISP-aided)", UnderlayInfoType.ISP_LOCATION, "[1]",
        "in-network ISP component ranks candidate lists by AS hops",
        "repro.collection.oracle", representative=True,
    ),
    SystemEntry(
        "Ono", UnderlayInfoType.ISP_LOCATION, "[5]",
        "CDN redirection ratio maps as a free proximity signal",
        "repro.collection.cdn", representative=True,
    ),
    SystemEntry(
        "CAT (cost-aware BitTorrent)", UnderlayInfoType.ISP_LOCATION, "[32]",
        "choking prefers low-cost (same-AS) peers",
        "repro.overlay.bittorrent.peer",
    ),
    SystemEntry(
        "TSO / LSH hierarchy", UnderlayInfoType.ISP_LOCATION, "[31]",
        "topology-aware hierarchical structured overlay",
        "repro.overlay.chord",
    ),
    SystemEntry(
        "LTM (location-aware topology matching)", UnderlayInfoType.ISP_LOCATION,
        "[21]", "cuts low-productive overlay links with a cheaper 2-hop relay",
        "repro.core.ltm", representative=True,
    ),
    SystemEntry(
        "P4P (iTracker)", UnderlayInfoType.ISP_LOCATION, "[29]",
        "ISP publishes PID-level p-distances; appTrackers weight peers by them",
        "repro.collection.p4p", representative=True,
    ),
    SystemEntry(
        "Brocade", UnderlayInfoType.ISP_LOCATION, "[36]",
        "landmark supernodes route across ASes",
        "repro.overlay.hierarchical",
    ),
    SystemEntry(
        "Plethora", UnderlayInfoType.ISP_LOCATION, "[9]",
        "local + global overlay split along locality boundaries",
        "repro.overlay.hierarchical", representative=True,
    ),
    SystemEntry(
        "Mithos", UnderlayInfoType.ISP_LOCATION, "[28]",
        "topology-aware embedding for overlay construction",
        "repro.coords.vivaldi",
    ),
    SystemEntry(
        "MBC (measurement-based construction)", UnderlayInfoType.ISP_LOCATION,
        "[35]", "sparing explicit measurement + locality-aware links",
        "repro.collection.measurement",
    ),
    # --- Latency --------------------------------------------------------------
    SystemEntry(
        "Vivaldi", UnderlayInfoType.LATENCY, "[7]",
        "decentralized spring-embedding coordinates",
        "repro.coords.vivaldi", representative=True,
    ),
    SystemEntry(
        "ICS (Lim et al.)", UnderlayInfoType.LATENCY, "[20]",
        "PCA of a beacon distance matrix; hosts embed locally",
        "repro.coords.ics", representative=True,
    ),
    SystemEntry(
        "GNP / landmark proximity", UnderlayInfoType.LATENCY, "[26]",
        "landmark embedding and distributed binning",
        "repro.coords.gnp", representative=True,
    ),
    SystemEntry(
        "gMeasure", UnderlayInfoType.LATENCY, "[23]",
        "group-based network performance measurement",
        "repro.collection.group_measurement", representative=True,
    ),
    SystemEntry(
        "Genius", UnderlayInfoType.LATENCY, "[23]",
        "location-aware gossip using network coordinates",
        "repro.coords.vivaldi",
    ),
    SystemEntry(
        "eCAN", UnderlayInfoType.LATENCY, "[30]",
        "topology-aware structured overlay (proximity route/neighbor selection)",
        "repro.overlay.chord", representative=True,
    ),
    SystemEntry(
        "Leopard", UnderlayInfoType.LATENCY, "[33]",
        "geographically scoped hashing joins content and locality",
        "repro.overlay.kademlia.scoped", representative=True,
    ),
    SystemEntry(
        "Proximity in DHTs", UnderlayInfoType.LATENCY, "[4]",
        "PNS/PR in structured overlays",
        "repro.overlay.kademlia", representative=True,
    ),
    SystemEntry(
        "Proximity in Kademlia", UnderlayInfoType.LATENCY, "[17]",
        "low-RTT bucket retention (the peer next door)",
        "repro.overlay.kademlia.kbucket",
    ),
    # --- Geolocation -------------------------------------------------------------
    SystemEntry(
        "Globase.KOM", UnderlayInfoType.GEOLOCATION, "[18][19]",
        "hierarchical zone tree, fully retrievable location search",
        "repro.overlay.geo.globase", representative=True,
    ),
    SystemEntry(
        "GeoPeer", UnderlayInfoType.GEOLOCATION, "[2]",
        "location-constrained queries and dissemination",
        "repro.overlay.geo.queries",
    ),
    # --- Peer resources --------------------------------------------------------------
    SystemEntry(
        "SkyEye.KOM", UnderlayInfoType.PEER_RESOURCES, "[11]",
        "information management over-overlay (oracle view)",
        "repro.collection.skyeye", representative=True,
    ),
    SystemEntry(
        "Bandwidth-aware P2P-TV scheduling", UnderlayInfoType.PEER_RESOURCES,
        "[6]", "capacity-ordered chunk scheduling in a mesh-pull stream",
        "repro.overlay.streaming", representative=True,
    ),
    SystemEntry(
        "Capacity-based super-peer election", UnderlayInfoType.PEER_RESOURCES,
        "[11]", "strongest peers take the super-peer role",
        "repro.overlay.superpeer.hybrid", representative=True,
    ),
)


def systems_by_type(info: UnderlayInfoType) -> list[SystemEntry]:
    """Registry rows for one information type."""
    return [s for s in TABLE1_SYSTEMS if s.info_type == info]


def representatives() -> list[SystemEntry]:
    """Registry rows marked as their class representative."""
    return [s for s in TABLE1_SYSTEMS if s.representative]


def implemented_modules() -> set[str]:
    """Distinct module paths the registry maps systems onto."""
    return {s.implemented_by for s in TABLE1_SYSTEMS}
