"""The underlay-awareness framework (the survey's proposed architecture)."""

from repro.core.framework import UnderlayAwarenessFramework
from repro.core.ltm import LTMStats, ltm_round, mean_neighbor_delay, run_ltm
from repro.core.qos import (
    BUILTIN_PROFILES,
    FILE_SHARING,
    HYBRID_DIRECTORY,
    LOCATION_SERVICES,
    REAL_TIME,
    QoSProfile,
)
from repro.core.peerstate import (
    ArrayNeighborSet,
    Bitmap2D,
    NeighborColumns,
    PeerState,
    PeerStateReference,
    SlotAllocator,
)
from repro.core.score_cache import CachedSelection, ScoreCache
from repro.core.selection import (
    CompositeSelection,
    GeoSelection,
    ISPLocalitySelection,
    LatencySelection,
    NeighborSelection,
    RandomSelection,
    ResourceSelection,
    ScoredSelection,
)
from repro.core.taxonomy import (
    TABLE1_SYSTEMS,
    SystemEntry,
    implemented_modules,
    representatives,
    systems_by_type,
)

__all__ = [
    "ArrayNeighborSet",
    "BUILTIN_PROFILES",
    "Bitmap2D",
    "CachedSelection",
    "CompositeSelection",
    "FILE_SHARING",
    "GeoSelection",
    "HYBRID_DIRECTORY",
    "ISPLocalitySelection",
    "LOCATION_SERVICES",
    "LTMStats",
    "LatencySelection",
    "NeighborColumns",
    "NeighborSelection",
    "PeerState",
    "PeerStateReference",
    "QoSProfile",
    "REAL_TIME",
    "RandomSelection",
    "ResourceSelection",
    "ScoreCache",
    "ScoredSelection",
    "SlotAllocator",
    "SystemEntry",
    "TABLE1_SYSTEMS",
    "UnderlayAwarenessFramework",
    "implemented_modules",
    "ltm_round",
    "mean_neighbor_delay",
    "representatives",
    "run_ltm",
    "systems_by_type",
]
