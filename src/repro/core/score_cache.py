"""Invalidation-aware caching for neighbour-selection rankings.

A selector's ranking for ``(querier, candidate list)`` is pure as long as
the underlay information it reads stands still.  Overlay maintenance
re-ranks the *same* lists constantly (routing-table refreshes, periodic
neighbour re-evaluation), so :class:`ScoreCache` memoises ranked lists
and :class:`CachedSelection` wraps any strategy with it transparently.

What makes the cache honest is the invalidation story: a cached ranking
is only valid until the underlay moves.  Three signals drop the cache —

- **churn arrivals** (:meth:`ScoreCache.watch_churn`) — a new peer
  changes candidate sets and, through them, rankings;
- **coordinate-system ticks** (:meth:`ScoreCache.watch_coordinates`) —
  every Vivaldi update moves a coordinate that previous scores baked in;
- **mobility updates** (:meth:`ScoreCache.note_mobility`) — positional
  re-homing from a mobility trace (the traces are offline timelines, so
  the replaying experiment calls this as it applies each step).

Randomised strategies (``RandomSelection``, an oracle with tier-shuffle
jitter) are *refused* by :class:`CachedSelection`: replaying a cached
ranking would skip their RNG draws and silently change every later draw
in the experiment.

Cache traffic lands on the ``selection_cache_hits_total`` counter and
miss-path ranking time on ``selection_rank_seconds`` (no-ops outside an
``obs.observe()`` scope; the registry is looked up at event time because
selectors outlive observation scopes).
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from typing import Optional, Sequence

import numpy as np

from repro.core._obs import note_cache_event, timed_rank
from repro.core.selection import NeighborSelection, _dedup
from repro.errors import ConfigurationError

#: ``k`` slot used for full-ranking entries.
_FULL = -1


def _has_rng(strategy: NeighborSelection) -> bool:
    """True when ranking draws randomness (directly, via an oracle with
    jitter, or through any composite component)."""
    if getattr(strategy, "_rng", None) is not None:
        return True
    oracle = getattr(strategy, "oracle", None)
    if oracle is not None and getattr(oracle, "_rng", None) is not None:
        return True
    for component, _weight in getattr(strategy, "components", ()):
        if _has_rng(component):
            return True
    return False


class ScoreCache:
    """Seeded LRU of ranked candidate lists, dropped on underlay change.

    Entries are keyed on ``(selector identity, querying host, candidate
    digest, k)``.  The digest is a keyed blake2b over the *ordered*
    candidate ids — order matters because tie-breaking follows input
    position, so the same set in a different order is a different
    ranking.  The ``seed`` keys the hash, so two caches with different
    seeds never share digests (and a digest collision cannot be
    reproduced across differently-seeded runs).
    """

    def __init__(self, *, seed: int = 0, maxsize: int = 1024) -> None:
        if maxsize < 1:
            raise ConfigurationError("maxsize must be >= 1")
        self.seed = int(seed)
        self.maxsize = maxsize
        self._key = self.seed.to_bytes(8, "little", signed=True)
        self._store: OrderedDict[tuple, list[int]] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.invalidations = 0

    def candidate_digest(self, candidates: Sequence[int]) -> str:
        """Keyed digest of the ordered candidate id list (hashed as one
        int64 buffer, so a hit costs far less than the ranking it saves)."""
        h = hashlib.blake2b(key=self._key, digest_size=16)
        h.update(np.asarray(candidates, dtype=np.int64).tobytes())
        return h.hexdigest()

    def __len__(self) -> int:
        return len(self._store)

    # -- lookup / store ------------------------------------------------------
    def lookup(
        self,
        selector: str,
        querying_host: int,
        candidates: Sequence[int],
        k: int = _FULL,
        *,
        label: Optional[str] = None,
    ) -> Optional[list[int]]:
        """The cached ranking, or ``None``.  Returns a fresh list — the
        stored entry is never handed out for mutation.  ``label``
        overrides the metric label (defaults to ``selector``, which may
        carry an instance qualifier unsuited to metric cardinality)."""
        key = (selector, querying_host, self.candidate_digest(candidates), k)
        entry = self._store.get(key)
        if entry is None:
            self.misses += 1
            note_cache_event(label or selector, "miss")
            return None
        self._store.move_to_end(key)
        self.hits += 1
        note_cache_event(label or selector, "hit")
        return list(entry)

    def store(
        self,
        selector: str,
        querying_host: int,
        candidates: Sequence[int],
        ranked: Sequence[int],
        k: int = _FULL,
    ) -> None:
        key = (selector, querying_host, self.candidate_digest(candidates), k)
        self._store[key] = list(ranked)
        self._store.move_to_end(key)
        while len(self._store) > self.maxsize:
            self._store.popitem(last=False)

    # -- invalidation --------------------------------------------------------
    def invalidate(self, reason: str = "manual") -> None:
        """Drop every entry (the underlay moved under the scores)."""
        self._store.clear()
        self.invalidations += 1
        note_cache_event(reason, "invalidate")

    def watch_churn(self, churn) -> None:
        """Invalidate on every churn arrival: a joining peer changes the
        candidate population (wraps the process's ``on_join`` callback,
        preserving the original)."""
        original = churn._on_join

        def on_join(peer):
            self.invalidate("churn")
            original(peer)

        churn._on_join = on_join

    def watch_coordinates(self, service) -> None:
        """Invalidate on every coordinate update of a live coordinate
        service (``add_update_listener`` protocol — e.g.
        :class:`~repro.collection.coordinate_service.VivaldiGossipService`)."""
        service.add_update_listener(lambda _host: self.invalidate("coordinates"))

    def note_mobility(self, host_id: Optional[int] = None) -> None:
        """Invalidate after applying a mobility-trace step (traces are
        offline timelines, so the replayer signals each re-homing)."""
        self.invalidate("mobility")


class CachedSelection(NeighborSelection):
    """Wrap a deterministic strategy with a :class:`ScoreCache`.

    ``rank``/``top_k``/``select`` hit the cache; ``score_many`` passes
    through (scores feed tie-sensitive fusion, so composites always see
    live values).  One cache can back several wrapped selectors — keys
    include the wrapped instance's identity.
    """

    def __init__(
        self, inner: NeighborSelection, cache: Optional[ScoreCache] = None
    ) -> None:
        if _has_rng(inner):
            raise ConfigurationError(
                f"cannot cache randomised strategy {inner.name!r}: replaying "
                "a cached ranking would skip its RNG draws"
            )
        self.inner = inner
        self.cache = cache if cache is not None else ScoreCache()
        self.name = f"cached-{inner.name}"
        self._selector_key = f"{inner.name}@{id(inner):x}"

    def score_many(
        self, querying_host: int, candidates: Sequence[int]
    ) -> list[float]:
        return self.inner.score_many(querying_host, candidates)

    def rank(self, querying_host: int, candidates: Sequence[int]) -> list[int]:
        cand = _dedup(candidates)
        hit = self.cache.lookup(
            self._selector_key, querying_host, cand, label=self.inner.name
        )
        if hit is not None:
            return hit
        with timed_rank(self.inner.name):
            ranked = self.inner.rank(querying_host, cand)
        self.cache.store(self._selector_key, querying_host, cand, ranked)
        return ranked

    def top_k(
        self, querying_host: int, candidates: Sequence[int], k: int
    ) -> list[int]:
        if k < 0:
            raise ConfigurationError("k must be non-negative")
        cand = _dedup(candidates)
        hit = self.cache.lookup(
            self._selector_key, querying_host, cand, k, label=self.inner.name
        )
        if hit is not None:
            return hit
        with timed_rank(self.inner.name):
            top = self.inner.top_k(querying_host, cand, k)
        self.cache.store(self._selector_key, querying_host, cand, top, k)
        return top
