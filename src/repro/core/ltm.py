"""LTM — Location-aware Topology Matching (Liu et al. [21]).

LTM attacks *topology mismatch* in unstructured overlays: overlay links
whose underlay detour is pointless.  Each node measures the delay to its
direct neighbours and to its neighbours' neighbours (in the real protocol
via TTL-2 timestamped flooding); a link A–B is **low-productive** when
some common neighbour C gives a strictly cheaper relay,
``d(A,C) + d(C,B) < d(A,B)`` — keeping A–B then only duplicates traffic
along a slower path.  LTM cuts such links and (optionally) replaces them
with *source peers*: the nearby nodes discovered during probing.

``ltm_round`` performs one synchronous round over an overlay graph;
``run_ltm`` iterates to convergence.  Probing cost is accounted per round
so experiments can weigh the delay gains against the measurement overhead
the survey warns about.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Hashable

import networkx as nx
import numpy as np

from repro.errors import ReproError

#: two timestamped probe messages per measured pair (TTL-2 flooding cost)
PROBE_BYTES = 72


@dataclass
class LTMStats:
    """Counters across LTM rounds: cuts, additions, probing cost."""
    rounds: int = 0
    links_cut: int = 0
    links_added: int = 0
    probes_sent: int = 0

    @property
    def probe_bytes(self) -> int:
        return self.probes_sent * PROBE_BYTES


def ltm_round(
    graph: nx.Graph,
    delay_of: Callable[[Hashable, Hashable], float],
    *,
    min_degree: int = 2,
    slack: float = 1.0,
    add_replacements: bool = True,
    stats: LTMStats | None = None,
) -> int:
    """One LTM round, in place.  Returns the number of links cut.

    ``slack`` < 1 demands the relay be that much cheaper before cutting
    (conservative cutting); 1.0 is the paper's plain rule.  A link is
    never cut when either endpoint would drop below ``min_degree`` or the
    cut would disconnect the two endpoints' neighbourhoods entirely.
    """
    if min_degree < 1:
        raise ReproError("min_degree must be >= 1")
    if not (0 < slack <= 1.0):
        raise ReproError("slack must be in (0, 1]")
    stats = stats if stats is not None else LTMStats()
    cut = 0
    # probing cost: every node measures neighbours + 2-hop neighbours once
    for node in graph.nodes():
        two_hop = {
            nn for nb in graph.neighbors(node) for nn in graph.neighbors(nb)
        } - {node}
        stats.probes_sent += 2 * len(two_hop)

    for a, b in list(graph.edges()):
        if not graph.has_edge(a, b):
            continue  # removed earlier this round
        if graph.degree(a) <= min_degree or graph.degree(b) <= min_degree:
            continue
        d_ab = delay_of(a, b)
        common = set(graph.neighbors(a)) & set(graph.neighbors(b))
        if any(delay_of(a, c) + delay_of(c, b) < slack * d_ab for c in common):
            graph.remove_edge(a, b)
            cut += 1
            stats.links_cut += 1
            if add_replacements:
                # connect to the best source peer discovered while probing:
                # the closest 2-hop neighbour not yet a neighbour
                candidates = [
                    nn
                    for nb in graph.neighbors(a)
                    for nn in graph.neighbors(nb)
                    if nn != a and not graph.has_edge(a, nn)
                ]
                if candidates:
                    best = min(candidates, key=lambda c: delay_of(a, c))
                    if delay_of(a, best) < d_ab:
                        graph.add_edge(a, best)
                        stats.links_added += 1
    stats.rounds += 1
    return cut


def run_ltm(
    graph: nx.Graph,
    delay_of: Callable[[Hashable, Hashable], float],
    *,
    max_rounds: int = 10,
    min_degree: int = 2,
    slack: float = 1.0,
    add_replacements: bool = True,
) -> LTMStats:
    """Iterate LTM rounds until no link is cut (or ``max_rounds``)."""
    if max_rounds < 1:
        raise ReproError("max_rounds must be >= 1")
    stats = LTMStats()
    for _ in range(max_rounds):
        if (
            ltm_round(
                graph,
                delay_of,
                min_degree=min_degree,
                slack=slack,
                add_replacements=add_replacements,
                stats=stats,
            )
            == 0
        ):
            break
    return stats


def mean_neighbor_delay(
    graph: nx.Graph, delay_of: Callable[[Hashable, Hashable], float]
) -> float:
    """The quantity LTM minimises."""
    edges = list(graph.edges())
    if not edges:
        raise ReproError("graph has no edges")
    return float(np.mean([delay_of(a, b) for a, b in edges]))
