"""Workload generators: content catalogues, query schedules, churn traces."""

from repro.workloads.content import CatalogConfig, ContentCatalog
from repro.workloads.churn_traces import (
    SessionInterval,
    availability,
    generate_trace,
    online_at,
)
from repro.workloads.queries import QueryEvent, QueryWorkload

__all__ = [
    "CatalogConfig",
    "ContentCatalog",
    "QueryEvent",
    "QueryWorkload",
    "SessionInterval",
    "availability",
    "generate_trace",
    "online_at",
]
