"""Precomputed churn traces for overlays that analyse membership offline."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.errors import ConfigurationError
from repro.rng import SeedLike, ensure_rng
from repro.sim.churn import ChurnConfig, draw_duration


@dataclass(frozen=True)
class SessionInterval:
    """One online period of a peer: [start_s, end_s)."""
    peer: int
    start_s: float
    end_s: float

    def __post_init__(self) -> None:
        if self.end_s <= self.start_s:
            raise ConfigurationError("session must have positive length")

    @property
    def length_s(self) -> float:
        return self.end_s - self.start_s


def generate_trace(
    peers: Sequence[int],
    config: ChurnConfig,
    horizon_s: float,
    *,
    rng: SeedLike = None,
) -> list[SessionInterval]:
    """Alternating on/off sessions for each peer up to ``horizon_s``."""
    if horizon_s <= 0:
        raise ConfigurationError("horizon must be positive")
    rng = ensure_rng(rng)
    out: list[SessionInterval] = []
    for p in peers:
        t = float(rng.uniform(0, config.mean_offline))
        while t < horizon_s:
            session = draw_duration(rng, config.session_dist, config.mean_session)
            end = min(t + session, horizon_s)
            if end > t:
                out.append(SessionInterval(peer=p, start_s=t, end_s=end))
            t = end + draw_duration(rng, config.offline_dist, config.mean_offline)
    out.sort(key=lambda s: s.start_s)
    return out


def online_at(trace: Sequence[SessionInterval], t: float) -> set[int]:
    """Peers online at time ``t``."""
    return {s.peer for s in trace if s.start_s <= t < s.end_s}


def availability(trace: Sequence[SessionInterval], peer: int, horizon_s: float) -> float:
    """Fraction of the horizon this peer spent online."""
    if horizon_s <= 0:
        raise ConfigurationError("horizon must be positive")
    total = sum(s.length_s for s in trace if s.peer == peer)
    return total / horizon_s
