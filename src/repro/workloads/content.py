"""Content catalogues with Zipf popularity and locality-correlated interest.

Rasti et al. [25] (cited in §2.1) found that users' searches are locality
correlated: "desired contents are located in the proximity".  The
catalogue models this with a per-AS topic bias: every AS is assigned a
preferred slice of the catalogue, and a peer's shared files and queries
are drawn from the global Zipf distribution with probability
``1 − locality_bias`` and from its AS's slice otherwise.  At
``locality_bias = 0`` interest is globally uniform-Zipf (no correlation);
at 1.0 every AS is an interest island.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.rng import SeedLike, ensure_rng
from repro.underlay.hosts import Host


@dataclass(frozen=True)
class CatalogConfig:
    """Catalogue shape: size, Zipf exponent, locality bias, per-AS slice width."""
    n_files: int = 200
    zipf_exponent: float = 0.8
    locality_bias: float = 0.3
    topic_slice: float = 0.2   # fraction of the catalogue each AS prefers

    def __post_init__(self) -> None:
        if self.n_files < 1:
            raise ConfigurationError("catalogue needs at least one file")
        if self.zipf_exponent < 0:
            raise ConfigurationError("zipf exponent must be non-negative")
        if not (0.0 <= self.locality_bias <= 1.0):
            raise ConfigurationError("locality_bias must be a probability")
        if not (0.0 < self.topic_slice <= 1.0):
            raise ConfigurationError("topic_slice must be in (0, 1]")


class ContentCatalog:
    """Zipf-popular files with per-AS interest slices."""

    def __init__(self, config: CatalogConfig | None = None, *, rng: SeedLike = None) -> None:
        self.config = config or CatalogConfig()
        self._rng = ensure_rng(rng)
        ranks = np.arange(1, self.config.n_files + 1, dtype=float)
        weights = ranks ** (-self.config.zipf_exponent)
        self.popularity = weights / weights.sum()
        self._slice_start: dict[int, int] = {}

    @property
    def n_files(self) -> int:
        return self.config.n_files

    def _as_slice(self, asn: int) -> np.ndarray:
        """File ids in this AS's preferred slice (deterministic per AS)."""
        width = max(1, int(self.config.topic_slice * self.n_files))
        if asn not in self._slice_start:
            slice_rng = np.random.default_rng(977 * (asn + 1))
            self._slice_start[asn] = int(slice_rng.integers(self.n_files))
        start = self._slice_start[asn]
        return (start + np.arange(width)) % self.n_files

    def draw_files(self, asn: int, n: int) -> list[int]:
        """Draw ``n`` distinct file ids for a peer in AS ``asn``, mixing the
        global Zipf and the AS slice per the locality bias."""
        if n < 1:
            raise ConfigurationError("must draw at least one file")
        n = min(n, self.n_files)
        chosen: set[int] = set()
        slice_files = self._as_slice(asn)
        slice_pop = self.popularity[slice_files]
        slice_pop = slice_pop / slice_pop.sum()
        guard = 0
        while len(chosen) < n and guard < 50 * n:
            guard += 1
            if self._rng.random() < self.config.locality_bias:
                f = int(slice_files[self._rng.choice(len(slice_files), p=slice_pop)])
            else:
                f = int(self._rng.choice(self.n_files, p=self.popularity))
            chosen.add(f)
        # fill deterministically if rejection sampling stalled
        for f in range(self.n_files):
            if len(chosen) >= n:
                break
            chosen.add(f)
        return sorted(chosen)

    def assign_shared_content(
        self, hosts: Sequence[Host], files_per_host: int = 6
    ) -> dict[int, list[int]]:
        """Give every host a shared-file set (the testlab's "each node
        shares 6 files" scheme, with locality-correlated choices)."""
        return {
            h.host_id: self.draw_files(h.asn, files_per_host) for h in hosts
        }

    def draw_query(self, asn: int) -> int:
        """One query target for a peer in AS ``asn``."""
        return self.draw_files(asn, 1)[0]
