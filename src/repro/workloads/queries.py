"""Query workload generation."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

from repro.errors import ConfigurationError
from repro.rng import SeedLike, ensure_rng
from repro.underlay.hosts import Host
from repro.workloads.content import ContentCatalog

#: Supported arrival modes for :class:`QueryWorkload`.
ARRIVAL_MODES = ("uniform", "poisson")


@dataclass(frozen=True)
class QueryEvent:
    """One search: who asks, for what, when (ms on the sim clock)."""

    origin: int
    keyword: int
    at_ms: float


class QueryWorkload:
    """Query arrivals over a host population.

    Two arrival modes:

    - ``"uniform"`` (default): each host issues ``queries_per_host``
      searches at independent uniformly random times within
      ``duration_ms`` — the original testlab-style schedule (*not* a
      Poisson process: interarrivals are not exponential and the horizon
      is hard).
    - ``"poisson"``: each host's searches form a Poisson process —
      exponential interarrivals with mean ``duration_ms /
      queries_per_host``, so the expected span of the schedule matches
      ``duration_ms`` but individual events may fall beyond it (an
      open-loop process has no hard horizon).  This is the per-host
      arrival model the :mod:`repro.service` open-loop load drivers
      build on.

    Targets come from the catalogue's locality-correlated popularity
    model in both modes.  The uniform mode's RNG draw sequence is
    unchanged from before the ``arrival`` parameter existed, so seeded
    schedules are bit-for-bit stable.
    """

    def __init__(
        self,
        hosts: Sequence[Host],
        catalog: ContentCatalog,
        *,
        queries_per_host: int = 1,
        duration_ms: float = 60_000.0,
        arrival: str = "uniform",
        rng: SeedLike = None,
    ) -> None:
        if queries_per_host < 0:
            raise ConfigurationError("queries_per_host must be non-negative")
        if duration_ms <= 0:
            raise ConfigurationError("duration must be positive")
        if arrival not in ARRIVAL_MODES:
            raise ConfigurationError(
                f"unknown arrival mode {arrival!r} (want one of {ARRIVAL_MODES})"
            )
        self.hosts = list(hosts)
        self.catalog = catalog
        self.queries_per_host = queries_per_host
        self.duration_ms = duration_ms
        self.arrival = arrival
        self._rng = ensure_rng(rng)

    def events(self) -> list[QueryEvent]:
        """Generate the full schedule, sorted by time."""
        if self.arrival == "poisson":
            return self._events_poisson()
        out: list[QueryEvent] = []
        for h in self.hosts:
            for _ in range(self.queries_per_host):
                out.append(
                    QueryEvent(
                        origin=h.host_id,
                        keyword=self.catalog.draw_query(h.asn),
                        at_ms=float(self._rng.uniform(0, self.duration_ms)),
                    )
                )
        out.sort(key=lambda e: e.at_ms)
        return out

    def _events_poisson(self) -> list[QueryEvent]:
        """Exponential-interarrival schedule (true per-host Poisson)."""
        from repro.service.arrivals import exponential_interarrival_times

        out: list[QueryEvent] = []
        if self.queries_per_host == 0:
            return out
        mean_ms = self.duration_ms / self.queries_per_host
        for h in self.hosts:
            times = exponential_interarrival_times(
                self._rng, self.queries_per_host, mean_ms
            )
            for t in times:
                out.append(
                    QueryEvent(
                        origin=h.host_id,
                        keyword=self.catalog.draw_query(h.asn),
                        at_ms=float(t),
                    )
                )
        out.sort(key=lambda e: e.at_ms)
        return out
