"""Query workload generation."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

from repro.errors import ConfigurationError
from repro.rng import SeedLike, ensure_rng
from repro.underlay.hosts import Host
from repro.workloads.content import ContentCatalog


@dataclass(frozen=True)
class QueryEvent:
    """One search: who asks, for what, when (ms on the sim clock)."""

    origin: int
    keyword: int
    at_ms: float


class QueryWorkload:
    """Poisson-ish query arrivals over a host population.

    Each host issues ``queries_per_host`` searches at uniformly random
    times within ``duration_ms``; targets come from the catalogue's
    locality-correlated popularity model.
    """

    def __init__(
        self,
        hosts: Sequence[Host],
        catalog: ContentCatalog,
        *,
        queries_per_host: int = 1,
        duration_ms: float = 60_000.0,
        rng: SeedLike = None,
    ) -> None:
        if queries_per_host < 0:
            raise ConfigurationError("queries_per_host must be non-negative")
        if duration_ms <= 0:
            raise ConfigurationError("duration must be positive")
        self.hosts = list(hosts)
        self.catalog = catalog
        self.queries_per_host = queries_per_host
        self.duration_ms = duration_ms
        self._rng = ensure_rng(rng)

    def events(self) -> list[QueryEvent]:
        """Generate the full schedule, sorted by time."""
        out: list[QueryEvent] = []
        for h in self.hosts:
            for _ in range(self.queries_per_host):
                out.append(
                    QueryEvent(
                        origin=h.host_id,
                        keyword=self.catalog.draw_query(h.asn),
                        at_ms=float(self._rng.uniform(0, self.duration_ms)),
                    )
                )
        out.sort(key=lambda e: e.at_ms)
        return out
