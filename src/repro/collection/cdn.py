"""CDN-provided locality information (Ono; Choffnes & Bustamante [5]).

A content distribution network keeps edge servers near end users and
redirects each client to the edge with the best (latency, load) trade-off.
Ono's insight: two peers that are *redirected to the same edges with
similar frequencies* are close to each other — the CDN has already done
the network measurement, for free.

We model a small synthetic CDN whose edge loads fluctuate over time, an
:meth:`redirect` decision combining latency and load, and the Ono client
side: *ratio maps* (per-peer redirection frequency vectors) compared by
cosine similarity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.collection.base import CollectionMethod, InfoSource, UnderlayInfoType
from repro.errors import CollectionError
from repro.rng import SeedLike, ensure_rng
from repro.underlay.hosts import Host
from repro.underlay.network import Underlay


@dataclass(frozen=True)
class EdgeServer:
    """A CDN edge server placed inside one AS."""
    edge_id: int
    asn: int


class SyntheticCDN(InfoSource):
    """A CDN with ``n_edges`` servers placed in distinct ASes.

    Redirection picks ``argmin(latency_to_edge * (1 + load))`` where each
    edge's load is a smooth pseudo-random function of time — so a client's
    preferred edge changes occasionally, giving ratio maps with more than
    one non-zero entry, as in the real Ono data.
    """

    def __init__(
        self, underlay: Underlay, *, n_edges: int = 10, rng: SeedLike = None
    ) -> None:
        super().__init__()
        if n_edges < 1:
            raise CollectionError("need at least one edge server")
        self.underlay = underlay
        self._rng = ensure_rng(rng)
        eligible = [a.asn for a in underlay.topology.ases]
        if n_edges > len(eligible):
            raise CollectionError(
                f"cannot place {n_edges} edges in {len(eligible)} ASes"
            )
        chosen = self._rng.choice(len(eligible), size=n_edges, replace=False)
        self.edges = [
            EdgeServer(edge_id=i, asn=int(eligible[int(c)]))
            for i, c in enumerate(chosen)
        ]
        # per-edge load oscillation parameters
        self._phase = self._rng.uniform(0, 2 * np.pi, size=n_edges)
        self._freq = self._rng.uniform(0.5, 2.0, size=n_edges)
        self._amp = self._rng.uniform(0.2, 0.8, size=n_edges)

    @property
    def info_type(self) -> UnderlayInfoType:
        return UnderlayInfoType.ISP_LOCATION

    @property
    def method(self) -> CollectionMethod:
        return CollectionMethod.CDN_PROVIDED

    def _edge_latency(self, host: Host, edge: EdgeServer) -> float:
        """Latency proxy from a host to an edge server: AS-path delay."""
        return (
            host.access_latency_ms
            + self.underlay.latency.as_pair_delay(host.asn, edge.asn)
        )

    def load(self, edge_id: int, t: float) -> float:
        """Edge load in [0, ~1.8] at time ``t`` (hours)."""
        return float(
            self._amp[edge_id] * (1.0 + np.sin(self._freq[edge_id] * t + self._phase[edge_id]))
        )

    def redirect(self, host: Host, t: float = 0.0) -> int:
        """Edge id the CDN sends this client to at time ``t``."""
        self.overhead.charge(queries=1, messages=2, bytes_on_wire=300)
        scores = [
            self._edge_latency(host, e) * (1.0 + self.load(e.edge_id, t))
            for e in self.edges
        ]
        return int(np.argmin(scores))

    # -- Ono client side ----------------------------------------------------------
    def ratio_map(self, host: Host, samples: int = 24, t0: float = 0.0) -> np.ndarray:
        """Redirection frequency vector over ``samples`` lookups spread over
        time (one per simulated hour by default)."""
        if samples < 1:
            raise CollectionError("need at least one sample")
        counts = np.zeros(len(self.edges))
        for k in range(samples):
            counts[self.redirect(host, t0 + float(k))] += 1.0
        return counts / counts.sum()

    @staticmethod
    def cosine_similarity(map_a: np.ndarray, map_b: np.ndarray) -> float:
        a = np.asarray(map_a, dtype=float)
        b = np.asarray(map_b, dtype=float)
        na = float(np.linalg.norm(a))
        nb = float(np.linalg.norm(b))
        if na == 0 or nb == 0:
            return 0.0
        return float(np.dot(a, b) / (na * nb))

    def peers_look_close(
        self, host_a: Host, host_b: Host, *, samples: int = 24, threshold: float = 0.9
    ) -> bool:
        """Ono's test: cosine similarity of ratio maps above threshold."""
        ra = self.ratio_map(host_a, samples)
        rb = self.ratio_map(host_b, samples)
        return self.cosine_similarity(ra, rb) >= threshold
