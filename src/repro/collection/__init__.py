"""Collection of underlay information (§3, Figure 3).

One service per leaf of the Figure 3 taxonomy:

- ISP-location: :class:`IPToISPMapping`, :class:`ISPOracle`,
  :class:`SyntheticCDN` (Ono-style inference).
- Latency: :class:`PingService` / :class:`TracerouteService`
  (explicit measurement); prediction lives in :mod:`repro.coords`.
- Geolocation: :class:`GPSService`, :class:`IPToLocationMapping`.
- Peer resources: :class:`SkyEyeOverlay`.
"""

from repro.collection.base import (
    TAXONOMY,
    CollectionMethod,
    InfoSource,
    OverheadCounter,
    UnderlayInfoType,
)
from repro.collection.cdn import EdgeServer, SyntheticCDN
from repro.collection.coordinate_service import VivaldiGossipService
from repro.collection.gps import GPSService
from repro.collection.group_measurement import GroupMeasurement
from repro.collection.ip_mapping import IPToISPMapping, IPToLocationMapping
from repro.collection.measurement import (
    PING_BYTES,
    PingService,
    TracerouteHop,
    TracerouteService,
)
from repro.collection.oracle import ISPOracle, OraclePolicy
from repro.collection.p4p import P4PPolicy, P4PService
from repro.collection.skyeye import AggregateStats, SkyEyeOverlay

__all__ = [
    "AggregateStats",
    "CollectionMethod",
    "EdgeServer",
    "GPSService",
    "GroupMeasurement",
    "IPToISPMapping",
    "IPToLocationMapping",
    "ISPOracle",
    "InfoSource",
    "OraclePolicy",
    "OverheadCounter",
    "P4PPolicy",
    "P4PService",
    "PING_BYTES",
    "PingService",
    "SkyEyeOverlay",
    "SyntheticCDN",
    "TAXONOMY",
    "TracerouteHop",
    "TracerouteService",
    "UnderlayInfoType",
    "VivaldiGossipService",
]
