"""IP-to-ISP and IP-to-Location mapping services (§3.1 / §3.3).

Models commercial/non-commercial databases like IP2Location / IPGEO:
a central lookup keyed by the peer's address.  Both services are
deliberately imperfect:

- the ISP mapping misattributes a configurable fraction of peers to a
  *neighbouring* AS (stale WHOIS blocks, address reassignment);
- the location mapping returns only a coarse area — a position drawn
  around the true one with a configurable error radius, matching the
  survey's note that "this method is less accurate and thus gives only a
  rough geographical area".

The mistakes are deterministic per host (seeded by host id), mimicking a
database that is consistently wrong about the same addresses.
"""

from __future__ import annotations

import numpy as np

from repro.collection.base import CollectionMethod, InfoSource, UnderlayInfoType
from repro.errors import CollectionError
from repro.underlay.geometry import Position
from repro.underlay.network import Underlay


class IPToISPMapping(InfoSource):
    """Address → ASN lookup with configurable accuracy."""

    def __init__(
        self, underlay: Underlay, *, accuracy: float = 0.98, seed: int = 11
    ) -> None:
        super().__init__()
        if not (0.0 <= accuracy <= 1.0):
            raise CollectionError("accuracy must be a probability")
        self.underlay = underlay
        self.accuracy = accuracy
        self._seed = seed

    @property
    def info_type(self) -> UnderlayInfoType:
        return UnderlayInfoType.ISP_LOCATION

    @property
    def method(self) -> CollectionMethod:
        return CollectionMethod.IP_TO_ISP_MAPPING

    def lookup(self, host_id: int) -> int:
        """Return the (possibly wrong) ASN for a host."""
        self.overhead.charge(queries=1, messages=2, bytes_on_wire=128)
        true_asn = self.underlay.asn_of(host_id)
        rng = np.random.default_rng(self._seed * 1_000_003 + host_id)
        if rng.random() < self.accuracy:
            return true_asn
        # misattribute to a topological neighbour of the true AS
        neighbours = sorted(self.underlay.topology.graph.neighbors(true_asn))
        if not neighbours:
            return true_asn
        return int(neighbours[rng.integers(len(neighbours))])

    def error_rate(self, host_ids: list[int]) -> float:
        """Measured fraction of wrong answers over a host sample."""
        if not host_ids:
            return 0.0
        wrong = sum(
            self.lookup(h) != self.underlay.asn_of(h) for h in host_ids
        )
        return wrong / len(host_ids)


class IPToLocationMapping(InfoSource):
    """Address → coarse geographic position lookup."""

    def __init__(
        self, underlay: Underlay, *, error_km: float = 150.0, seed: int = 13
    ) -> None:
        super().__init__()
        if error_km < 0:
            raise CollectionError("error_km must be non-negative")
        self.underlay = underlay
        self.error_km = error_km
        self._seed = seed

    @property
    def info_type(self) -> UnderlayInfoType:
        return UnderlayInfoType.GEOLOCATION

    @property
    def method(self) -> CollectionMethod:
        return CollectionMethod.IP_TO_LOCATION_MAPPING

    def lookup(self, host_id: int) -> Position:
        """Coarse position for a host (deterministic per host)."""
        self.overhead.charge(queries=1, messages=2, bytes_on_wire=160)
        true_pos = self.underlay.host(host_id).position
        rng = np.random.default_rng(self._seed * 1_000_003 + host_id)
        dx, dy = rng.normal(0.0, self.error_km, size=2)
        return Position(true_pos.x + dx, true_pos.y + dy)

    def median_error_km(self, host_ids: list[int]) -> float:
        """Measured localisation error over a host sample."""
        errs = [
            self.lookup(h).distance_to(self.underlay.host(h).position)
            for h in host_ids
        ]
        return float(np.median(errs)) if errs else 0.0
