"""Satellite positioning (GPS/Galileo/GLONASS) geolocation source (§3.3).

A GPS receiver reports the host's position with metre-scale Gaussian error
— far more precise than IP-to-location mapping — but is only *available*
for a fraction of peers (indoor desktops have no fix).  The availability
draw is deterministic per host.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.collection.base import CollectionMethod, InfoSource, UnderlayInfoType
from repro.errors import CollectionError
from repro.underlay.geometry import Position
from repro.underlay.network import Underlay


class GPSService(InfoSource):
    """Satellite-positioning geolocation source (precise, partial coverage)."""
    def __init__(
        self,
        underlay: Underlay,
        *,
        error_m: float = 10.0,
        availability: float = 0.6,
        seed: int = 17,
    ) -> None:
        super().__init__()
        if error_m < 0:
            raise CollectionError("error_m must be non-negative")
        if not (0.0 <= availability <= 1.0):
            raise CollectionError("availability must be a probability")
        self.underlay = underlay
        self.error_m = error_m
        self.availability = availability
        self._seed = seed

    @property
    def info_type(self) -> UnderlayInfoType:
        return UnderlayInfoType.GEOLOCATION

    @property
    def method(self) -> CollectionMethod:
        return CollectionMethod.GPS

    def has_fix(self, host_id: int) -> bool:
        rng = np.random.default_rng(self._seed * 1_000_003 + host_id)
        return bool(rng.random() < self.availability)

    def position_of(self, host_id: int) -> Optional[Position]:
        """UTM-plane position with receiver noise; ``None`` without a fix.

        GPS is local to the device: no network overhead is charged."""
        self.overhead.charge(queries=1)
        if not self.has_fix(host_id):
            return None
        true_pos = self.underlay.host(host_id).position
        rng = np.random.default_rng(self._seed * 2_000_003 + host_id)
        dx, dy = rng.normal(0.0, self.error_m / 1000.0, size=2)  # km
        return Position(true_pos.x + dx, true_pos.y + dy)
