"""The ISP oracle: an "ISP component in the network" (Aggarwal et al. [1]).

The oracle is a service operated *by the ISP*.  A peer hands it a list of
candidate neighbours (its hostcache); the oracle ranks the list by
proximity in the ISP metric space — same AS first, then increasing
valley-free AS-hop distance — and hands it back.  The peer then connects
to the top-ranked candidates.  This is exactly the biased neighbor
selection of §4 / Figure 5 / Figure 6.

Because the ranking uses only information the ISP already has (routing
tables), the oracle answers locally with negligible network cost — the
survey's argument for why ISPs can afford to run one.

``rank()`` is deterministic: ties within the same AS-hop distance keep
the candidate order stable (so experiments are reproducible), unless a
``rng`` is supplied to shuffle within tiers like a load-balancing oracle
would.
"""

from __future__ import annotations

import enum
import heapq
from typing import Optional, Sequence

import numpy as np

from repro.collection.base import CollectionMethod, InfoSource, UnderlayInfoType
from repro.errors import CollectionError, RoutingError
from repro.obs.registry import MetricRegistry
from repro.rng import SeedLike, ensure_rng
from repro.underlay.network import Underlay


class OraclePolicy(enum.Enum):
    """Whose interest the ranking serves (§6 "ISP Internal Information").

    - ``HONEST`` — the oracle of [1]: pure AS-hop ordering (default).
      Serves the ISP's locality interest and is neutral toward users.
    - ``COOPERATIVE`` — the ISP additionally uses information only it has
      (its subscribers' access plans) for the users' benefit: AS-hop
      distance first, then the strongest candidate — the joint-venture
      upside §5.3 envisions.
    - ``MALICIOUS`` — the §6 trust failure: the "oracle" endpoint is not
      actually controlled by the ISP and ranks *farthest first*,
      maximising inter-AS traffic and hurting everyone.  Clients cannot
      tell the difference from the protocol alone — which is the point.
    """

    HONEST = "honest"
    COOPERATIVE = "cooperative"
    MALICIOUS = "malicious"


class ISPOracle(InfoSource):
    """AS-hop-distance ranking service over candidate peer lists."""

    _lists_ctr = None
    _candidates_ctr = None

    def __init__(
        self,
        underlay: Underlay,
        *,
        policy: OraclePolicy = OraclePolicy.HONEST,
        rng: SeedLike = None,
    ) -> None:
        self.lists_ranked = 0
        self.candidates_ranked = 0
        super().__init__()
        self.underlay = underlay
        self.policy = policy
        self._rng = ensure_rng(rng) if rng is not None else None

    def instrument(self, registry: MetricRegistry, *, service=None) -> None:
        super().instrument(registry, service=service)
        self._lists_ctr = registry.counter(
            "oracle_lists_ranked_total", "Candidate lists ranked by the oracle."
        )
        self._candidates_ctr = registry.counter(
            "oracle_candidates_ranked_total",
            "Individual candidates the oracle examined.",
        )

    @property
    def info_type(self) -> UnderlayInfoType:
        return UnderlayInfoType.ISP_LOCATION

    @property
    def method(self) -> CollectionMethod:
        return CollectionMethod.ISP_COMPONENT_IN_NETWORK

    def _keyed(
        self, querying_host: int, candidates: Sequence[int], limit: Optional[int]
    ) -> list[tuple]:
        """Charge one ranking request and build the policy-keyed tuples.

        The hop lookups are one row gather (``hops_row`` + fancy index)
        instead of a routing call per candidate, and the policy branch is
        taken once per list, not once per candidate.  Key values, tie
        order, overhead charge, counters, and the jitter draw (one
        ``rng.random(len(cand))`` call) are identical to the retained
        :meth:`rank_reference` path.
        """
        if limit is not None and limit < 1:
            raise CollectionError("limit must be >= 1 when given")
        cand = list(candidates)
        if limit is not None:
            cand = cand[:limit]
        my_asn = self.underlay.asn_of(querying_host)
        self.lists_ranked += 1
        self.candidates_ranked += len(cand)
        if self._lists_ctr is not None:
            self._lists_ctr.inc()
            self._candidates_ctr.inc(len(cand))
        # one request + one response carrying the list
        self.overhead.charge(
            queries=1, messages=2, bytes_on_wire=64 + 8 * len(cand)
        )
        asns = self.underlay.asns_of(cand)
        hop_row = self.underlay.routing.hops_row(my_asn)
        hops = hop_row[asns] if len(cand) else np.empty(0, dtype=np.int64)
        if len(cand) and (hops < 0).any():
            bad = int(np.argmax(hops < 0))
            raise RoutingError(
                f"no valley-free route AS{my_asn} -> AS{int(asns[bad])}"
            )
        if self.policy is OraclePolicy.COOPERATIVE:
            # the ISP knows its subscribers' plans: break hop ties
            # toward the strongest candidate
            keyed = [
                (
                    (int(h), -self.underlay.host(c).resources.capacity_score()),
                    idx,
                    c,
                )
                for idx, (c, h) in enumerate(zip(cand, hops))
            ]
        elif self.policy is OraclePolicy.HONEST:
            keyed = [
                ((int(h),), idx, c)
                for idx, (c, h) in enumerate(zip(cand, hops))
            ]
        else:  # MALICIOUS: farthest first
            keyed = [
                ((-int(h),), idx, c)
                for idx, (c, h) in enumerate(zip(cand, hops))
            ]
        if self._rng is not None:
            # shuffle within equal-key tiers
            jitter = self._rng.random(len(keyed))
            keyed = [
                (key, float(j), c) for (key, _idx, c), j in zip(keyed, jitter)
            ]
        return keyed

    def rank(
        self,
        querying_host: int,
        candidates: Sequence[int],
        *,
        limit: Optional[int] = None,
    ) -> list[int]:
        """Return ``candidates`` sorted by AS-hop distance from the querier.

        ``limit`` caps the size of the list the peer is willing to send —
        the "list size 100 / 1000" parameter in the Gnutella experiments
        of [1].  Ranking cost is charged per candidate actually examined.
        """
        keyed = self._keyed(querying_host, candidates, limit)
        keyed.sort(key=lambda t: (t[0], t[1]))
        return [c for _k, _i, c in keyed]

    def top_k(
        self,
        querying_host: int,
        candidates: Sequence[int],
        k: int,
        *,
        limit: Optional[int] = None,
    ) -> list[int]:
        """The ``k`` best-ranked candidates — ``rank(...)[:k]`` without
        the full sort (``heapq.nsmallest`` single scan over the keyed
        list).  The overhead charge is that of ranking the whole list:
        the peer still ships its entire hostcache to the service."""
        if k < 0:
            raise CollectionError("k must be non-negative")
        keyed = self._keyed(querying_host, candidates, limit)
        if k == 0:
            return []
        best = heapq.nsmallest(k, keyed, key=lambda t: (t[0], t[1]))
        return [c for _k, _i, c in best]

    def best(
        self, querying_host: int, candidates: Sequence[int]
    ) -> Optional[int]:
        """Top-ranked candidate, or ``None`` for an empty list — one scan
        through the keyed list via :meth:`top_k`, never a full sort."""
        top = self.top_k(querying_host, candidates, 1)
        return top[0] if top else None

    def rank_reference(
        self,
        querying_host: int,
        candidates: Sequence[int],
        *,
        limit: Optional[int] = None,
    ) -> list[int]:
        """Retained per-candidate reference ranking (one routing call per
        candidate, full sort) — the equivalence baseline for the batch
        path.  Charges and counts exactly like :meth:`rank`."""
        if limit is not None and limit < 1:
            raise CollectionError("limit must be >= 1 when given")
        cand = list(candidates)
        if limit is not None:
            cand = cand[:limit]
        my_asn = self.underlay.asn_of(querying_host)
        self.lists_ranked += 1
        self.candidates_ranked += len(cand)
        if self._lists_ctr is not None:
            self._lists_ctr.inc()
            self._candidates_ctr.inc(len(cand))
        self.overhead.charge(
            queries=1, messages=2, bytes_on_wire=64 + 8 * len(cand)
        )
        keyed = []
        for idx, c in enumerate(cand):
            hops = self.underlay.routing.hops(my_asn, self.underlay.asn_of(c))
            if self.policy is OraclePolicy.COOPERATIVE:
                capacity = self.underlay.host(c).resources.capacity_score()
                key = (hops, -capacity)
            elif self.policy is OraclePolicy.HONEST:
                key = (hops,)
            else:  # MALICIOUS: farthest first
                key = (-hops,)
            keyed.append((key, idx, c))
        if self._rng is not None:
            jitter = self._rng.random(len(keyed))
            keyed = [
                (key, float(j), c) for (key, _idx, c), j in zip(keyed, jitter)
            ]
        keyed.sort(key=lambda t: (t[0], t[1]))
        return [c for _k, _i, c in keyed]

    def same_as_candidates(
        self, querying_host: int, candidates: Sequence[int]
    ) -> list[int]:
        """Only the candidates inside the querier's own AS (order kept).

        Uses the underlay's precomputed ``asn -> host`` index, so the
        filter is one set lookup per candidate regardless of population
        size."""
        my_asn = self.underlay.asn_of(querying_host)
        local_ids = self.underlay.host_ids_in_as(my_asn)
        self.overhead.charge(queries=1, messages=2,
                             bytes_on_wire=64 + 8 * len(list(candidates)))
        return [
            c for c in candidates
            if self.underlay._host_id_of(c) in local_ids
        ]
