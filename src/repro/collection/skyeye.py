"""SkyEye.KOM-style information management over-overlay (Graffi et al. [11]).

An *over-overlay*: a balanced k-ary tree layered on top of the peer
population.  Every peer periodically reports its :class:`PeerResources`
capacity vector to its tree parent; inner nodes aggregate (count, sums,
maxima, top-k capacity list) and push upward, so the root holds "the
oracle view on structured P2P systems" — global statistics and the best
super-peer candidates — with O(log n) update depth and O(n) messages per
aggregation round.

Usage in the survey: §3.4 (collection of peer resources) and §4
(resource-aware role assignment).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.collection.base import CollectionMethod, InfoSource, UnderlayInfoType
from repro.errors import CollectionError
from repro.underlay.hosts import PeerResources

#: Attributes aggregated by the tree.
_ATTRS = (
    "bandwidth_down_kbps",
    "bandwidth_up_kbps",
    "cpu_ops",
    "storage_gb",
    "memory_mb",
    "avg_online_hours",
)


@dataclass
class AggregateStats:
    """Aggregate over a subtree."""

    count: int = 0
    sums: dict[str, float] = field(default_factory=lambda: {a: 0.0 for a in _ATTRS})
    maxima: dict[str, float] = field(default_factory=lambda: {a: 0.0 for a in _ATTRS})
    top_capacity: list[tuple[float, int]] = field(default_factory=list)  # (score, peer)

    def add_peer(self, peer_id: int, res: PeerResources, top_k: int) -> None:
        self.count += 1
        for a in _ATTRS:
            v = float(getattr(res, a))
            self.sums[a] += v
            self.maxima[a] = max(self.maxima[a], v)
        self.top_capacity.append((res.capacity_score(), peer_id))
        self.top_capacity.sort(reverse=True)
        del self.top_capacity[top_k:]

    def merge(self, other: "AggregateStats", top_k: int) -> None:
        self.count += other.count
        for a in _ATTRS:
            self.sums[a] += other.sums[a]
            self.maxima[a] = max(self.maxima[a], other.maxima[a])
        self.top_capacity = sorted(
            self.top_capacity + other.top_capacity, reverse=True
        )[:top_k]

    def mean(self, attr: str) -> float:
        if attr not in self.sums:
            raise CollectionError(f"unknown attribute {attr!r}")
        return self.sums[attr] / self.count if self.count else 0.0


class SkyEyeOverlay(InfoSource):
    """Balanced k-ary aggregation tree over a fixed peer set.

    Peers are placed into tree slots by their order in ``peer_ids``
    (position i's parent is slot (i-1)//k), giving a deterministic
    balanced tree of depth ``ceil(log_k n)``.
    """

    def __init__(
        self,
        peer_ids: Sequence[int],
        *,
        branching: int = 4,
        top_k: int = 10,
    ) -> None:
        super().__init__()
        if branching < 2:
            raise CollectionError("branching factor must be >= 2")
        if top_k < 1:
            raise CollectionError("top_k must be >= 1")
        self.peer_ids = list(peer_ids)
        if not self.peer_ids:
            raise CollectionError("SkyEye needs at least one peer")
        if len(set(self.peer_ids)) != len(self.peer_ids):
            raise CollectionError("duplicate peer ids")
        self.branching = branching
        self.top_k = top_k
        self._slot_of = {p: i for i, p in enumerate(self.peer_ids)}
        self._reports: dict[int, PeerResources] = {}
        self._root_stats: Optional[AggregateStats] = None
        self.aggregation_rounds = 0

    @property
    def info_type(self) -> UnderlayInfoType:
        return UnderlayInfoType.PEER_RESOURCES

    @property
    def method(self) -> CollectionMethod:
        return CollectionMethod.INFO_MANAGEMENT_OVERLAY

    # -- tree structure ------------------------------------------------------
    def parent_of(self, peer_id: int) -> Optional[int]:
        slot = self._slot_of.get(peer_id)
        if slot is None:
            raise CollectionError(f"peer {peer_id} is not in the overlay")
        if slot == 0:
            return None
        return self.peer_ids[(slot - 1) // self.branching]

    def children_of(self, peer_id: int) -> list[int]:
        slot = self._slot_of.get(peer_id)
        if slot is None:
            raise CollectionError(f"peer {peer_id} is not in the overlay")
        first = slot * self.branching + 1
        return [
            self.peer_ids[i]
            for i in range(first, min(first + self.branching, len(self.peer_ids)))
        ]

    def depth(self) -> int:
        """Longest root-to-leaf path length."""
        d, n = 0, len(self.peer_ids) - 1
        while n > 0:
            n = (n - 1) // self.branching
            d += 1
        return d

    # -- reporting / aggregation ------------------------------------------------
    def report(self, peer_id: int, resources: PeerResources) -> None:
        """A peer publishes its current capacity vector (kept locally until
        the next aggregation round)."""
        if peer_id not in self._slot_of:
            raise CollectionError(f"peer {peer_id} is not in the overlay")
        self._reports[peer_id] = resources

    def run_aggregation_round(self) -> AggregateStats:
        """Aggregate all reports bottom-up; returns the root view.

        Message accounting: one report message per non-root peer (each
        subtree aggregate travels one edge up), i.e. n−1 messages of size
        proportional to the aggregate record.
        """
        per_node: dict[int, AggregateStats] = {}
        # leaves-to-root order = reversed slot order
        for slot in range(len(self.peer_ids) - 1, -1, -1):
            pid = self.peer_ids[slot]
            stats = per_node.setdefault(pid, AggregateStats())
            res = self._reports.get(pid)
            if res is not None:
                stats.add_peer(pid, res, self.top_k)
            if slot > 0:
                parent = self.peer_ids[(slot - 1) // self.branching]
                parent_stats = per_node.setdefault(parent, AggregateStats())
                parent_stats.merge(stats, self.top_k)
                self.overhead.charge(messages=1, bytes_on_wire=48 + 16 * len(_ATTRS))
        self._root_stats = per_node[self.peer_ids[0]]
        self.aggregation_rounds += 1
        return self._root_stats

    # -- oracle view --------------------------------------------------------------
    @property
    def root_view(self) -> AggregateStats:
        if self._root_stats is None:
            raise CollectionError("no aggregation round has run yet")
        return self._root_stats

    def top_capacity_peers(self, k: Optional[int] = None) -> list[int]:
        """Best super-peer candidates known at the root."""
        view = self.root_view
        k = self.top_k if k is None else min(k, self.top_k)
        return [pid for _score, pid in view.top_capacity[:k]]

    def mean_resource(self, attr: str) -> float:
        return self.root_view.mean(attr)
