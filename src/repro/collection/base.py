"""Collection taxonomy (Figure 3) and the common InfoSource interface.

Figure 3 classifies underlay information along two axes: *what* is
collected (:class:`UnderlayInfoType`) and *how* (:class:`CollectionMethod`).
Every concrete service in this package declares its position in the
taxonomy and accounts its own overhead (queries made, bytes on the wire),
so experiments can compare collection techniques on accuracy *and* cost —
the trade-off the survey's §3 discusses qualitatively.
"""

from __future__ import annotations

import abc
import enum
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.obs import active_registry
from repro.obs.registry import MetricRegistry


class UnderlayInfoType(enum.Enum):
    """The four kinds of underlay information (§2)."""

    ISP_LOCATION = "isp-location"
    LATENCY = "latency"
    GEOLOCATION = "geolocation"
    PEER_RESOURCES = "peer-resources"


class CollectionMethod(enum.Enum):
    """The collection techniques of Figure 3."""

    IP_TO_ISP_MAPPING = "ip-to-isp-mapping"
    ISP_COMPONENT_IN_NETWORK = "isp-component-in-network"
    CDN_PROVIDED = "cdn-provided-information"
    EXPLICIT_MEASUREMENT = "explicit-measurements"
    PREDICTION = "prediction-methods"
    GPS = "gps"
    IP_TO_LOCATION_MAPPING = "ip-to-location-mapping"
    INFO_MANAGEMENT_OVERLAY = "information-management-overlay"


#: Figure 3 edges: which methods collect which info type.
TAXONOMY: dict[UnderlayInfoType, tuple[CollectionMethod, ...]] = {
    UnderlayInfoType.ISP_LOCATION: (
        CollectionMethod.IP_TO_ISP_MAPPING,
        CollectionMethod.ISP_COMPONENT_IN_NETWORK,
        CollectionMethod.CDN_PROVIDED,
    ),
    UnderlayInfoType.LATENCY: (
        CollectionMethod.EXPLICIT_MEASUREMENT,
        CollectionMethod.PREDICTION,
    ),
    UnderlayInfoType.GEOLOCATION: (
        CollectionMethod.GPS,
        CollectionMethod.IP_TO_LOCATION_MAPPING,
    ),
    UnderlayInfoType.PEER_RESOURCES: (
        CollectionMethod.INFO_MANAGEMENT_OVERLAY,
    ),
}


@dataclass
class OverheadCounter:
    """Per-service overhead bookkeeping."""

    queries: int = 0
    messages: int = 0
    bytes_on_wire: int = 0
    #: optional mirror hook ``(queries, messages, bytes)`` — the
    #: observability layer attaches one; see :meth:`InfoSource.instrument`
    on_charge: Optional[Callable[[int, int, int], None]] = field(
        default=None, repr=False, compare=False
    )

    def charge(self, *, queries: int = 0, messages: int = 0, bytes_on_wire: int = 0) -> None:
        self.queries += queries
        self.messages += messages
        self.bytes_on_wire += bytes_on_wire
        if self.on_charge is not None:
            self.on_charge(queries, messages, bytes_on_wire)


class InfoSource(abc.ABC):
    """A concrete collection service: declares its taxonomy position and
    carries an :class:`OverheadCounter`."""

    def __init__(self) -> None:
        self.overhead = OverheadCounter()
        registry = active_registry()
        if registry is not None:
            self.instrument(registry)

    def instrument(
        self, registry: MetricRegistry, *, service: Optional[str] = None
    ) -> None:
        """Mirror every overhead charge into shared collection counters
        (``collection_{queries,messages,bytes_on_wire}_total``), labelled
        with the concrete service class name."""
        name = service or type(self).__name__
        queries_ctr = registry.counter(
            "collection_queries_total",
            "Queries issued to a collection service, by service.",
            ("service",),
        )
        messages_ctr = registry.counter(
            "collection_messages_total",
            "Network messages a collection service cost, by service.",
            ("service",),
        )
        bytes_ctr = registry.counter(
            "collection_bytes_on_wire_total",
            "Bytes on the wire a collection service cost, by service.",
            ("service",),
        )

        def mirror(queries: int, messages: int, nbytes: int) -> None:
            if queries:
                queries_ctr.inc(queries, service=name)
            if messages:
                messages_ctr.inc(messages, service=name)
            if nbytes:
                bytes_ctr.inc(nbytes, service=name)

        self.overhead.on_charge = mirror

    @property
    @abc.abstractmethod
    def info_type(self) -> UnderlayInfoType:
        ...

    @property
    @abc.abstractmethod
    def method(self) -> CollectionMethod:
        ...

    def taxonomy_position(self) -> tuple[UnderlayInfoType, CollectionMethod]:
        pos = (self.info_type, self.method)
        if pos[1] not in TAXONOMY[pos[0]]:
            raise ValueError(
                f"{type(self).__name__} claims {pos}, which is not a Figure 3 edge"
            )
        return pos
