"""Live Vivaldi coordinate service: prediction as a running protocol.

:mod:`repro.coords.vivaldi` evaluates the algorithm against a static RTT
matrix; this module runs it *in the simulation*, the way deployed systems
(Azureus, libp2p) do: each participant periodically picks a random known
peer, sends a VIV_PING carrying its coordinate, and updates its own
coordinate from the measured request→reply round-trip.  Every probe is a
real message on the bus, so the accuracy/overhead trade-off of §3.2 is
accounted, not asserted.

Endpoints are ``("viv", host_id)`` tuples so the service can share hosts
with any overlay.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, Optional, Sequence

import numpy as np

from repro.collection.base import CollectionMethod, InfoSource, UnderlayInfoType
from repro.coords.base import row_norms
from repro.coords.vivaldi import VivaldiConfig, VivaldiNode
from repro.errors import CollectionError
from repro.rng import SeedLike, ensure_rng
from repro.sim.engine import Simulation
from repro.sim.messages import Message, MessageBus
from repro.sim.process import PeriodicProcess
from repro.underlay.network import Underlay

PROBE_BYTES = 64


class VivaldiGossipService(InfoSource):
    """Decentralized coordinate maintenance over the message bus."""

    def __init__(
        self,
        underlay: Underlay,
        sim: Simulation,
        bus: MessageBus,
        *,
        participants: Optional[Sequence[int]] = None,
        config: VivaldiConfig | None = None,
        probe_period_ms: float = 5_000.0,
        rng: SeedLike = None,
    ) -> None:
        super().__init__()
        if probe_period_ms <= 0:
            raise CollectionError("probe period must be positive")
        self.underlay = underlay
        self.sim = sim
        self.bus = bus
        self.config = config or VivaldiConfig(dim=3, use_height=True)
        self._rng = ensure_rng(rng)
        self.participants = list(
            participants if participants is not None else underlay.host_ids()
        )
        if len(self.participants) < 2:
            raise CollectionError("need at least two participants")
        self.nodes: dict[int, VivaldiNode] = {}
        self._procs: list[PeriodicProcess] = []
        self._pending: dict[int, tuple[int, float]] = {}  # probe id -> (host, t0)
        self._probe_seq = itertools.count()
        self.samples_processed = 0
        self._update_listeners: list[Callable[[int], None]] = []
        for hid in self.participants:
            self.nodes[hid] = VivaldiNode(self.config, self._rng)
            bus.register(("viv", hid), self._on_message)
        for hid in self.participants:
            self._procs.append(
                PeriodicProcess(
                    sim,
                    probe_period_ms,
                    lambda h=hid: self._probe(h),
                    jitter=0.3,
                    rng=self._rng,
                )
            )

    @property
    def info_type(self) -> UnderlayInfoType:
        return UnderlayInfoType.LATENCY

    @property
    def method(self) -> CollectionMethod:
        return CollectionMethod.PREDICTION

    # -- protocol -----------------------------------------------------------------
    def _probe(self, host_id: int) -> None:
        others = self.participants
        target = host_id
        while target == host_id:
            target = others[int(self._rng.integers(len(others)))]
        probe_id = next(self._probe_seq)
        self._pending[probe_id] = (host_id, self.sim.now)
        self.overhead.charge(messages=1, bytes_on_wire=PROBE_BYTES)
        self.bus.send(
            ("viv", host_id),
            ("viv", target),
            "VIV_PING",
            {"probe_id": probe_id},
            PROBE_BYTES,
        )

    def _on_message(self, msg: Message) -> None:
        if msg.kind == "VIV_PING":
            me = msg.dst[1]
            node = self.nodes[me]
            self.overhead.charge(messages=1, bytes_on_wire=PROBE_BYTES)
            self.bus.send(
                msg.dst,
                msg.src,
                "VIV_PONG",
                {
                    "probe_id": msg.payload["probe_id"],
                    "position": node.position.copy(),
                    "height": node.height,
                    "error": node.error,
                },
                PROBE_BYTES,
            )
            return
        if msg.kind == "VIV_PONG":
            entry = self._pending.pop(msg.payload["probe_id"], None)
            if entry is None:
                return
            me, t0 = entry
            rtt = self.sim.now - t0
            if rtt <= 0:
                return
            remote = VivaldiNode(self.config, self._rng)
            remote.position = msg.payload["position"]
            remote.height = msg.payload["height"]
            remote.error = msg.payload["error"]
            self.nodes[me].update(rtt, remote)
            self.samples_processed += 1
            for listener in self._update_listeners:
                listener(me)

    def add_update_listener(self, listener: Callable[[int], None]) -> None:
        """Call ``listener(host_id)`` after every coordinate update —
        the invalidation signal for score caches built on these
        estimates (a moved coordinate re-ranks every list it scored)."""
        self._update_listeners.append(listener)

    # -- queries ------------------------------------------------------------------
    def estimate(self, host_a: int, host_b: int) -> float:
        """Predicted RTT between two participants (ms)."""
        try:
            return self.nodes[host_a].distance_to(self.nodes[host_b])
        except KeyError:
            raise CollectionError("host is not a Vivaldi participant") from None

    def estimate_many(self, host_a: int, host_bs: Sequence[int]) -> np.ndarray:
        """Batched :meth:`estimate` over live participant coordinates:
        one position gather + one stacked norm, heights added in the
        scalar operation order (values bit-identical entry by entry)."""
        try:
            node = self.nodes[host_a]
            others = [self.nodes[b] for b in host_bs]
        except KeyError:
            raise CollectionError("host is not a Vivaldi participant") from None
        if not others:
            return np.zeros(0)
        positions = np.array([o.position for o in others])
        d = row_norms(node.position[None, :] - positions)
        heights = np.array([o.height for o in others])
        return (d + node.height) + heights

    def estimated_matrix(self) -> np.ndarray:
        n = len(self.participants)
        out = np.zeros((n, n))
        for i, a in enumerate(self.participants):
            for j, b in enumerate(self.participants):
                if i < j:
                    d = self.nodes[a].distance_to(self.nodes[b])
                    out[i, j] = out[j, i] = d
        return out

    def median_relative_error(self) -> float:
        """Against the underlay's true RTTs, over participant pairs."""
        true = 2.0 * np.array(
            [
                [
                    self.underlay.one_way_delay(a, b) if a != b else 0.0
                    for b in self.participants
                ]
                for a in self.participants
            ]
        )
        est = self.estimated_matrix()
        iu = np.triu_indices(len(self.participants), 1)
        mask = true[iu] > 0
        rel = np.abs(est[iu][mask] - true[iu][mask]) / true[iu][mask]
        return float(np.median(rel))

    def stop(self) -> None:
        for p in self._procs:
            p.stop()
