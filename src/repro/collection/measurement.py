"""Explicit latency measurement: ping and traceroute (§3.2).

The survey notes that explicit measurement is accurate but "incurs the
network with much overhead" and can congest it when many peers probe at
once — so measurement services here charge every probe to their overhead
counter, letting experiments quantify the accuracy/overhead trade-off
against prediction methods.

``PingService.measure_rtt`` returns the true RTT perturbed by per-probe
queueing noise; averaging over ``probes`` attempts converges to truth,
at proportional cost — the classic accuracy-for-overhead dial.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.collection.base import CollectionMethod, InfoSource, UnderlayInfoType
from repro.errors import CollectionError
from repro.obs.registry import MetricRegistry
from repro.rng import SeedLike, ensure_rng
from repro.underlay.autonomous_system import LinkType
from repro.underlay.network import Underlay

#: Conventional sizes: 64-byte ICMP echo, ~52-byte UDP traceroute probe.
PING_BYTES = 64
TRACEROUTE_PROBE_BYTES = 52


@dataclass(frozen=True)
class TracerouteHop:
    """One AS-level hop of a traceroute: AS, cumulative RTT, entry link type."""
    asn: int
    rtt_ms: float
    link_type: LinkType | None  # link used to *enter* this AS; None for hop 0


class PingService(InfoSource):
    """Active RTT probing with per-probe noise and overhead accounting."""

    _probes_ctr = None

    def __init__(
        self, underlay: Underlay, *, noise_std_ms: float = 2.0, rng: SeedLike = None
    ) -> None:
        super().__init__()
        if noise_std_ms < 0:
            raise CollectionError("noise std must be non-negative")
        self.underlay = underlay
        self.noise_std_ms = noise_std_ms
        self._rng = ensure_rng(rng)

    def instrument(self, registry: MetricRegistry, *, service=None) -> None:
        super().instrument(registry, service=service)
        self._probes_ctr = registry.counter(
            "measurement_probes_total",
            "Active probes put on the wire, by probing service.",
            ("service",),
        )

    @property
    def info_type(self) -> UnderlayInfoType:
        return UnderlayInfoType.LATENCY

    @property
    def method(self) -> CollectionMethod:
        return CollectionMethod.EXPLICIT_MEASUREMENT

    def measure_rtt(self, src: int, dst: int, probes: int = 1) -> float:
        """Mean of ``probes`` noisy RTT samples (ms)."""
        if probes < 1:
            raise CollectionError("need at least one probe")
        true_rtt = 2.0 * self.underlay.one_way_delay(src, dst)
        # echo request + reply per probe
        self.overhead.charge(
            queries=1, messages=2 * probes, bytes_on_wire=2 * probes * PING_BYTES
        )
        if self._probes_ctr is not None:
            self._probes_ctr.inc(probes, service="ping")
        noise = self._rng.normal(0.0, self.noise_std_ms, size=probes)
        samples = np.maximum(true_rtt + noise, 0.1)
        return float(samples.mean())

    def measure_matrix(
        self, host_ids: Sequence[int], probes: int = 1
    ) -> np.ndarray:
        """Full mesh measurement — the expensive O(n²) pattern the survey
        warns about; prediction methods exist to avoid exactly this."""
        ids = list(host_ids)
        n = len(ids)
        out = np.zeros((n, n))
        for i in range(n):
            for j in range(i + 1, n):
                rtt = self.measure_rtt(ids[i], ids[j], probes)
                out[i, j] = out[j, i] = rtt
        return out


class TracerouteService(InfoSource):
    """AS-path discovery with cumulative per-hop RTTs."""

    _probes_ctr = None

    def __init__(
        self, underlay: Underlay, *, noise_std_ms: float = 1.0, rng: SeedLike = None
    ) -> None:
        super().__init__()
        self.underlay = underlay
        self.noise_std_ms = noise_std_ms
        self._rng = ensure_rng(rng)

    def instrument(self, registry: MetricRegistry, *, service=None) -> None:
        super().instrument(registry, service=service)
        self._probes_ctr = registry.counter(
            "measurement_probes_total",
            "Active probes put on the wire, by probing service.",
            ("service",),
        )

    @property
    def info_type(self) -> UnderlayInfoType:
        return UnderlayInfoType.LATENCY

    @property
    def method(self) -> CollectionMethod:
        return CollectionMethod.EXPLICIT_MEASUREMENT

    def trace(self, src: int, dst: int) -> list[TracerouteHop]:
        """Hops of the AS-level route with cumulative RTT estimates."""
        asn_src = self.underlay.asn_of(src)
        asn_dst = self.underlay.asn_of(dst)
        path = self.underlay.routing.path(asn_src, asn_dst)
        total_rtt = 2.0 * self.underlay.one_way_delay(src, dst)
        # three probes per hop, as classic traceroute does
        self.overhead.charge(
            queries=1,
            messages=3 * len(path),
            bytes_on_wire=3 * len(path) * TRACEROUTE_PROBE_BYTES,
        )
        if self._probes_ctr is not None:
            self._probes_ctr.inc(3 * len(path), service="traceroute")
        hops: list[TracerouteHop] = []
        for k, asn in enumerate(path):
            frac = (k + 1) / len(path)
            noise = float(self._rng.normal(0.0, self.noise_std_ms))
            link = (
                self.underlay.topology.link_type(path[k - 1], asn) if k > 0 else None
            )
            hops.append(
                TracerouteHop(
                    asn=asn,
                    rtt_ms=max(total_rtt * frac + noise, 0.1),
                    link_type=link,
                )
            )
        return hops

    def as_hop_count(self, src: int, dst: int) -> int:
        """Number of inter-AS links the route crosses."""
        return len(self.trace(src, dst)) - 1
