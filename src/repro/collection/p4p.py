"""P4P: explicit ISP/P2P cooperation (Xie et al. [29]).

Where the oracle of [1] only *ranks* candidate lists, P4P's iTracker
exposes the ISP's view as numbers: the network is partitioned into PIDs
(here: one PID per AS) and the iTracker publishes **p-distances** between
PIDs that encode the provider's routing policy and link economics —
intra-PID cheapest, peering links cheap, transit links expensive, with a
congestion surcharge on heavily used links.

Applications (appTrackers) fetch the p-distance map and weight their peer
selection by it, which lets the ISP steer P2P traffic without revealing
raw topology (§6 "ISP internal information" — only aggregate costs leave
the network).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional, Sequence

import numpy as np

from repro.collection.base import CollectionMethod, InfoSource, UnderlayInfoType
from repro.errors import CollectionError
from repro.rng import SeedLike, ensure_rng
from repro.underlay.autonomous_system import LinkType
from repro.underlay.network import Underlay


@dataclass(frozen=True)
class P4PPolicy:
    """Per-link-class policy costs used to build p-distances."""

    intra_pid_cost: float = 1.0
    peering_link_cost: float = 5.0
    transit_link_cost: float = 20.0

    def __post_init__(self) -> None:
        if min(self.intra_pid_cost, self.peering_link_cost,
               self.transit_link_cost) < 0:
            raise CollectionError("policy costs must be non-negative")
        if not (
            self.intra_pid_cost
            <= self.peering_link_cost
            <= self.transit_link_cost
        ):
            raise CollectionError(
                "expected intra <= peering <= transit cost ordering"
            )


class P4PService(InfoSource):
    """The iTracker: PID assignment + p-distance map + peer weighting."""

    def __init__(
        self,
        underlay: Underlay,
        policy: P4PPolicy | None = None,
        *,
        congestion: Optional[Mapping[tuple[int, int], float]] = None,
    ) -> None:
        super().__init__()
        self.underlay = underlay
        self.policy = policy or P4PPolicy()
        #: optional per-link congestion surcharges keyed by (min, max) ASN
        self.congestion = dict(congestion or {})
        self._pdistance = self._build_pdistance_matrix()

    @property
    def info_type(self) -> UnderlayInfoType:
        return UnderlayInfoType.ISP_LOCATION

    @property
    def method(self) -> CollectionMethod:
        return CollectionMethod.ISP_COMPONENT_IN_NETWORK

    # -- PID plane -------------------------------------------------------------
    def my_pid(self, host_id: int) -> int:
        """PID of a host (PIDs are ASNs in this deployment)."""
        return self.underlay.asn_of(host_id)

    def _link_cost(self, a: int, b: int, link_type: LinkType) -> float:
        base = (
            self.policy.peering_link_cost
            if link_type is LinkType.PEERING
            else self.policy.transit_link_cost
        )
        return base + self.congestion.get((min(a, b), max(a, b)), 0.0)

    def _build_pdistance_matrix(self) -> np.ndarray:
        n = self.underlay.topology.n_ases
        mat = np.zeros((n, n))
        for src in range(n):
            for dst in range(n):
                if src == dst:
                    mat[src, dst] = self.policy.intra_pid_cost
                    continue
                cost = 0.0
                for a, b, t in self.underlay.routing.path_links(src, dst):
                    cost += self._link_cost(a, b, t)
                mat[src, dst] = cost
        # policy costs are symmetric up to routing asymmetry; publish the max
        # (an ISP charges for the worse direction)
        return np.maximum(mat, mat.T)

    def pdistance(self, pid_a: int, pid_b: int) -> float:
        """Published p-distance between two PIDs."""
        self.overhead.charge(queries=1, messages=2, bytes_on_wire=96)
        return float(self._pdistance[pid_a, pid_b])

    def pdistance_map(self, pid: int) -> dict[int, float]:
        """The row an appTracker fetches for one PID (one bulk transfer)."""
        n = self.underlay.topology.n_ases
        self.overhead.charge(queries=1, messages=2, bytes_on_wire=32 + 12 * n)
        return {other: float(self._pdistance[pid, other]) for other in range(n)}

    # -- appTracker side ----------------------------------------------------------
    def rank_peers(self, host_id: int, candidates: Sequence[int]) -> list[int]:
        """Candidates ordered by ascending p-distance (stable on ties)."""
        my = self.my_pid(host_id)
        row = self.pdistance_map(my)
        keyed = [
            (row[self.my_pid(c)], i, c) for i, c in enumerate(candidates)
        ]
        keyed.sort()
        return [c for _d, _i, c in keyed]

    def selection_weights(
        self, host_id: int, candidates: Sequence[int], *, softness: float = 1.0
    ) -> np.ndarray:
        """Probabilistic peer weighting ∝ exp(−pdistance/softness·scale):
        P4P guidance is a preference, not a hard filter, so distant peers
        keep nonzero probability (connectivity!)."""
        if softness <= 0:
            raise CollectionError("softness must be positive")
        cand = list(candidates)
        if not cand:
            return np.zeros(0)
        my = self.my_pid(host_id)
        row = self.pdistance_map(my)
        d = np.array([row[self.my_pid(c)] for c in cand])
        scale = max(float(np.median(d)), 1e-9)
        w = np.exp(-d / (softness * scale))
        return w / w.sum()

    def pick_peers(
        self,
        host_id: int,
        candidates: Sequence[int],
        k: int,
        *,
        softness: float = 1.0,
        rng: SeedLike = None,
    ) -> list[int]:
        """Sample ``k`` distinct peers by the P4P weights."""
        cand = list(candidates)
        k = min(k, len(cand))
        if k == 0:
            return []
        rng = ensure_rng(rng)
        w = self.selection_weights(host_id, cand, softness=softness)
        idx = rng.choice(len(cand), size=k, replace=False, p=w)
        return [cand[int(i)] for i in idx]

    # -- ISP-side knob ----------------------------------------------------------------
    def set_congestion(self, link: tuple[int, int], surcharge: float) -> None:
        """ISP raises the published cost of a congested link; the matrix is
        rebuilt (iTrackers refresh their maps periodically)."""
        if surcharge < 0:
            raise CollectionError("surcharge must be non-negative")
        self.congestion[(min(link), max(link))] = surcharge
        self._pdistance = self._build_pdistance_matrix()
