"""gMeasure: group-based network performance measurement (Zhang et al. [34]).

Instead of every peer probing every other (O(n²)) or learning coordinates,
gMeasure groups peers (here: by AS), elects one *representative* per
group, measures the small representative-to-representative mesh plus each
member's RTT to its own representative, and estimates any pair's RTT by
composition::

    rtt(a, b) ≈ rtt(a, rep_A) + rtt(rep_A, rep_B) + rtt(rep_B, b)

Measurement cost is O(G² + N) probes for N peers in G groups — between
full-mesh measurement and coordinate prediction in both cost and accuracy,
which is exactly where the survey's §3.2 places group-based methods.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.collection.base import CollectionMethod, InfoSource, UnderlayInfoType
from repro.collection.measurement import PingService
from repro.errors import CollectionError
from repro.rng import SeedLike, ensure_rng
from repro.underlay.network import Underlay


class GroupMeasurement(InfoSource):
    """AS-grouped RTT estimation with accounted probing."""

    def __init__(
        self,
        underlay: Underlay,
        *,
        ping: Optional[PingService] = None,
        probes: int = 2,
        calibration_pairs: int = 20,
        rng: SeedLike = None,
    ) -> None:
        super().__init__()
        if probes < 1:
            raise CollectionError("probes must be >= 1")
        if calibration_pairs < 0:
            raise CollectionError("calibration_pairs must be non-negative")
        self.underlay = underlay
        self.ping = ping or PingService(underlay, rng=rng)
        self.probes = probes
        self.calibration_pairs = calibration_pairs
        self._rng = ensure_rng(rng)
        self._rep_of_group: dict[int, int] = {}
        self._group_of: dict[int, int] = {}
        self._to_rep: dict[int, float] = {}
        self._rep_mesh: dict[tuple[int, int], float] = {}
        #: deflation for the relay-composition overestimate (legs pay the
        #: representatives' access latency twice); fitted from a handful of
        #: directly measured pairs during build()
        self.beta = 1.0
        self.built = False

    @property
    def info_type(self) -> UnderlayInfoType:
        return UnderlayInfoType.LATENCY

    @property
    def method(self) -> CollectionMethod:
        return CollectionMethod.PREDICTION

    # -- measurement phase ---------------------------------------------------------
    def build(self, host_ids: Optional[Sequence[int]] = None) -> None:
        """Elect representatives and run the O(G² + N) measurement."""
        ids = list(host_ids) if host_ids is not None else self.underlay.host_ids()
        if len(ids) < 2:
            raise CollectionError("need at least two hosts")
        groups: dict[int, list[int]] = {}
        for hid in ids:
            groups.setdefault(self.underlay.asn_of(hid), []).append(hid)
        self._group_of = {
            hid: self.underlay.asn_of(hid) for hid in ids
        }
        # representative: random member (the paper uses capability-based
        # election; any stable member works for the estimate structure)
        self._rep_of_group = {
            g: members[int(self._rng.integers(len(members)))]
            for g, members in groups.items()
        }
        # member -> representative legs
        self._to_rep = {}
        for hid in ids:
            rep = self._rep_of_group[self._group_of[hid]]
            self._to_rep[hid] = (
                0.0 if hid == rep else self.ping.measure_rtt(hid, rep, self.probes)
            )
        # representative mesh
        reps = sorted(self._rep_of_group)
        self._rep_mesh = {}
        for i, ga in enumerate(reps):
            for gb in reps[i + 1 :]:
                rtt = self.ping.measure_rtt(
                    self._rep_of_group[ga], self._rep_of_group[gb], self.probes
                )
                self._rep_mesh[(ga, gb)] = rtt
                self._rep_mesh[(gb, ga)] = rtt
        self.built = True
        # calibration: measure a few random pairs directly and deflate the
        # composed estimate by the observed ratio
        if self.calibration_pairs and len(ids) >= 2:
            ratios = []
            for _ in range(self.calibration_pairs):
                i, j = self._rng.choice(len(ids), size=2, replace=False)
                a, b = ids[int(i)], ids[int(j)]
                raw = self._raw_estimate(a, b)
                if raw <= 0:
                    continue
                ratios.append(self.ping.measure_rtt(a, b, self.probes) / raw)
            if ratios:
                self.beta = float(np.median(ratios))
        self.overhead.charge(queries=1)

    # -- estimation ---------------------------------------------------------------------
    def _raw_estimate(self, host_a: int, host_b: int) -> float:
        if host_a == host_b:
            return 0.0
        ga, gb = self._group_of[host_a], self._group_of[host_b]
        # float addition is commutative but not associative: sum the two
        # legs first so estimate(a, b) == estimate(b, a) bit-for-bit
        legs = self._to_rep[host_a] + self._to_rep[host_b]
        if ga == gb:
            # intra-group: triangulate through the representative
            return legs
        return legs + self._rep_mesh[(ga, gb)]

    def estimate(self, host_a: int, host_b: int) -> float:
        """Estimated RTT between two measured hosts (ms)."""
        if not self.built:
            raise CollectionError("call build() before estimating")
        if host_a not in self._group_of or host_b not in self._group_of:
            raise CollectionError("host was not part of the measured set")
        return self.beta * self._raw_estimate(host_a, host_b)

    def estimated_matrix(self, host_ids: Sequence[int]) -> np.ndarray:
        ids = list(host_ids)
        n = len(ids)
        out = np.zeros((n, n))
        for i in range(n):
            for j in range(i + 1, n):
                out[i, j] = out[j, i] = self.estimate(ids[i], ids[j])
        return out

    def median_relative_error(self, host_ids: Optional[Sequence[int]] = None) -> float:
        ids = list(host_ids) if host_ids is not None else sorted(self._group_of)
        est = self.estimated_matrix(ids)
        true = np.array(
            [[2.0 * self.underlay.one_way_delay(a, b) if a != b else 0.0
              for b in ids] for a in ids]
        )
        iu = np.triu_indices(len(ids), 1)
        mask = true[iu] > 0
        rel = np.abs(est[iu][mask] - true[iu][mask]) / true[iu][mask]
        return float(np.median(rel))

    def probe_count(self) -> int:
        """Total probes spent — O(G² + N), the gMeasure selling point."""
        return self.ping.overhead.queries
