"""Render a :class:`~repro.obs.registry.MetricRegistry` for humans and tools.

Three formats:

- :func:`registry_to_dict` — plain nested dicts (snapshot-friendly, what
  experiments attach to their results);
- :func:`to_json` — the same, serialised;
- :func:`to_prometheus_text` — the Prometheus text exposition format
  (``# HELP``/``# TYPE`` plus one sample line per cell), so a snapshot
  can be diffed with standard tooling or scraped from a file.
"""

from __future__ import annotations

import json
import math
from typing import Any

from repro.obs.registry import Counter, Gauge, Histogram, MetricRegistry


def _label_key(metric, key: tuple) -> str:
    if not metric.labelnames:
        return ""
    return ",".join(f"{n}={v}" for n, v in zip(metric.labelnames, key))


def registry_to_dict(registry: MetricRegistry) -> dict[str, Any]:
    """Snapshot every metric into plain dicts (JSON-safe)."""
    out: dict[str, Any] = {}
    for metric in registry:
        entry: dict[str, Any] = {"type": metric.kind, "help": metric.help}
        if isinstance(metric, (Counter, Gauge)):
            entry["values"] = {
                _label_key(metric, k): v for k, v in sorted(metric.cells().items())
            }
        elif isinstance(metric, Histogram):
            values = {}
            for key, cell in sorted(metric.cells().items()):
                values[_label_key(metric, key)] = {
                    "count": cell.count,
                    "sum": cell.sum,
                    "min": None if not cell.count else cell.min,
                    "max": None if not cell.count else cell.max,
                    "buckets": {
                        ("+Inf" if math.isinf(b) else repr(b)): c
                        for b, c in zip(
                            list(metric.buckets) + [math.inf], cell.counts
                        )
                    },
                }
            entry["values"] = values
        out[metric.name] = entry
    return out


def to_json(registry: MetricRegistry, *, indent: int | None = 2) -> str:
    return json.dumps(registry_to_dict(registry), indent=indent, sort_keys=True)


def _fmt_labels(metric, key: tuple, extra: str = "") -> str:
    pairs = [f'{n}="{v}"' for n, v in zip(metric.labelnames, key)]
    if extra:
        pairs.append(extra)
    return "{" + ",".join(pairs) + "}" if pairs else ""


def _fmt_value(v: float) -> str:
    if math.isinf(v):
        return "+Inf" if v > 0 else "-Inf"
    return repr(v) if isinstance(v, float) and not v.is_integer() else str(int(v))


def to_prometheus_text(registry: MetricRegistry) -> str:
    """Prometheus text exposition of the whole registry."""
    lines: list[str] = []
    for metric in registry:
        if metric.help:
            lines.append(f"# HELP {metric.name} {metric.help}")
        lines.append(f"# TYPE {metric.name} {metric.kind}")
        if isinstance(metric, (Counter, Gauge)):
            for key, v in sorted(metric.cells().items()):
                lines.append(f"{metric.name}{_fmt_labels(metric, key)} {_fmt_value(v)}")
        elif isinstance(metric, Histogram):
            for key, cell in sorted(metric.cells().items()):
                cum = 0
                for bound, n in zip(
                    list(metric.buckets) + [math.inf], cell.counts
                ):
                    cum += n
                    le = "+Inf" if math.isinf(bound) else _fmt_value(bound)
                    labels = _fmt_labels(metric, key, f'le="{le}"')
                    lines.append(f"{metric.name}_bucket{labels} {cum}")
                base = _fmt_labels(metric, key)
                lines.append(f"{metric.name}_sum{base} {repr(cell.sum)}")
                lines.append(f"{metric.name}_count{base} {cell.count}")
    return "\n".join(lines) + ("\n" if lines else "")
