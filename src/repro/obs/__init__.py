"""Observability: metrics, tracing, and exports for the whole stack.

Zero-dependency (stdlib only) and **off by default**: no component
records anything unless an observation scope is active or it was handed
a registry/tracer explicitly.  The one-liner:

    from repro import obs

    with obs.observe() as session:
        result = run_fig5(n_hosts=60)
    print(obs.to_prometheus_text(session.registry))
    print(session.tracer.digest())        # golden-trace fingerprint

Inside the ``observe()`` scope, every :class:`~repro.sim.engine.Simulation`,
:class:`~repro.sim.messages.MessageBus`, overlay network and collection
service constructed picks up the active registry/tracer at construction
time and instruments itself; components built outside a scope carry a
single ``is None`` check on their hot paths and no other cost.

Explicit wiring is always available too — every instrumented component
exposes ``instrument(registry, tracer)`` (or accepts them in its
constructor), so tests can use private registries without touching the
process-global state.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator, Optional

from repro.obs.export import registry_to_dict, to_json, to_prometheus_text
from repro.obs.registry import (
    DEFAULT_BUCKETS,
    SLO_LATENCY_BUCKETS_MS,
    Counter,
    CounterCell,
    Gauge,
    Histogram,
    HistogramCell,
    Metric,
    MetricRegistry,
    default_registry,
    reset_default_registry,
)
from repro.obs.tracing import TraceEvent, Tracer, trace_digest

__all__ = [
    "DEFAULT_BUCKETS",
    "Counter",
    "CounterCell",
    "Gauge",
    "Histogram",
    "HistogramCell",
    "Metric",
    "MetricRegistry",
    "Observation",
    "SLO_LATENCY_BUCKETS_MS",
    "TraceEvent",
    "Tracer",
    "active_registry",
    "active_tracer",
    "default_registry",
    "observe",
    "registry_to_dict",
    "reset_default_registry",
    "to_json",
    "to_prometheus_text",
    "trace_digest",
]


@dataclass(frozen=True)
class Observation:
    """The pair of sinks active inside one ``observe()`` scope."""

    registry: MetricRegistry
    tracer: Tracer


# Stack, not a single slot: observe() scopes may nest (an experiment
# under test inside a traced meta-experiment), innermost wins.
_ACTIVE: list[Observation] = []


def active_registry() -> Optional[MetricRegistry]:
    """The registry of the innermost active scope, or ``None``."""
    return _ACTIVE[-1].registry if _ACTIVE else None


def active_tracer() -> Optional[Tracer]:
    """The tracer of the innermost active scope, or ``None``."""
    return _ACTIVE[-1].tracer if _ACTIVE else None


@contextmanager
def observe(
    registry: Optional[MetricRegistry] = None,
    tracer: Optional[Tracer] = None,
    *,
    trace_capacity: int = 65536,
) -> Iterator[Observation]:
    """Activate an observation scope.

    Defaults to a *fresh* registry and tracer so two scopes never bleed
    into each other; pass :func:`default_registry` explicitly to
    accumulate into the process-global one.
    """
    session = Observation(
        registry=registry if registry is not None else MetricRegistry(),
        tracer=tracer if tracer is not None else Tracer(capacity=trace_capacity),
    )
    _ACTIVE.append(session)
    try:
        yield session
    finally:
        _ACTIVE.pop()
