"""Structured trace events, the ring-buffered tracer, and trace digests.

A :class:`TraceEvent` is a ``(time, component, kind, attrs)`` record.
:class:`Tracer` keeps the most recent events in a bounded ring buffer,
fans each event out to subscriber hooks, and maintains a *running*
digest — a SHA-256 over the canonical form of every event ever emitted
(not just those still in the ring).  Two runs of a deterministic
simulation produce the same digest iff they emitted the same event
stream, which is what the golden-trace regression tests assert.

Determinism convention: attribute keys starting with ``_`` are
*volatile* (wall-clock timings, object ids) and are excluded from the
canonical form, so ``tracer.span(...)`` and the engine's per-callback
timing can record real elapsed time without breaking digest stability.
"""

from __future__ import annotations

import hashlib
import time as _time
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Iterator, Mapping, Optional

#: Attribute-key prefix marking values excluded from the digest.
VOLATILE_PREFIX = "_"


def _canon(value: Any) -> str:
    """Deterministic rendering of an attribute value.

    Scalars render via ``repr`` (stable for str/int/float/bool/None);
    sequences recurse; anything else falls back to its type name so a
    stray object with a default ``repr`` (memory address!) can never
    leak nondeterminism into the digest.
    """
    if value is None or isinstance(value, (str, int, float, bool)):
        return repr(value)
    if isinstance(value, (tuple, list)):
        return "[" + ",".join(_canon(v) for v in value) + "]"
    if isinstance(value, (set, frozenset)):
        return "{" + ",".join(sorted(_canon(v) for v in value)) + "}"
    return f"<{type(value).__name__}>"


@dataclass(frozen=True)
class TraceEvent:
    """One structured event: when, who, what, and free-form attributes."""

    time: float
    component: str
    kind: str
    attrs: Mapping[str, Any] = field(default_factory=dict)

    def canonical(self) -> str:
        """Digest line: deterministic fields only, attrs in sorted order."""
        parts = [repr(self.time), self.component, self.kind]
        for key in sorted(self.attrs):
            if key.startswith(VOLATILE_PREFIX):
                continue
            parts.append(f"{key}={_canon(self.attrs[key])}")
        return "|".join(parts)


def trace_digest(events: Iterable[TraceEvent]) -> str:
    """SHA-256 hex digest of an event sequence (offline variant of
    :meth:`Tracer.digest`, e.g. for a filtered or replayed stream)."""
    h = hashlib.sha256()
    for ev in events:
        h.update(ev.canonical().encode())
        h.update(b"\n")
    return h.hexdigest()


class Tracer:
    """Bounded event recorder with subscriber hooks and a running digest.

    Parameters
    ----------
    capacity:
        Ring-buffer size; older events are evicted but stay part of the
        running digest and the ``emitted`` count.
    clock:
        Optional time source used when ``emit`` is not given an explicit
        ``time`` (a :class:`~repro.sim.engine.Simulation` passes its own
        clock explicitly).  Without one, the event index is used, which
        keeps untimed traces deterministic.
    """

    def __init__(
        self,
        capacity: int = 65536,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"tracer capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.clock = clock
        self._ring: deque[TraceEvent] = deque(maxlen=capacity)
        self._subscribers: list[Callable[[TraceEvent], None]] = []
        self._hash = hashlib.sha256()
        self.emitted = 0

    # -- emission -------------------------------------------------------------
    def emit(
        self,
        component: str,
        kind: str,
        /,
        *,
        time: Optional[float] = None,
        **attrs: Any,
    ) -> TraceEvent:
        """Record one event; returns it (mostly for tests).

        ``component`` and ``kind`` are positional-only so attribute keys
        may reuse those names (e.g. a bus message's ``kind=...``).
        """
        if time is None:
            time = self.clock() if self.clock is not None else float(self.emitted)
        event = TraceEvent(float(time), component, kind, attrs)
        self._ring.append(event)
        self.emitted += 1
        self._hash.update(event.canonical().encode())
        self._hash.update(b"\n")
        for sub in self._subscribers:
            sub(event)
        return event

    @contextmanager
    def span(self, name: str, component: str = "span", **attrs: Any) -> Iterator[None]:
        """Time a block: ``begin``/``end`` events with wall-clock elapsed
        seconds in the volatile ``_elapsed_s`` attribute."""
        self.emit(component, "span_begin", name=name, **attrs)
        t0 = _time.perf_counter()
        try:
            yield
        finally:
            self.emit(
                component,
                "span_end",
                name=name,
                _elapsed_s=_time.perf_counter() - t0,
                **attrs,
            )

    # -- subscribers ----------------------------------------------------------
    def subscribe(self, hook: Callable[[TraceEvent], None]) -> None:
        """Call ``hook(event)`` on every subsequent emit."""
        self._subscribers.append(hook)

    def unsubscribe(self, hook: Callable[[TraceEvent], None]) -> None:
        self._subscribers.remove(hook)

    # -- inspection -----------------------------------------------------------
    def events(self) -> list[TraceEvent]:
        """The events still in the ring (oldest first)."""
        return list(self._ring)

    def __len__(self) -> int:
        return len(self._ring)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._ring)

    def digest(self) -> str:
        """Running SHA-256 over every event emitted so far."""
        return self._hash.copy().hexdigest()

    def clear(self) -> None:
        """Forget all events and restart the digest."""
        self._ring.clear()
        self._hash = hashlib.sha256()
        self.emitted = 0
