"""Metric primitives and the registry that owns them.

Three metric types, deliberately mirroring the Prometheus data model so
exports (:mod:`repro.obs.export`) are mechanical:

- :class:`Counter` — monotonically increasing totals (messages sent,
  probes issued).  Counters support :meth:`Counter.merge`, which is
  associative and commutative, so per-shard registries can be combined.
- :class:`Gauge` — point-in-time values (pending events, swarm size).
- :class:`Histogram` — fixed-bucket distributions (lookup hops, RTTs)
  with streaming quantile estimates: quantiles are interpolated from the
  bucket counts in O(buckets) memory, clamped to the observed min/max.

Every metric is keyed by name plus a tuple of label *values* (the label
*names* are declared once at creation).  Hot paths that increment the
same label cell per event (the message bus, the load drivers) bind the
cell once via :meth:`Counter.labelled` / :meth:`Histogram.labelled` and
then pay one dict access per update instead of re-validating and
re-stringifying the label mapping on every call.  A process-global
default registry backs ad-hoc use; tests reset it via
:func:`reset_default_registry`.

Naming convention (see ``docs/observability.md``): lowercase snake_case,
``<component>_<quantity>_<unit-or-total>``, e.g.
``gnutella_messages_sent_total``, ``kademlia_lookup_hops``.
"""

from __future__ import annotations

import math
import re
from bisect import bisect_left
from typing import Iterator, Mapping, Optional, Sequence

from repro.errors import ObservabilityError

_NAME_RE = re.compile(r"^[a-z_][a-z0-9_]*$")

#: Default histogram buckets: generic log-ish scale that covers hop
#: counts (low end) and millisecond latencies (high end).
DEFAULT_BUCKETS: tuple[float, ...] = (
    1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000,
)

#: SLO-focused latency buckets (milliseconds): finer resolution through
#: the interactive range and coverage up to two minutes, so tail
#: percentiles of a saturated service do not all collapse into the
#: ``+Inf`` bucket the way they would with :data:`DEFAULT_BUCKETS`
#: (which tops out at 5000 ms).  Used by the :mod:`repro.service` load
#: drivers and the :class:`~repro.sim.requests.RequestManager` latency
#: accounting.
SLO_LATENCY_BUCKETS_MS: tuple[float, ...] = (
    1, 2.5, 5, 10, 25, 50, 75, 100, 150, 250, 400, 600, 1000, 1500,
    2500, 5000, 10_000, 20_000, 40_000, 60_000, 120_000,
)


def _validate_name(name: str) -> str:
    if not _NAME_RE.match(name):
        raise ObservabilityError(
            f"invalid metric name {name!r} (want lowercase snake_case)"
        )
    return name


class Metric:
    """Base class: a named family of label-keyed cells."""

    kind = "untyped"

    def __init__(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> None:
        self.name = _validate_name(name)
        self.help = help
        self.labelnames: tuple[str, ...] = tuple(labelnames)
        for ln in self.labelnames:
            if not _NAME_RE.match(ln):
                raise ObservabilityError(f"invalid label name {ln!r}")

    def _key(self, labels: Mapping[str, object]) -> tuple:
        if set(labels) != set(self.labelnames):
            raise ObservabilityError(
                f"{self.name}: expected labels {self.labelnames}, "
                f"got {tuple(sorted(labels))}"
            )
        return tuple(str(labels[ln]) for ln in self.labelnames)

    def clear(self) -> None:
        """Drop all cells (registration survives)."""
        raise NotImplementedError


class CounterCell:
    """A bound view of one counter label cell (see
    :meth:`Counter.labelled`): the label mapping is validated and
    stringified once at bind time, so :meth:`inc` is a single dict
    update.  The view stays valid across :meth:`Counter.clear` /
    :meth:`MetricRegistry.reset` (the cell re-materialises at zero on
    the next increment)."""

    __slots__ = ("_cells", "_key")

    def __init__(self, cells: dict, key: tuple) -> None:
        self._cells = cells
        self._key = key

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ObservabilityError(f"counters only go up (amount={amount})")
        cells = self._cells
        key = self._key
        cells[key] = cells.get(key, 0.0) + amount

    def value(self) -> float:
        return self._cells.get(self._key, 0.0)


class Counter(Metric):
    """Monotonically increasing per-label totals."""

    kind = "counter"

    def __init__(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> None:
        super().__init__(name, help, labelnames)
        self._cells: dict[tuple, float] = {}

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        if amount < 0:
            raise ObservabilityError(
                f"{self.name}: counters only go up (amount={amount})"
            )
        key = self._key(labels)
        self._cells[key] = self._cells.get(key, 0.0) + amount

    def labelled(self, **labels: object) -> CounterCell:
        """Bind one label cell for O(1) increments on a hot path.

        ``counter.labelled(kind="PING").inc()`` is equivalent to
        ``counter.inc(kind="PING")`` cell for cell.
        """
        return CounterCell(self._cells, self._key(labels))

    def value(self, **labels: object) -> float:
        return self._cells.get(self._key(labels), 0.0)

    def total(self) -> float:
        """Sum over all label cells."""
        return sum(self._cells.values())

    def cells(self) -> dict[tuple, float]:
        return dict(self._cells)

    def merge(self, other: "Counter") -> "Counter":
        """Cell-wise sum of two compatible counters (new counter).

        Merge is associative and commutative, so counters collected in
        independent registries (one per worker/shard) combine in any
        order to the same result.
        """
        if not isinstance(other, Counter):
            raise ObservabilityError("can only merge Counter with Counter")
        if other.name != self.name or other.labelnames != self.labelnames:
            raise ObservabilityError(
                f"cannot merge {self.name}{self.labelnames} "
                f"with {other.name}{other.labelnames}"
            )
        out = Counter(self.name, self.help, self.labelnames)
        out._cells = dict(self._cells)
        for key, v in other._cells.items():
            out._cells[key] = out._cells.get(key, 0.0) + v
        return out

    def clear(self) -> None:
        self._cells.clear()


class Gauge(Metric):
    """Set-to-current-value metric (can go up and down)."""

    kind = "gauge"

    def __init__(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> None:
        super().__init__(name, help, labelnames)
        self._cells: dict[tuple, float] = {}

    def set(self, value: float, **labels: object) -> None:
        self._cells[self._key(labels)] = float(value)

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        key = self._key(labels)
        self._cells[key] = self._cells.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **labels: object) -> None:
        self.inc(-amount, **labels)

    def value(self, **labels: object) -> float:
        return self._cells.get(self._key(labels), 0.0)

    def cells(self) -> dict[tuple, float]:
        return dict(self._cells)

    def clear(self) -> None:
        self._cells.clear()


class _HistCell:
    """State of one histogram label cell."""

    __slots__ = ("counts", "count", "sum", "min", "max")

    def __init__(self, n_buckets: int) -> None:
        self.counts = [0] * (n_buckets + 1)  # +1 for the +Inf bucket
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf


class HistogramCell:
    """A bound view of one histogram label cell (see
    :meth:`Histogram.labelled`): label validation happens once at bind
    time, so :meth:`observe` is one dict access plus the bucket bisect.
    Stays valid across :meth:`Histogram.clear` (the cell
    re-materialises empty on the next observation)."""

    __slots__ = ("_cells", "_key", "_buckets")

    def __init__(self, cells: dict, key: tuple, buckets: tuple) -> None:
        self._cells = cells
        self._key = key
        self._buckets = buckets

    def observe(self, value: float) -> None:
        value = float(value)
        if value != value:  # NaN
            raise ObservabilityError("cannot observe NaN")
        cell = self._cells.get(self._key)
        if cell is None:
            cell = self._cells[self._key] = _HistCell(len(self._buckets))
        idx = bisect_left(self._buckets, value)
        cell.counts[idx] += 1
        cell.count += 1
        cell.sum += value
        if value < cell.min:
            cell.min = value
        if value > cell.max:
            cell.max = value


class Histogram(Metric):
    """Fixed-bucket histogram with streaming quantile estimates.

    ``buckets`` are the inclusive upper bounds of the finite buckets
    (strictly increasing); an implicit ``+Inf`` bucket catches the rest.
    Quantiles are estimated by linear interpolation inside the bucket the
    rank falls in, clamped to the observed ``[min, max]`` — monotone in
    ``q`` and exact at ``q=0``/``q=1``.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> None:
        super().__init__(name, help, labelnames)
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise ObservabilityError(f"{name}: need at least one bucket")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ObservabilityError(
                f"{name}: bucket bounds must be strictly increasing: {bounds}"
            )
        self.buckets = bounds
        self._cells: dict[tuple, _HistCell] = {}

    def _cell(self, labels: Mapping[str, object]) -> _HistCell:
        key = self._key(labels)
        cell = self._cells.get(key)
        if cell is None:
            cell = self._cells[key] = _HistCell(len(self.buckets))
        return cell

    def observe(self, value: float, **labels: object) -> None:
        value = float(value)
        if math.isnan(value):
            raise ObservabilityError(f"{self.name}: cannot observe NaN")
        cell = self._cell(labels)
        # First bucket whose inclusive upper bound admits the value; past
        # the last bound lands in the +Inf bucket (index len(buckets)).
        # bisect keeps this O(log n) — the load generators observe
        # millions of samples per run.
        idx = bisect_left(self.buckets, value)
        cell.counts[idx] += 1
        cell.count += 1
        cell.sum += value
        cell.min = min(cell.min, value)
        cell.max = max(cell.max, value)

    def labelled(self, **labels: object) -> HistogramCell:
        """Bind one label cell for O(1)-overhead observations on a hot
        path; equivalent to :meth:`observe` with the same labels."""
        return HistogramCell(self._cells, self._key(labels), self.buckets)

    # -- accessors ------------------------------------------------------------
    def count(self, **labels: object) -> int:
        cell = self._cells.get(self._key(labels))
        return cell.count if cell else 0

    def sum(self, **labels: object) -> float:
        cell = self._cells.get(self._key(labels))
        return cell.sum if cell else 0.0

    def min_observed(self, **labels: object) -> float:
        cell = self._cells.get(self._key(labels))
        return cell.min if cell and cell.count else math.nan

    def max_observed(self, **labels: object) -> float:
        cell = self._cells.get(self._key(labels))
        return cell.max if cell and cell.count else math.nan

    def bucket_counts(self, **labels: object) -> dict[float, int]:
        """Per-bucket (non-cumulative) counts keyed by upper bound,
        including the ``+Inf`` bucket; values sum to the observation
        count."""
        cell = self._cells.get(self._key(labels))
        counts = cell.counts if cell else [0] * (len(self.buckets) + 1)
        out = {bound: counts[i] for i, bound in enumerate(self.buckets)}
        out[math.inf] = counts[len(self.buckets)]
        return out

    def mean(self, **labels: object) -> float:
        cell = self._cells.get(self._key(labels))
        if not cell or not cell.count:
            return math.nan
        return cell.sum / cell.count

    def quantile(self, q: float, **labels: object) -> float:
        """Streaming quantile estimate from the bucket counts."""
        if not 0.0 <= q <= 1.0:
            raise ObservabilityError(f"quantile q must be in [0, 1], got {q}")
        cell = self._cells.get(self._key(labels))
        if not cell or not cell.count:
            return math.nan
        rank = q * cell.count
        if rank <= 0:
            return cell.min
        cum = 0.0
        for i, n in enumerate(cell.counts):
            if n == 0:
                continue
            if cum + n >= rank:
                lo = self.buckets[i - 1] if i > 0 else cell.min
                hi = self.buckets[i] if i < len(self.buckets) else cell.max
                frac = (rank - cum) / n
                # frac == 1.0 must return hi exactly: lo + 1.0*(hi-lo)
                # can land one ulp off and break q=1 -> max
                est = hi if frac >= 1.0 else lo + frac * (hi - lo)
                return min(max(est, cell.min), cell.max)
            cum += n
        return cell.max

    def cells(self) -> dict[tuple, _HistCell]:
        return dict(self._cells)

    def clear(self) -> None:
        self._cells.clear()


class MetricRegistry:
    """Get-or-create store of metrics, keyed by name.

    Re-requesting an existing name returns the same object if the type
    and label names agree, and raises :class:`ObservabilityError`
    otherwise (two components silently sharing a mistyped metric is the
    classic observability bug).
    """

    def __init__(self) -> None:
        self._metrics: dict[str, Metric] = {}

    def _get_or_create(self, cls, name, help, labelnames, **kwargs) -> Metric:
        existing = self._metrics.get(name)
        if existing is not None:
            if type(existing) is not cls or existing.labelnames != tuple(labelnames):
                raise ObservabilityError(
                    f"metric {name!r} already registered as "
                    f"{existing.kind}{existing.labelnames}"
                )
            return existing
        metric = cls(name, help, labelnames, **kwargs)
        self._metrics[name] = metric
        return metric

    def counter(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> Counter:
        return self._get_or_create(Counter, name, help, labelnames)

    def gauge(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> Gauge:
        return self._get_or_create(Gauge, name, help, labelnames)

    def histogram(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        return self._get_or_create(
            Histogram, name, help, labelnames, buckets=buckets
        )

    def get(self, name: str) -> Optional[Metric]:
        return self._metrics.get(name)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __iter__(self) -> Iterator[Metric]:
        return iter(sorted(self._metrics.values(), key=lambda m: m.name))

    def __len__(self) -> int:
        return len(self._metrics)

    def reset(self) -> None:
        """Zero every metric's cells, keeping registrations."""
        for metric in self._metrics.values():
            metric.clear()

    def clear(self) -> None:
        """Drop every registration (a fresh registry)."""
        self._metrics.clear()


#: Process-global default registry, for ad-hoc instrumentation.
_DEFAULT_REGISTRY = MetricRegistry()


def default_registry() -> MetricRegistry:
    """The process-global registry."""
    return _DEFAULT_REGISTRY


def reset_default_registry() -> None:
    """Drop everything in the process-global registry (test isolation)."""
    _DEFAULT_REGISTRY.clear()
