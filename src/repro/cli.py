"""Command-line experiment runner.

Usage::

    python -m repro list
    python -m repro run FIG2 FIG4a
    python -m repro run all
    python -m repro run FIG5 --arg n_hosts=200 --arg seed=7
    python -m repro run FIG5 --trace
    python -m repro run all --substrate-cache
    python -m repro run all --substrate-cache ~/.cache/repro-substrate

Each experiment prints the same rows its benchmark asserts on; ``--arg``
forwards keyword overrides (ints/floats parsed automatically).
``--trace`` runs the experiment with the observability layer on and
prints the metrics snapshot (JSON) and the trace digest after the table.
``--substrate-cache`` memoises generated underlays across the run (with
an optional directory to persist hop/delay matrices between runs).
``--workers N`` fans multi-arm sweeps (seed robustness, the RESILIENCE
grid, testlab, the fig4/fig6 arms) out over N worker processes via
:mod:`repro.runner`; results are bit-identical to the serial run.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Callable

from repro.experiments import (
    print_table,
    run_observed,
    run_fig1,
    run_fig2,
    run_fig3,
    run_fig4_dimension_sweep,
    run_fig4_embedding,
    run_fig4_examples,
    run_fig5,
    run_fig6,
    run_framework_composite,
    run_isp_bill,
    run_locality_savings,
    run_locality_swarm,
    run_resilience_faults,
    run_service_slo,
    run_table1,
    run_table2,
    run_testlab,
)

EXPERIMENTS: dict[str, tuple[Callable[..., Any], str]] = {
    "FIG1": (run_fig1, "Internet hierarchy structure"),
    "FIG2": (run_fig2, "transit vs peering cost relations"),
    "FIG2b": (run_locality_savings, "ISP bill vs locality of traffic"),
    "FIG3": (run_fig3, "collection taxonomy, measured"),
    "FIG4a": (run_fig4_examples, "ICS worked examples (exact)"),
    "FIG4b": (run_fig4_embedding, "ICS vs Vivaldi vs GNP embedding"),
    "FIG4c": (run_fig4_dimension_sweep, "ICS error vs PCA dimension"),
    "FIG5": (run_fig5, "Gnutella + oracle message table (slow)"),
    "FIG6": (run_fig6, "uniform vs biased neighbor selection"),
    "TESTLAB": (run_testlab, "45-node 5-AS controlled experiments"),
    "TAB1": (run_table1, "representative systems of Table 1"),
    "TAB2": (run_table2, "impact matrix vs paper Table 2"),
    "FRAMEWORK": (run_framework_composite,
                  "composite QoS profiles vs single-information selection"),
    "ISPBILL": (run_isp_bill, "per-ISP transit bills under an overlay workload"),
    "RESILIENCE": (run_resilience_faults,
                   "lookup success & stretch under injected faults (slow; "
                   "--arg smoke=true for the CI-sized run)"),
    "LOCALITY": (run_locality_swarm,
                 "locality-bias sweep over a 2000-peer swarm on the "
                 "flow-level data plane (slow; --arg smoke=true for the "
                 "CI-sized run)"),
    "SERVICE": (run_service_slo,
                "service-level SLO percentiles under open/closed-loop load "
                "(slow; --arg smoke=true for the CI-sized run)"),
}


def _parse_value(raw: str) -> Any:
    for cast in (int, float):
        try:
            return cast(raw)
        except ValueError:
            continue
    if raw.lower() in ("true", "false"):
        return raw.lower() == "true"
    return raw


def _parse_overrides(pairs: list[str]) -> dict[str, Any]:
    out: dict[str, Any] = {}
    for pair in pairs:
        if "=" not in pair:
            raise SystemExit(f"--arg expects key=value, got {pair!r}")
        key, raw = pair.split("=", 1)
        out[key] = _parse_value(raw)
    return out


def main(argv: list[str] | None = None) -> int:
    """Parse CLI arguments and run the requested experiments."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate the paper's figures and tables.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list available experiments")
    runp = sub.add_parser("run", help="run experiments by id (or 'all')")
    runp.add_argument("ids", nargs="+", help="experiment ids, or 'all'")
    runp.add_argument(
        "--arg",
        action="append",
        default=[],
        metavar="KEY=VALUE",
        help="keyword override forwarded to each experiment",
    )
    runp.add_argument(
        "--trace",
        action="store_true",
        help="collect metrics + a trace while running; print the snapshot",
    )
    runp.add_argument(
        "--substrate-cache",
        nargs="?",
        const="",
        default=None,
        metavar="DIR",
        help="memoise generated underlays across the experiments of this "
        "run (optionally persisting hop/delay matrices to DIR)",
    )
    runp.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="fan multi-arm sweeps out over N worker processes "
        "(repro.runner; results are identical to serial, REPRO_RUNNER_SERIAL=1 "
        "forces the serial path)",
    )
    args = parser.parse_args(argv)

    if args.command == "list":
        for exp_id, (_fn, desc) in EXPERIMENTS.items():
            print(f"{exp_id:8s} {desc}")
        return 0

    by_upper = {k.upper(): k for k in EXPERIMENTS}
    if args.ids == ["all"]:
        ids = list(EXPERIMENTS)
    else:
        unknown = [i for i in args.ids if i.upper() not in by_upper]
        if unknown:
            raise SystemExit(
                f"unknown experiment ids {unknown}; try 'python -m repro list'"
            )
        ids = [by_upper[i.upper()] for i in args.ids]
    if args.substrate_cache is not None:
        from repro.underlay.cache import configure_default_cache

        configure_default_cache(disk_dir=args.substrate_cache or None)
    if args.workers is not None:
        from repro.runner import configure_default_workers

        if args.workers < 1:
            raise SystemExit(f"--workers must be >= 1, got {args.workers}")
        configure_default_workers(args.workers)
    overrides = _parse_overrides(args.arg)
    for exp_id in ids:
        fn, _desc = EXPERIMENTS[exp_id]
        try:
            if args.trace:
                result = run_observed(fn, **overrides)
            else:
                result = fn(**overrides) if overrides else fn()
        except TypeError as exc:
            raise SystemExit(f"{exp_id}: bad --arg for {fn.__name__}: {exc}")
        print_table(result)
        if result.metrics is not None:
            print(f"\n--- {exp_id} observability snapshot ---")
            print(json.dumps(result.metrics, indent=2, sort_keys=True))
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
