"""Fault injection & recovery: the controllable failure model (§5.4).

The survey's open evaluation question is how underlay-aware overlays
behave under churn and network failure.  This package provides the
missing instrument: a deterministic, clock-driven fault model that
interposes on the simulation's transport (:class:`~repro.sim.messages.MessageBus`)
and peer lifecycle (:class:`~repro.sim.churn.ChurnProcess`) without
modifying any protocol.

- :class:`FaultSchedule` — timed loss/delay/partition/crash faults,
  programmatic or loaded from a dict/JSON spec.
- :class:`FaultInjector` — turns a schedule into simulation events; an
  empty schedule is a complete no-op (bit-for-bit identical traces).
- Recovery lives in :class:`~repro.sim.requests.RequestManager`
  (timeout + capped exponential backoff + max-retries), which the
  Kademlia and Gnutella nodes use for their RPC-style exchanges.

See ``docs/faults.md`` for the fault model, the spec format, and the
retry semantics; ``experiments/resilience_faults.py`` sweeps fault
severity for underlay-aware vs unaware overlays.
"""

from repro.faults.injector import FaultInjector, InjectorStats
from repro.faults.schedule import (
    CrashFault,
    DelayFault,
    FaultSchedule,
    LossFault,
    PartitionFault,
)

__all__ = [
    "CrashFault",
    "DelayFault",
    "FaultInjector",
    "FaultSchedule",
    "InjectorStats",
    "LossFault",
    "PartitionFault",
]
