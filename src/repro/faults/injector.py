"""Deterministic fault injection driven by the simulation clock.

:class:`FaultInjector` turns a :class:`~repro.faults.schedule.FaultSchedule`
into scheduled activation/deactivation events and interposes on the
:class:`~repro.sim.messages.MessageBus` (via its fault hook) and, for
crashes, on a :class:`~repro.sim.churn.ChurnProcess` — protocols are never
modified and never know faults exist.

Zero-cost when idle: an empty schedule schedules no events, installs no
bus hook, and draws no random numbers, so an experiment with an attached
idle injector is bit-for-bit identical (golden-trace digest included) to
one without it.

Determinism: the injector owns its own seeded RNG, used only when a loss
fault with ``rate < 1`` is active for a matching message, so two runs of
the same seeded scenario inject exactly the same faults.

Usage::

    schedule = FaultSchedule.from_dict(spec)
    injector = FaultInjector(
        sim, bus, schedule,
        asn_of=underlay.asn_of,
        on_crash=lambda hid: net.nodes[hid].go_offline(),
    )
    injector.start()
    sim.run(...)
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Hashable, Optional

from repro.errors import FaultError
from repro.faults.schedule import (
    CrashFault,
    DelayFault,
    FaultSchedule,
    LossFault,
    PartitionFault,
)
from repro.obs import active_registry, active_tracer
from repro.obs.registry import Counter, MetricRegistry
from repro.obs.tracing import Tracer
from repro.rng import SeedLike, ensure_rng
from repro.sim.churn import ChurnProcess
from repro.sim.engine import Simulation
from repro.sim.messages import MessageBus


@dataclass
class InjectorStats:
    """What the injector actually did during the run."""

    activations: int = 0
    deactivations: int = 0
    crashes: int = 0
    recoveries: int = 0
    messages_dropped: int = 0
    messages_delayed: int = 0


def _fault_kind(fault: object) -> str:
    if isinstance(fault, LossFault):
        return "loss"
    if isinstance(fault, DelayFault):
        return "delay"
    if isinstance(fault, PartitionFault):
        return "partition"
    return "crash"


class FaultInjector:
    """Applies a fault schedule to one simulation's bus and peer set.

    Parameters
    ----------
    sim, bus:
        The simulation clock and the message bus to interpose on.
    schedule:
        The faults to inject.  An empty schedule makes :meth:`start` a
        complete no-op.
    asn_of:
        Endpoint -> ASN resolver (e.g. ``underlay.asn_of``).  Required
        when the schedule contains AS-scoped or partition faults.
    churn:
        Optional :class:`ChurnProcess`; crashed peers are silenced in it
        (their pending join/leave cancelled) and revived on recovery.
    on_crash / on_recover:
        Callbacks invoked with each crashed/recovered peer id — typically
        ``node.go_offline`` / a rejoin.  When no callback is given the
        peer's bus endpoint is unregistered on crash, mirroring a process
        that vanished mid-conversation.
    seed:
        Seed for the injector's private loss RNG.
    """

    def __init__(
        self,
        sim: Simulation,
        bus: MessageBus,
        schedule: FaultSchedule,
        *,
        asn_of: Optional[Callable[[Hashable], int]] = None,
        churn: Optional[ChurnProcess] = None,
        on_crash: Optional[Callable[[int], None]] = None,
        on_recover: Optional[Callable[[int], None]] = None,
        seed: SeedLike = 0,
    ) -> None:
        if schedule.needs_asn and asn_of is None:
            raise FaultError(
                "schedule contains AS-scoped faults but no asn_of resolver "
                "was provided"
            )
        self.sim = sim
        self.bus = bus
        self.schedule = schedule
        self.asn_of = asn_of
        self.churn = churn
        self.on_crash = on_crash
        self.on_recover = on_recover
        self._rng = ensure_rng(seed)
        self._active: list = []  # message faults currently in their window
        self._started = False
        self.stats = InjectorStats()
        self._injected_ctr: Optional[Counter] = None
        self._tracer: Optional[Tracer] = None
        registry, tracer = active_registry(), active_tracer()
        if registry is not None or tracer is not None:
            self.instrument(registry, tracer)

    def instrument(
        self,
        registry: Optional[MetricRegistry] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        """Count injected faults by kind and emit fault trace events."""
        if registry is not None:
            self._injected_ctr = registry.counter(
                "faults_injected_total",
                "Faults activated by the injector, by kind.",
                ("kind",),
            )
        if tracer is not None:
            self._tracer = tracer

    # -- lifecycle --------------------------------------------------------------
    @property
    def active_faults(self) -> tuple:
        """Message faults currently inside their window."""
        return tuple(self._active)

    def start(self) -> None:
        """Schedule every fault's activation; a no-op for an empty schedule."""
        if self._started:
            raise FaultError("injector already started")
        self._started = True
        message_faults = self.schedule.message_faults
        if message_faults:
            self.bus.set_fault_hook(self._bus_fault)
            for fault in message_faults:
                self.sim.schedule_at(
                    max(fault.start, self.sim.now), self._activate, fault
                )
        for fault in self.schedule.crash_faults:
            self.sim.schedule_at(max(fault.at, self.sim.now), self._crash, fault)

    # -- windowed message faults ---------------------------------------------------
    def _activate(self, fault) -> None:
        self._active.append(fault)
        self.stats.activations += 1
        kind = _fault_kind(fault)
        if self._injected_ctr is not None:
            self._injected_ctr.inc(kind=kind)
        if self._tracer is not None:
            self._tracer.emit(
                "fault", "activate", time=self.sim.now,
                kind=kind, start=fault.start, end=fault.end,
            )
        self.sim.schedule_at(
            max(fault.end, self.sim.now), self._deactivate, fault
        )

    def _deactivate(self, fault) -> None:
        self._active.remove(fault)
        self.stats.deactivations += 1
        if self._tracer is not None:
            self._tracer.emit(
                "fault", "deactivate", time=self.sim.now, kind=_fault_kind(fault),
            )

    def _bus_fault(self, src: Hashable, dst: Hashable, kind: str) -> float:
        """The bus hook: extra delay for this message, or inf to drop it."""
        if not self._active:
            return 0.0
        src_asn = dst_asn = None
        if self.asn_of is not None:
            src_asn = self.asn_of(src)
            dst_asn = self.asn_of(dst)
        extra = 0.0
        keep = 1.0
        for fault in self._active:
            if isinstance(fault, PartitionFault):
                if fault.separates(src_asn, dst_asn):
                    self.stats.messages_dropped += 1
                    return math.inf
            elif fault.matches(src, dst, src_asn, dst_asn):
                if isinstance(fault, LossFault):
                    keep *= 1.0 - fault.rate
                else:
                    extra += fault.extra_ms
        if keep < 1.0 and (keep == 0.0 or self._rng.random() >= keep):
            self.stats.messages_dropped += 1
            return math.inf
        if extra:
            self.stats.messages_delayed += 1
        return extra

    # -- crashes -------------------------------------------------------------------
    def _crash(self, fault: CrashFault) -> None:
        self.stats.crashes += len(fault.peers)
        if self._injected_ctr is not None:
            self._injected_ctr.inc(len(fault.peers), kind="crash")
        for peer in fault.peers:
            if self.churn is not None:
                self.churn.crash(peer)
            if self.on_crash is not None:
                self.on_crash(peer)
            else:
                self.bus.unregister(peer)
            if self._tracer is not None:
                self._tracer.emit(
                    "fault", "crash", time=self.sim.now, peer=peer,
                )
        if fault.recover_at is not None:
            self.sim.schedule_at(
                max(fault.recover_at, self.sim.now), self._recover, fault
            )

    def _recover(self, fault: CrashFault) -> None:
        self.stats.recoveries += len(fault.peers)
        for peer in fault.peers:
            if self.churn is not None:
                self.churn.revive(peer)
            if self.on_recover is not None:
                self.on_recover(peer)
            if self._tracer is not None:
                self._tracer.emit(
                    "fault", "recover", time=self.sim.now, peer=peer,
                )
