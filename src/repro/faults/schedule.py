"""Fault schedules: what fails, where, and when.

A :class:`FaultSchedule` is a validated, immutable list of timed faults —
the §5.4 failure model the survey's evaluation question needs.  Four
fault families cover the failure modes studied in the locality/robustness
literature (local-cluster partitions in Cuevas et al., lossy search in
Biernacki's OPNET study):

- :class:`LossFault` — extra drop probability over a time window, scoped
  to one link, one AS, or the whole network (a loss burst);
- :class:`DelayFault` — extra one-way delay over a window, same scopes;
- :class:`PartitionFault` — drop *all* traffic crossing a partition of
  the AS set (ASes not listed form an implicit "rest of the world" side);
- :class:`CrashFault` — instant peer failures at a point in time, with an
  optional recovery time (no graceful leave — distinct from churn).

Schedules are built programmatically or loaded from a small dict/JSON
spec (:meth:`FaultSchedule.from_dict` / :meth:`FaultSchedule.from_json`)::

    {"faults": [
        {"kind": "loss", "start": 10e3, "end": 40e3, "rate": 0.3},
        {"kind": "loss", "start": 0, "end": 60e3, "rate": 1.0,
         "src": 3, "dst": 7},
        {"kind": "delay", "start": 5e3, "end": 9e3, "extra_ms": 80,
         "asn": 2},
        {"kind": "partition", "start": 20e3, "end": 30e3,
         "groups": [[1, 2]]},
        {"kind": "crash", "at": 15e3, "peers": [4, 9],
         "recover_at": 45e3}
    ]}

The schedule itself is pure data; :class:`~repro.faults.injector.FaultInjector`
turns it into simulation events and message filtering.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Iterator, Mapping, Optional

from repro.errors import FaultError

#: Spec keys accepted for each fault kind (beyond "kind" itself).
_SPEC_KEYS = {
    "loss": {"start", "end", "rate", "src", "dst", "asn", "bidirectional"},
    "delay": {"start", "end", "extra_ms", "src", "dst", "asn", "bidirectional"},
    "partition": {"start", "end", "groups"},
    "crash": {"at", "peers", "recover_at"},
}


def _check_window(start: float, end: float) -> None:
    if start < 0 or end <= start:
        raise FaultError(f"bad fault window [{start}, {end})")


@dataclass(frozen=True)
class _ScopedFault:
    """A windowed fault scoped to a link, an AS, or the whole network.

    Exactly one scope applies: ``src``/``dst`` (both set) selects one
    directed link (``bidirectional`` widens it to both directions); ``asn``
    selects every message with an endpoint in that AS; neither means the
    fault is global.
    """

    start: float
    end: float
    src: Optional[int] = None
    dst: Optional[int] = None
    asn: Optional[int] = None
    bidirectional: bool = True

    def __post_init__(self) -> None:
        _check_window(self.start, self.end)
        if (self.src is None) != (self.dst is None):
            raise FaultError("link scope needs both src and dst")
        if self.src is not None and self.asn is not None:
            raise FaultError("scope is either a link or an AS, not both")

    @property
    def is_as_scoped(self) -> bool:
        return self.asn is not None

    def matches(
        self, src: int, dst: int, src_asn: Optional[int], dst_asn: Optional[int]
    ) -> bool:
        """Does a ``src -> dst`` message fall inside this fault's scope?"""
        if self.src is not None:
            if src == self.src and dst == self.dst:
                return True
            return self.bidirectional and src == self.dst and dst == self.src
        if self.asn is not None:
            return self.asn in (src_asn, dst_asn)
        return True


@dataclass(frozen=True)
class LossFault(_ScopedFault):
    """Drop each in-scope message with probability ``rate`` during the
    window.  ``rate=1.0`` is a hard link/AS failure."""

    rate: float = 0.0

    def __post_init__(self) -> None:
        super().__post_init__()
        if not (0.0 < self.rate <= 1.0):
            raise FaultError(f"loss rate must be in (0, 1], got {self.rate}")


@dataclass(frozen=True)
class DelayFault(_ScopedFault):
    """Add ``extra_ms`` one-way delay to in-scope messages during the
    window (congestion, rerouting after an underlay link failure)."""

    extra_ms: float = 0.0

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.extra_ms <= 0:
            raise FaultError(f"extra delay must be positive, got {self.extra_ms}")


@dataclass(frozen=True)
class PartitionFault:
    """Drop all traffic crossing a partition of the AS set.

    ``groups`` are disjoint sets of ASNs; every AS not listed belongs to
    an implicit extra side.  A message is dropped iff its endpoints' ASes
    sit on different sides, so ``groups=((1, 2),)`` cuts ASes 1-2 off
    from the rest of the world.
    """

    start: float
    end: float
    groups: tuple[frozenset[int], ...] = ()

    def __post_init__(self) -> None:
        _check_window(self.start, self.end)
        groups = tuple(frozenset(int(a) for a in g) for g in self.groups)
        if not groups or any(not g for g in groups):
            raise FaultError("partition needs at least one non-empty AS group")
        seen: set[int] = set()
        for g in groups:
            if seen & g:
                raise FaultError(f"AS groups overlap: {sorted(seen & g)}")
            seen |= g
        object.__setattr__(self, "groups", groups)

    def side_of(self, asn: int) -> int:
        """Partition side of one AS (-1 = the implicit rest-group)."""
        for i, g in enumerate(self.groups):
            if asn in g:
                return i
        return -1

    def separates(self, src_asn: int, dst_asn: int) -> bool:
        return self.side_of(src_asn) != self.side_of(dst_asn)


@dataclass(frozen=True)
class CrashFault:
    """Instant failure of ``peers`` at time ``at``; with ``recover_at``
    the peers come back (the injector's recovery callback fires)."""

    at: float
    peers: tuple[int, ...] = ()
    recover_at: Optional[float] = None

    def __post_init__(self) -> None:
        if self.at < 0:
            raise FaultError(f"crash time must be non-negative, got {self.at}")
        if not self.peers:
            raise FaultError("crash fault needs at least one peer")
        if self.recover_at is not None and self.recover_at <= self.at:
            raise FaultError("recover_at must come after the crash")
        # peer ids are any hashable; only the dict spec coerces to int
        object.__setattr__(self, "peers", tuple(self.peers))


#: Any fault a schedule can carry.
Fault = Any  # LossFault | DelayFault | PartitionFault | CrashFault


@dataclass(frozen=True)
class FaultSchedule:
    """An immutable collection of faults, ready for injection."""

    faults: tuple[Fault, ...] = ()

    def __post_init__(self) -> None:
        allowed = (LossFault, DelayFault, PartitionFault, CrashFault)
        faults = tuple(self.faults)
        for f in faults:
            if not isinstance(f, allowed):
                raise FaultError(f"not a fault: {f!r}")
        object.__setattr__(self, "faults", faults)

    def __len__(self) -> int:
        return len(self.faults)

    def __iter__(self) -> Iterator[Fault]:
        return iter(self.faults)

    @property
    def message_faults(self) -> tuple[Fault, ...]:
        """Faults that interpose on the message bus."""
        return tuple(
            f for f in self.faults
            if isinstance(f, (LossFault, DelayFault, PartitionFault))
        )

    @property
    def crash_faults(self) -> tuple[CrashFault, ...]:
        return tuple(f for f in self.faults if isinstance(f, CrashFault))

    @property
    def needs_asn(self) -> bool:
        """Does any fault require resolving endpoints to ASes?"""
        return any(
            isinstance(f, PartitionFault)
            or (isinstance(f, _ScopedFault) and f.is_as_scoped)
            for f in self.faults
        )

    # -- spec loading ----------------------------------------------------------
    @classmethod
    def from_dict(cls, spec: Mapping[str, Any]) -> "FaultSchedule":
        """Build a schedule from the dict spec documented in the module
        docstring; unknown kinds and stray keys fail loudly."""
        entries = spec.get("faults")
        if not isinstance(entries, (list, tuple)):
            raise FaultError('spec needs a "faults" list')
        faults: list[Fault] = []
        for entry in entries:
            if not isinstance(entry, Mapping):
                raise FaultError(f"fault entry must be a mapping: {entry!r}")
            kind = entry.get("kind")
            if kind not in _SPEC_KEYS:
                raise FaultError(
                    f"unknown fault kind {kind!r}; expected one of "
                    f"{sorted(_SPEC_KEYS)}"
                )
            extra = set(entry) - _SPEC_KEYS[kind] - {"kind"}
            if extra:
                raise FaultError(f"{kind} fault has unknown keys {sorted(extra)}")
            args = {k: v for k, v in entry.items() if k != "kind"}
            if kind == "loss":
                faults.append(LossFault(**args))
            elif kind == "delay":
                faults.append(DelayFault(**args))
            elif kind == "partition":
                args["groups"] = tuple(
                    frozenset(int(a) for a in g) for g in args.get("groups", ())
                )
                faults.append(PartitionFault(**args))
            else:
                args["peers"] = tuple(int(p) for p in args.get("peers", ()))
                faults.append(CrashFault(**args))
        return cls(tuple(faults))

    @classmethod
    def from_json(cls, text: str) -> "FaultSchedule":
        try:
            spec = json.loads(text)
        except json.JSONDecodeError as exc:
            raise FaultError(f"bad fault spec JSON: {exc}") from exc
        return cls.from_dict(spec)

    def to_dict(self) -> dict[str, Any]:
        """Round-trippable dict form of this schedule."""
        out: list[dict[str, Any]] = []
        for f in self.faults:
            if isinstance(f, LossFault):
                entry: dict[str, Any] = {
                    "kind": "loss", "start": f.start, "end": f.end,
                    "rate": f.rate,
                }
                self._scope_to(entry, f)
            elif isinstance(f, DelayFault):
                entry = {
                    "kind": "delay", "start": f.start, "end": f.end,
                    "extra_ms": f.extra_ms,
                }
                self._scope_to(entry, f)
            elif isinstance(f, PartitionFault):
                entry = {
                    "kind": "partition", "start": f.start, "end": f.end,
                    "groups": [sorted(g) for g in f.groups],
                }
            else:
                entry = {"kind": "crash", "at": f.at, "peers": list(f.peers)}
                if f.recover_at is not None:
                    entry["recover_at"] = f.recover_at
            out.append(entry)
        return {"faults": out}

    @staticmethod
    def _scope_to(entry: dict[str, Any], f: _ScopedFault) -> None:
        if f.src is not None:
            entry["src"], entry["dst"] = f.src, f.dst
            if not f.bidirectional:
                entry["bidirectional"] = False
        elif f.asn is not None:
            entry["asn"] = f.asn
