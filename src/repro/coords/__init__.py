"""Network coordinate systems for latency prediction (§3.2).

- :class:`~repro.coords.vivaldi.VivaldiSystem` — decentralized spring
  embedding (Dabek et al.).
- :class:`~repro.coords.ics.ICS` — PCA/landmark Internet Coordinate System
  (Lim et al., the survey's Figure 4).
- :class:`~repro.coords.gnp.GNPSystem` / :class:`~repro.coords.gnp.LandmarkBinning`
  — landmark embedding and distributed binning (Ratnasamy et al.).
- :mod:`~repro.coords.evaluation` — relative error / stretch metrics.
"""

from repro.coords.base import CoordinateSystem, validate_distance_matrix
from repro.coords.evaluation import (
    EmbeddingReport,
    closest_peer_accuracy,
    evaluate_embedding,
    relative_errors,
    selection_stretch,
)
from repro.coords.gnp import GNPConfig, GNPSystem, LandmarkBinning
from repro.coords.ics import (
    ICS,
    ICSConfig,
    PAPER_EXAMPLE_HOST_A,
    PAPER_EXAMPLE_HOST_B,
    PAPER_EXAMPLE_MATRIX,
)
from repro.coords.vivaldi import VivaldiConfig, VivaldiNode, VivaldiSystem

__all__ = [
    "CoordinateSystem",
    "EmbeddingReport",
    "GNPConfig",
    "GNPSystem",
    "ICS",
    "ICSConfig",
    "LandmarkBinning",
    "PAPER_EXAMPLE_HOST_A",
    "PAPER_EXAMPLE_HOST_B",
    "PAPER_EXAMPLE_MATRIX",
    "VivaldiConfig",
    "VivaldiNode",
    "VivaldiSystem",
    "closest_peer_accuracy",
    "evaluate_embedding",
    "relative_errors",
    "selection_stretch",
    "validate_distance_matrix",
]
