"""Common interface for network coordinate systems (§3.2 of the survey).

A coordinate system predicts the latency between two arbitrary peers from a
small number of explicit measurements.  All systems here consume *RTT-like*
distances (symmetric, non-negative) and expose

- per-node coordinates,
- an ``estimate(i, j)`` pairwise predictor,
- a batched ``estimate_many(src, dsts)`` for one-to-many prediction
  (the shape every neighbour ranker needs), and
- an ``estimated_matrix()`` convenience for evaluation.
"""

from __future__ import annotations

import abc
from typing import Sequence

import numpy as np

from repro.errors import CoordinateError


def validate_distance_matrix(d: np.ndarray, *, name: str = "distance matrix") -> np.ndarray:
    """Validate and return a square, non-negative, zero-diagonal matrix."""
    d = np.asarray(d, dtype=float)
    if d.ndim != 2 or d.shape[0] != d.shape[1]:
        raise CoordinateError(f"{name} must be square, got shape {d.shape}")
    if not np.isfinite(d).all():
        raise CoordinateError(f"{name} contains non-finite entries")
    if (d < 0).any():
        raise CoordinateError(f"{name} contains negative distances")
    return d


def row_norms(diff: np.ndarray) -> np.ndarray:
    """Euclidean norm of each row, bit-identical to per-row
    ``np.linalg.norm(row)``.

    The scalar norm is ``sqrt(dot(v, v))`` through the BLAS dot kernel;
    elementwise ``sqrt(sum(d*d))`` (or ``einsum``) can differ by an ulp
    because the reduction order differs.  A stacked (m, 1, dim) @
    (m, dim, 1) matmul runs the *same* dot kernel per row, so batched
    coordinate estimates reproduce the scalar path exactly — the
    equivalence tests assert ``==``, not ``allclose``.
    """
    diff = np.asarray(diff, dtype=float)
    if diff.size == 0:
        return np.zeros(diff.shape[0])
    return np.sqrt(np.matmul(diff[:, None, :], diff[:, :, None]).ravel())


class CoordinateSystem(abc.ABC):
    """Abstract pairwise-latency predictor."""

    @abc.abstractmethod
    def coordinates(self) -> np.ndarray:
        """``(n, dim)`` array of node coordinates."""

    @abc.abstractmethod
    def estimate(self, i: int, j: int) -> float:
        """Predicted distance between nodes ``i`` and ``j``."""

    def estimate_many(self, src: int, dsts: Sequence[int]) -> np.ndarray:
        """Predicted distance from ``src`` to each of ``dsts``.

        The default loops over :meth:`estimate`; concrete systems
        override it with one vectorised evaluation over the destination
        coordinate array, value-identical entry by entry.
        """
        return np.array([self.estimate(src, j) for j in dsts], dtype=float)

    def estimated_matrix(self) -> np.ndarray:
        """All-pairs predicted distances (default: Euclidean on coords)."""
        coords = self.coordinates()
        diff = coords[:, None, :] - coords[None, :, :]
        return np.sqrt(np.einsum("ijk,ijk->ij", diff, diff))
