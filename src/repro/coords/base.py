"""Common interface for network coordinate systems (§3.2 of the survey).

A coordinate system predicts the latency between two arbitrary peers from a
small number of explicit measurements.  All systems here consume *RTT-like*
distances (symmetric, non-negative) and expose

- per-node coordinates,
- an ``estimate(i, j)`` pairwise predictor, and
- an ``estimated_matrix()`` convenience for evaluation.
"""

from __future__ import annotations

import abc
from typing import Sequence

import numpy as np

from repro.errors import CoordinateError


def validate_distance_matrix(d: np.ndarray, *, name: str = "distance matrix") -> np.ndarray:
    """Validate and return a square, non-negative, zero-diagonal matrix."""
    d = np.asarray(d, dtype=float)
    if d.ndim != 2 or d.shape[0] != d.shape[1]:
        raise CoordinateError(f"{name} must be square, got shape {d.shape}")
    if not np.isfinite(d).all():
        raise CoordinateError(f"{name} contains non-finite entries")
    if (d < 0).any():
        raise CoordinateError(f"{name} contains negative distances")
    return d


class CoordinateSystem(abc.ABC):
    """Abstract pairwise-latency predictor."""

    @abc.abstractmethod
    def coordinates(self) -> np.ndarray:
        """``(n, dim)`` array of node coordinates."""

    @abc.abstractmethod
    def estimate(self, i: int, j: int) -> float:
        """Predicted distance between nodes ``i`` and ``j``."""

    def estimated_matrix(self) -> np.ndarray:
        """All-pairs predicted distances (default: Euclidean on coords)."""
        coords = self.coordinates()
        diff = coords[:, None, :] - coords[None, :, :]
        return np.sqrt(np.einsum("ijk,ijk->ij", diff, diff))
