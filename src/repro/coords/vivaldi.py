"""Vivaldi: a decentralized network coordinate system (Dabek et al. [7]).

Each node keeps a synthetic coordinate and a confidence weight; on every
RTT sample to a neighbour it nudges its coordinate along the spring force
``(rtt - predicted) * unit_vector``, scaled by the adaptive timestep
``cc * w`` with ``w = e_i / (e_i + e_j)``.  The optional *height* component
models the access-link delay every packet pays regardless of direction —
the same access-link structure our underlay generates — so Vivaldi with
height fits our matrices better, exactly as in the original paper.

:class:`VivaldiSystem` runs the decentralized protocol in rounds against a
ground-truth RTT matrix (each node sampling a few random neighbours per
round), which is how the algorithm is evaluated on measured datasets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.coords.base import (
    CoordinateSystem,
    row_norms,
    validate_distance_matrix,
)
from repro.errors import ConfigurationError, CoordinateError
from repro.rng import SeedLike, ensure_rng

_MIN_HEIGHT = 1e-5


@dataclass(frozen=True)
class VivaldiConfig:
    """Algorithm constants (paper notation: cc, ce)."""

    dim: int = 2
    use_height: bool = True
    cc: float = 0.25          # coordinate adaptation gain
    ce: float = 0.25          # error adaptation gain
    initial_error: float = 1.0

    def __post_init__(self) -> None:
        if self.dim < 1:
            raise ConfigurationError("dim must be >= 1")
        if not (0 < self.cc <= 1) or not (0 < self.ce <= 1):
            raise ConfigurationError("cc and ce must be in (0, 1]")


class VivaldiNode:
    """State and update rule of a single Vivaldi participant."""

    def __init__(self, config: VivaldiConfig, rng: SeedLike = None) -> None:
        self.config = config
        rng = ensure_rng(rng)
        # Nodes start at the origin plus a tiny random kick so two nodes
        # never sit exactly on top of each other (the paper uses a random
        # unit direction for that case; a kick avoids the branch).
        self.position = rng.normal(0.0, 1e-3, size=config.dim)
        self.height = float(rng.uniform(1e-3, 1e-2)) if config.use_height else 0.0
        self.error = config.initial_error

    def distance_to(self, other: "VivaldiNode") -> float:
        d = float(np.linalg.norm(self.position - other.position))
        return d + self.height + other.height

    def update(self, rtt: float, other: "VivaldiNode") -> None:
        """Process one RTT sample to ``other`` (whose state is not modified)."""
        if rtt <= 0:
            raise CoordinateError(f"RTT sample must be positive, got {rtt}")
        cfg = self.config
        w = self.error / (self.error + other.error)
        predicted = self.distance_to(other)
        sample_error = abs(predicted - rtt) / rtt
        self.error = sample_error * cfg.ce * w + self.error * (1.0 - cfg.ce * w)
        delta = cfg.cc * w
        force = rtt - predicted
        gap = self.position - other.position
        norm = float(np.linalg.norm(gap))
        if norm < 1e-12:
            direction = np.zeros(cfg.dim)
            direction[0] = 1.0
        else:
            direction = gap / norm
        self.position = self.position + delta * force * direction
        if cfg.use_height:
            # height moves with the same spring force along the "up" axis
            self.height = max(self.height + delta * force * 1.0 * 0.1, _MIN_HEIGHT)


class VivaldiSystem(CoordinateSystem):
    """Runs decentralized Vivaldi over a ground-truth RTT matrix."""

    def __init__(
        self,
        rtt_matrix: np.ndarray,
        config: VivaldiConfig | None = None,
        *,
        rng: SeedLike = None,
    ) -> None:
        self.rtt = validate_distance_matrix(rtt_matrix, name="RTT matrix")
        self.n = self.rtt.shape[0]
        if self.n < 2:
            raise CoordinateError("need at least two nodes")
        self.config = config or VivaldiConfig()
        self._rng = ensure_rng(rng)
        self.nodes = [VivaldiNode(self.config, self._rng) for _ in range(self.n)]
        self.samples_used = 0

    def run(self, rounds: int = 50, neighbors_per_round: int = 8) -> None:
        """Each round, every node samples ``neighbors_per_round`` random
        other nodes and applies the Vivaldi update."""
        if rounds < 0 or neighbors_per_round < 1:
            raise ConfigurationError("rounds >= 0 and neighbors_per_round >= 1")
        k = min(neighbors_per_round, self.n - 1)
        for _ in range(rounds):
            order = self._rng.permutation(self.n)
            for i in order:
                choices = self._rng.choice(self.n - 1, size=k, replace=False)
                for c in choices:
                    j = int(c) if c < i else int(c) + 1
                    rtt = float(self.rtt[i, j])
                    if rtt <= 0:
                        continue
                    self.nodes[int(i)].update(rtt, self.nodes[j])
                    self.samples_used += 1

    # -- CoordinateSystem ------------------------------------------------------
    def coordinates(self) -> np.ndarray:
        return np.array([n.position for n in self.nodes])

    def heights(self) -> np.ndarray:
        return np.array([n.height for n in self.nodes])

    def errors(self) -> np.ndarray:
        return np.array([n.error for n in self.nodes])

    def estimate(self, i: int, j: int) -> float:
        if i == j:
            return 0.0
        return self.nodes[i].distance_to(self.nodes[j])

    def estimate_many(self, src: int, dsts: Sequence[int]) -> np.ndarray:
        """Batched :meth:`estimate`: one position gather + one stacked
        norm instead of a ``distance_to`` call per destination, with the
        height terms added in the scalar operation order so values are
        bit-identical."""
        dst_list = [int(j) for j in dsts]
        if not dst_list:
            return np.zeros(0)
        node = self.nodes[src]
        positions = np.array([self.nodes[j].position for j in dst_list])
        d = row_norms(node.position[None, :] - positions)
        heights = np.array([self.nodes[j].height for j in dst_list])
        est = (d + node.height) + heights
        for idx, j in enumerate(dst_list):
            if j == src:
                est[idx] = 0.0
        return est

    def estimated_matrix(self) -> np.ndarray:
        coords = self.coordinates()
        diff = coords[:, None, :] - coords[None, :, :]
        base = np.sqrt(np.einsum("ijk,ijk->ij", diff, diff))
        if self.config.use_height:
            h = self.heights()
            base = base + h[:, None] + h[None, :]
        np.fill_diagonal(base, 0.0)
        return base
