"""ICS: the Internet Coordinate System of Lim, Hou & Choi [20].

This is the landmark ("beacon") architecture reproduced in the survey's
Figure 4, including the worked Examples 4 and 5 whose numbers our tests
assert exactly.

Procedure (paper steps S1–S5 / H1–H3):

1. Beacon nodes measure their pairwise RTTs, giving the distance matrix
   ``D`` (m×m).
2. An administrative node applies PCA to ``D``: the singular value
   decomposition yields principal directions ``u_1..u_m``.
3. The embedding dimension ``n`` is the smallest one whose cumulative
   percentage of variation exceeds a threshold.
4. Unscaled beacon coordinates are ``c_i = U_n^T d_i`` (``d_i`` = i-th
   column of ``D``).
5. A scaling factor ``α`` is fit by least squares so that embedded
   distances match measured ones; the transformation matrix is
   ``Ū_n = α·U_n`` and beacon coordinates ``c̄_i = Ū_n^T d_i``.

A joining host measures its RTT vector ``l_a`` to the beacons and computes
its own coordinate locally as ``x_a = Ū_n^T · l_a`` (step H3) — no global
coordination needed beyond fetching ``Ū_n``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.coords.base import (
    CoordinateSystem,
    row_norms,
    validate_distance_matrix,
)
from repro.errors import ConfigurationError, CoordinateError


@dataclass(frozen=True)
class ICSConfig:
    """Dimension selection: fixed ``dim`` wins over the variance threshold."""

    dim: Optional[int] = None
    variance_threshold: float = 0.95

    def __post_init__(self) -> None:
        if self.dim is not None and self.dim < 1:
            raise ConfigurationError("dim must be >= 1")
        if not (0 < self.variance_threshold <= 1):
            raise ConfigurationError("variance threshold must be in (0, 1]")


def _sign_normalize(u: np.ndarray) -> np.ndarray:
    """Resolve the SVD sign ambiguity: flip each column so its first
    non-negligible entry is negative, matching the paper's examples."""
    u = u.copy()
    for k in range(u.shape[1]):
        col = u[:, k]
        nz = np.nonzero(np.abs(col) > 1e-12)[0]
        if nz.size and col[nz[0]] > 0:
            u[:, k] = -col
    return u


class ICS(CoordinateSystem):
    """Fitted ICS model: beacon coordinates plus the host-side transform."""

    def __init__(
        self, beacon_distances: np.ndarray, config: ICSConfig | None = None
    ) -> None:
        self.config = config or ICSConfig()
        d = validate_distance_matrix(beacon_distances, name="beacon distance matrix")
        if not np.allclose(d, d.T, atol=1e-9):
            raise CoordinateError("beacon distance matrix must be symmetric")
        self.distances = d
        self.m = d.shape[0]
        if self.m < 2:
            raise CoordinateError("need at least two beacons")
        self._fit()

    # -- fitting (steps S3–S5) -------------------------------------------------
    def _fit(self) -> None:
        u, s, _vt = np.linalg.svd(self.distances)
        self.singular_values = s
        total = float(np.sum(s**2))
        if total <= 0:
            raise CoordinateError("degenerate distance matrix (all zeros)")
        self.cumulative_variation = np.cumsum(s**2) / total
        if self.config.dim is not None:
            n = min(self.config.dim, self.m)
        else:
            n = int(np.searchsorted(
                self.cumulative_variation, self.config.variance_threshold
            )) + 1
            n = min(n, self.m)
        self.dim = n
        u_n = _sign_normalize(u[:, :n])
        # Unscaled beacon coordinates: c_i = U_n^T d_i  (rows of D @ U_n).
        unscaled = self.distances @ u_n
        self.alpha = self._fit_alpha(unscaled)
        self.transform = self.alpha * u_n          # Ū_n, shape (m, n)
        self.beacon_coords = self.distances @ self.transform

    def _fit_alpha(self, unscaled_coords: np.ndarray) -> float:
        """Least-squares scaling: min_α Σ_{i<j} (α·l_ij − d_ij)²."""
        iu = np.triu_indices(self.m, k=1)
        diff = unscaled_coords[:, None, :] - unscaled_coords[None, :, :]
        l = np.sqrt(np.einsum("ijk,ijk->ij", diff, diff))[iu]
        d = self.distances[iu]
        denom = float(np.sum(l * l))
        if denom <= 0:
            return 1.0
        return float(np.sum(l * d) / denom)

    # -- host side (steps H1–H3) -------------------------------------------------
    def host_coordinate(self, rtt_to_beacons: Sequence[float]) -> np.ndarray:
        """Compute a joining host's coordinate from its beacon RTT vector."""
        la = np.asarray(list(rtt_to_beacons), dtype=float)
        if la.shape != (self.m,):
            raise CoordinateError(
                f"expected {self.m} beacon measurements, got shape {la.shape}"
            )
        if (la < 0).any() or not np.isfinite(la).all():
            raise CoordinateError("beacon RTTs must be finite and non-negative")
        return self.transform.T @ la

    def host_coordinates(self, rtt_matrix_to_beacons: np.ndarray) -> np.ndarray:
        """Vectorised: ``(n_hosts, m)`` RTTs -> ``(n_hosts, dim)`` coords."""
        la = np.asarray(rtt_matrix_to_beacons, dtype=float)
        if la.ndim != 2 or la.shape[1] != self.m:
            raise CoordinateError(
                f"expected (n_hosts, {self.m}) measurements, got {la.shape}"
            )
        return la @ self.transform

    @staticmethod
    def distance(x: np.ndarray, y: np.ndarray) -> float:
        """Predicted latency between two ICS coordinates."""
        return float(np.linalg.norm(np.asarray(x) - np.asarray(y)))

    # -- CoordinateSystem over the beacons -----------------------------------------
    def coordinates(self) -> np.ndarray:
        return self.beacon_coords

    def estimate(self, i: int, j: int) -> float:
        return self.distance(self.beacon_coords[i], self.beacon_coords[j])

    def estimate_many(self, src: int, dsts: Sequence[int]) -> np.ndarray:
        """Batched :meth:`estimate` — one stacked norm over the gathered
        beacon coordinates (bit-identical to the scalar path)."""
        dst_list = [int(j) for j in dsts]
        if not dst_list:
            return np.zeros(0)
        diff = self.beacon_coords[src][None, :] - self.beacon_coords[dst_list]
        return row_norms(diff)


#: The beacon distance matrix behind the paper's Examples 1/4/5 (Figure 4
#: excerpt): four beacons in two ASes, intra-AS delay 1, inter-AS delay 3.
PAPER_EXAMPLE_MATRIX = np.array(
    [
        [0.0, 1.0, 3.0, 3.0],
        [1.0, 0.0, 3.0, 3.0],
        [3.0, 3.0, 0.0, 1.0],
        [3.0, 3.0, 1.0, 0.0],
    ]
)

#: Host measurement vectors from Example 5.
PAPER_EXAMPLE_HOST_A = np.array([1.0, 1.0, 4.0, 4.0])
PAPER_EXAMPLE_HOST_B = np.array([10.0, 10.0, 10.0, 10.0])
