"""Evaluation metrics for network coordinate systems.

The standard yardsticks from the Vivaldi / GNP / ICS papers:

- **relative error** per pair: ``|predicted − measured| / measured``;
- **stretch** of neighbour selection: latency of the chosen neighbour over
  the latency of the true nearest neighbour;
- **closest-peer accuracy**: how often the predicted nearest node is the
  true nearest (or within a tolerance band).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.coords.base import validate_distance_matrix
from repro.errors import CoordinateError


@dataclass(frozen=True)
class EmbeddingReport:
    """Summary of an embedding's quality: errors, accuracy, stretch."""
    median_relative_error: float
    p90_relative_error: float
    mean_relative_error: float
    closest_peer_accuracy: float
    mean_selection_stretch: float

    def as_row(self) -> dict[str, float]:
        return {
            "median_rel_err": self.median_relative_error,
            "p90_rel_err": self.p90_relative_error,
            "mean_rel_err": self.mean_relative_error,
            "closest_acc": self.closest_peer_accuracy,
            "stretch": self.mean_selection_stretch,
        }


def relative_errors(predicted: np.ndarray, measured: np.ndarray) -> np.ndarray:
    """Per-pair relative errors over the strict upper triangle (measured>0)."""
    predicted = validate_distance_matrix(predicted, name="predicted matrix")
    measured = validate_distance_matrix(measured, name="measured matrix")
    if predicted.shape != measured.shape:
        raise CoordinateError(
            f"shape mismatch: {predicted.shape} vs {measured.shape}"
        )
    iu = np.triu_indices(measured.shape[0], k=1)
    p = predicted[iu]
    m = measured[iu]
    mask = m > 0
    return np.abs(p[mask] - m[mask]) / m[mask]


def closest_peer_accuracy(predicted: np.ndarray, measured: np.ndarray) -> float:
    """Fraction of nodes whose predicted-nearest peer is the true nearest."""
    n = measured.shape[0]
    if n < 2:
        raise CoordinateError("need at least two nodes")
    pm = predicted.copy().astype(float)
    mm = measured.copy().astype(float)
    np.fill_diagonal(pm, np.inf)
    np.fill_diagonal(mm, np.inf)
    return float(np.mean(np.argmin(pm, axis=1) == np.argmin(mm, axis=1)))


def selection_stretch(predicted: np.ndarray, measured: np.ndarray) -> float:
    """Mean ratio measured(predicted-nearest) / measured(true-nearest).

    1.0 means coordinate-guided nearest-neighbour selection is perfect;
    this is the metric that matters for latency-aware overlays, because
    peers use coordinates precisely to *choose* neighbours.
    """
    n = measured.shape[0]
    pm = predicted.copy().astype(float)
    mm = measured.copy().astype(float)
    np.fill_diagonal(pm, np.inf)
    np.fill_diagonal(mm, np.inf)
    chosen = np.argmin(pm, axis=1)
    best = mm.min(axis=1)
    actual = mm[np.arange(n), chosen]
    mask = best > 0
    if not mask.any():
        return 1.0
    return float(np.mean(actual[mask] / best[mask]))


def evaluate_embedding(predicted: np.ndarray, measured: np.ndarray) -> EmbeddingReport:
    """Full report for one coordinate system against ground truth."""
    errs = relative_errors(predicted, measured)
    if errs.size == 0:
        raise CoordinateError("no measurable pairs (all distances zero)")
    return EmbeddingReport(
        median_relative_error=float(np.median(errs)),
        p90_relative_error=float(np.percentile(errs, 90)),
        mean_relative_error=float(np.mean(errs)),
        closest_peer_accuracy=closest_peer_accuracy(predicted, measured),
        mean_selection_stretch=selection_stretch(predicted, measured),
    )
