"""Landmark-based positioning: GNP-style embedding and Ratnasamy binning.

The survey's §3.2 cites landmark prediction methods [26] (Ratnasamy et al.,
"Topologically-aware overlay construction"): peers measure RTTs to a fixed
set of landmarks.  Two usages exist:

- :class:`GNPSystem` — Global Network Positioning: landmarks are embedded
  into a low-dimensional space by minimising relative embedding error
  (scipy simplex-downhill, as in the original GNP), then each host solves
  the same small optimisation against the landmark coordinates.
- :class:`LandmarkBinning` — distributed binning: each peer sorts the
  landmarks by RTT; the ordering (optionally with latency-level digits) is
  its *bin*.  Peers falling into the same bin are topologically close.
  This is the cheap technique used for topologically-aware overlay
  construction and server selection.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np
from scipy import optimize

from repro.coords.base import (
    CoordinateSystem,
    row_norms,
    validate_distance_matrix,
)
from repro.errors import ConfigurationError, CoordinateError


@dataclass(frozen=True)
class GNPConfig:
    """GNP parameters: embedding dimension and optimiser restarts."""
    dim: int = 3
    restarts: int = 2

    def __post_init__(self) -> None:
        if self.dim < 1:
            raise ConfigurationError("dim must be >= 1")
        if self.restarts < 1:
            raise ConfigurationError("restarts must be >= 1")


def _relative_error(predicted: np.ndarray, measured: np.ndarray) -> float:
    """GNP objective: sum of squared relative errors over measured pairs."""
    mask = measured > 0
    if not mask.any():
        return 0.0
    rel = (predicted[mask] - measured[mask]) / measured[mask]
    return float(np.sum(rel * rel))


class GNPSystem(CoordinateSystem):
    """GNP: landmark embedding + per-host coordinate solving."""

    def __init__(
        self,
        landmark_rtts: np.ndarray,
        config: GNPConfig | None = None,
        *,
        seed: int = 0,
    ) -> None:
        self.config = config or GNPConfig()
        self.rtts = validate_distance_matrix(landmark_rtts, name="landmark RTT matrix")
        self.m = self.rtts.shape[0]
        if self.m < self.config.dim + 1:
            raise CoordinateError(
                f"need at least dim+1={self.config.dim + 1} landmarks, got {self.m}"
            )
        self._rng = np.random.default_rng(seed)
        self.landmark_coords = self._embed_landmarks()

    def _embed_landmarks(self) -> np.ndarray:
        m, dim = self.m, self.config.dim
        iu = np.triu_indices(m, k=1)
        measured = self.rtts[iu]
        scale = float(np.median(measured[measured > 0])) if (measured > 0).any() else 1.0

        def objective(flat: np.ndarray) -> float:
            coords = flat.reshape(m, dim)
            diff = coords[:, None, :] - coords[None, :, :]
            pred = np.sqrt(np.einsum("ijk,ijk->ij", diff, diff))[iu]
            return _relative_error(pred, measured)

        best = None
        best_val = np.inf
        for _ in range(self.config.restarts):
            x0 = self._rng.normal(0.0, scale / 2.0, size=m * dim)
            res = optimize.minimize(
                objective, x0, method="Nelder-Mead",
                options={"maxiter": 4000, "fatol": 1e-8, "xatol": 1e-6},
            )
            if res.fun < best_val:
                best_val = float(res.fun)
                best = res.x
        assert best is not None
        return best.reshape(m, dim)

    def host_coordinate(self, rtt_to_landmarks: Sequence[float]) -> np.ndarray:
        """Solve the host-side optimisation against the fixed landmarks."""
        la = np.asarray(list(rtt_to_landmarks), dtype=float)
        if la.shape != (self.m,):
            raise CoordinateError(f"expected {self.m} landmark RTTs, got {la.shape}")
        if (la < 0).any():
            raise CoordinateError("landmark RTTs must be non-negative")

        def objective(x: np.ndarray) -> float:
            pred = np.linalg.norm(self.landmark_coords - x[None, :], axis=1)
            return _relative_error(pred, la)

        # start at the RTT-weighted centroid of the landmarks
        w = 1.0 / np.maximum(la, 1e-6)
        x0 = (self.landmark_coords * (w / w.sum())[:, None]).sum(axis=0)
        res = optimize.minimize(objective, x0, method="Nelder-Mead",
                                options={"maxiter": 2000})
        return res.x

    # -- CoordinateSystem over the landmarks ---------------------------------
    def coordinates(self) -> np.ndarray:
        return self.landmark_coords

    def estimate(self, i: int, j: int) -> float:
        return float(
            np.linalg.norm(self.landmark_coords[i] - self.landmark_coords[j])
        )

    def estimate_many(self, src: int, dsts: Sequence[int]) -> np.ndarray:
        """Batched :meth:`estimate` — one stacked norm over the gathered
        landmark coordinates (bit-identical to the scalar path)."""
        dst_list = [int(j) for j in dsts]
        if not dst_list:
            return np.zeros(0)
        diff = self.landmark_coords[src][None, :] - self.landmark_coords[dst_list]
        return row_norms(diff)

    @staticmethod
    def distance(x: np.ndarray, y: np.ndarray) -> float:
        return float(np.linalg.norm(np.asarray(x) - np.asarray(y)))


class LandmarkBinning:
    """Ratnasamy-style distributed binning.

    ``bin_of`` maps a peer's landmark RTT vector to a hashable bin id:
    the landmark ordering plus a latency-level digit per landmark
    (levels split at the given millisecond thresholds).
    """

    def __init__(
        self, n_landmarks: int, level_thresholds_ms: Sequence[float] = (100.0, 200.0)
    ) -> None:
        if n_landmarks < 1:
            raise ConfigurationError("need at least one landmark")
        self.n_landmarks = n_landmarks
        self.thresholds = tuple(sorted(level_thresholds_ms))

    def bin_of(self, rtt_to_landmarks: Sequence[float]) -> tuple:
        la = np.asarray(list(rtt_to_landmarks), dtype=float)
        if la.shape != (self.n_landmarks,):
            raise CoordinateError(
                f"expected {self.n_landmarks} landmark RTTs, got {la.shape}"
            )
        order = tuple(int(i) for i in np.argsort(la, kind="stable"))
        levels = tuple(int(np.searchsorted(self.thresholds, v)) for v in la)
        return order + levels

    def same_bin(self, rtts_a: Sequence[float], rtts_b: Sequence[float]) -> bool:
        return self.bin_of(rtts_a) == self.bin_of(rtts_b)

    def bin_similarity(self, rtts_a: Sequence[float], rtts_b: Sequence[float]) -> float:
        """Fraction of matching positions between the two bin vectors —
        a graded proximity signal (1.0 = identical bins)."""
        a = self.bin_of(rtts_a)
        b = self.bin_of(rtts_b)
        return sum(x == y for x, y in zip(a, b)) / len(a)
