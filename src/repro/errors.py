"""Exception hierarchy for the :mod:`repro` package.

All library errors derive from :class:`ReproError` so callers can catch a
single base class.  Errors are raised eagerly on misuse (bad configuration,
out-of-range identifiers) rather than propagating NaNs or silent defaults.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError):
    """A configuration object is internally inconsistent or out of range."""


class TopologyError(ReproError):
    """The underlay topology is malformed or a lookup refers to an unknown
    AS/host/link."""


class RoutingError(ReproError):
    """No valley-free route exists between two autonomous systems."""


class SimulationError(ReproError):
    """The discrete-event engine was used incorrectly (e.g. scheduling in
    the past, running a finished simulation)."""


class OverlayError(ReproError):
    """An overlay protocol invariant was violated or a peer lookup failed."""


class CollectionError(ReproError):
    """An underlay-information collection service failed or was queried for
    an unknown subject."""


class ObservabilityError(ReproError):
    """A metric or tracer was declared or used inconsistently (duplicate
    registration with a different type, bad label set, invalid name)."""


class FaultError(ReproError):
    """A fault schedule or injector was configured inconsistently (bad
    window, unknown fault kind, AS-scoped fault without an AS resolver)."""


class RunnerError(ReproError):
    """A parallel sweep worker failed, died, or returned an unusable
    result (the original traceback is embedded in the message)."""


class CoordinateError(ReproError):
    """A network coordinate system was given invalid input (e.g. a
    non-square distance matrix, negative delays)."""
