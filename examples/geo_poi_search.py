"""Geolocation-aware overlay: points of interest and emergency dispatch
(§2.4, Globase.KOM [19], EchoP2P [10]).

Peers join a zone-tree overlay at the position their geolocation source
reports.  We compare GPS (metre accuracy, 60% coverage) against
IP-to-location mapping (full coverage, ~150 km error) on the same query
workload: "restaurants in this area" and "nearest emergency responders to
a caller".

Run:  python examples/geo_poi_search.py
"""

import numpy as np

from repro import Underlay, UnderlayConfig
from repro.collection import GPSService, IPToLocationMapping
from repro.overlay.geo import (
    GlobaseOverlay,
    POIDirectory,
    PointOfInterest,
    Rect,
    emergency_dispatch,
)
from repro.underlay.geometry import Position


def build(underlay, position_source, name):
    overlay = GlobaseOverlay(underlay, zone_capacity=8,
                             position_source=position_source)
    joined = overlay.join_all()
    print(f"{name}: {joined}/{len(underlay.hosts)} peers joined, "
          f"{overlay.zone_count()} zones, "
          f"co-member spread {overlay.geographic_neighbor_coherence():.0f} km")
    return overlay


def main() -> None:
    underlay = Underlay.generate(UnderlayConfig(n_hosts=200, seed=31))
    gps = GPSService(underlay, availability=0.6, error_m=15.0)
    ipmap = IPToLocationMapping(underlay, error_km=150.0)

    overlays = {
        "GPS": build(underlay, gps.position_of, "GPS"),
        "IP-to-location": build(underlay, ipmap.lookup, "IP-to-location"),
    }

    # a downtown area query
    area = Rect(1200.0, 1200.0, 2800.0, 2800.0)
    print("\narea query recall (who is really in the area vs who we find):")
    for name, overlay in overlays.items():
        print(f"  {name:16s} recall={overlay.recall_of_area_query(area):.1%} "
              f"(visited {overlay.stats.mean_area_visits:.0f} zone nodes/query)")

    # POI directory + emergency dispatch on the GPS overlay
    overlay = overlays["GPS"]
    directory = POIDirectory(overlay)
    rng = np.random.default_rng(5)
    members = list(overlay.believed)
    for hid in members[:30]:
        directory.register(PointOfInterest(hid, "restaurant", f"bistro-{hid}"))
    for hid in members[30:50]:
        directory.register(PointOfInterest(hid, "emergency", f"unit-{hid}"))

    caller = Position(2000.0, 2100.0)
    print(f"\nemergency call at ({caller.x:.0f}, {caller.y:.0f}) km:")
    for poi in emergency_dispatch(directory, caller, k=3):
        pos = overlay.believed[poi.host_id]
        print(f"  dispatch {poi.name:10s} at ({pos.x:7.1f}, {pos.y:7.1f}), "
              f"{pos.distance_to(caller):6.1f} km away")

    nearest = directory.find_nearest(caller, "restaurant", k=3)
    print("\nnearest restaurants:",
          ", ".join(f"{p.name} ({overlay.believed[p.host_id].distance_to(caller):.0f} km)"
                    for p in nearest))


if __name__ == "__main__":
    main()
