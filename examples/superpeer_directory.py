"""Resource-aware super-peer election for a hybrid directory overlay
(§2.3, SkyEye.KOM [11], bandwidth-aware roles [6]).

The SkyEye information-management overlay aggregates every peer's
capacity vector up a k-ary tree; the root view elects the super-peers.
We compare against random election on search latency, super-peer session
stability and upstream capacity — the "appropriate nodes take the right
roles" claim, measured.

Run:  python examples/superpeer_directory.py
"""

from repro import Underlay, UnderlayConfig
from repro.collection import SkyEyeOverlay
from repro.overlay.superpeer import ElectionPolicy, SuperPeerOverlay


def main() -> None:
    underlay = Underlay.generate(UnderlayConfig(n_hosts=240, seed=17))

    # the collection step: one SkyEye aggregation round
    sky = SkyEyeOverlay(underlay.host_ids(), branching=4, top_k=24)
    for h in underlay.hosts:
        sky.report(h.host_id, h.resources)
    view = sky.run_aggregation_round()
    print(
        f"SkyEye root view after one round: {view.count} peers, "
        f"mean upstream {view.mean('bandwidth_up_kbps'):,.0f} kbps, "
        f"tree depth {sky.depth()}, "
        f"{sky.overhead.messages} report messages"
    )

    print(f"\n{'election':10s} {'search lat':>11s} {'SP session':>11s} "
          f"{'SP upstream':>12s} {'max load':>9s}")
    for policy in (ElectionPolicy.RANDOM, ElectionPolicy.CAPACITY):
        overlay = SuperPeerOverlay(
            underlay, policy=policy, superpeer_fraction=0.1,
            max_leaves_per_superpeer=30, rng=3,
        )
        overlay.elect(use_skyeye=(policy is ElectionPolicy.CAPACITY))
        overlay.attach_leaves()
        rep = overlay.report(n_search_samples=400)
        print(
            f"{policy.value:10s} {rep.mean_search_latency_ms:9.0f}ms "
            f"{rep.mean_superpeer_session_h:10.1f}h "
            f"{rep.mean_superpeer_up_kbps:10,.0f}k {rep.max_leaf_load:9d}"
        )
    print(
        "\ncapacity election yields stabler, stronger super-peers at "
        "equal structural load — the §2.3 peer-resources payoff"
    )


if __name__ == "__main__":
    main()
