"""ISP-friendly file sharing: biased neighbor selection in a BitTorrent
swarm, and what it does to the ISP's transit bill (§2.1, Figure 2, [3]).

Three tracker policies distribute the same torrent to the same peers:
random (vanilla), Bindal-style biased, and oracle-ranked.  For each we
report download times (the users' view) and transit traffic + the monthly
bill at sampled-peak pricing (the ISP's view).

Run:  python examples/isp_friendly_swarm.py
"""

from repro import Underlay, UnderlayConfig
from repro.collection import ISPOracle
from repro.overlay.bittorrent import (
    SwarmConfig,
    SwarmSimulation,
    Torrent,
    Tracker,
    TrackerPolicy,
)
from repro.underlay import CostModel
from repro.underlay.topology import TopologyConfig


def run_swarm(underlay: Underlay, policy: TrackerPolicy):
    torrent = Torrent(torrent_id=1, n_pieces=96)  # ~24 MB file
    tracker = Tracker(
        underlay,
        policy=policy,
        peer_list_size=30,
        external_quota=2,
        oracle=ISPOracle(underlay) if policy is TrackerPolicy.ORACLE else None,
        rng=7,
    )
    swarm = SwarmSimulation(underlay, torrent, tracker, config=SwarmConfig(), rng=8)
    ids = underlay.host_ids()
    swarm.populate(leechers=ids[3:], seeds=ids[:3])
    report = swarm.run(max_time_s=2400.0, dt=2.0)
    return swarm, report


def main() -> None:
    underlay = Underlay.generate(
        UnderlayConfig(
            topology=TopologyConfig(n_tier1=3, n_tier2=8, n_stub=15, n_regions=4),
            n_hosts=105,
            seed=11,
        )
    )
    cost = CostModel()
    print(f"{'policy':10s} {'done':>7s} {'median dl':>10s} "
          f"{'intra-AS':>9s} {'transit':>8s} {'ISP bill/mo':>12s}")
    baseline_bill = None
    for policy in (TrackerPolicy.RANDOM, TrackerPolicy.BIASED, TrackerPolicy.ORACLE):
        swarm, rep = run_swarm(underlay, policy)
        # bill the largest customer AS for its share of the swarm's transit
        # bytes, as if the run were a month's steady workload
        worst_as_bytes = max(swarm.paid_transit.values(), default=0.0)
        mbps = worst_as_bytes * 8.0 / 1e6 / max(rep.duration_s, 1.0)
        bill = cost.transit_monthly_cost(mbps * 100)  # scale to a real swarm
        if baseline_bill is None:
            baseline_bill = bill
        print(
            f"{policy.value:10s} {rep.completed:3d}/{rep.total_leechers:3d} "
            f"{rep.median_download_time_s:9.0f}s "
            f"{rep.intra_as_fraction:8.1%} {rep.transit_fraction:7.1%} "
            f"${bill:10,.0f} ({bill / baseline_bill:.0%} of random)"
        )
    print(
        f"\npeering becomes cheaper than transit above "
        f"{cost.crossover_mbps():,.0f} Mbps — locality pushes P2P bytes "
        f"onto links with zero marginal cost"
    )


if __name__ == "__main__":
    main()
