"""Latency-aware overlay for real-time communication (§2.2).

A VoIP relay overlay is built twice over the same underlay: once with
random neighbor selection and once latency-aware, using *Vivaldi
coordinates* learned from a few RTT samples per node (§3.2 prediction —
no full-mesh measurement).  Calls between random peer pairs are routed
over the overlay; we report mouth-to-ear delay against the ITU-T G.114
guideline (150 ms one-way).

Run:  python examples/latency_aware_voip.py
"""

import networkx as nx
import numpy as np

from repro import Underlay, UnderlayConfig
from repro.coords import VivaldiConfig, VivaldiSystem
from repro.core import LatencySelection, RandomSelection

ITU_BUDGET_MS = 150.0


def build_overlay(underlay, selector, k=5, pool=25, seed=3):
    rng = np.random.default_rng(seed)
    ids = underlay.host_ids()
    g = nx.Graph()
    g.add_nodes_from(ids)
    for h in ids:
        others = [x for x in ids if x != h]
        picks = rng.choice(len(others), size=pool, replace=False)
        for nb in selector.select(h, [others[int(i)] for i in picks], k):
            g.add_edge(h, nb)
    return g


def call_quality(underlay, graph, n_calls=300, seed=4):
    rng = np.random.default_rng(seed)
    ids = underlay.host_ids()
    weighted = graph.copy()
    for a, b in weighted.edges():
        weighted[a][b]["delay"] = underlay.one_way_delay(a, b)
    delays = []
    for _ in range(n_calls):
        a, b = rng.choice(len(ids), size=2, replace=False)
        try:
            d = nx.shortest_path_length(
                weighted, ids[int(a)], ids[int(b)], weight="delay"
            )
        except nx.NetworkXNoPath:
            continue
        delays.append(d)
    delays = np.array(delays)
    return {
        "median_ms": float(np.median(delays)),
        "p95_ms": float(np.percentile(delays, 95)),
        "within_itu": float(np.mean(delays <= ITU_BUDGET_MS)),
    }


def main() -> None:
    underlay = Underlay.generate(UnderlayConfig(n_hosts=120, seed=9))

    # learn coordinates from sparse sampling (~48 probes per node instead
    # of 119 for a full mesh, and they keep improving as the app runs)
    rtt = underlay.rtt_matrix()
    vivaldi = VivaldiSystem(rtt, VivaldiConfig(dim=3, use_height=True), rng=2)
    vivaldi.run(rounds=30, neighbors_per_round=4)
    idx = {hid: i for i, hid in enumerate(underlay.host_ids())}

    def predicted_rtt(a: int, b: int) -> float:
        return vivaldi.estimate(idx[a], idx[b])

    def predicted_rtt_batch(a: int, candidates) -> np.ndarray:
        # one vectorised coordinate evaluation per candidate list
        # (bit-identical to predicted_rtt entry by entry)
        return vivaldi.estimate_many(idx[a], [idx[c] for c in candidates])

    arms = {
        "random": RandomSelection(rng=5),
        "latency-aware (Vivaldi)": LatencySelection(
            predicted_rtt, batch_predictor=predicted_rtt_batch
        ),
    }
    print(f"{'overlay':26s} {'median':>9s} {'p95':>9s} {'<=150ms':>9s}")
    for name, selector in arms.items():
        graph = build_overlay(underlay, selector)
        q = call_quality(underlay, graph)
        print(
            f"{name:26s} {q['median_ms']:8.0f}ms {q['p95_ms']:8.0f}ms "
            f"{q['within_itu']:8.1%}"
        )
    print(
        f"\ncoordinate quality: {vivaldi.samples_used} samples total, "
        f"median relative error "
        f"{np.median(np.abs(vivaldi.estimated_matrix() - rtt)[rtt > 0] / rtt[rtt > 0]):.1%}"
    )


if __name__ == "__main__":
    main()
