"""P2P-TV: resource-aware chunk scheduling under tight capacity
(§2.3 / da Silva et al. [6]).

A live stream is distributed through a mesh of 60 viewers while the
source injects only three copies of each chunk.  As the stream bitrate
approaches the swarm's aggregate upload capacity, random scheduling
starts missing playback deadlines; bandwidth-aware scheduling — feed the
strongest peers first so they amplify the swarm — keeps the stream
watchable at bitrates where random scheduling has already collapsed.

Run:  python examples/p2p_tv.py
"""

from repro import Underlay, UnderlayConfig
from repro.overlay.streaming import (
    SchedulerPolicy,
    StreamConfig,
    StreamingSwarm,
)


def main() -> None:
    underlay = Underlay.generate(UnderlayConfig(n_hosts=80, seed=14))
    ids = underlay.host_ids()
    source = max(
        underlay.hosts, key=lambda h: h.resources.bandwidth_up_kbps
    ).host_id
    viewers = [i for i in ids if i != source][:60]
    mean_up = sum(
        underlay.host(v).resources.bandwidth_up_kbps for v in viewers
    ) / len(viewers)
    print(f"60 viewers, mean upstream {mean_up:,.0f} kbps, "
          f"source injects 3 copies/chunk\n")
    print(f"{'bitrate':>8s}  {'scheduler':16s} {'continuity':>10s} "
          f"{'worst 10%':>10s} {'startup':>8s}")
    for bitrate in (600.0, 1200.0, 1800.0, 2400.0):
        for policy in (SchedulerPolicy.RANDOM, SchedulerPolicy.BANDWIDTH_AWARE):
            swarm = StreamingSwarm(
                underlay, source, viewers,
                config=StreamConfig(bitrate_kbps=bitrate, source_copies=3),
                policy=policy, rng=3,
            )
            rep = swarm.run(150)
            print(
                f"{bitrate:7.0f}k  {policy.value:16s} "
                f"{rep.mean_continuity:9.1%} {rep.p10_continuity:9.1%} "
                f"{rep.mean_startup_intervals:7.1f}s"
            )
        print()
    print("the capable peers' upstream is the swarm's real capacity — "
          "knowing peer resources (§2.3) is what unlocks it")


if __name__ == "__main__":
    main()
