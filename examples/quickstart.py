"""Quickstart: build an underlay, register collection services, and let the
underlay-awareness framework pick neighbours for different applications.

Run:  python examples/quickstart.py
"""

from repro import Underlay, UnderlayConfig, UnderlayAwarenessFramework
from repro.collection import GPSService, ISPOracle, SkyEyeOverlay
from repro.core import BUILTIN_PROFILES


def main() -> None:
    # 1. A synthetic Internet: tiered AS topology + 100 heterogeneous hosts.
    underlay = Underlay.generate(UnderlayConfig(n_hosts=100, seed=42))
    print(
        f"underlay: {underlay.topology.n_ases} ASes "
        f"({len(underlay.topology.transit_links())} transit / "
        f"{len(underlay.topology.peering_links())} peering links), "
        f"{len(underlay.hosts)} hosts"
    )

    # 2. Collection services — one per information type (Figure 3).
    fw = UnderlayAwarenessFramework(underlay)
    fw.use_oracle(ISPOracle(underlay))                 # ISP-location
    fw.use_true_latency()                              # latency (control)
    fw.use_gps(GPSService(underlay, availability=1.0))  # geolocation
    sky = SkyEyeOverlay(underlay.host_ids())           # peer resources
    for h in underlay.hosts:
        sky.report(h.host_id, h.resources)
    sky.run_aggregation_round()
    fw.use_skyeye(sky)

    # 3. Ask the framework for neighbours under each application profile.
    ids = underlay.host_ids()
    me, candidates = ids[0], ids[1:]
    my_asn = underlay.asn_of(me)
    print(f"\npeer {me} (AS{my_asn}) selecting 5 neighbours per profile:")
    for profile in BUILTIN_PROFILES:
        picked = fw.select_neighbors(me, candidates, k=5, profile=profile)
        described = [
            f"{p}(AS{underlay.asn_of(p)},"
            f" {2 * underlay.one_way_delay(me, p):.0f}ms rtt)"
            for p in picked
        ]
        print(f"  {profile.name:28s} -> {', '.join(described)}")

    # 4. Awareness is not free: the framework tracks collection overhead.
    print("\ncollection overhead:")
    for service, counter in fw.overhead_report().items():
        print(
            f"  {service:20s} queries={counter.queries:4d} "
            f"bytes={counter.bytes_on_wire}"
        )


if __name__ == "__main__":
    main()
