"""TESTLAB bench: the 45-node, 5-AS controlled experiments of [1] §5."""

from repro.experiments import TESTLAB_TOPOLOGIES, print_table, run_testlab


def test_testlab_all_topologies(once):
    result = once(run_testlab, seed=5)
    print_table(result)
    by_key = {
        (r["topology"], r["scheme"], r["policy"]): r for r in result.rows
    }
    assert len(by_key) == len(TESTLAB_TOPOLOGIES) * 2 * 2
    for kind in TESTLAB_TOPOLOGIES:
        for scheme in ("uniform", "variable"):
            unb = by_key[(kind, scheme, "unbiased")]
            bia = by_key[(kind, scheme, "biased")]
            # the paper's headline: no additional search failures under bias
            assert unb["success"] == 1.0
            assert bia["success"] == 1.0
            # oracle reduces query traffic — at 45 nodes the flood
            # saturates the mesh, so allow a small tolerance (the paper's
            # own testlab reductions were modest: 1989 vs 1973 on star)
            assert bia["query"] <= 1.05 * unb["query"]
            # ... while tripling connection locality
            assert bia["intra_as_links"] > 2 * unb["intra_as_links"]
