"""Service-layer benchmark: the saturation-knee sweep.

``test_service_artifact`` bootstraps one Kademlia population through the
service control plane and drives it open-loop at increasing offered
load, retrieve-only mix, with a per-origin concurrency gate of 1 — so
the population has a well-defined service capacity and offered load
beyond it turns into client queue wait.  Latency is measured from the
*scheduled arrival* (coordinated-omission-free), so the sweep exhibits
the textbook knee: p99 flat while offered < capacity, then rising
sharply once the gate queues grow.  Offered rate vs
p50/p95/p99/throughput for every step is recorded in
``BENCH_service.json`` at the repo root, together with the driver's
wall-clock op rate (the quantity ``check_service_floor.py`` guards).

The headline claim asserted on every run: p99 at the highest offered
rate is >= 5x the p99 at the lowest (the knee exists and the sweep
straddles it).
"""

from __future__ import annotations

import json
import pathlib
import time

from repro.service import Bootstrapper, ServiceConfig

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
N_HOSTS = 16
SEED = 13
SWEEP_RATES = (20.0, 60.0, 120.0, 240.0, 480.0)
DURATION_MS = 15_000.0
DRAIN_MS = 120_000.0
HEADLINE_KNEE_RATIO = 5.0


def _boot() -> Bootstrapper:
    boot = Bootstrapper(
        ServiceConfig(
            overlay="kademlia", n_hosts=N_HOSTS, seed=SEED,
            settle_ms=20_000.0, n_seed_keys=24,
        )
    )
    boot.build()
    return boot


def _drive(boot: Bootstrapper, rate: float) -> tuple[dict, float]:
    """One knee step: retrieve-only open-loop drive, gated at one
    in-flight op per origin.  Returns (report dict, wall seconds)."""
    t0 = time.perf_counter()
    report = boot.drive_sync(
        process="poisson",
        rate_per_s=rate,
        duration_ms=DURATION_MS,
        drain_ms=DRAIN_MS,
        timeout_ms=None,  # unbounded wait: the queue delay IS the signal
        concurrency_per_origin=1,
    )
    wall = time.perf_counter() - t0
    return report.as_dict(), wall


def test_service_artifact():
    """Record the offered-load vs p99 sweep in BENCH_service.json and
    hold the headline: the saturation knee is visible (>= 5x p99)."""
    boot = _boot()
    # retrieve-only mix: near-constant service time makes the knee sharp
    boot.default_mix = lambda: [boot.ops.retrieve_spec()]

    rows = []
    wall_ops = wall_s = 0.0
    for rate in SWEEP_RATES:
        rep, wall = _drive(boot, rate)
        rows.append({
            "rate_per_s": rate,
            "offered": rep["offered"],
            "offered_per_s": rep["offered_per_s"],
            "throughput_per_s": rep["throughput_per_s"],
            "success_rate": rep["success_rate"],
            "unfinished": rep["unfinished"],
            "p50": rep["latency_ms"]["p50"],
            "p95": rep["latency_ms"]["p95"],
            "p99": rep["latency_ms"]["p99"],
            "wall_s": round(wall, 3),
        })
        wall_ops += rep["issued"]
        wall_s += wall
    boot.stop_sync()

    knee_ratio = round(rows[-1]["p99"] / rows[0]["p99"], 2)
    artifact = {
        "workload": {
            "overlay": "kademlia",
            "n_hosts": N_HOSTS,
            "mix": "retrieve-only",
            "concurrency_per_origin": 1,
            "duration_ms": DURATION_MS,
            "note": "open-loop Poisson arrivals; latency measured from "
            "scheduled arrival (client queue wait included)",
        },
        "knee": rows,
        "driver_wall": {
            "ops": int(wall_ops),
            "wall_s": round(wall_s, 3),
            "ops_per_sec_wall": round(wall_ops / wall_s, 1),
        },
        "headline": {
            "p99_ratio_max_over_min_rate": knee_ratio,
            "claim": "p99 at the highest offered rate >= 5x the p99 at "
            "the lowest (the sweep straddles the saturation knee)",
        },
    }
    (REPO_ROOT / "BENCH_service.json").write_text(
        json.dumps(artifact, indent=2) + "\n"
    )

    # below capacity the service keeps up ...
    assert rows[0]["success_rate"] == 1.0
    assert rows[0]["throughput_per_s"] >= 0.9 * rows[0]["offered_per_s"]
    # ... beyond it the tail blows up: the knee is visible
    assert knee_ratio >= HEADLINE_KNEE_RATIO, artifact["headline"]


def test_arrival_generation_rate(benchmark):
    """Arrival-schedule generation itself must be cheap: one 10^5-event
    Poisson schedule per call."""
    from repro.service import PoissonArrivals

    proc = PoissonArrivals(1_000.0, rng=1)
    times = benchmark(proc.times, 100_000.0)
    assert len(times) > 50_000
