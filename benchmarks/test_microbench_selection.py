"""Micro-benchmarks of the selection engine (batch ranking + top-k).

``test_selection_artifact`` times the batched rank/top-k paths against
the retained scalar reference paths (``rank_scalar`` /
``rank_reference`` — the exact per-candidate implementations the batch
engine replaced) on a warm substrate and records the numbers in
``BENCH_selection.json`` at the repo root.  The headline claim — >= 3x
on 1000-candidate latency ranking — is asserted on every run, so the
speedup is measured, not remembered.
"""

import json
import pathlib
import time

import numpy as np

from repro.collection.oracle import ISPOracle
from repro.core.score_cache import CachedSelection, ScoreCache
from repro.core.selection import LatencySelection
from repro.underlay import Underlay, UnderlayConfig

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

_UNDERLAY = None


def _underlay() -> Underlay:
    """Warm shared substrate: 1100 hosts, latency matrix prebuilt."""
    global _UNDERLAY
    if _UNDERLAY is None:
        _UNDERLAY = Underlay.generate(
            UnderlayConfig(n_hosts=1100, seed=9)
        ).precompute()
    return _UNDERLAY


def _candidates(underlay, n, seed=0):
    rng = np.random.default_rng(seed)
    ids = underlay.host_ids()
    cand = [int(c) for c in rng.choice(ids[1:], size=n, replace=False)]
    return ids[0], cand


def _best_of(fn, repeats=5):
    best = np.inf
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def test_latency_rank_batch_1000(benchmark):
    sel = LatencySelection.from_underlay(_underlay())
    querier, cand = _candidates(_underlay(), 1000)

    out = benchmark(sel.rank, querier, cand)
    assert len(out) == 1000


def test_latency_top1_1000(benchmark):
    sel = LatencySelection.from_underlay(_underlay())
    querier, cand = _candidates(_underlay(), 1000)

    out = benchmark(sel.top_k, querier, cand, 1)
    assert out == sel.rank(querier, cand)[:1]


def test_oracle_rank_batch_1000(benchmark):
    underlay = _underlay()
    oracle = ISPOracle(underlay)
    querier, cand = _candidates(underlay, 1000)

    out = benchmark(oracle.rank, querier, cand)
    assert len(out) == 1000


def test_score_cache_warm_hit(benchmark):
    underlay = _underlay()
    cached = CachedSelection(
        LatencySelection.from_underlay(underlay), ScoreCache()
    )
    querier, cand = _candidates(underlay, 1000)
    cold = cached.rank(querier, cand)

    warm = benchmark(cached.rank, querier, cand)
    assert warm == cold
    assert cached.cache.hits >= 1 and cached.cache.misses == 1


def test_selection_artifact():
    """Record scalar-vs-batch timings in BENCH_selection.json and hold
    the headline claim: >= 3x on 1000-candidate latency ranking."""
    underlay = _underlay()
    artifact = {}

    sel = LatencySelection.from_underlay(underlay)
    for n in (100, 1000):
        querier, cand = _candidates(underlay, n)
        # comparing like with like: both paths produce the same ordering
        assert sel.rank(querier, cand) == sel.rank_scalar(querier, cand)
        scalar_s = _best_of(lambda: sel.rank_scalar(querier, cand), repeats=9)
        batch_s = _best_of(lambda: sel.rank(querier, cand), repeats=9)
        artifact[f"latency_rank_n{n}"] = {
            "scalar_ms": round(scalar_s * 1e3, 4),
            "batch_ms": round(batch_s * 1e3, 4),
            "speedup": round(scalar_s / batch_s, 2),
        }

    querier, cand = _candidates(underlay, 1000)
    full_s = _best_of(lambda: sel.rank(querier, cand))
    top1_s = _best_of(lambda: sel.top_k(querier, cand, 1))
    artifact["top_k_n1000"] = {
        "full_sort_ms": round(full_s * 1e3, 4),
        "top1_ms": round(top1_s * 1e3, 4),
        "full_over_top1": round(full_s / top1_s, 2),
    }

    oracle = ISPOracle(underlay)
    assert oracle.rank(querier, cand) == oracle.rank_reference(querier, cand)
    oracle_ref_s = _best_of(lambda: oracle.rank_reference(querier, cand))
    oracle_batch_s = _best_of(lambda: oracle.rank(querier, cand))
    artifact["oracle_rank_n1000"] = {
        "scalar_ms": round(oracle_ref_s * 1e3, 4),
        "batch_ms": round(oracle_batch_s * 1e3, 4),
        "speedup": round(oracle_ref_s / oracle_batch_s, 2),
    }

    cached = CachedSelection(sel, ScoreCache())
    cached.rank(querier, cand)  # cold fill
    warm_s = _best_of(lambda: cached.rank(querier, cand), repeats=10)
    artifact["score_cache_n1000"] = {
        "warm_hit_ms": round(warm_s * 1e3, 6),
        "uncached_ms": round(batch_s * 1e3, 4),
    }

    (REPO_ROOT / "BENCH_selection.json").write_text(
        json.dumps(artifact, indent=2) + "\n"
    )
    assert artifact["latency_rank_n1000"]["speedup"] >= 3.0, artifact
    assert artifact["top_k_n1000"]["full_over_top1"] >= 1.0, artifact
