"""CI guard: fail when substrate generation regresses by >3x.

Times ``Underlay.generate(UnderlayConfig())`` (best of N runs) and
compares it against the loose floor recorded in ``substrate_floor.json``.
The 3x headroom means only a real complexity regression trips it —
normal machine-to-machine noise does not.

Usage:  PYTHONPATH=src python benchmarks/check_substrate_floor.py
"""

from __future__ import annotations

import json
import pathlib
import sys
import time

from repro.underlay import Underlay, UnderlayConfig

HERE = pathlib.Path(__file__).resolve().parent
REGRESSION_FACTOR = 3.0
REPEATS = 7


def main() -> int:
    floor_ms = json.loads(
        (HERE / "substrate_floor.json").read_text()
    )["underlay_generate_default_ms"]

    Underlay.generate(UnderlayConfig())  # warm caches/imports
    best = min(
        _timed(lambda: Underlay.generate(UnderlayConfig()))
        for _ in range(REPEATS)
    )
    best_ms = best * 1e3
    limit_ms = REGRESSION_FACTOR * floor_ms
    verdict = "OK" if best_ms <= limit_ms else "REGRESSION"
    print(
        f"Underlay.generate(default): {best_ms:.2f} ms "
        f"(floor {floor_ms:.2f} ms, limit {limit_ms:.2f} ms) -> {verdict}"
    )
    return 0 if best_ms <= limit_ms else 1


def _timed(fn) -> float:
    t0 = time.perf_counter()
    fn()
    return time.perf_counter() - t0


if __name__ == "__main__":
    sys.exit(main())
