"""Micro-benchmarks of the message data plane (PR 9).

``test_bus_artifact`` writes ``BENCH_bus.json`` at the repo root with
three sections:

- **per_send**: wall cost of the bus send fast path over a repeated-pair
  fan-out workload (protocol traffic revisits a bounded neighbour set),
  with delays served by the streaming kernel's LRU pair memo, against
  the retained seed scalar path
  (:meth:`~repro.underlay.latency.LatencyModel.one_way_delay_reference`,
  which constructs one ``np.random.default_rng`` per message for the
  jitter draw).  The headline claim — >= 3x sends/sec over the seed
  reference — is asserted on every run.
- **fig5_smoke**: end-to-end events/sec of the instrumented FIG5
  reproduction (the full Gnutella overlay driving the bus), so the
  artifact records a whole-experiment number, not just the hot loop.
- **stream_rss**: peak RSS of a forked child serving 10^5-host delay
  rows through the streaming backend (the full matrix would be ~75 GiB).
"""

from __future__ import annotations

import json
import multiprocessing
import pathlib
import resource
import time

from repro import obs
from repro.experiments import run_fig5
from repro.sim import MessageBus, Simulation
from repro.underlay import Underlay, UnderlayConfig

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

N_HOSTS = 300
FAN_OUT = 64        # neighbour-set size each source revisits
ROUNDS = 120        # fan-out rounds per measurement
REPEATS = 5         # best-of repeats per arm


class _ReferenceLatency:
    """LatencyProvider adapter over the retained seed scalar path."""

    def __init__(self, underlay: Underlay) -> None:
        self._model = underlay.latency
        self._host = underlay.host

    def one_way_delay(self, src, dst) -> float:
        return self._model.one_way_delay_reference(self._host(src), self._host(dst))


def _fanout_workload(bus: MessageBus, sim: Simulation, ids) -> float:
    """Time ROUNDS fan-outs of FAN_OUT sends from one source (seconds),
    draining the event heap outside the timed region."""
    src = ids[0]
    dsts = ids[1 : FAN_OUT + 1]
    bus.send_many(src, dsts, "PING")  # warm memo/cells/imports
    sim.run()
    t0 = time.perf_counter()
    for _ in range(ROUNDS):
        bus.send_many(src, dsts, "PING")
    elapsed = time.perf_counter() - t0
    sim.run()
    return elapsed


def _per_send_section(underlay: Underlay) -> dict:
    ids = underlay.host_ids()
    n_sends = ROUNDS * FAN_OUT

    def measure(latency) -> float:
        sim = Simulation()
        bus = MessageBus(sim, latency)
        for h in ids[: FAN_OUT + 1]:
            bus.register(h, lambda m: None)
        return min(_fanout_workload(bus, sim, ids) for _ in range(REPEATS))

    stream_s = measure(underlay)  # stream backend + pair memo
    reference_s = measure(_ReferenceLatency(underlay))
    memo = underlay.delay_kernel.memo_info()
    return {
        "n_sends": n_sends,
        "fan_out": FAN_OUT,
        "stream_us_per_send": round(stream_s / n_sends * 1e6, 3),
        "reference_us_per_send": round(reference_s / n_sends * 1e6, 3),
        "stream_sends_per_sec": round(n_sends / stream_s),
        "reference_sends_per_sec": round(n_sends / reference_s),
        "memo": {"hits": memo.hits, "misses": memo.misses},
    }


def _fig5_smoke_section() -> dict:
    t0 = time.perf_counter()
    with obs.observe() as session:
        run_fig5(n_hosts=60, cache_fill=40, seed=11)
    elapsed = time.perf_counter() - t0
    return {
        "trace_events": session.tracer.emitted,
        "elapsed_s": round(elapsed, 3),
        "events_per_sec": round(session.tracer.emitted / elapsed),
    }


def _stream_rss_probe(n_hosts: int, tx) -> None:
    underlay = Underlay.generate(UnderlayConfig(n_hosts=n_hosts, seed=17))
    kernel = underlay.delay_kernel
    cols = list(range(0, n_hosts, max(1, n_hosts // 4096)))[:4096]
    for row in (0, n_hosts // 2, n_hosts - 1):
        kernel.delay_row(row, cols)
    tx.send(
        {
            "n_hosts": n_hosts,
            "backend": underlay.delay_backend,
            "kernel_mb": round(kernel.memory_bytes() / 2**20, 2),
            "peak_rss_mb": round(
                resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024, 1
            ),
            "matrix_would_need_gb": round(n_hosts * n_hosts * 8 / 2**30, 1),
        }
    )
    tx.close()


def _stream_rss_section(n_hosts: int = 100_000) -> dict:
    ctx = multiprocessing.get_context("fork")
    rx, tx = ctx.Pipe(duplex=False)
    proc = ctx.Process(target=_stream_rss_probe, args=(n_hosts, tx))
    proc.start()
    result = rx.recv()
    proc.join()
    assert proc.exitcode == 0
    return result


def test_bus_artifact():
    """Record the data-plane numbers in BENCH_bus.json and hold the
    headline claim: the stream+memo send path sustains >= 3x the
    sends/sec of the retained seed reference."""
    underlay = Underlay.generate(
        UnderlayConfig(n_hosts=N_HOSTS, seed=23, delay_backend="stream")
    )
    artifact = {
        "per_send": _per_send_section(underlay),
        "fig5_smoke": _fig5_smoke_section(),
        "stream_rss": _stream_rss_section(),
    }
    per_send = artifact["per_send"]
    speedup = (
        per_send["stream_sends_per_sec"] / per_send["reference_sends_per_sec"]
    )
    artifact["headline"] = {
        "per_send_speedup": round(speedup, 2),
        "claim": "stream+memo bus sends >= 3x the seed per-pair-RNG path",
    }
    (REPO_ROOT / "BENCH_bus.json").write_text(json.dumps(artifact, indent=2) + "\n")

    assert speedup >= 3.0, artifact["headline"]
    assert artifact["stream_rss"]["backend"] == "stream"
    assert artifact["stream_rss"]["peak_rss_mb"] < 2048, artifact["stream_rss"]
    assert artifact["fig5_smoke"]["trace_events"] > 0
