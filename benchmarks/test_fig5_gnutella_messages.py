"""FIG5 bench: the Gnutella message-count table and traffic localisation.

Paper reference values (millions of messages, their 10⁴-node network):

    kind       unbiased  cache100  cache1000
    Ping       7.6       6.1       4.0
    Pong       75.5      59.0      39.1
    Query      6.3       4.0       2.3
    QueryHit   3.5       2.9       1.9

and intra-AS file exchange: 6.5% → 7.3%/10.02% → 40.57%.

Our absolute counts differ (hundreds of peers, not tens of thousands);
the asserted shape is the paper's: biasing cuts Query/Pong traffic, a
larger candidate list cuts more, and consulting the oracle again at the
file-exchange stage multiplies intra-AS downloads severalfold.
"""

from repro.experiments import print_table, run_fig5


def test_fig5_gnutella_oracle(once, tmp_path):
    result = once(
        run_fig5, n_hosts=300, cache_fill=250, seed=11,
        dot_path_prefix=str(tmp_path / "fig5"),
    )
    print_table(result)
    # the visualisation panels of Figure 5 were rendered
    assert (tmp_path / "fig5_unbiased.dot").exists()
    assert (tmp_path / "fig5_biased_cache_large.dot").exists()
    unb = result.row_by("arm", "unbiased")
    small = result.row_by("arm", "biased_cache_small")
    large = result.row_by("arm", "biased_cache_large")
    both = result.row_by("arm", "biased_both_stages")

    # message table shape: biased < unbiased; larger list < smaller list
    assert large["QUERY"] < small["QUERY"] < unb["QUERY"]
    assert large["PONG"] < unb["PONG"]
    assert large["QUERY"] < 0.5 * unb["QUERY"]

    # overlay clustering (the Figure 5 visualisation)
    assert unb["intra_edges"] < 0.1
    assert small["intra_edges"] > 2 * unb["intra_edges"]
    assert large["intra_edges"] > 0.5
    assert large["modularity"] > 0.5

    # search success survives biasing (the paper's testlab finding)
    assert large["success"] > 0.9
    assert unb["success"] > 0.9

    # file-exchange localisation progression (paper: 6.5% -> ~7-10% -> 40.6%):
    # random source selection stays low, oracle-at-bootstrap changes it only
    # modestly, oracle-at-both-stages multiplies it severalfold
    assert unb["intra_downloads"] < 0.2
    assert 0.5 * unb["intra_downloads"] <= large["intra_downloads"] <= 2.0 * unb["intra_downloads"]
    assert both["intra_downloads"] > 3.0 * unb["intra_downloads"]
    assert both["intra_downloads"] > 0.4
