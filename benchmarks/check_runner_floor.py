"""CI guard: fail when event-loop dispatch regresses by >3x.

Times the schedule-then-drain churn workload (every event re-schedules a
successor — the shape overlay simulations produce) on the live
:class:`~repro.sim.engine.Simulation`, best of N runs, and compares it
against the loose floor recorded in ``runner_floor.json``.  The 3x
headroom means only a real complexity regression — say, the plain-list
heap entry quietly growing back into an object per event, or the tracer
check sliding back into the inner loop — trips it; machine-to-machine
noise does not.

Usage:  PYTHONPATH=src python benchmarks/check_runner_floor.py
"""

from __future__ import annotations

import json
import pathlib
import sys
import time

from repro.sim import Simulation

HERE = pathlib.Path(__file__).resolve().parent
REGRESSION_FACTOR = 3.0
REPEATS = 7
N_EVENTS = 30_000


def _workload() -> int:
    sim = Simulation()
    count = [0]

    def tick(depth: int) -> None:
        count[0] += 1
        if depth:
            sim.schedule(1.0, tick, depth - 1)

    for i in range(N_EVENTS // 10):
        sim.schedule(float(i % 97), tick, 9)
    sim.run()
    return count[0]


def main() -> int:
    floor_ms = json.loads(
        (HERE / "runner_floor.json").read_text()
    )["event_loop_30k_ms"]

    assert _workload() == N_EVENTS  # warm-up + sanity
    best = min(_timed(_workload) for _ in range(REPEATS))
    best_ms = best * 1e3
    limit_ms = REGRESSION_FACTOR * floor_ms
    verdict = "OK" if best_ms <= limit_ms else "REGRESSION"
    print(
        f"event loop ({N_EVENTS} events): {best_ms:.2f} ms "
        f"(floor {floor_ms:.2f} ms, limit {limit_ms:.2f} ms) -> {verdict}"
    )
    return 0 if best_ms <= limit_ms else 1


def _timed(fn) -> float:
    t0 = time.perf_counter()
    fn()
    return time.perf_counter() - t0


if __name__ == "__main__":
    sys.exit(main())
