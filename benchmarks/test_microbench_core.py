"""Micro-benchmarks of the hot substrate paths.

Unlike the experiment benches (rounds=1), these run under the normal
pytest-benchmark loop and exist to catch performance regressions in the
kernels everything else sits on: event-engine throughput, all-pairs
latency assembly (vectorised NumPy), valley-free BFS, AS-delay matrix
accumulation, substrate caching, and XOR-metric sorting.  Assertions are
loose sanity floors, not tuning targets.

``test_substrate_artifact`` additionally times the CSR/accumulating
implementation against a seed-style per-path reference and records the
numbers in ``BENCH_substrate.json`` at the repo root (the CI benchmark
smoke uploads it).
"""

import json
import pathlib
import time
from collections import deque

import numpy as np

from repro.overlay.kademlia import random_id, sort_by_distance, xor_distance
from repro.sim import Simulation
from repro.underlay import (
    ASRouting,
    HostFactory,
    LatencyConfig,
    LatencyModel,
    SubstrateCache,
    TopologyConfig,
    Underlay,
    UnderlayConfig,
    generate_topology,
    pairwise_distances,
)

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent


def test_event_engine_throughput(benchmark):
    def run():
        sim = Simulation()
        count = [0]

        def tick():
            count[0] += 1

        for i in range(10_000):
            sim.schedule(float(i % 100), tick)
        sim.run()
        return count[0]

    assert benchmark(run) == 10_000


def test_latency_matrix_vectorised(benchmark):
    topo = generate_topology(TopologyConfig(seed=3))
    routing = ASRouting(topo)
    model = LatencyModel(topo, routing)
    hosts = HostFactory(topo, rng=1).create_hosts(300)

    mat = benchmark(model.latency_matrix, hosts)
    assert mat.shape == (300, 300)
    assert np.isfinite(mat).all()


def test_valley_free_all_pairs(benchmark):
    topo = generate_topology(
        TopologyConfig(n_tier1=4, n_tier2=12, n_stub=40, seed=5)
    )

    def run():
        return ASRouting(topo).hop_matrix()

    mat = benchmark(run)
    assert (mat >= 0).all()


def test_as_delay_matrix_build(benchmark):
    """AS-delay matrix assembly: accumulated during the routing BFS."""
    topo = generate_topology(TopologyConfig(seed=3))

    def run():
        model = LatencyModel(topo, ASRouting(topo))
        return model.as_delay

    mat = benchmark(run)
    assert mat.shape == (topo.n_ases, topo.n_ases)
    assert np.isfinite(mat).all()


def test_substrate_cache_warm_hit(benchmark):
    """A warm SubstrateCache hit is a dict lookup, not a regeneration."""
    cache = SubstrateCache(maxsize=4)
    config = UnderlayConfig(n_hosts=150, seed=7)
    cold = cache.get_or_generate(config)

    warm = benchmark(cache.get_or_generate, config)
    assert warm is cold
    assert cache.hits >= 1 and cache.misses == 1


# -- seed-style reference (per-pair path reconstruction) --------------------
def _reference_as_delay(topo, cfg):
    """The pre-CSR implementation: sorted-adjacency FIFO BFS per source
    plus an O(n^2) per-path Python accumulation loop.  Kept here so the
    recorded speedup always compares against the same baseline."""
    _UP, _PEERED, _DOWN = 0, 1, 2
    n = topo.n_ases
    preds, bests = {}, {}

    def bfs(src):
        hops = np.full(n, -1, dtype=np.int32)
        hops[src] = 0
        pred, best = {}, {src: (src, _UP)}
        visited = {(src, _UP)}
        frontier = deque([(src, _UP, 0)])
        while frontier:
            asn, phase, d = frontier.popleft()
            asys = topo.asys(asn)
            out = []
            if phase == _UP:
                out += [(p, _UP) for p in sorted(asys.providers)]
                out += [(q, _PEERED) for q in sorted(asys.peers)]
            out += [(c, _DOWN) for c in sorted(asys.customers)]
            for state in out:
                if state in visited:
                    continue
                visited.add(state)
                pred[state] = (asn, phase)
                if hops[state[0]] < 0:
                    hops[state[0]] = d + 1
                    best[state[0]] = state
                frontier.append((*state, d + 1))
        preds[src], bests[src] = pred, best

    def path(src, dst):
        if src == dst:
            return [src]
        rev, state = [], bests[src][dst]
        while True:
            rev.append(state[0])
            if state == (src, _UP):
                break
            state = preds[src][state]
        rev.reverse()
        return rev

    geo = pairwise_distances(topo.positions_array())
    mat = np.zeros((n, n), dtype=float)
    for src in range(n):
        bfs(src)
        for dst in range(n):
            if src == dst:
                mat[src, dst] = cfg.intra_as_ms
                continue
            p = path(src, dst)
            prop = 0.0
            for a, b in zip(p, p[1:]):
                prop += geo[a, b] * cfg.propagation_ms_per_km
                prop += cfg.per_link_router_ms
            prop += cfg.intra_as_ms * len(p)
            mat[src, dst] = prop
    return 0.5 * (mat + mat.T)


def _best_of(fn, repeats=5):
    best = np.inf
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def test_substrate_artifact():
    """Record substrate kernel timings in BENCH_substrate.json and hold
    the headline claims: >= 5x on AS-delay assembly vs the seed-style
    reference, near-zero warm SubstrateCache hits."""
    topo = generate_topology(TopologyConfig(seed=0))
    cfg = LatencyConfig()

    ref_s = _best_of(lambda: _reference_as_delay(topo, cfg), repeats=3)
    fast_s = _best_of(
        lambda: LatencyModel(topo, ASRouting(topo), cfg).precompute()
    )
    # same numbers, bit for bit (the equivalence suite checks this on
    # more seeds; here it guards the benchmark comparing like with like)
    assert np.array_equal(
        _reference_as_delay(topo, cfg),
        LatencyModel(topo, ASRouting(topo), cfg).as_delay,
    )

    gen_s = _best_of(lambda: Underlay.generate(UnderlayConfig()))

    cache = SubstrateCache(maxsize=4)
    config = UnderlayConfig()
    t0 = time.perf_counter()
    cache.get_or_generate(config)
    cold_s = time.perf_counter() - t0
    warm_s = _best_of(lambda: cache.get_or_generate(config), repeats=10)

    speedup = ref_s / fast_s
    artifact = {
        "as_delay_build": {
            "reference_ms": round(ref_s * 1e3, 4),
            "fast_ms": round(fast_s * 1e3, 4),
            "speedup": round(speedup, 2),
        },
        "underlay_generate": {
            "default_config_ms": round(gen_s * 1e3, 4),
        },
        "substrate_cache": {
            "cold_ms": round(cold_s * 1e3, 4),
            "warm_hit_ms": round(warm_s * 1e3, 6),
        },
    }
    (REPO_ROOT / "BENCH_substrate.json").write_text(
        json.dumps(artifact, indent=2) + "\n"
    )
    assert speedup >= 5.0, artifact
    assert warm_s < 0.1 * cold_s, artifact


def test_xor_sort_large(benchmark):
    rng = np.random.default_rng(0)
    ids = [random_id(rng) for _ in range(2_000)]
    target = random_id(rng)

    out = benchmark(sort_by_distance, ids, target)
    assert len(out) == 2_000
    assert xor_distance(out[0], target) <= xor_distance(out[-1], target)
