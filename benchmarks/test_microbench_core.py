"""Micro-benchmarks of the hot substrate paths.

Unlike the experiment benches (rounds=1), these run under the normal
pytest-benchmark loop and exist to catch performance regressions in the
kernels everything else sits on: event-engine throughput, all-pairs
latency assembly (vectorised NumPy), valley-free BFS, and XOR-metric
sorting.  Assertions are loose sanity floors, not tuning targets.
"""

import numpy as np

from repro.overlay.kademlia import random_id, sort_by_distance, xor_distance
from repro.sim import Simulation
from repro.underlay import (
    ASRouting,
    HostFactory,
    LatencyModel,
    TopologyConfig,
    generate_topology,
)


def test_event_engine_throughput(benchmark):
    def run():
        sim = Simulation()
        count = [0]

        def tick():
            count[0] += 1

        for i in range(10_000):
            sim.schedule(float(i % 100), tick)
        sim.run()
        return count[0]

    assert benchmark(run) == 10_000


def test_latency_matrix_vectorised(benchmark):
    topo = generate_topology(TopologyConfig(seed=3))
    routing = ASRouting(topo)
    model = LatencyModel(topo, routing)
    hosts = HostFactory(topo, rng=1).create_hosts(300)

    mat = benchmark(model.latency_matrix, hosts)
    assert mat.shape == (300, 300)
    assert np.isfinite(mat).all()


def test_valley_free_all_pairs(benchmark):
    topo = generate_topology(
        TopologyConfig(n_tier1=4, n_tier2=12, n_stub=40, seed=5)
    )

    def run():
        return ASRouting(topo).hop_matrix()

    mat = benchmark(run)
    assert (mat >= 0).all()


def test_xor_sort_large(benchmark):
    rng = np.random.default_rng(0)
    ids = [random_id(rng) for _ in range(2_000)]
    target = random_id(rng)

    out = benchmark(sort_by_distance, ids, target)
    assert len(out) == 2_000
    assert xor_distance(out[0], target) <= xor_distance(out[-1], target)
