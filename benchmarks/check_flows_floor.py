"""CI guard: fail when the flow-level swarm data plane regresses by >3x.

Re-runs the N = 10^3-peer single-torrent swarm to full completion on the
flow plane (:class:`repro.overlay.bittorrent.FlowSwarmSimulation` —
event-driven control plane, closed-form water-filling rate epochs) and
compares peers/sec against the loose floor recorded in
``flows_floor.json`` — the 3x headroom means only a real complexity
regression trips it, not machine-to-machine noise.  If a fresh
``BENCH_flows.json`` exists at the repo root (written by
``benchmarks/test_microbench_flows.py``), its recorded headline speedup
over the time-stepped reference is validated too.

Usage:  PYTHONPATH=src python benchmarks/check_flows_floor.py
"""

from __future__ import annotations

import json
import pathlib
import sys
import time

from repro.overlay.bittorrent import FlowSwarmSimulation, Torrent, Tracker
from repro.underlay.network import Underlay, UnderlayConfig

HERE = pathlib.Path(__file__).resolve().parent
REPO_ROOT = HERE.parent
REGRESSION_FACTOR = 3.0
HEADLINE_SPEEDUP = 5.0
N_PEERS = 1_000
SEED = 5


def _peers_per_sec() -> float:
    underlay = Underlay.generate(UnderlayConfig(n_hosts=N_PEERS, seed=SEED))
    ids = underlay.host_ids()
    seeds = sorted(
        ids, key=lambda h: -underlay.host(h).resources.bandwidth_up_kbps
    )[:5]
    leechers = [h for h in ids if h not in seeds]
    torrent = Torrent(0, n_pieces=16, piece_size_bytes=262144)
    swarm = FlowSwarmSimulation(
        underlay, torrent, Tracker(underlay, rng=SEED), rng=SEED
    )
    swarm.populate(leechers, seeds)
    t0 = time.perf_counter()
    report = swarm.run(max_time_s=7200.0)
    elapsed = time.perf_counter() - t0
    assert report.completed == report.total_leechers
    return N_PEERS / elapsed


def main() -> int:
    floor = json.loads((HERE / "flows_floor.json").read_text())[
        "flow_plane_1000peer_peers_per_sec"
    ]
    limit = floor / REGRESSION_FACTOR

    rate = _peers_per_sec()
    verdict = "OK" if rate >= limit else "REGRESSION"
    print(
        f"Flow-plane swarm to completion (N={N_PEERS}): {rate:.0f} peers/s "
        f"(floor {floor:.0f}, limit {limit:.0f}) -> {verdict}"
    )
    failed = rate < limit

    bench = REPO_ROOT / "BENCH_flows.json"
    if bench.exists():
        headline = json.loads(bench.read_text())["headline"]
        speedup = headline["speedup"]["n_1000"]
        ok = speedup >= HEADLINE_SPEEDUP
        print(
            f"BENCH_flows.json headline: {speedup:.2f}x over the "
            f"time-stepped reference at N=10^3 (required >= "
            f"{HEADLINE_SPEEDUP:.0f}x) -> {'OK' if ok else 'REGRESSION'}"
        )
        failed = failed or not ok
    else:
        print("BENCH_flows.json not present - skipping headline validation")

    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
