"""Ablation: LTM topology matching over a random unstructured overlay
(Liu et al. [21]).

A reproduction finding worth recording: LTM's cut rule (relay through a
common neighbour is faster than the direct link) fires freely in
router-level delay models like the original paper's, but in an underlay
where end-host *access latency* dominates — every relay pays the middle
host's access twice — profitable relays are rare and the gains are
modest.  The bench therefore asserts the mechanism (cuts happen, delay
never regresses, connectivity holds, conservative slack cuts less) rather
than the original paper's 50%+ traffic-cost reduction, and prints the
probing overhead that §3.2 warns about.
"""

import networkx as nx
import numpy as np

from repro.core import mean_neighbor_delay, run_ltm
from repro.underlay import Underlay, UnderlayConfig


def _random_overlay(underlay, degree, seed=3):
    rng = np.random.default_rng(seed)
    ids = underlay.host_ids()
    g = nx.Graph()
    g.add_nodes_from(ids)
    for h in ids:
        others = [x for x in ids if x != h]
        for i in rng.choice(len(others), size=degree, replace=False):
            g.add_edge(h, others[int(i)])
    return g


def test_ablation_ltm(once):
    underlay = Underlay.generate(UnderlayConfig(n_hosts=120, seed=12))

    def run_arms():
        rows = []
        for slack in (1.0, 0.7):
            g = _random_overlay(underlay, degree=12)
            before = mean_neighbor_delay(g, underlay.one_way_delay)
            stats = run_ltm(g, underlay.one_way_delay, max_rounds=8, slack=slack)
            rows.append(
                {
                    "slack": slack,
                    "delay_before_ms": before,
                    "delay_after_ms": mean_neighbor_delay(g, underlay.one_way_delay),
                    "links_cut": stats.links_cut,
                    "links_added": stats.links_added,
                    "probe_kb": stats.probe_bytes / 1024.0,
                    "connected": nx.is_connected(g),
                }
            )
        return rows

    rows = once(run_arms)
    print()
    for r in rows:
        print(
            f"slack={r['slack']:.1f} delay {r['delay_before_ms']:.1f}ms -> "
            f"{r['delay_after_ms']:.1f}ms cut={r['links_cut']} "
            f"added={r['links_added']} probes={r['probe_kb']:.0f}KB "
            f"connected={r['connected']}"
        )
    plain, conservative = rows
    for r in rows:
        assert r["connected"]
        assert r["delay_after_ms"] <= r["delay_before_ms"]
        assert r["probe_kb"] > 0  # measurement is never free (§3.2)
    # the mechanism fires under the plain rule ...
    assert plain["links_cut"] > 0
    # ... and a conservative slack cuts no more than the plain rule
    assert conservative["links_cut"] <= plain["links_cut"]
