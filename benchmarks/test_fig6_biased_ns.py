"""FIG6 bench: topology shape under uniform vs biased neighbor selection,
plus the external-link-floor ablation (§5.4 churn-robustness question)."""

from repro.experiments import print_table, run_fig6


def test_fig6_biased_neighbor_selection(once, tmp_path):
    result = once(
        run_fig6, n_hosts=120, seed=17,
        dot_path_prefix=str(tmp_path / "fig6"),
    )
    print_table(result)
    # the two Figure 6 panels were rendered as Graphviz files
    assert (tmp_path / "fig6_uniform.dot").exists()
    assert (tmp_path / "fig6_biased.dot").exists()
    uni = result.row_by("arm", "uniform_random")
    bia = result.row_by("arm", "biased")
    ablate = result.row_by("arm", "biased_no_floor")

    # Figure 6(a): uniform selection ignores AS boundaries
    assert uni["intra_as_edge_fraction"] < 0.15
    assert uni["as_modularity"] < 0.1

    # Figure 6(b): biased selection clusters along AS boundaries ...
    assert bia["intra_as_edge_fraction"] > 0.5
    assert bia["as_modularity"] > 0.4
    # ... with far fewer inter-AS links, yet still connected
    assert bia["inter_as_edges"] < 0.5 * uni["inter_as_edges"]
    assert bia["inter_as_edges"] >= bia["min_inter_as_edges"]
    assert bia["connected"] == 1.0

    # ablation: dropping the external floor tightens clustering further
    # but degrades robustness — with this seed it outright partitions the
    # network, which is exactly the §5.4 risk the floor exists to prevent
    assert ablate["intra_as_edge_fraction"] >= bia["intra_as_edge_fraction"]
    assert ablate["partition_risk"] >= bia["partition_risk"]
