"""Robustness: the headline locality result holds across random seeds.

A single-seed figure can be a fluke; the Figure 6 clustering effect is
re-run over several independent underlays and asserted on the mean with
its spread reported.
"""

from repro.experiments import run_fig6
from repro.experiments.common import print_table, repeat_over_seeds


def test_fig6_effect_across_seeds(once):
    def run_all():
        return repeat_over_seeds(
            lambda seed: run_fig6(n_hosts=90, seed=seed),
            seeds=[3, 17, 29, 41],
            key_column="arm",
            value_columns=["intra_as_edge_fraction", "as_modularity",
                           "largest_component"],
        )

    result = once(run_all)
    print_table(result)
    rows = {r["arm"]: r for r in result.rows}
    uni = rows["uniform_random"]
    bia = rows["biased"]
    # the effect is large relative to its own variation
    gap = bia["intra_as_edge_fraction_mean"] - uni["intra_as_edge_fraction_mean"]
    spread = bia["intra_as_edge_fraction_std"] + uni["intra_as_edge_fraction_std"]
    assert gap > 5 * max(spread, 1e-6)
    assert bia["as_modularity_mean"] > 0.4
    assert uni["as_modularity_mean"] < 0.1
    # biased (with floor) never disconnected on any seed
    assert bia["largest_component_mean"] == 1.0
