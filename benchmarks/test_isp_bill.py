"""ISPBILL bench: end-to-end economics — workload → transit sampling →
95th-percentile billing — with and without the oracle (§2.1, §5.2)."""

from repro.experiments import print_table
from repro.experiments.isp_bill import run_isp_bill


def test_isp_bill(once):
    result = once(run_isp_bill)
    print_table(result)
    unb = result.row_by("arm", "unbiased")
    bia = result.row_by("arm", "biased_both_stages")
    # the workload localises ...
    assert bia["intra_as_fraction"] > 3 * unb["intra_as_fraction"]
    assert bia["total_transit_mb"] < 0.5 * unb["total_transit_mb"]
    # ... and the sampled-peak bills of local ISPs follow
    assert bia["mean_stub_bill_usd"] < 0.6 * unb["mean_stub_bill_usd"]
    assert bia["max_stub_bill_usd"] < unb["max_stub_bill_usd"]
