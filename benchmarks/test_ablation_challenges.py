"""Ablation: the §6 "Asymmetric Node Selection and Long Hop" challenges,
quantified on the generated underlay."""

from repro.metrics import (
    hop_delay_correlation,
    knn_asymmetry,
    long_hop_fraction,
)
from repro.underlay import Underlay, UnderlayConfig


def test_ablation_selection_challenges(once):
    underlay = Underlay.generate(UnderlayConfig(n_hosts=100, seed=14))

    def run():
        rtt = underlay.rtt_matrix()
        return {
            "knn_asymmetry_k3": knn_asymmetry(rtt, k=3),
            "knn_asymmetry_k8": knn_asymmetry(rtt, k=8),
            "hop_delay_spearman": hop_delay_correlation(underlay),
            "long_hop_1.5x": long_hop_fraction(underlay, delay_factor=1.5),
            "long_hop_2x": long_hop_fraction(underlay, delay_factor=2.0),
        }

    row = once(run)
    print()
    for k, v in row.items():
        print(f"  {k:22s} {v:.3f}")
    # asymmetric node selection *occurs*: latency k-NN is not mutual
    assert row["knn_asymmetry_k3"] > 0.1
    # larger neighbour sets soften (but don't remove) the asymmetry
    assert row["knn_asymmetry_k8"] <= row["knn_asymmetry_k3"] + 0.05
    # hop count carries real but imperfect signal about delay ...
    assert 0.2 < row["hop_delay_spearman"] < 0.95
    # ... so hop-based systems pay the long-hop penalty for some peers
    assert row["long_hop_1.5x"] > 0.0
    assert row["long_hop_2x"] <= row["long_hop_1.5x"]
